// Q2, the 13-element chart pattern (A B+ C D+ ... M), on a mean-reverting
// quote stream: detects prices oscillating three times between a lower and
// an upper limit. Runs the sequential reference engine and the parallel
// SPECTRE runtime, verifies they emit identical complex events, and reports
// the speculation statistics.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "data/nyse_synth.hpp"
#include "model/markov_model.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/runtime.hpp"

using namespace spectre;

int main(int argc, char** argv) {
    const int instances = argc > 1 ? std::atoi(argv[1]) : 4;

    auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = 20'000;
    cfg.symbols = 50;
    cfg.tick = 1.5;
    cfg.mean_reversion = 0.05;  // keep prices oscillating through the bands
    event::EventStore store;
    data::generate_nyse(vocab, cfg, store);

    queries::Q2Params params;
    params.lower = 95;
    params.upper = 105;
    params.ws = 2000;
    params.slide = 500;
    const auto cq = detect::CompiledQuery::compile(queries::make_q2(vocab, params));

    const auto seq = sequential::SequentialEngine(&cq).run(store);
    std::printf("sequential: %zu complex events, ground-truth completion %.0f%%\n",
                seq.complex_events.size(), 100 * seq.stats.completion_probability());

    core::RuntimeConfig rt_cfg;
    rt_cfg.splitter.instances = instances;
    core::SpectreRuntime runtime(
        &store, &cq, rt_cfg,
        std::make_unique<model::MarkovModel>(cq.min_length(), model::MarkovParams{}));
    const auto result = runtime.run();

    const bool identical = result.output.size() == seq.complex_events.size() &&
                           std::equal(result.output.begin(), result.output.end(),
                                      seq.complex_events.begin());
    std::printf("SPECTRE (%d instances): %zu complex events — %s\n", instances,
                result.output.size(),
                identical ? "identical to sequential" : "MISMATCH (bug!)");
    std::printf("throughput %.0f events/s; %llu groups (%llu completed), "
                "%llu rollbacks, max tree %zu versions\n",
                result.throughput_eps,
                static_cast<unsigned long long>(result.metrics.groups_created),
                static_cast<unsigned long long>(result.metrics.groups_completed),
                static_cast<unsigned long long>(result.metrics.rollbacks),
                result.metrics.max_tree_versions);
    if (!seq.complex_events.empty()) {
        const auto& ce = seq.complex_events.front();
        std::printf("first pattern instance: %zu quotes in window w%llu\n",
                    ce.constituents.size(),
                    static_cast<unsigned long long>(ce.window_id));
    }
    return identical ? 0 : 1;
}
