// Multi-session CEP server demo (DESIGN.md §8): one CepServer hosting three
// concurrent clients, each subscribing its own query over its own TCP
// session — the middleware deployment shape of paper §4.1 scaled out from
// one hard-wired pipeline to many independent subscribers.
//
// Each client streams a synthetic NYSE day as DATA frames and receives its
// complex events back as RESULT frames *while still sending* — the demo
// prints, per session, how many results had already arrived before the
// client finished its stream.
#include <cstdio>
#include <memory>

#include "data/nyse_synth.hpp"
#include "harness/load_gen.hpp"
#include "server/cep_server.hpp"

using namespace spectre;

namespace {

std::vector<net::WireQuote> day(std::uint64_t events, std::uint64_t seed, double up_prob) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = 50;
    cfg.up_prob = up_prob;
    cfg.seed = seed;
    std::vector<net::WireQuote> wire;
    for (const auto& e : data::generate_nyse(vocab, cfg)) wire.push_back(net::to_wire(e, vocab));
    return wire;
}

}  // namespace

int main() {
    server::CepServer srv;
    srv.start();
    std::printf("CEP server listening on 127.0.0.1:%u\n", srv.port());

    std::vector<harness::LoadGenSession> specs(3);
    // Momentum subscriber: two consecutive rising quotes, SPECTRE with k=2.
    specs[0].query =
        "PATTERN (R1 R2) "
        "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
        "WITHIN 40 EVENTS FROM EVERY 10 EVENTS CONSUME ALL";
    specs[0].instances = 2;
    specs[0].events = day(4000, 1, 0.58);

    // Drawdown subscriber: falling pair on a bearish stream, sequential engine.
    specs[1].query =
        "PATTERN (F1 F2) "
        "DEFINE F1 AS F1.close < F1.open, F2 AS F2.close < F2.open "
        "WITHIN 30 EVENTS FROM EVERY 10 EVENTS CONSUME (F1 F2)";
    specs[1].instances = 0;
    specs[1].events = day(4000, 2, 0.42);

    // Leader-follow subscriber: a blue-chip rise followed by two rising
    // quotes of any symbol (Q1's shape), SPECTRE with k=2.
    specs[2].query =
        "PATTERN (MLE RE1 RE2) "
        "DEFINE MLE AS SYMBOL IN ('AAPL','IBM','MSFT') AND MLE.close > MLE.open, "
        "       RE1 AS RE1.close > RE1.open, RE2 AS RE2.close > RE2.open "
        "WITHIN 80 EVENTS FROM MLE CONSUME ALL "
        "EMIT gain = RE2.close - MLE.open";
    specs[2].instances = 2;
    specs[2].events = day(3000, 3, 0.55);

    // Pause each client mid-stream until its first RESULT arrives — making
    // the streaming egress visible: detection output comes back while the
    // bulk of the stream is still unsent.
    for (auto& spec : specs) spec.wait_result_after = spec.events.size() / 2;
    // The momentum subscriber also queries live metrics mid-stream (§12):
    // the STATS reply interleaves with its RESULT frames.
    specs[0].stats_after = specs[0].events.size() / 2;

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);

    static const char* kNames[] = {"momentum(k=2)", "drawdown(seq)", "leader(k=2)"};
    bool ok = true;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& out = outcomes[i];
        if (!out.completed) {
            std::printf("%-14s FAILED: %s\n", kNames[i], out.error.c_str());
            ok = false;
            continue;
        }
        std::printf(
            "%-14s sent %zu events, received %zu complex events "
            "(%zu before end-of-stream) in %.2fs\n",
            kNames[i], out.events_sent, out.results.size(), out.results_before_bye,
            out.wall_seconds);
        if (!out.stats_json.empty())
            std::printf("%-14s mid-stream STATS reply: %.120s...\n", kNames[i],
                        out.stats_json.front().c_str());
    }

    srv.stop();
    const auto stats = srv.stats();
    std::printf("server: %llu sessions, %llu events in, %llu results out\n",
                static_cast<unsigned long long>(stats.sessions_accepted),
                static_cast<unsigned long long>(stats.events_ingested),
                static_cast<unsigned long long>(stats.results_emitted));
    return ok ? 0 : 1;
}
