// Q3 on the RAND stream: a designated symbol followed by a SET of n specific
// symbols in any order. Sweeps the simulated instance count to show how the
// workload's consumption-group completion probability shapes the speculation
// speed-up (the effect behind Fig. 10/11).
#include <cstdio>
#include <memory>

#include "data/rand_stream.hpp"
#include "model/markov_model.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/sim_runtime.hpp"

using namespace spectre;

int main() {
    auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::RandStreamConfig cfg;
    cfg.events = 20'000;
    cfg.symbols = 300;
    event::EventStore store;
    data::generate_rand(vocab, cfg, store);

    for (const int n : {2, 20}) {
        queries::Q3Params params;
        params.n = n;
        params.ws = 1000;
        params.slide = 100;
        const auto cq = detect::CompiledQuery::compile(queries::make_q3(vocab, params));
        const auto seq = sequential::SequentialEngine(&cq).run(store);
        std::printf("\nQ3 with SET size %d (ratio %.3f): %zu matches, completion %.0f%%\n",
                    n, static_cast<double>(n + 1) / 1000.0, seq.complex_events.size(),
                    100 * seq.stats.completion_probability());

        double base = 0;
        for (const int k : {1, 4, 16}) {
            core::SimConfig sim_cfg;
            sim_cfg.splitter.instances = k;
            core::SimRuntime sim(&store, &cq, sim_cfg,
                                 std::make_unique<model::MarkovModel>(
                                     cq.min_length(), model::MarkovParams{}));
            const auto r = sim.run();
            if (k == 1) base = r.throughput_eps;
            std::printf("  k=%-2d  %.0f events/s (%.1fx)\n", k, r.throughput_eps,
                        base > 0 ? r.throughput_eps / base : 0.0);
        }
    }
    return 0;
}
