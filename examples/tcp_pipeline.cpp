// End-to-end pipeline in the paper's deployment shape (§4.1): a client
// thread streams framed quote events over a loopback TCP connection; the
// engine side materializes them into an event store and runs the parallel
// SPECTRE runtime over the received stream.
#include <cstdio>
#include <memory>
#include <thread>

#include "data/nyse_synth.hpp"
#include "model/markov_model.hpp"
#include "net/tcp.hpp"
#include "queries/paper_queries.hpp"
#include "spectre/runtime.hpp"

using namespace spectre;

int main() {
    auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());

    // Client side: generate the day's quotes and ship them over TCP.
    data::NyseSynthConfig cfg;
    cfg.events = 10'000;
    cfg.symbols = 200;
    cfg.up_prob = 0.55;
    const auto events = data::generate_nyse(vocab, cfg);

    net::TcpSource source(0);  // ephemeral loopback port
    std::printf("listening on 127.0.0.1:%u\n", source.port());
    std::thread client([&] {
        net::TcpClient c("127.0.0.1", source.port());
        c.send_all(events, vocab);
        std::printf("client: sent %zu events\n", events.size());
    });

    event::EventStore store;
    const auto received = source.receive_into(store, vocab);
    client.join();
    std::printf("engine: received %zu events\n", received);

    // Engine side: Q1 over the received stream.
    const auto cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 4, .ws = 200}));
    core::RuntimeConfig rt_cfg;
    rt_cfg.splitter.instances = 4;
    core::SpectreRuntime runtime(
        &store, &cq, rt_cfg,
        std::make_unique<model::MarkovModel>(cq.min_length(), model::MarkovParams{}));
    const auto result = runtime.run();
    std::printf("detected %zu complex events at %.0f events/s\n", result.output.size(),
                result.throughput_eps);
    return 0;
}
