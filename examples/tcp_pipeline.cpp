// End-to-end pipeline in the paper's deployment shape (§4.1): a client
// thread streams framed quote events over a loopback TCP connection while the
// engine side runs the parallel SPECTRE runtime *concurrently with
// ingestion* — windows open as their start events arrive and detection
// advances along the growing store frontier (ingest-while-detect, DESIGN.md
// §6).
#include <cstdio>
#include <memory>
#include <thread>

#include "data/nyse_synth.hpp"
#include "model/markov_model.hpp"
#include "net/tcp.hpp"
#include "queries/paper_queries.hpp"
#include "spectre/runtime.hpp"

using namespace spectre;

int main() {
    auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());

    // Client side: generate the day's quotes and ship them over TCP.
    data::NyseSynthConfig cfg;
    cfg.events = 10'000;
    cfg.symbols = 200;
    cfg.up_prob = 0.55;
    const auto events = data::generate_nyse(vocab, cfg);

    net::TcpSource source(0);  // ephemeral loopback port
    std::printf("listening on 127.0.0.1:%u\n", source.port());
    std::thread client([&] {
        net::TcpClient c("127.0.0.1", source.port());
        c.send_all(events, vocab);
        std::printf("client: sent %zu events\n", events.size());
    });

    // Engine side: Q1 detection starts immediately; events are appended to
    // the shared store as their frames arrive and the splitter opens windows
    // from the live frontier.
    const auto cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 4, .ws = 200}));
    core::RuntimeConfig rt_cfg;
    rt_cfg.splitter.instances = 4;
    event::EventStore store;
    core::SpectreRuntime runtime(
        &store, &cq, rt_cfg,
        std::make_unique<model::MarkovModel>(cq.min_length(), model::MarkovParams{}));
    net::TcpStream stream(source, vocab);
    const auto result = runtime.run(stream);
    client.join();
    std::printf("engine: ingested %zu events while detecting\n", store.size());
    std::printf("detected %zu complex events at %.0f events/s\n", result.output.size(),
                result.throughput_eps);
    return 0;
}
