// The paper's running example (§2.1, Fig. 1): query QE correlates changes of
// stock B with the first preceding change of stock A inside a 1-minute
// window, with and without the "selected B" consumption policy. Shows how
// the consumption policy changes which complex events are emitted on the
// exact stream of Fig. 1.
#include <cstdio>
#include <memory>

#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

int main() {
    auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    const auto aapl = vocab.schema->intern_subject("AAPL");  // plays type A
    const auto msft = vocab.schema->intern_subject("MSFT");  // plays type B

    event::EventStore store;
    const char* names[] = {"A1", "A2", "B1", "B2", "B3"};
    // Timestamps in seconds; QE's window spans 60 seconds from each A, so
    // w1 (from A1@0) holds A1 A2 B1 B2 and w2 (from A2@10) also holds B3@65.
    store.append(data::make_quote(vocab, 0, aapl, 100, 102, 1));   // A1, change +2
    store.append(data::make_quote(vocab, 10, aapl, 100, 104, 1));  // A2, change +4
    store.append(data::make_quote(vocab, 20, msft, 100, 110, 1));  // B1, change +10
    store.append(data::make_quote(vocab, 30, msft, 110, 130, 1));  // B2, change +20
    store.append(data::make_quote(vocab, 65, msft, 130, 160, 1));  // B3, change +30

    for (const bool consume_b : {false, true}) {
        queries::QeParams params;
        params.consume_b = consume_b;
        const auto cq = detect::CompiledQuery::compile(queries::make_qe(vocab, params));
        const auto result = sequential::SequentialEngine(&cq).run(store);

        std::printf("%s:\n", consume_b ? "consumption policy: selected B (Fig. 1b)"
                                       : "consumption policy: none (Fig. 1a)");
        for (const auto& ce : result.complex_events) {
            std::printf("  window w%llu:",
                        static_cast<unsigned long long>(ce.window_id));
            for (const auto s : ce.constituents) std::printf(" %s", names[s]);
            for (const auto& [key, value] : ce.payload)
                std::printf("   %s = %.3g", key.c_str(), value);
            std::printf("\n");
        }
        std::printf("  -> %zu complex events\n\n", result.complex_events.size());
    }
    std::printf("paper: 5 complex events without consumption, 3 with selected-B.\n");
    return 0;
}
