// Quickstart: define a query in the text language, stream synthetic quotes
// through the parallel SPECTRE runtime, and print the detected complex
// events.
//
//   $ ./quickstart [instances]
//
// The query looks for a quote of a leading symbol followed by three rising
// quotes within 50 events, consuming all constituents — so each rise streak
// is reported exactly once even though windows overlap.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "data/nyse_synth.hpp"
#include "model/markov_model.hpp"
#include "query/parser.hpp"
#include "spectre/runtime.hpp"

using namespace spectre;

int main(int argc, char** argv) {
    const int instances = argc > 1 ? std::atoi(argv[1]) : 4;

    // Shared schema: the dataset generator and the query agree on names.
    auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());

    // 1. A query in the MATCH-RECOGNIZE-style text language (README §query
    //    language). WITHIN ... FROM LEAD opens a window at every LEAD match.
    const auto query = query::parse_query(
        "PATTERN (LEAD R1 R2 R3) "
        "DEFINE LEAD AS SYMBOL IN ('AAPL','MSFT','IBM') AND LEAD.close > LEAD.open, "
        "       R1 AS R1.close > R1.open, "
        "       R2 AS R2.close > R2.open, "
        "       R3 AS R3.close > R3.open "
        "WITHIN 50 EVENTS FROM LEAD "
        "CONSUME ALL "
        "EMIT gain = R3.close - LEAD.open",
        vocab.schema);

    // 2. A synthetic intra-day quote stream (100 symbols, slight bull bias).
    data::NyseSynthConfig cfg;
    cfg.events = 5'000;
    cfg.symbols = 100;
    cfg.up_prob = 0.55;
    event::EventStore store;
    data::generate_nyse(vocab, cfg, store);

    // 3. Run the speculative parallel engine (real threads).
    const auto compiled = detect::CompiledQuery::compile(query);
    core::RuntimeConfig rt_cfg;
    rt_cfg.splitter.instances = instances;
    core::SpectreRuntime runtime(
        &store, &compiled, rt_cfg,
        std::make_unique<model::MarkovModel>(compiled.min_length(), model::MarkovParams{}));
    const auto result = runtime.run();

    std::printf("processed %zu events on %d instances: %zu complex events, "
                "%.0f events/s\n",
                store.size(), instances, result.output.size(), result.throughput_eps);
    for (std::size_t i = 0; i < result.output.size() && i < 5; ++i)
        std::printf("  %s\n", event::to_string(result.output[i]).c_str());
    if (result.output.size() > 5)
        std::printf("  ... and %zu more\n", result.output.size() - 5);
    std::printf("speculation: %llu groups, %llu rollbacks, max tree %zu versions\n",
                static_cast<unsigned long long>(result.metrics.groups_created),
                static_cast<unsigned long long>(result.metrics.rollbacks),
                result.metrics.max_tree_versions);
    return 0;
}
