// E8/E9 — Fig. 11: the Markov completion model vs fixed-probability models,
// query Q3 on the RAND stream, k = 32 instances, ws = 1000, slide = 100.
//   (a) ratio 0.002 — pattern size 2, completion probability ≈ 100%
//   (b) ratio 0.1   — pattern size 100, lower completion probability
// The paper's finding: the best fixed probability depends on the workload
// (100% wins in (a), 20% wins in (b)); the learned Markov model comes within
// a few percent of the per-workload best in both.
#include <cstdio>

#include "bench_workloads.hpp"
#include "model/fixed_model.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

namespace {

void run_variant(const char* label, int n, std::uint64_t events) {
    const auto vocab = bench::fresh_vocab();
    const auto cq = detect::CompiledQuery::compile(queries::make_q3(
        vocab, queries::Q3Params{.n = n, .ws = 1000, .slide = 100}));
    const auto store = bench::rand_store(vocab, events, 7);
    const auto cal = harness::calibrate(cq, store, 1);
    const auto seq = sequential::SequentialEngine(&cq).run(store);

    std::printf("\n%s: pattern size %d / window 1000, ground-truth p = %.2f\n", label,
                n + 1, seq.stats.completion_probability());
    harness::Table table({"CG probability model", "throughput", "vs best fixed"});

    double best_fixed = 0.0;
    std::vector<std::pair<std::string, double>> rows;
    for (const double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        const double eps = harness::run_sim_throughput(
            store, cq, harness::paper_machine_sim(cal, 32),
            [&] { return std::make_unique<model::FixedModel>(p); });
        best_fixed = std::max(best_fixed, eps);
        rows.emplace_back(harness::fmt_double(p * 100, 0) + "%", eps);
    }
    const double markov_eps = harness::run_sim_throughput(
        store, cq, harness::paper_machine_sim(cal, 32),
        [&] { return harness::paper_markov(cq.min_length()); });
    rows.emplace_back("Markov", markov_eps);

    for (const auto& [name, eps] : rows)
        table.row({name, harness::fmt_eps(eps),
                   harness::fmt_double(best_fixed > 0 ? 100.0 * eps / best_fixed : 0, 0) +
                       "%"});
    table.print();
}

}  // namespace

int main() {
    harness::print_header("E8+E9 / Fig. 11", "Markov model vs fixed completion probabilities");
    run_variant("(a) ratio 0.002", /*n=*/1, bench::scaled(30'000));
    run_variant("(b) ratio 0.1", /*n=*/99, bench::scaled(15'000));
    std::printf(
        "\npaper shape: (a) fixed-100%% best, Markov within ~1%% of it; (b) fixed-20%%\n"
        "best, Markov within ~8%%; wrong fixed probabilities cost large factors.\n");
    return 0;
}
