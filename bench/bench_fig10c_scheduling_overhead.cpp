// E4 — Fig. 10(c): splitter maintenance + scheduling cycles per second vs the
// number of operator instances (Q1, q = 80, ws = 8000).
//
// This is a *real-time* measurement of Splitter::run_cycle on this machine,
// interleaved with instance batches so the dependency tree has realistic
// content. The paper measured 4M cycles/s at k=1 falling to 450k at k=32 on
// its Xeon; absolute numbers differ per machine, the declining shape with k
// (larger trees, more updates per drain) is what must reproduce.
#include <chrono>
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"

using namespace spectre;

int main() {
    harness::print_header("E4 / Fig. 10(c)", "splitter maintenance+scheduling cycles/sec");

    const std::uint64_t events = bench::scaled(20'000);
    harness::Table table({"k", "cycles", "cycles/sec", "max tree versions"});

    for (const int k : {1, 2, 4, 8, 16, 32}) {
        const auto vocab = bench::fresh_vocab();
        const auto cq = detect::CompiledQuery::compile(
            queries::make_q1(vocab, queries::Q1Params{.q = 80, .ws = 8000}));
        const auto store = bench::nyse_store(vocab, events, 42);

        core::SplitterConfig scfg;
        scfg.instances = k;
        core::Splitter splitter(&store, &cq, scfg, harness::paper_markov(cq.min_length()));
        // Batch replay: the materialized store is the whole input.
        splitter.mark_input_complete();

        // Drive instances and splitter in lock-step (single-threaded, so the
        // timing isolates cycle cost); measure the time spent inside
        // run_cycle only.
        std::uint64_t cycles = 0;
        std::chrono::steady_clock::duration in_cycles{};
        bool live = true;
        while (live) {
            for (auto& inst : splitter.instances()) inst->run_batch(64);
            const auto t0 = std::chrono::steady_clock::now();
            live = splitter.run_cycle();
            in_cycles += std::chrono::steady_clock::now() - t0;
            ++cycles;
        }
        const double secs = std::chrono::duration<double>(in_cycles).count();
        table.row({std::to_string(k), std::to_string(cycles),
                   harness::fmt_eps(secs > 0 ? static_cast<double>(cycles) / secs : 0),
                   std::to_string(splitter.metrics().max_tree_versions)});
    }
    table.print();
    std::printf("\npaper shape: 4M cycles/s at k=1 declining to ~450k at k=32; high\n"
                "absolute rates, never the bottleneck.\n");
    return 0;
}
