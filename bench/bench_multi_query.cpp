// E-multi-query — shared multi-query ingest plane (DESIGN.md §15): one
// publisher feeding N subscriber queries over a published stream, against the
// pre-§15 deployment of the same workload as N standalone sessions each
// shipping (and decoding, and storing) its own copy of the stream.
//
// Measures, per fanout {1, 4, 32}:
//   - aggregate delivered events/s (fanout × events / wall) for both modes;
//   - resident-set growth across the run (the N-copies-vs-one-store memory
//     story: the shared plane keeps one chunked EventStore however many
//     queries attach, so the stream-storage component of the RSS delta drops
//     from fanout× to 1× — ≥4× on that component at any fanout ≥ 4. What
//     remains in both modes is per-query engine state, which sharing the
//     stream deliberately does not collapse);
//   - the §12 ingest byte counters: in shared mode kIngestWireBytes must be
//     ≈ 1× the encoded stream regardless of fanout (the stream crosses the
//     wire and the decoder exactly once), while standalone mode pays fanout×.
//     This ratio is deterministic, so it is a hard gate, not a trend row;
//   - compile-cache hits/misses: subscribers rotate over 3 query texts, so
//     at most 3 artifacts are ever compiled per server (§15 compile cache).
//
// Every subscriber's (and every standalone session's) RESULT stream is
// checked byte-identical against a SequentialEngine run over the same input —
// the §15 acceptance invariant. Any parity break, failed session, or
// wire-byte anomaly exits non-zero; ctest runs this at SPECTRE_BENCH_SCALE
// = 0.05 as a smoke test. One JSON line per row for scripts.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_workloads.hpp"
#include "harness/load_gen.hpp"
#include "harness/oracle.hpp"
#include "obs/metrics.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"

using namespace spectre;

namespace {

std::vector<net::WireQuote> day(std::uint64_t events, std::uint64_t seed) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = 100;
    cfg.up_prob = 0.55;
    cfg.seed = seed;
    std::vector<net::WireQuote> wire;
    for (const auto& e : data::generate_nyse(vocab, cfg)) wire.push_back(net::to_wire(e, vocab));
    return wire;
}

// Same query mix as E-server: subscribers rotate over these, so fanout ≥ 4
// exercises both artifact sharing (identical texts) and cache separation.
const char* kQueries[] = {
    "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 40 EVENTS FROM EVERY 10 EVENTS CONSUME ALL",
    "PATTERN (R1 R2 R3) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
    "R3 AS R3.close > R3.open WITHIN 30 EVENTS FROM EVERY 10 EVENTS CONSUME ALL "
    "EMIT gain = R3.close - R1.open",
    "PATTERN (F1 F2) DEFINE F1 AS F1.close < F1.open, F2 AS F2.close < F2.open "
    "WITHIN 24 EVENTS FROM EVERY 8 EVENTS CONSUME ALL",
};
constexpr std::size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);
constexpr int kPoolWorkers = 4;

long rss_kb() {
    long pages = 0, resident = 0;
    if (FILE* f = std::fopen("/proc/self/statm", "r")) {
        if (std::fscanf(f, "%ld %ld", &pages, &resident) != 2) resident = 0;
        std::fclose(f);
    }
    return resident * (sysconf(_SC_PAGESIZE) / 1024);
}

struct RunResult {
    double eps = 0;
    long rss_delta_kb = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t compile_hits = 0;
    std::uint64_t compile_misses = 0;
    std::uint64_t chunks_reclaimed = 0;
    std::uint64_t results = 0;
    bool parity_ok = false;
};

}  // namespace

int main() {
    harness::print_header(
        "E-multi-query",
        "shared ingest plane: 1 publisher + N subscribers vs N standalone sessions");

    const std::uint64_t events_n = bench::scaled(20'000);
    const auto events = day(events_n, 20'260'808);

    // The DATA stream as it crosses the wire, byte-exact: the shared-mode
    // kIngestWireBytes gate compares against this (plus handshake slack).
    std::vector<std::uint8_t> encoded;
    for (const auto& q : events) net::encode_frame(net::SessionFrame{q}, encoded);
    const std::uint64_t stream_bytes = encoded.size();
    encoded.clear();
    encoded.shrink_to_fit();

    // Inputs are identical for every subscriber, so three oracles cover every
    // fanout in the sweep.
    std::vector<std::vector<event::ComplexEvent>> expected(kNumQueries);
    for (std::size_t q = 0; q < kNumQueries; ++q)
        expected[q] = harness::sequential_oracle(kQueries[q], events);

    harness::Table table({"fanout", "mode", "aggregate eps", "rss ΔKiB",
                          "wire B (vs 1× stream)", "compile hit/miss", "parity"});
    std::vector<harness::JsonLine> json_rows;
    bool all_ok = true;

    for (const std::size_t fanout : {1u, 4u, 32u}) {
        // k rotates with the query so the plane mixes sequential and
        // speculative subscriber engines, like real co-tenant queries would.
        const auto instances_for = [](std::size_t i) {
            return static_cast<std::uint32_t>(i % 2 == 0 ? 0 : 2);
        };

        // --- shared plane: one publisher, `fanout` subscribers -------------
        RunResult shared;
        {
            const server::ServerConfig cfg =
                server::ServerConfigBuilder{}.pool_workers(kPoolWorkers).build();
            server::CepServer srv(cfg);
            srv.start();

            const long rss0 = rss_kb();
            const auto t0 = std::chrono::steady_clock::now();
            harness::PublisherClient pub("127.0.0.1", srv.port(), "ticks");
            bool session_ok = pub.ok();

            // Constructors block on the capability echo, so every subscriber
            // is attached (frontier pinned at chunk 0) before any DATA flows.
            std::vector<harness::SubscriberClient> subs;
            subs.reserve(fanout);
            for (std::size_t i = 0; i < fanout; ++i) {
                harness::SubscriberClient::Spec spec;
                spec.stream = "ticks";
                spec.query = kQueries[i % kNumQueries];
                spec.instances = instances_for(i);
                subs.emplace_back("127.0.0.1", srv.port(), std::move(spec));
                session_ok = session_ok && subs.back().ok();
            }

            std::vector<harness::LoadGenOutcome> outcomes(fanout);
            std::vector<std::thread> threads;
            threads.reserve(fanout);
            for (std::size_t i = 0; i < fanout; ++i)
                threads.emplace_back([&, i] { outcomes[i] = subs[i].run(); });

            pub.publish(events);
            session_ok = pub.finish() && session_ok;
            for (auto& t : threads) t.join();
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            shared.rss_delta_kb = rss_kb() - rss0;

            const auto snap = srv.registry().snapshot();
            srv.stop();
            shared.wire_bytes = snap.value(obs::Series{obs::sid::kIngestWireBytes});
            shared.compile_hits = snap.value(obs::Series{obs::sid::kCompileCacheHits});
            shared.compile_misses =
                snap.value(obs::Series{obs::sid::kCompileCacheMisses});
            shared.chunks_reclaimed =
                snap.value(obs::Series{obs::sid::kHubChunksReclaimed});

            shared.parity_ok = session_ok;
            if (!session_ok)
                std::fprintf(stderr, "ERROR: shared-plane session failed: %s\n",
                             !pub.ok() ? pub.error().c_str() : "subscriber handshake");
            for (std::size_t i = 0; i < fanout; ++i) {
                const auto& out = outcomes[i];
                shared.results += out.results.size();
                if (!out.completed || !out.error.empty() ||
                    !harness::results_identical(expected[i % kNumQueries],
                                                out.results)) {
                    shared.parity_ok = false;
                    std::fprintf(stderr,
                                 "PARITY BREAK: subscriber %zu of %zu (%s)\n", i,
                                 fanout, out.error.c_str());
                }
            }
            // Decode-once gate (§12/§15): the published stream crosses the
            // wire exactly once no matter the fanout. Handshakes and the BYE
            // are the only other ingest bytes — give them 4 KiB of headroom.
            if (obs::enabled() &&
                (shared.wire_bytes < stream_bytes ||
                 shared.wire_bytes > stream_bytes + (fanout + 1) * 4096)) {
                shared.parity_ok = false;
                std::fprintf(stderr,
                             "WIRE-BYTE ANOMALY: shared plane ingested %llu bytes "
                             "for a %llu-byte stream at fanout %zu\n",
                             (unsigned long long)shared.wire_bytes,
                             (unsigned long long)stream_bytes, fanout);
            }
            shared.eps =
                wall > 0 ? static_cast<double>(events.size() * fanout) / wall : 0;
        }

        // --- standalone baseline: `fanout` v1 sessions, own copy each ------
        RunResult solo;
        {
            // Each spec owns a full copy of the stream; build them before the
            // RSS baseline so the client-side copies don't pollute the delta
            // (the measurement targets the server's per-session stores).
            std::vector<harness::LoadGenSession> specs(fanout);
            for (std::size_t i = 0; i < fanout; ++i) {
                specs[i].query = kQueries[i % kNumQueries];
                specs[i].instances = instances_for(i);
                specs[i].events = events;
            }

            const server::ServerConfig cfg =
                server::ServerConfigBuilder{}.pool_workers(kPoolWorkers).build();
            server::CepServer srv(cfg);
            srv.start();

            const long rss0 = rss_kb();
            harness::LoadGenClient client("127.0.0.1", srv.port());
            const auto t0 = std::chrono::steady_clock::now();
            const auto outcomes = client.run(specs);
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            solo.rss_delta_kb = rss_kb() - rss0;

            const auto snap = srv.registry().snapshot();
            srv.stop();
            solo.wire_bytes = snap.value(obs::Series{obs::sid::kIngestWireBytes});
            solo.compile_hits = snap.value(obs::Series{obs::sid::kCompileCacheHits});
            solo.compile_misses = snap.value(obs::Series{obs::sid::kCompileCacheMisses});

            solo.parity_ok = true;
            std::uint64_t total_events = 0;
            for (std::size_t i = 0; i < fanout; ++i) {
                const auto& out = outcomes[i];
                total_events += out.events_sent;
                solo.results += out.results.size();
                if (!out.completed || !out.error.empty() ||
                    !harness::results_identical(expected[i % kNumQueries],
                                                out.results)) {
                    solo.parity_ok = false;
                    std::fprintf(stderr,
                                 "PARITY BREAK: standalone session %zu of %zu (%s)\n",
                                 i, fanout, out.error.c_str());
                }
            }
            solo.eps = wall > 0 ? static_cast<double>(total_events) / wall : 0;
        }

        all_ok = all_ok && shared.parity_ok && solo.parity_ok;

        const auto emit = [&](const char* mode, const RunResult& r) {
            table.row({std::to_string(fanout), mode, harness::fmt_eps(r.eps),
                       std::to_string(r.rss_delta_kb),
                       harness::fmt_double(stream_bytes
                                               ? static_cast<double>(r.wire_bytes) /
                                                     static_cast<double>(stream_bytes)
                                               : 0.0,
                                           2) +
                           "x",
                       std::to_string(r.compile_hits) + "/" +
                           std::to_string(r.compile_misses),
                       r.parity_ok ? "ok" : "BROKEN"});
            json_rows.emplace_back(
                harness::JsonLine("E-multi-query")
                    .field("fanout", static_cast<int>(fanout))
                    .field("mode", mode)
                    .field("pool_workers", kPoolWorkers)
                    .field("events_per_session", events_n)
                    .field("eps", r.eps)
                    .field("rss_delta_kb", static_cast<std::uint64_t>(
                                               r.rss_delta_kb > 0 ? r.rss_delta_kb : 0))
                    .field("wire_bytes_per_event",
                           events.empty() ? 0.0
                                          : static_cast<double>(r.wire_bytes) /
                                                static_cast<double>(events.size() *
                                                                    fanout))
                    .field("compile_hits", r.compile_hits)
                    .field("compile_misses", r.compile_misses)
                    .field("hub_chunks_reclaimed", r.chunks_reclaimed)
                    .field("results", r.results)
                    .field("parity_ok", r.parity_ok ? 1 : 0));
        };
        emit("shared", shared);
        emit("standalone", solo);
    }

    table.print();
    std::printf("\n");
    for (const auto& row : json_rows) row.print();
    std::printf(
        "\nexpected shape: shared-mode wire bytes pin to 1.0x the stream at every\n"
        "fanout while standalone pays fanout-x — the stream is decoded and stored\n"
        "once however many queries attach (DESIGN.md §15). The rss delta gap\n"
        "widens with fanout by ~(fanout-1)x the stream footprint for the same\n"
        "reason; the per-query engine state both modes pay is what remains.\n"
        "Shared-mode compile misses never exceed the distinct query texts (3);\n"
        "every further subscriber is a cache hit. Parity must read ok in every\n"
        "row: each subscriber's RESULT stream is byte-identical to its query\n"
        "run standalone over the same events — sharing the plane is invisible.\n");
    return all_ok ? 0 : 1;
}
