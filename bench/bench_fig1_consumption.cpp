// E1 — Fig. 1: query QE over the running example stream (A1 A2 B1 B2 B3),
// once without consumption (5 complex events) and once with consumption
// policy "selected B" (3 complex events).
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

namespace {

event::EventStore fig1_stream(const data::StockVocab& v) {
    const auto aapl = v.schema->intern_subject("AAPL");   // type-A events
    const auto msft = v.schema->intern_subject("MSFT");   // type-B events
    event::EventStore store;
    // Timestamps in seconds; QE windows span 60 seconds from each A.
    // Layout reproduces Fig. 1: w1 (from A1@0) holds A1 A2 B1 B2; w2 (from
    // A2@10) holds A2 B1 B2 B3 (B3@65 < 10+60).
    store.append(data::make_quote(v, 0, aapl, 100, 102, 1));    // A1 (change +2)
    store.append(data::make_quote(v, 10, aapl, 100, 104, 1));   // A2 (change +4)
    store.append(data::make_quote(v, 20, msft, 100, 110, 1));   // B1 (change +10)
    store.append(data::make_quote(v, 30, msft, 110, 130, 1));   // B2 (change +20)
    store.append(data::make_quote(v, 65, msft, 130, 160, 1));   // B3 (change +30)
    return store;
}

void run(const data::StockVocab& v, const event::EventStore& store, bool consume_b) {
    queries::QeParams params;
    params.window_span = 60;
    params.consume_b = consume_b;
    const auto cq = detect::CompiledQuery::compile(queries::make_qe(v, params));
    const auto r = sequential::SequentialEngine(&cq).run(store);

    std::printf("consumption policy: %s -> %zu complex events\n",
                consume_b ? "selected B (Fig. 1b)" : "none (Fig. 1a)",
                r.complex_events.size());
    const char* names[] = {"A1", "A2", "B1", "B2", "B3"};
    for (const auto& ce : r.complex_events) {
        std::printf("  w%llu:", static_cast<unsigned long long>(ce.window_id));
        for (const auto s : ce.constituents) std::printf(" %s", names[s]);
        for (const auto& [k, val] : ce.payload) std::printf("  (%s = %.3g)", k.c_str(), val);
        std::printf("\n");
    }
}

}  // namespace

int main() {
    harness::print_header("E1 / Fig. 1", "QE with and without consumption policy");
    const auto v = bench::fresh_vocab();
    const auto store = fig1_stream(v);

    run(v, store, /*consume_b=*/false);
    std::printf("paper: 5 complex events (A1B1 A1B2 A2B1 A2B2 A2B3)\n\n");
    run(v, store, /*consume_b=*/true);
    std::printf("paper: 3 complex events (A1B1 A1B2 A2B3)\n");
    return 0;
}
