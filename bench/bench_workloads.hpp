// Shared workload definitions for the figure benches: the NYSE-like and RAND
// datasets at bench scale, and the paper's query parameter grids.
//
// Scale: the paper streams 24M (NYSE) / 3M (RAND) events into a 20-core
// machine; the benches default to a few tens of thousands of events so the
// whole `bench/` directory finishes in minutes on one core. Set
// SPECTRE_BENCH_SCALE (float, default 1.0) to grow or shrink every dataset.
#pragma once

#include <cstdlib>
#include <string>

#include "data/nyse_synth.hpp"
#include "data/rand_stream.hpp"
#include "harness/bench_util.hpp"

namespace spectre::bench {

inline double bench_scale() {
    if (const char* s = std::getenv("SPECTRE_BENCH_SCALE")) return std::atof(s);
    return 1.0;
}

inline std::uint64_t scaled(std::uint64_t n) {
    return static_cast<std::uint64_t>(static_cast<double>(n) * bench_scale());
}

// NYSE-like stream for Q1: 3000 symbols, 1-quote-per-minute round robin,
// pure random walk (rising probability 0.5).
inline event::EventStore nyse_store(const data::StockVocab& vocab, std::uint64_t events,
                                    std::uint64_t seed) {
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = 3000;
    cfg.up_prob = 0.5;
    cfg.seed = seed;
    event::EventStore store;
    data::generate_nyse(vocab, cfg, store);
    return store;
}

// NYSE-like stream for Q2: mean-reverting prices oscillating around 100 so
// the band predicates keep firing.
inline event::EventStore nyse_store_reverting(const data::StockVocab& vocab,
                                              std::uint64_t events, std::uint64_t seed) {
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = 100;
    cfg.up_prob = 0.5;
    cfg.tick = 1.5;
    cfg.mean_reversion = 0.05;
    cfg.seed = seed;
    event::EventStore store;
    data::generate_nyse(vocab, cfg, store);
    return store;
}

// RAND stream for Q3: 300 uniform symbols (§4.1).
inline event::EventStore rand_store(const data::StockVocab& vocab, std::uint64_t events,
                                    std::uint64_t seed) {
    data::RandStreamConfig cfg;
    cfg.events = events;
    cfg.symbols = 300;
    cfg.seed = seed;
    event::EventStore store;
    data::generate_rand(vocab, cfg, store);
    return store;
}

inline data::StockVocab fresh_vocab() {
    return data::StockVocab::create(std::make_shared<event::Schema>());
}

}  // namespace spectre::bench
