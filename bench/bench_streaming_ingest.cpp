// E-stream — streaming ingestion: ingest-while-detect vs
// materialize-then-process.
//
// The paper's middleware starts detecting the moment events arrive (§4.1);
// the pre-streaming repository had to materialize the whole store first. This
// bench measures the end-to-end cost of both modes on the real threaded
// runtime (wall time from "client starts sending" to "all complex events
// emitted") for k ∈ {1,2,4,8} operator instances, and emits one JSON line per
// row next to the table for scripts.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_workloads.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "queries/paper_queries.hpp"
#include "spectre/runtime.hpp"

using namespace spectre;

namespace {

std::unique_ptr<model::CompletionModel> model_for(const detect::CompiledQuery& cq) {
    return harness::paper_markov(cq.min_length());
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Source priced like the TCP path: every next() pays the wire encode+decode
// round trip (frame bytes + vocab lookups), so ingestion has the real
// per-event cost the deployment pays — the cost streaming mode overlaps with
// detection and materialize mode pays up front.
class DecodingStream final : public event::EventStream {
public:
    DecodingStream(const std::vector<event::Event>& events, const data::StockVocab& vocab)
        : events_(&events), vocab_(&vocab) {}

    std::optional<event::Event> next() override {
        if (pos_ >= events_->size()) return std::nullopt;
        buffer_.clear();
        net::encode(net::to_wire((*events_)[pos_++], *vocab_), buffer_);
        std::size_t offset = 0;
        const auto q = net::decode(buffer_, offset);
        return net::from_wire(*q, *vocab_);
    }

private:
    const std::vector<event::Event>* events_;
    const data::StockVocab* vocab_;
    std::vector<std::uint8_t> buffer_;
    std::size_t pos_ = 0;
};

}  // namespace

int main() {
    harness::print_header("E-stream", "ingest-while-detect vs materialize-then-process");

    const std::uint64_t events_n = bench::scaled(12'000);
    const std::uint64_t ws = 800;
    const int q_size = 8;
    const std::uint64_t seeds[] = {42, 43};

    const auto vocab = bench::fresh_vocab();
    const auto query = queries::make_q1(vocab, queries::Q1Params{.q = q_size, .ws = ws});
    const auto cq = detect::CompiledQuery::compile(query);

    harness::Table table({"mode", "k", "throughput (candlestick)", "overlap gain"});
    std::vector<harness::JsonLine> json_rows;

    for (const int k : {1, 2, 4, 8}) {
        core::RuntimeConfig cfg;
        cfg.splitter.instances = k;

        // One metrics scope per row: the streaming runs bind this shard, so
        // the splitter-cycle histogram below covers exactly this k's seeds.
        obs::Registry obs_registry;
        const obs::ShardPtr obs_shard = obs_registry.make_shard();

        std::vector<double> batch_eps, stream_eps, decode_secs, feed_secs;
        std::vector<double> splitter_sleeps, instance_sleeps, wasted_events;
        for (const auto seed : seeds) {
            data::NyseSynthConfig gen;
            gen.events = events_n;
            gen.symbols = 200;
            gen.up_prob = 0.55;
            gen.seed = seed;
            const auto events = data::generate_nyse(vocab, gen);

            // Materialize-then-process: the old pipeline shape — drain the
            // whole stream into the store, then start the engines. The decode
            // phase runs alone here; its wall time is the feeder-stall
            // baseline the streaming feeder is compared against.
            {
                const auto t0 = std::chrono::steady_clock::now();
                event::EventStore store;
                DecodingStream src(events, vocab);
                store.append_all(src);
                decode_secs.push_back(seconds_since(t0));
                core::SpectreRuntime rt(&store, &cq, cfg, model_for(cq));
                (void)rt.run();
                batch_eps.push_back(static_cast<double>(events.size()) / seconds_since(t0));
            }

            // Ingest-while-detect: the feeder drains the same stream into the
            // store while the splitter and instances are already running.
            {
                const auto t0 = std::chrono::steady_clock::now();
                event::EventStore store;
                DecodingStream src(events, vocab);
                core::SpectreRuntime rt(&store, &cq, cfg, model_for(cq));
                if (obs::enabled()) rt.bind_obs(obs_shard.get());
                const auto rr = rt.run(src);
                stream_eps.push_back(static_cast<double>(events.size()) / seconds_since(t0));
                feed_secs.push_back(rr.feed_seconds);
                splitter_sleeps.push_back(static_cast<double>(rr.splitter_idle_sleeps));
                instance_sleeps.push_back(static_cast<double>(rr.instance_idle_sleeps));
                wasted_events.push_back(
                    static_cast<double>(rr.sched.speculation_wasted_events));
            }
        }

        const double batch_med = util::percentile(batch_eps, 50);
        const double stream_med = util::percentile(stream_eps, 50);
        const double gain = batch_med > 0 ? stream_med / batch_med : 0.0;
        const double decode_med = util::percentile(decode_secs, 50);
        const double feed_med = util::percentile(feed_secs, 50);
        // Feeder stall factor: how much longer the feeder took next to a
        // running engine than decoding alone. ≈1 = detection overlapped for
        // free; ≫1 = detection spin starved the feeder (the pre-fix failure
        // mode at k ≥ 4 on few cores, DESIGN.md §6).
        const double feed_stall = decode_med > 0 ? feed_med / decode_med : 0.0;

        table.row({"materialize_then_process", std::to_string(k),
                   harness::fmt_candle(batch_eps), "1.0x"});
        table.row({"ingest_while_detect", std::to_string(k),
                   harness::fmt_candle(stream_eps),
                   harness::fmt_double(gain, 2) + "x (feed stall " +
                       harness::fmt_double(feed_stall, 2) + "x)"});

        json_rows.emplace_back(harness::JsonLine("E-stream")
                                   .field("mode", "materialize_then_process")
                                   .field("k", k)
                                   .field("events", events_n)
                                   .field("eps_p50", batch_med)
                                   .field("decode_seconds_p50", decode_med));
        json_rows.emplace_back(harness::JsonLine("E-stream")
                                   .field("mode", "ingest_while_detect")
                                   .field("k", k)
                                   .field("events", events_n)
                                   .field("eps_p50", stream_med)
                                   .field("overlap_gain", gain)
                                   .field("feed_seconds_p50", feed_med)
                                   .field("feed_stall", feed_stall)
                                   .field("splitter_idle_sleeps_p50",
                                          util::percentile(splitter_sleeps, 50))
                                   .field("instance_idle_sleeps_p50",
                                          util::percentile(instance_sleeps, 50))
                                   .field("speculation_wasted_events_p50",
                                          util::percentile(wasted_events, 50))
                                   // Registry histogram (§12), nanoseconds; 0
                                   // when SPECTRE_OBS_OFF=1 (nothing bound).
                                   .field("splitter_cycle_ns_p50",
                                          obs_registry.snapshot().quantile(
                                              obs::Series{obs::sid::kSplitterCycleNs},
                                              0.50)));
    }

    table.print();
    std::printf("\n");
    for (const auto& row : json_rows) row.print();
    std::printf(
        "\nexpected shape: ingest_while_detect >= 1.0x on multicore — detection\n"
        "overlaps the ingestion (decode) time instead of waiting for the full\n"
        "store. On a single core the modes tie (same total work, no overlap\n"
        "capacity); the streaming mode's win there is latency, not throughput:\n"
        "early windows retire while the tail of the stream is still arriving.\n"
        "feed stall ≈ 1.0x means the feeder decoded at full speed next to the\n"
        "engine; values well above 1 with few idle sleeps would mean detection\n"
        "spin is starving the feeder again (DESIGN.md §6 contention fix).\n");
    return 0;
}
