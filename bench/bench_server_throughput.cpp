// E-server — multi-session server throughput and result latency.
//
// Measures the full middleware path (DESIGN.md §8): N concurrent clients,
// each with its own query, streaming wire-framed events into one CepServer
// and reading RESULT frames back while sending. Reports aggregate ingest
// throughput (events/second across all sessions, wall-clock) and per-session
// first-result latency (time from the first DATA frame to the first RESULT
// frame — the streaming-egress advantage: results arrive long before
// end-of-stream). One JSON line per row for scripts.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_workloads.hpp"
#include "harness/load_gen.hpp"
#include "server/cep_server.hpp"
#include "util/stats.hpp"

using namespace spectre;

namespace {

std::vector<net::WireQuote> day(std::uint64_t events, std::uint64_t seed) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = 100;
    cfg.up_prob = 0.55;
    cfg.seed = seed;
    std::vector<net::WireQuote> wire;
    for (const auto& e : data::generate_nyse(vocab, cfg)) wire.push_back(net::to_wire(e, vocab));
    return wire;
}

const char* kQueries[] = {
    // Rising pair — cheap, high selectivity.
    "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 40 EVENTS FROM EVERY 10 EVENTS CONSUME ALL",
    // Rising triple with payload.
    "PATTERN (R1 R2 R3) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
    "R3 AS R3.close > R3.open WITHIN 30 EVENTS FROM EVERY 10 EVENTS CONSUME ALL "
    "EMIT gain = R3.close - R1.open",
    // Falling pair.
    "PATTERN (F1 F2) DEFINE F1 AS F1.close < F1.open, F2 AS F2.close < F2.open "
    "WITHIN 24 EVENTS FROM EVERY 8 EVENTS CONSUME ALL",
};

}  // namespace

int main() {
    harness::print_header("E-server",
                          "multi-session server: aggregate throughput + result latency");

    const std::uint64_t events_per_session = bench::scaled(20'000);
    harness::Table table({"sessions", "engine", "aggregate eps", "first-result p50 (ms)",
                          "results"});
    std::vector<harness::JsonLine> json_rows;

    for (const std::size_t n_sessions : {1u, 2u, 4u, 8u}) {
        for (const std::uint32_t k : {0u, 2u}) {  // sequential vs SPECTRE engines
            server::CepServer srv;
            srv.start();

            std::vector<harness::LoadGenSession> specs(n_sessions);
            for (std::size_t i = 0; i < n_sessions; ++i) {
                specs[i].query = kQueries[i % (sizeof(kQueries) / sizeof(kQueries[0]))];
                specs[i].instances = k;
                specs[i].events = day(events_per_session, 1000 + i);
            }

            harness::LoadGenClient client("127.0.0.1", srv.port());
            const auto t0 = std::chrono::steady_clock::now();
            const auto outcomes = client.run(specs);
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            srv.stop();

            std::uint64_t total_events = 0, total_results = 0;
            std::vector<double> first_result_ms;
            bool all_ok = true;
            for (const auto& out : outcomes) {
                all_ok = all_ok && out.completed && out.error.empty();
                total_events += out.events_sent;
                total_results += out.results.size();
                if (out.first_result_seconds >= 0)
                    first_result_ms.push_back(out.first_result_seconds * 1e3);
            }
            if (!all_ok) std::fprintf(stderr, "WARNING: a session failed\n");

            const double eps = wall > 0 ? static_cast<double>(total_events) / wall : 0;
            const double latency_p50 =
                first_result_ms.empty() ? -1 : util::percentile(first_result_ms, 50);

            const std::string engine = k == 0 ? "sequential" : "spectre_k2";
            table.row({std::to_string(n_sessions), engine, harness::fmt_eps(eps),
                       harness::fmt_double(latency_p50, 1), std::to_string(total_results)});
            json_rows.emplace_back(harness::JsonLine("E-server")
                                       .field("sessions", static_cast<int>(n_sessions))
                                       .field("engine", engine)
                                       .field("events_per_session", events_per_session)
                                       .field("eps", eps)
                                       .field("first_result_ms_p50", latency_p50)
                                       .field("results", total_results));
        }
    }

    table.print();
    std::printf("\n");
    for (const auto& row : json_rows) row.print();
    std::printf(
        "\nexpected shape: aggregate eps grows with session count until the\n"
        "reactor or the core count saturates; first-result latency stays far\n"
        "below total stream duration — egress overlaps ingestion (§8).\n");
    return 0;
}
