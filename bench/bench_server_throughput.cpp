// E-server — multi-session server throughput, result latency, and
// sessions-per-thread scaling on the engine worker pool.
//
// Measures the full middleware path (DESIGN.md §8, §9): N concurrent
// clients, each with its own query, streaming wire-framed events into one
// CepServer whose engines multiplex over a fixed 4-worker pool — sessions
// scale far past the thread count (up to 16 sessions per worker here).
// Reports aggregate ingest throughput (events/second across all sessions,
// wall-clock), per-session first-result latency (time from the first DATA
// frame to the first RESULT frame — the streaming-egress advantage), and
// the parity verdict: every session's RESULT stream is checked
// byte-identical against a SequentialEngine run over that session's input.
// A parity break or an incomplete session fails the bench (non-zero exit) —
// this is the §9 acceptance gate, run in ctest at SPECTRE_BENCH_SCALE=0.05.
// One JSON line per row for scripts.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_workloads.hpp"
#include "harness/load_gen.hpp"
#include "harness/oracle.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"
#include "util/stats.hpp"

using namespace spectre;

namespace {

std::vector<net::WireQuote> day(std::uint64_t events, std::uint64_t seed) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = 100;
    cfg.up_prob = 0.55;
    cfg.seed = seed;
    std::vector<net::WireQuote> wire;
    for (const auto& e : data::generate_nyse(vocab, cfg)) wire.push_back(net::to_wire(e, vocab));
    return wire;
}

const char* kQueries[] = {
    // Rising pair — cheap, high selectivity.
    "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 40 EVENTS FROM EVERY 10 EVENTS CONSUME ALL",
    // Rising triple with payload.
    "PATTERN (R1 R2 R3) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
    "R3 AS R3.close > R3.open WITHIN 30 EVENTS FROM EVERY 10 EVENTS CONSUME ALL "
    "EMIT gain = R3.close - R1.open",
    // Falling pair.
    "PATTERN (F1 F2) DEFINE F1 AS F1.close < F1.open, F2 AS F2.close < F2.open "
    "WITHIN 24 EVENTS FROM EVERY 8 EVENTS CONSUME ALL",
};

constexpr int kPoolWorkers = 4;

// Resident set size in KiB (/proc/self/statm, Linux-only like the reactor).
long rss_kb() {
    long pages = 0, resident = 0;
    if (FILE* f = std::fopen("/proc/self/statm", "r")) {
        if (std::fscanf(f, "%ld %ld", &pages, &resident) != 2) resident = 0;
        std::fclose(f);
    }
    return resident * (sysconf(_SC_PAGESIZE) / 1024);
}

// Both ends of every idle connection live in this process, so each session
// costs two fds; leave headroom for the active sessions and the runtime.
std::size_t fd_budget_sessions() {
    rlimit rl{};
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 256;
    const auto soft = static_cast<std::size_t>(rl.rlim_cur);
    return soft > 512 ? (soft - 256) / 2 : 128;
}

}  // namespace

int main() {
    harness::print_header(
        "E-server", "worker-pool server: sessions-per-thread scaling + result latency");

    const std::uint64_t events_per_session = bench::scaled(20'000);
    harness::Table table({"sessions", "sess/worker", "engine", "aggregate eps",
                          "first-result p50 (ms)", "results", "parity"});
    std::vector<harness::JsonLine> json_rows;
    bool all_parity_ok = true;

    for (const std::size_t n_sessions : {1u, 4u, 16u, 64u}) {
        // Inputs (and therefore oracles) are identical across the two engine
        // rows — compute the sequential references once per session count.
        std::vector<harness::LoadGenSession> base_specs(n_sessions);
        std::vector<std::vector<event::ComplexEvent>> expected(n_sessions);
        for (std::size_t i = 0; i < n_sessions; ++i) {
            base_specs[i].query = kQueries[i % (sizeof(kQueries) / sizeof(kQueries[0]))];
            base_specs[i].events = day(events_per_session, 1000 + i);
            expected[i] =
                harness::sequential_oracle(base_specs[i].query, base_specs[i].events);
        }

        for (const std::uint32_t k : {0u, 2u}) {  // sequential vs SPECTRE engines
            const server::ServerConfig cfg =
                server::ServerConfigBuilder{}.pool_workers(kPoolWorkers).build();
            server::CepServer srv(cfg);
            srv.start();

            std::vector<harness::LoadGenSession> specs = base_specs;
            for (auto& spec : specs) spec.instances = k;

            harness::LoadGenClient client("127.0.0.1", srv.port());
            const auto t0 = std::chrono::steady_clock::now();
            const auto outcomes = client.run(specs);
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            srv.stop();
            const auto stats = srv.stats();
            // Lifecycle histograms (§12): retired session shards fold into the
            // registry's retained block, so the latency distributions survive
            // stop() and come from the same source of truth as stats().
            const auto snap = srv.registry().snapshot();
            const auto q = [&snap](std::uint32_t idx, double p) {
                return snap.quantile(obs::Series{idx}, p);
            };

            std::uint64_t total_events = 0, total_results = 0;
            std::vector<double> first_result_ms;
            bool all_ok = true, parity_ok = true;
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                const auto& out = outcomes[i];
                all_ok = all_ok && out.completed && out.error.empty();
                total_events += out.events_sent;
                total_results += out.results.size();
                if (out.first_result_seconds >= 0)
                    first_result_ms.push_back(out.first_result_seconds * 1e3);
                // §9 acceptance gate: byte-identical to the sequential
                // reference for every session, at every sessions:workers ratio.
                if (!harness::results_identical(expected[i], out.results)) {
                    parity_ok = false;
                    std::fprintf(stderr, "PARITY BREAK: session %zu (k=%u, pool=%d)\n", i,
                                 k, kPoolWorkers);
                }
            }
            if (!all_ok) {
                std::fprintf(stderr, "ERROR: a session failed to complete\n");
                parity_ok = false;
            }
            // Counters survive stop() (the live-task table does not): every
            // registered task must have run to completion.
            if (stats.tasks_added != stats.tasks_finished) {
                std::fprintf(stderr,
                             "ERROR: pool leaked tasks (%llu added, %llu finished)\n",
                             (unsigned long long)stats.tasks_added,
                             (unsigned long long)stats.tasks_finished);
                parity_ok = false;
            }
            all_parity_ok = all_parity_ok && parity_ok;

            const double eps = wall > 0 ? static_cast<double>(total_events) / wall : 0;
            const double latency_p50 =
                first_result_ms.empty() ? -1 : util::percentile(first_result_ms, 50);
            const double per_worker =
                static_cast<double>(n_sessions) / static_cast<double>(kPoolWorkers);

            const std::string engine = k == 0 ? "sequential" : "spectre_k2";
            table.row({std::to_string(n_sessions), harness::fmt_double(per_worker, 2),
                       engine, harness::fmt_eps(eps), harness::fmt_double(latency_p50, 1),
                       std::to_string(total_results), parity_ok ? "ok" : "BROKEN"});
            json_rows.emplace_back(
                harness::JsonLine("E-server")
                    .field("sessions", static_cast<int>(n_sessions))
                    .field("pool_workers", kPoolWorkers)
                    .field("sessions_per_worker", per_worker)
                    .field("engine", engine)
                    .field("events_per_session", events_per_session)
                    .field("eps", eps)
                    .field("first_result_ms_p50", latency_p50)
                    .field("results", total_results)
                    .field("quanta", stats.quanta_executed)
                    .field("parks_input", stats.parks_input)
                    .field("parks_egress", stats.parks_egress)
                    // Ready-instance scheduler observability (§11); all-zero
                    // on sequential rows (no speculative session reports).
                    .field("sched_steps", stats.sched_steps)
                    .field("sched_cycles", stats.sched_cycles)
                    .field("sched_cycles_skipped", stats.sched_cycles_skipped)
                    .field("sched_batches", stats.sched_batches)
                    .field("sched_batch_events", stats.sched_batch_events)
                    .field("sched_ready_depth_max", stats.sched_ready_depth_max)
                    .field("sched_ready_depth_p50", stats.sched_ready_depth_p50)
                    .field("sched_instances_retired", stats.sched_instances_retired)
                    .field("sched_instances_cancelled", stats.sched_instances_cancelled)
                    .field("sched_wasted_events", stats.sched_wasted_events)
                    // Registry histograms (§12), nanoseconds.
                    .field("result_latency_ns_p50", q(obs::sid::kResultLatencyNs, 0.50))
                    .field("result_latency_ns_p99", q(obs::sid::kResultLatencyNs, 0.99))
                    .field("first_result_ns_p50", q(obs::sid::kFirstResultLatencyNs, 0.50))
                    .field("pool_queue_wait_ns_p50", q(obs::sid::kPoolQueueWaitNs, 0.50))
                    .field("quantum_ns_p50", q(obs::sid::kQuantumNs, 0.50))
                    .field("egress_stall_ns_p99", q(obs::sid::kEgressStallNs, 0.99))
                    .field("parity_ok", parity_ok ? 1 : 0));
        }
    }

    table.print();
    std::printf("\n");

    // Connection-scale rows (DESIGN.md §14): a large mostly-idle session
    // population — connect + HELLO, engine task parked on input — alongside a
    // handful of active streams. Reports what scaling connections actually
    // costs: accept+HELLO setup time per session, resident memory per idle
    // session, and whether the active sessions' throughput (and the one-copy
    // ingest invariant, bytes copied per event) survives the crowd. The idle
    // count follows the paper-scale 10k target through SPECTRE_BENCH_SCALE,
    // capped by RLIMIT_NOFILE (both connection ends are in-process).
    const std::size_t idle_target =
        std::min<std::size_t>(bench::scaled(10'000), fd_budget_sessions());
    harness::Table scale_table({"idle sessions", "active", "accept us/conn",
                                "rss KiB/conn", "active eps", "copied B/event",
                                "parity"});
    for (const std::size_t n_idle : {std::size_t{0}, idle_target}) {
        constexpr std::size_t kActive = 8;
        const std::uint64_t active_events = bench::scaled(10'000);

        const server::ServerConfig cfg =
            server::ServerConfigBuilder{}.pool_workers(kPoolWorkers).build();
        server::CepServer srv(cfg);
        srv.start();

        const long rss_before = rss_kb();
        const auto t_accept = std::chrono::steady_clock::now();
        std::vector<std::unique_ptr<net::TcpClient>> idle;
        idle.reserve(n_idle);
        std::vector<std::uint8_t> hello;
        net::encode_frame(net::SessionFrame{net::HelloFrame{kQueries[0], 0, 0, ""}},
                          hello);
        for (std::size_t i = 0; i < n_idle; ++i) {
            idle.push_back(std::make_unique<net::TcpClient>("127.0.0.1", srv.port()));
            idle.back()->send_raw(hello.data(), hello.size());
        }
        // Setup cost includes the reactor registering every session: wait for
        // the accept counter, not just connect() returning.
        while (srv.stats().sessions_accepted < n_idle)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        const double accept_us =
            n_idle == 0 ? 0.0
                        : std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t_accept)
                                  .count() /
                              static_cast<double>(n_idle);
        const double rss_per_conn =
            n_idle == 0 ? 0.0
                        : static_cast<double>(rss_kb() - rss_before) /
                              static_cast<double>(n_idle);

        std::vector<harness::LoadGenSession> specs(kActive);
        std::vector<std::vector<event::ComplexEvent>> active_expected(kActive);
        for (std::size_t i = 0; i < kActive; ++i) {
            specs[i].query = kQueries[i % (sizeof(kQueries) / sizeof(kQueries[0]))];
            specs[i].events = day(active_events, 9000 + i);
            specs[i].instances = 2;
            active_expected[i] = harness::sequential_oracle(specs[i].query, specs[i].events);
        }
        harness::LoadGenClient client("127.0.0.1", srv.port());
        const auto t0 = std::chrono::steady_clock::now();
        const auto outcomes = client.run(specs);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

        bool parity_ok = true;
        std::uint64_t total_events = 0;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            total_events += outcomes[i].events_sent;
            if (!outcomes[i].completed || !outcomes[i].error.empty() ||
                !harness::results_identical(active_expected[i], outcomes[i].results)) {
                parity_ok = false;
                std::fprintf(stderr, "PARITY BREAK: active session %zu (idle=%zu)\n", i,
                             n_idle);
            }
        }
        all_parity_ok = all_parity_ok && parity_ok;

        // §12 byte accounting over the whole run (idle HELLOs included —
        // they are a rounding error next to the active DATA streams).
        const auto snap = srv.registry().snapshot();
        const auto counter = [&snap](std::uint32_t sid) {
            return snap.value(obs::Series{sid});
        };
        const double copied_per_event =
            total_events
                ? static_cast<double>(counter(obs::sid::kIngestCopiedBytes)) /
                      static_cast<double>(total_events)
                : 0.0;
        const double wire_per_event =
            total_events
                ? static_cast<double>(counter(obs::sid::kIngestWireBytes)) /
                      static_cast<double>(total_events)
                : 0.0;
        const double reads_per_event =
            total_events
                ? static_cast<double>(counter(obs::sid::kIngestReads)) /
                      static_cast<double>(total_events)
                : 0.0;

        idle.clear();  // closes the client ends; stop() aborts whatever remains
        srv.stop();

        const double eps = wall > 0 ? static_cast<double>(total_events) / wall : 0;
        scale_table.row({std::to_string(n_idle), std::to_string(kActive),
                         harness::fmt_double(accept_us, 1),
                         harness::fmt_double(rss_per_conn, 1), harness::fmt_eps(eps),
                         harness::fmt_double(copied_per_event, 1),
                         parity_ok ? "ok" : "BROKEN"});
        // `shape` is the scale-invariant row identity (the idle count itself
        // tracks SPECTRE_BENCH_SCALE and the fd limit, so it cannot key the
        // committed-vs-smoke comparison in perf_trend.py).
        json_rows.emplace_back(harness::JsonLine("E-server-scale")
                                   .field("shape", n_idle ? "idle-crowd" : "no-idle")
                                   .field("idle_sessions", static_cast<int>(n_idle))
                                   .field("active_sessions", static_cast<int>(kActive))
                                   .field("pool_workers", kPoolWorkers)
                                   .field("events_per_session", active_events)
                                   .field("eps", eps)
                                   .field("accept_us_per_conn", accept_us)
                                   .field("rss_kb_per_conn", rss_per_conn)
                                   .field("copied_bytes_per_event", copied_per_event)
                                   .field("wire_bytes_per_event", wire_per_event)
                                   .field("reads_per_event", reads_per_event)
                                   .field("parity_ok", parity_ok ? 1 : 0));
    }
    scale_table.print();
    std::printf("\n");
    for (const auto& row : json_rows) row.print();
    std::printf(
        "\nexpected shape: aggregate eps holds (or grows) as sessions climb to\n"
        "16x the worker count — engine tasks multiplex over the fixed pool\n"
        "(§9) instead of oversubscribing threads; first-result latency stays\n"
        "far below total stream duration — egress overlaps ingestion (§8);\n"
        "parity must read ok in every row (byte-identical to sequential).\n");
    return all_parity_ok ? 0 : 1;
}
