#!/usr/bin/env python3
"""Warn-only perf trend for CI (ci.yml, Release leg).

Compares a freshly generated smoke-scale bench record against the committed
BENCH_hotpath.json and prints a markdown ratio table for the job summary.
Rows are keyed by their identity fields (experiment, shape, mode, engine,
k, shards, ...); the first throughput metric present in both rows is
compared. This NEVER fails the job — shared-runner noise and the scale
difference (the committed record is generated at SPECTRE_BENCH_SCALE=0.3,
the CI smoke at 0.05) make absolute speed assertions meaningless here; the
table exists so a human can spot a trend, not so CI can flap.

Usage: perf_trend.py <committed-baseline.json> <fresh.json>
"""
import json
import sys

# Throughput metrics, most specific first; the first present in both rows of
# a pair is the one compared.
METRICS = ["eps_compiled", "eps_p50", "eps"]

# Everything measured rather than configured: excluded from row identity.
NON_IDENTITY = {
    "eps", "eps_p50", "eps_tree", "eps_compiled", "speedup", "speedup_vs_s1",
    "overlap_gain", "feed_seconds_p50", "feed_stall", "decode_seconds_p50",
    "splitter_idle_sleeps_p50", "instance_idle_sleeps_p50",
    "first_result_ms_p50", "results", "quanta", "parks_input", "parks_egress",
    "parity_ok", "parity", "scale", "events", "completions", "avg_active",
    "keys", "events_per_session", "sessions_per_worker",
}

WARN_BELOW = 0.75  # flag rows slower than this ratio (warn-only)


def load(path):
    rows = {}
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                row = json.loads(line)
                key = tuple(sorted((k, v) for k, v in row.items()
                                   if k not in NON_IDENTITY))
                rows[key] = row
    except OSError as e:
        print(f"perf-trend: cannot read {path}: {e} (skipping)", file=sys.stderr)
    return rows


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 0  # warn-only: never fail the job
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])
    if not baseline or not fresh:
        print("perf-trend: nothing to compare (missing or empty record)")
        return 0

    print("### Perf trend vs committed BENCH_hotpath.json")
    print()
    print("_Warn-only. Committed record is full-scale (0.3), this run is the"
          " CI smoke scale — compare trends, not absolutes._")
    print()
    print("| row | committed | fresh | ratio | |")
    print("|---|---|---|---|---|")
    compared = 0
    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            continue
        metric = next((m for m in METRICS if m in base_row and m in fresh_row), None)
        if metric is None or not base_row[metric]:
            continue
        ratio = fresh_row[metric] / base_row[metric]
        flag = "⚠️" if ratio < WARN_BELOW else ""
        print(f"| {fmt_key(key)} ({metric}) | {base_row[metric]:.3g} "
              f"| {fresh_row[metric]:.3g} | {ratio:.2f}x | {flag} |")
        compared += 1
    print()
    print(f"_{compared} rows compared; "
          f"{len(baseline)} committed, {len(fresh)} fresh._")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # consumer closed the pipe; warn-only means never fail
    except Exception as e:  # noqa: BLE001 — warn-only by contract
        print(f"perf-trend: {e} (skipping)", file=sys.stderr)
        sys.exit(0)
