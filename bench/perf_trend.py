#!/usr/bin/env python3
"""Warn-only perf trend for CI (ci.yml, Release leg).

Two modes, both markdown-to-stdout for the job summary, both warn-only (the
script never exits non-zero — shared-runner noise and the scale difference
between the committed record and the CI smoke make hard assertions
meaningless; the tables exist so a human can spot a trend, not so CI flaps).

Ratio mode (default):
    perf_trend.py <committed-baseline.json> <fresh.json>

  Compares a freshly generated smoke-scale bench record against the
  committed BENCH_hotpath.json. Rows are keyed by their identity fields
  (experiment, shape, mode, engine, k, shards, ...); the first throughput
  metric present in both rows is compared. Rows carrying a streaming
  `overlap_gain` additionally get their own gain row (the E-stream
  speculation-pays-off signal: > 1.0 means ingest-while-detect beat
  materialize-then-process).

History mode:
    perf_trend.py --history <history.jsonl> <fresh.json>

  Appends the fresh record's rows to a persistent history file (one JSON
  line per bench row, stamped with the CI run number / commit from
  GITHUB_RUN_NUMBER / GITHUB_SHA) and renders a longitudinal
  per-experiment table over the most recent runs, so slow drifts are
  visible beyond the single-ratio comparison. ci.yml persists the file
  across runs via the `bench-history` cache/artifact. The file is pruned
  to the most recent MAX_RUNS runs on every append.
"""
import json
import os
import sys

# Throughput metrics, most specific first; the first present in both rows of
# a pair is the one compared (and the one charted in history mode).
METRICS = ["eps_compiled", "eps_p50", "eps"]

# Secondary metrics that get their own table row when present (identity key
# suffixed with the metric name). overlap_gain is the E-stream headline:
# streaming detection overlapping ingestion rather than waiting for it.
EXTRA_METRICS = ["overlap_gain"]

# Everything measured rather than configured: excluded from row identity.
NON_IDENTITY = {
    "eps", "eps_p50", "eps_tree", "eps_compiled", "speedup", "speedup_vs_s1",
    "overlap_gain", "feed_seconds_p50", "feed_stall", "decode_seconds_p50",
    "splitter_idle_sleeps_p50", "instance_idle_sleeps_p50",
    "speculation_wasted_events_p50",
    "first_result_ms_p50", "results", "quanta", "parks_input", "parks_egress",
    "sched_steps", "sched_cycles", "sched_cycles_skipped", "sched_batches",
    "sched_batch_events", "sched_ready_depth_max", "sched_ready_depth_p50",
    "sched_instances_retired", "sched_instances_cancelled",
    "sched_wasted_events",
    "parity_ok", "parity", "scale", "events", "completions", "avg_active",
    "keys", "events_per_session", "sessions_per_worker",
    # Registry-sourced latency histograms (DESIGN.md §12). Note "obs" is NOT
    # here: the obs=off overhead rows must key separately from the
    # (default, instrumented) committed rows.
    "result_latency_ns_p50", "result_latency_ns_p99", "first_result_ns_p50",
    "pool_queue_wait_ns_p50", "quantum_ns_p50", "egress_stall_ns_p99",
    "splitter_cycle_ns_p50",
    # Elastic partitioning (DESIGN.md §13): migration ledger + balance, all
    # measured — the E-shard-skew rows key by mode/shards only.
    "steals", "keys_moved", "reshards", "hot_share",
    # Connection-scale rows (DESIGN.md §14): the idle-session count follows
    # SPECTRE_BENCH_SCALE and RLIMIT_NOFILE, so the scale-invariant `shape`
    # field keys the row and everything else is measured.
    "idle_sessions", "accept_us_per_conn", "rss_kb_per_conn",
    "copied_bytes_per_event", "wire_bytes_per_event", "reads_per_event",
    # Shared ingest plane (DESIGN.md §15): E-multi-query rows key by
    # fanout/mode; everything below is measured.
    "rss_delta_kb", "compile_hits", "compile_misses", "hub_chunks_reclaimed",
}

WARN_BELOW = 0.75  # flag rows slower than this ratio (warn-only)
MAX_RUNS = 50      # history retention (runs)
SHOW_RUNS = 8      # history columns rendered


def identity(row):
    return tuple(sorted((k, v) for k, v in row.items() if k not in NON_IDENTITY))


def load(path):
    rows = {}
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                row = json.loads(line)
                rows[identity(row)] = row
    except OSError as e:
        print(f"perf-trend: cannot read {path}: {e} (skipping)", file=sys.stderr)
    return rows


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def compare(baseline_path, fresh_path):
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    if not baseline or not fresh:
        print("perf-trend: nothing to compare (missing or empty record)")
        return 0

    print("### Perf trend vs committed BENCH_hotpath.json")
    print()
    print("_Warn-only. Committed record is full-scale (0.3), this run is the"
          " CI smoke scale — compare trends, not absolutes._")
    print()
    print("| row | committed | fresh | ratio | |")
    print("|---|---|---|---|---|")
    compared = 0
    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            continue
        metric = next((m for m in METRICS if m in base_row and m in fresh_row), None)
        pairs = [(metric, True)] if metric and base_row[metric] else []
        # overlap_gain (etc.) rides along as its own row: a gain is already a
        # ratio, so the committed/fresh ratio reads as "did the gain hold".
        pairs += [(m, False) for m in EXTRA_METRICS
                  if m in base_row and m in fresh_row and base_row[m]]
        for m, _ in pairs:
            ratio = fresh_row[m] / base_row[m]
            flag = "⚠️" if ratio < WARN_BELOW else ""
            print(f"| {fmt_key(key)} ({m}) | {base_row[m]:.3g} "
                  f"| {fresh_row[m]:.3g} | {ratio:.2f}x | {flag} |")
            compared += 1
    print()
    print(f"_{compared} rows compared; "
          f"{len(baseline)} committed, {len(fresh)} fresh._")
    return 0


def load_history(path):
    entries = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line.startswith("{"):
                    entries.append(json.loads(line))
    except OSError:
        pass  # first run: no history yet
    return entries


def history(history_path, fresh_path):
    run = int(os.environ.get("GITHUB_RUN_NUMBER", "0"))
    sha = os.environ.get("GITHUB_SHA", "")[:9]
    entries = load_history(history_path)
    for row in load(fresh_path).values():
        entries.append({"run": run, "sha": sha, "row": row})
    if not entries:
        print("perf-trend history: nothing recorded yet")
        return 0

    # Prune to the newest MAX_RUNS runs and persist.
    runs = sorted({e["run"] for e in entries})[-MAX_RUNS:]
    entries = [e for e in entries if e["run"] in runs]
    os.makedirs(os.path.dirname(history_path) or ".", exist_ok=True)
    with open(history_path, "w") as f:
        for e in entries:
            f.write(json.dumps(e, sort_keys=True) + "\n")

    # Longitudinal table: one line per experiment row, one column per run
    # (newest SHOW_RUNS), cell = the row's first throughput metric (or the
    # extra metric for its ride-along rows).
    shown = runs[-SHOW_RUNS:]
    by_key = {}
    for e in entries:
        row = e["row"]
        key = identity(row)
        metric = next((m for m in METRICS if m in row), None)
        for m in ([metric] if metric else []) + [x for x in EXTRA_METRICS if x in row]:
            by_key.setdefault((key, m), {})[e["run"]] = row[m]

    print("### Bench history (longitudinal, last "
          f"{len(shown)} of {len(runs)} recorded runs)")
    print()
    print("_Warn-only. Values are the CI smoke scale; watch for drifts, not"
          " absolutes. Full history rides the `bench-history` artifact._")
    print()
    print("| row | " + " | ".join(f"r{r}" for r in shown) + " |")
    print("|---" * (len(shown) + 1) + "|")
    for (key, m), series in sorted(by_key.items()):
        cells = [f"{series[r]:.3g}" if r in series else "—" for r in shown]
        print(f"| {fmt_key(key)} ({m}) | " + " | ".join(cells) + " |")
    print()
    print(f"_{len(by_key)} experiment rows tracked._")
    return 0


def main():
    if len(sys.argv) == 4 and sys.argv[1] == "--history":
        return history(sys.argv[2], sys.argv[3])
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 0  # warn-only: never fail the job
    return compare(sys.argv[1], sys.argv[2])


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # consumer closed the pipe; warn-only means never fail
    except Exception as e:  # noqa: BLE001 — warn-only by contract
        print(f"perf-trend: {e} (skipping)", file=sys.stderr)
        sys.exit(0)
