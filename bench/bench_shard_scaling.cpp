// E-shard — partition-parallel sharded detection: one hot session scaled
// across the engine pool (DESIGN.md §10).
//
// Fixed input (NYSE-like multi-symbol stream), fixed pool, shard count S ∈
// {1, 2, 4, 8}: measures end-to-end events/s from "feeder starts" to "all
// merged results emitted", with per-key sequential lanes (the throughput
// configuration). Every row re-checks the §10 parity invariant — merged
// output byte-identical to the unsharded per-key sequential reference — and
// the bench exits non-zero on any break, so CI can never ship a fast-but-
// wrong merge. Expected shape: eps grows with S on a multi-core box (each
// shard is an independent pool task); on one core the rows tie — the win is
// concurrency, not per-core speed.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench_workloads.hpp"
#include "harness/oracle.hpp"
#include "obs/metrics.hpp"
#include "queries/paper_queries.hpp"
#include "query/parser.hpp"
#include "server/engine_pool.hpp"
#include "shard/shard_run.hpp"

using namespace spectre;

int main() {
    harness::print_header("E-shard",
                          "one hot partitioned session: eps vs shard count on a fixed pool");

    const std::uint64_t events_n = bench::scaled(60'000);
    const int pool_workers = 4;
    const std::uint64_t seeds[] = {42, 43};

    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    // A per-key rising-pair query over a few hundred symbols: enough keys to
    // spread over every shard count tested.
    const char* kQueryText =
        "PATTERN (R1 R2 R3) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
        "R3 AS R3.close > R3.open WITHIN 24 EVENTS FROM EVERY 6 EVENTS "
        "PARTITION BY SUBJECT CONSUME ALL EMIT gain = R3.close - R1.open";
    const auto cq = detect::CompiledQuery::compile(query::parse_query(kQueryText, vocab.schema));

    harness::Table table({"shards", "workers", "keys", "results", "throughput (candlestick)",
                          "speedup vs S=1", "parity"});
    std::vector<harness::JsonLine> json_rows;
    bool parity_ok = true;
    double base_eps = 0.0;

    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        std::vector<double> eps_samples;
        std::size_t results_n = 0;
        std::uint32_t keys = 0;
        // One metrics scope per row: both seeds' pools bind here, so the
        // queue-wait / quantum histograms below cover exactly this shard count.
        obs::Registry obs_registry;
        for (const auto seed : seeds) {
            data::NyseSynthConfig gen;
            gen.events = events_n;
            gen.symbols = 200;
            gen.up_prob = 0.55;
            gen.seed = seed;
            const auto events = data::generate_nyse(vocab, gen);

            server::EnginePool pool(pool_workers);
            pool.bind_obs(&obs_registry);
            pool.start();
            std::vector<event::ComplexEvent> out;
            std::mutex out_mutex;
            shard::ShardedConfig cfg;
            cfg.shards = shards;
            shard::ShardedEngine engine(&cq, cfg, [&](event::ComplexEvent&& ce) {
                const std::lock_guard<std::mutex> lock(out_mutex);
                out.push_back(std::move(ce));
            });
            shard::PooledShardRun run(&engine, &pool, /*id_base=*/1);

            const auto t0 = std::chrono::steady_clock::now();
            run.start();
            for (const auto& e : events) run.ingest(e);
            run.close();
            run.wait();
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            pool.stop();

            eps_samples.push_back(static_cast<double>(events.size()) / secs);
            results_n = out.size();
            keys = engine.key_count();

            // Parity gate (§10): byte-identical to the unsharded reference.
            const auto ref = shard::reference_partitioned_run(cq, events);
            if (!harness::results_identical(ref, out)) {
                parity_ok = false;
                std::fprintf(stderr,
                             "PARITY BREAK: S=%u seed=%llu expected %zu results, got %zu\n",
                             shards, static_cast<unsigned long long>(seed), ref.size(),
                             out.size());
            }
        }
        const double eps = util::percentile(eps_samples, 50);
        if (shards == 1) base_eps = eps;
        table.row({std::to_string(shards), std::to_string(pool_workers), std::to_string(keys),
                   std::to_string(results_n), harness::fmt_candle(eps_samples),
                   harness::fmt_double(base_eps > 0 ? eps / base_eps : 0.0, 2) + "x",
                   parity_ok ? "ok" : "BROKEN"});
        json_rows.emplace_back(harness::JsonLine("E-shard")
                                   .field("shards", static_cast<int>(shards))
                                   .field("pool_workers", pool_workers)
                                   .field("events", events_n)
                                   .field("keys", static_cast<std::uint64_t>(keys))
                                   .field("results", static_cast<std::uint64_t>(results_n))
                                   .field("eps_p50", eps)
                                   .field("speedup_vs_s1", base_eps > 0 ? eps / base_eps : 0.0)
                                   // Registry histograms (§12), nanoseconds;
                                   // 0 when SPECTRE_OBS_OFF=1.
                                   .field("pool_queue_wait_ns_p50",
                                          obs_registry.snapshot().quantile(
                                              obs::Series{obs::sid::kPoolQueueWaitNs}, 0.50))
                                   .field("quantum_ns_p50",
                                          obs_registry.snapshot().quantile(
                                              obs::Series{obs::sid::kQuantumNs}, 0.50))
                                   .field("parity_ok", parity_ok ? 1 : 0));
    }

    table.print();
    std::printf("\n");
    for (const auto& row : json_rows) row.print();
    std::printf(
        "\nexpected shape: eps_p50 increases with shards on a multi-core pool —\n"
        "each shard is an independent cooperative task, so one hot session\n"
        "spreads over the workers. hardware threads here: %u. Parity is the\n"
        "hard gate: any break exits non-zero.\n",
        std::thread::hardware_concurrency());
    return parity_ok ? 0 : 1;
}
