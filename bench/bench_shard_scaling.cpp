// E-shard — partition-parallel sharded detection: one hot session scaled
// across the engine pool (DESIGN.md §10).
//
// Fixed input (NYSE-like multi-symbol stream), fixed pool, shard count S ∈
// {1, 2, 4, 8}: measures end-to-end events/s from "feeder starts" to "all
// merged results emitted", with per-key sequential lanes (the throughput
// configuration). Every row re-checks the §10 parity invariant — merged
// output byte-identical to the unsharded per-key sequential reference — and
// the bench exits non-zero on any break, so CI can never ship a fast-but-
// wrong merge. Expected shape: eps grows with S on a multi-core box (each
// shard is an independent pool task); on one core the rows tie — the win is
// concurrency, not per-core speed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench_workloads.hpp"
#include "harness/oracle.hpp"
#include "obs/metrics.hpp"
#include "queries/paper_queries.hpp"
#include "query/parser.hpp"
#include "server/engine_pool.hpp"
#include "shard/shard_run.hpp"

using namespace spectre;

int main() {
    harness::print_header("E-shard",
                          "one hot partitioned session: eps vs shard count on a fixed pool");

    const std::uint64_t events_n = bench::scaled(60'000);
    const int pool_workers = 4;
    const std::uint64_t seeds[] = {42, 43};

    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    // A per-key rising-pair query over a few hundred symbols: enough keys to
    // spread over every shard count tested.
    const char* kQueryText =
        "PATTERN (R1 R2 R3) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
        "R3 AS R3.close > R3.open WITHIN 24 EVENTS FROM EVERY 6 EVENTS "
        "PARTITION BY SUBJECT CONSUME ALL EMIT gain = R3.close - R1.open";
    const auto cq = detect::CompiledQuery::compile(query::parse_query(kQueryText, vocab.schema));

    harness::Table table({"shards", "workers", "keys", "results", "throughput (candlestick)",
                          "speedup vs S=1", "parity"});
    std::vector<harness::JsonLine> json_rows;
    bool parity_ok = true;
    double base_eps = 0.0;

    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        std::vector<double> eps_samples;
        std::size_t results_n = 0;
        std::uint32_t keys = 0;
        // One metrics scope per row: both seeds' pools bind here, so the
        // queue-wait / quantum histograms below cover exactly this shard count.
        obs::Registry obs_registry;
        for (const auto seed : seeds) {
            data::NyseSynthConfig gen;
            gen.events = events_n;
            gen.symbols = 200;
            gen.up_prob = 0.55;
            gen.seed = seed;
            const auto events = data::generate_nyse(vocab, gen);

            server::EnginePool pool(pool_workers);
            pool.bind_obs(&obs_registry);
            pool.start();
            std::vector<event::ComplexEvent> out;
            std::mutex out_mutex;
            shard::ShardedConfig cfg;
            cfg.shards = shards;
            shard::ShardedEngine engine(&cq, cfg, [&](event::ComplexEvent&& ce) {
                const std::lock_guard<std::mutex> lock(out_mutex);
                out.push_back(std::move(ce));
            });
            shard::PooledShardRun run(&engine, &pool, /*id_base=*/1);

            const auto t0 = std::chrono::steady_clock::now();
            run.start();
            for (const auto& e : events) run.ingest(e);
            run.close();
            run.wait();
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            pool.stop();

            eps_samples.push_back(static_cast<double>(events.size()) / secs);
            results_n = out.size();
            keys = engine.key_count();

            // Parity gate (§10): byte-identical to the unsharded reference.
            const auto ref = shard::reference_partitioned_run(cq, events);
            if (!harness::results_identical(ref, out)) {
                parity_ok = false;
                std::fprintf(stderr,
                             "PARITY BREAK: S=%u seed=%llu expected %zu results, got %zu\n",
                             shards, static_cast<unsigned long long>(seed), ref.size(),
                             out.size());
            }
        }
        const double eps = util::percentile(eps_samples, 50);
        if (shards == 1) base_eps = eps;
        table.row({std::to_string(shards), std::to_string(pool_workers), std::to_string(keys),
                   std::to_string(results_n), harness::fmt_candle(eps_samples),
                   harness::fmt_double(base_eps > 0 ? eps / base_eps : 0.0, 2) + "x",
                   parity_ok ? "ok" : "BROKEN"});
        json_rows.emplace_back(harness::JsonLine("E-shard")
                                   .field("shards", static_cast<int>(shards))
                                   .field("pool_workers", pool_workers)
                                   .field("events", events_n)
                                   .field("keys", static_cast<std::uint64_t>(keys))
                                   .field("results", static_cast<std::uint64_t>(results_n))
                                   .field("eps_p50", eps)
                                   .field("speedup_vs_s1", base_eps > 0 ? eps / base_eps : 0.0)
                                   // Registry histograms (§12), nanoseconds;
                                   // 0 when SPECTRE_OBS_OFF=1.
                                   .field("pool_queue_wait_ns_p50",
                                          obs_registry.snapshot().quantile(
                                              obs::Series{obs::sid::kPoolQueueWaitNs}, 0.50))
                                   .field("quantum_ns_p50",
                                          obs_registry.snapshot().quantile(
                                              obs::Series{obs::sid::kQuantumNs}, 0.50))
                                   .field("parity_ok", parity_ok ? 1 : 0));
    }

    table.print();
    std::printf("\n");
    for (const auto& row : json_rows) row.print();

    // --- E-shard-skew: key-skew lane stealing vs static hashing (§13) ------
    //
    // One symbol carries ~80% of the stream; under static hashing its shard
    // also hosts every co-resident key, so the hottest slot processes well
    // over 80% of all events. With feeder-driven stealing the cold
    // co-residents migrate off until the hot key holds its shard alone —
    // hot_share should drop toward the 0.8 floor (one key is never split).
    // Parity stays the hard gate in both modes. On a single core the eps
    // columns tie (the win is balance, i.e. multi-core headroom).
    std::printf("\n");
    harness::print_header("E-shard-skew",
                          "one 80%-hot key: static hashing vs lane stealing, S=4");
    const std::uint64_t skew_n = bench::scaled(40'000);
    std::vector<event::Event> skewed;
    {
        // 4-of-5 interleave of a single-symbol stream into a multi-symbol
        // background: the hot symbol ends at ~80% + its background share.
        data::NyseSynthConfig hot_gen;
        hot_gen.events = (skew_n * 4) / 5;
        hot_gen.symbols = 1;
        hot_gen.seed = 7;
        data::NyseSynthConfig cold_gen;
        cold_gen.events = skew_n - hot_gen.events;
        cold_gen.symbols = 16;
        cold_gen.seed = 8;
        const auto hot = data::generate_nyse(vocab, hot_gen);
        const auto cold = data::generate_nyse(vocab, cold_gen);
        std::size_t hi = 0, ci = 0;
        while (hi < hot.size() || ci < cold.size()) {
            for (int r = 0; r < 4 && hi < hot.size(); ++r) skewed.push_back(hot[hi++]);
            if (ci < cold.size()) skewed.push_back(cold[ci++]);
        }
    }
    const auto skew_ref = shard::reference_partitioned_run(cq, skewed);

    harness::Table skew_table({"mode", "shards", "steals", "keys moved", "hot share",
                               "throughput (candlestick)", "parity"});
    std::vector<harness::JsonLine> skew_json;
    for (const bool steal : {false, true}) {
        const std::uint32_t shards = 4;
        std::vector<double> eps_samples;
        shard::ShardedEngine::MigrationStats mig;
        double hot_share = 0.0;
        for (int rep = 0; rep < 2; ++rep) {
            server::EnginePool pool(pool_workers);
            pool.start();
            std::vector<event::ComplexEvent> out;
            std::mutex out_mutex;
            shard::ShardedConfig cfg;
            cfg.shards = shards;
            shard::ShardedEngine engine(&cq, cfg, [&](event::ComplexEvent&& ce) {
                const std::lock_guard<std::mutex> lock(out_mutex);
                out.push_back(std::move(ce));
            });
            shard::PooledShardRun run(&engine, &pool, /*id_base=*/1);

            // Feeder-side balance signal: per-shard routed-event counts from
            // the IngestInfo every ingest returns — the same live signal the
            // server's ReshardController reads off the metrics plane.
            std::vector<std::uint64_t> routed(shards, 0);
            const auto t0 = std::chrono::steady_clock::now();
            run.start();
            std::size_t fed = 0;
            for (const auto& e : skewed) {
                const auto info = run.ingest(e);
                if (!info.dropped) ++routed[info.shard];
                if (steal && ++fed % 2000 == 0) {
                    std::uint32_t hot_s = 0, cold_s = 0;
                    for (std::uint32_t s = 1; s < shards; ++s) {
                        if (routed[s] > routed[hot_s]) hot_s = s;
                        if (routed[s] < routed[cold_s]) cold_s = s;
                    }
                    if (hot_s != cold_s) engine.steal_hottest(hot_s, cold_s);
                }
            }
            run.close();
            run.wait();
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            pool.stop();

            eps_samples.push_back(static_cast<double>(skewed.size()) / secs);
            mig = engine.migration_stats();
            const std::uint64_t total = skew_n ? skew_n : 1;
            hot_share = static_cast<double>(
                            *std::max_element(routed.begin(), routed.end())) /
                        static_cast<double>(total);
            if (!harness::results_identical(skew_ref, out)) {
                parity_ok = false;
                std::fprintf(stderr, "PARITY BREAK (skew): mode=%s expected %zu, got %zu\n",
                             steal ? "steal" : "static", skew_ref.size(), out.size());
            }
        }
        skew_table.row({steal ? "steal" : "static", std::to_string(shards),
                        std::to_string(mig.steals), std::to_string(mig.keys_moved),
                        harness::fmt_double(hot_share, 3),
                        harness::fmt_candle(eps_samples), parity_ok ? "ok" : "BROKEN"});
        skew_json.emplace_back(harness::JsonLine("E-shard-skew")
                                   .field("mode", steal ? "steal" : "static")
                                   .field("shards", static_cast<int>(shards))
                                   .field("events", skew_n)
                                   .field("steals", mig.steals)
                                   .field("keys_moved", mig.keys_moved)
                                   .field("hot_share", hot_share)
                                   .field("eps_p50", util::percentile(eps_samples, 50))
                                   .field("parity_ok", parity_ok ? 1 : 0));
    }
    skew_table.print();
    std::printf("\n");
    for (const auto& row : skew_json) row.print();

    std::printf(
        "\nexpected shape: eps_p50 increases with shards on a multi-core pool —\n"
        "each shard is an independent cooperative task, so one hot session\n"
        "spreads over the workers. hardware threads here: %u. In the skew\n"
        "section, steal mode's hot_share drops toward the 0.8 floor (the hot\n"
        "key itself is never split) while static stays above it. Parity is\n"
        "the hard gate: any break exits non-zero.\n",
        std::thread::hardware_concurrency());
    return parity_ok ? 0 : 1;
}
