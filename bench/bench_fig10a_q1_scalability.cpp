// E2 — Fig. 10(a): Q1 on the NYSE-like stream. Throughput vs the ratio of
// pattern size to window size (q / 8000) for k ∈ {1,2,4,8,16,32} operator
// instances, on the simulated paper machine (20 cores + HT).
//
// Paper reference points (§4.2.1): at ratio 0.005 near-linear scaling
// (10.8k → 154k @16 → 218k @32 eps); at ratio 0.08 (p≈56%) scaling saturates
// at 8 instances; at ratio 0.32 (p≈13%) scaling recovers (15.2× @16).
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

int main() {
    harness::print_header("E2 / Fig. 10(a)", "Q1 scalability vs pattern-size ratio (NYSE)");

    const std::uint64_t events = bench::scaled(16'000);
    const std::uint64_t ws = 8000;
    const int qs[] = {40, 80, 160, 320, 640, 1280, 2560};
    const int ks[] = {1, 2, 4, 8, 16, 32};
    const std::uint64_t seeds[] = {42, 43};

    harness::Table table({"ratio", "q", "p_complete", "k", "throughput (candlestick, 2 seeds)",
                          "scaling"});

    for (const int q_size : qs) {
        const auto vocab = bench::fresh_vocab();
        const auto query = queries::make_q1(
            vocab, queries::Q1Params{.q = q_size, .ws = ws});
        const auto cq = detect::CompiledQuery::compile(query);

        // Ground-truth completion probability + calibration from seed 0.
        const auto cal_store = bench::nyse_store(vocab, events, seeds[0]);
        const auto cal = harness::calibrate(cq, cal_store, 1);
        const auto seq = sequential::SequentialEngine(&cq).run(cal_store);
        const double p = seq.stats.completion_probability();

        double base = 0.0;
        for (const int k : ks) {
            std::vector<double> samples;
            for (const auto seed : seeds) {
                const auto store = bench::nyse_store(vocab, events, seed);
                samples.push_back(harness::run_sim_throughput(
                    store, cq, harness::paper_machine_sim(cal, k),
                    [&] { return harness::paper_markov(cq.min_length()); }));
            }
            const double median = util::percentile(samples, 50);
            if (k == 1) base = median;
            table.row({harness::fmt_double(static_cast<double>(q_size) /
                                           static_cast<double>(ws), 3),
                       std::to_string(q_size), harness::fmt_double(p, 2),
                       std::to_string(k), harness::fmt_candle(samples),
                       harness::fmt_double(base > 0 ? median / base : 0.0, 1) + "x"});
        }
    }
    table.print();
    std::printf(
        "\npaper shape: near-linear scaling at p≈1 (20.2x @32), saturation at ~8\n"
        "instances around p≈0.5, recovery at low p (15.2x @16).\n");
    return 0;
}
