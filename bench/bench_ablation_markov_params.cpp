// A2 — ablation (ours): Markov model parameters α (smoothing weight of new
// statistics) and ℓ (precomputed step size, Fig. 5 line 6). The paper fixes
// α = 0.7, ℓ = 10 (§4.2); the sweep shows prediction quality is robust
// around those values on a stationary workload.
#include <cstdio>

#include "bench_workloads.hpp"
#include "model/markov_model.hpp"
#include "queries/paper_queries.hpp"

using namespace spectre;

int main() {
    harness::print_header("A2 / ablation", "Markov α and ℓ sweep (Q1, k=8)");

    const std::uint64_t events = bench::scaled(20'000);
    const auto vocab = bench::fresh_vocab();
    const auto cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 320, .ws = 8000}));
    const auto store = bench::nyse_store(vocab, events, 42);
    const auto cal = harness::calibrate(cq, store, 1);

    harness::Table table({"alpha", "step l", "throughput"});
    for (const double alpha : {0.1, 0.5, 0.7, 0.9}) {
        for (const int step : {1, 10, 50}) {
            const double eps = harness::run_sim_throughput(
                store, cq, harness::paper_machine_sim(cal, 8), [&] {
                    model::MarkovParams params;
                    params.alpha = alpha;
                    params.step = step;
                    return std::make_unique<model::MarkovModel>(cq.min_length(), params);
                });
            table.row({harness::fmt_double(alpha, 1), std::to_string(step),
                       harness::fmt_eps(eps)});
        }
    }
    table.print();
    std::printf("\nexpected: flat surface on a stationary workload — the defaults\n"
                "(α=0.7, ℓ=10) are not a tuned sweet spot but a robust choice.\n");
    return 0;
}
