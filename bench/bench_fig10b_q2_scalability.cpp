// E3 — Fig. 10(b): Q2 on the (mean-reverting) NYSE-like stream. The average
// pattern size — and with it the completion probability — is controlled
// indirectly through the lower/upper price limits, exactly as in the paper
// ("we influence the average pattern size ... by changing the upper and
// lower limit parameters", §4.2.1), plus one setting where the pattern can
// never complete ("0 cplx": the upper limit is unreachable).
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

int main() {
    harness::print_header("E3 / Fig. 10(b)", "Q2 scalability vs average pattern size");

    const std::uint64_t events = bench::scaled(16'000);
    const std::uint64_t ws = 8000, slide = 1000;
    const int ks[] = {1, 2, 4, 8, 16, 32};
    const std::uint64_t seeds[] = {42, 43};

    // Band widths sweep the average pattern size; the last entry can never
    // complete (C requires close > 1e9).
    struct Limits {
        double lower, upper;
        const char* label;
    };
    const Limits limit_grid[] = {
        {97, 103, "narrow"},    {95, 105, "medium"},   {92, 108, "wide"},
        {88, 112, "wider"},     {80, 120, "widest"},   {95, 1e9, "0 cplx"},
    };

    harness::Table table({"limits", "avg_pattern", "p_complete", "k",
                          "throughput (candlestick, 2 seeds)", "scaling"});

    for (const auto& lim : limit_grid) {
        const auto vocab = bench::fresh_vocab();
        const auto cq = detect::CompiledQuery::compile(queries::make_q2(
            vocab,
            queries::Q2Params{.lower = lim.lower, .upper = lim.upper, .ws = ws,
                              .slide = slide}));

        const auto cal_store = bench::nyse_store_reverting(vocab, events, seeds[0]);
        const auto cal = harness::calibrate(cq, cal_store, 1);
        const auto seq = sequential::SequentialEngine(&cq).run(cal_store);
        const double p = seq.stats.completion_probability();
        double avg_pattern = 0.0;
        if (!seq.complex_events.empty()) {
            for (const auto& ce : seq.complex_events)
                avg_pattern += static_cast<double>(ce.constituents.size());
            avg_pattern /= static_cast<double>(seq.complex_events.size());
        }

        double base = 0.0;
        for (const int k : ks) {
            std::vector<double> samples;
            for (const auto seed : seeds) {
                const auto store = bench::nyse_store_reverting(vocab, events, seed);
                samples.push_back(harness::run_sim_throughput(
                    store, cq, harness::paper_machine_sim(cal, k),
                    [&] { return harness::paper_markov(cq.min_length()); }));
            }
            const double median = util::percentile(samples, 50);
            if (k == 1) base = median;
            table.row({lim.label, harness::fmt_double(avg_pattern, 0),
                       harness::fmt_double(p, 2), std::to_string(k),
                       harness::fmt_candle(samples),
                       harness::fmt_double(base > 0 ? median / base : 0.0, 1) + "x"});
        }
    }
    table.print();
    std::printf(
        "\npaper shape: near-linear scaling at p≈1 (19.5x @32), saturation at ~8\n"
        "instances around p≈0.5, good scaling again when nothing completes (16.8x @32).\n");
    return 0;
}
