// E10 — §4.2.3: comparison against the T-REX-style general-purpose engine on
// Q1. The baseline interprets a translated automaton (string-keyed attribute
// maps, virtual-dispatch predicates) on a single thread and is measured in
// real time on this machine; SPECTRE runs the UDF-compiled fast path on the
// simulated paper machine. The paper reports ~1,000 eps for T-REX vs >10k eps
// for SPECTRE at one instance, scaling with cores; the *ratio and shape*
// (order-of-magnitude gap, multiplied by multi-core scaling) are what this
// bench reproduces.
#include <chrono>
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"
#include "trex/trex_engine.hpp"

using namespace spectre;

int main() {
    harness::print_header("E10 / §4.2.3", "T-REX-style baseline vs SPECTRE on Q1");

    const std::uint64_t events = bench::scaled(15'000);
    const auto vocab = bench::fresh_vocab();
    const auto cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 80, .ws = 8000}));
    const auto store = bench::nyse_store(vocab, events, 42);
    const auto cal = harness::calibrate(cq, store, 1);

    harness::Table table({"engine", "threads", "throughput (eps)", "complex events"});

    // Baseline: real single-threaded run of the generic engine.
    {
        trex::TrexEngine engine(&cq);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = engine.run(store);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        table.row({"T-REX-style (generic, measured)", "1",
                   harness::fmt_eps(static_cast<double>(store.size()) / secs),
                   std::to_string(r.complex_events.size())});
    }
    // Reference: the UDF-compiled sequential engine, also measured.
    {
        sequential::SequentialEngine engine(&cq);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = engine.run(store);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        table.row({"SPECTRE UDF path (sequential, measured)", "1",
                   harness::fmt_eps(static_cast<double>(store.size()) / secs),
                   std::to_string(r.complex_events.size())});
    }
    // SPECTRE on the simulated paper machine at increasing k.
    for (const int k : {1, 8, 16, 32}) {
        core::SimRuntime sim(&store, &cq, harness::paper_machine_sim(cal, k),
                             harness::paper_markov(cq.min_length()));
        const auto r = sim.run();
        table.row({"SPECTRE (simulated paper machine)", std::to_string(k),
                   harness::fmt_eps(r.throughput_eps),
                   std::to_string(r.output.size())});
    }
    table.print();
    std::printf("\npaper: T-REX ≈ 1,000 eps; SPECTRE competitive at one instance and\n"
                "scaling with cores. Both engines emit identical complex events.\n");
    return 0;
}
