// E-hotpath — detector inner-loop microbench: compiled predicate programs
// vs the tree-walking evaluator (DESIGN.md §5.1).
//
// Drives the Detector directly (no engine, no threads): for each paper query
// shape (Q1 predicate-open, Q2 chart pattern, Plus deep cross-event Kleene,
// Set Q3) and each active-match budget, every window of a synthetic stream is
// replayed through the detector and the wall-clock events/second recorded —
// once with EvalMode::Tree (the seed evaluator, the "before" row) and once
// with EvalMode::Compiled (the flat bytecode, the "after" row).
//
// Parity guard: independent of scale, each workload's first events are also
// run through BOTH modes in lockstep at smoke volume and every Feedback
// compared field-by-field (payload doubles by bit pattern). Any divergence
// makes the bench exit non-zero — this is the §5.1 acceptance gate and runs
// in ctest / CI at SPECTRE_BENCH_SCALE=0.05.
//
// One JSON line per row; pass an output path as argv[1] to also append the
// rows to a file (CI writes BENCH_hotpath.json at the repo root this way).
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_workloads.hpp"
#include "detect/detector.hpp"
#include "obs/metrics.hpp"
#include "queries/paper_queries.hpp"
#include "query/window.hpp"

using namespace spectre;
using namespace spectre::detect;

namespace {

struct Workload {
    std::string name;
    query::Query q;
    event::EventStore store;
};

// Deep cross-event Kleene shape: A anchors the price level, B+ must stay in
// a band derived from A (three BoundAttr comparisons per evaluation), C exits
// far above it. This is the chart-pattern idiom (§5 related work) tuned for
// the many-live-partial-matches regime the paper's scalability figures
// exercise: the C exit is rare and nothing is consumed, so every active
// match keeps evaluating its deep band predicate on every event of the
// window — the configuration where predicate evaluation dominates the
// detector step.
query::Query make_plus_chart(const data::StockVocab& v) {
    using query::BinOp;
    const auto close = v.close_slot;
    const auto open = v.open_slot;
    const auto volume = v.volume_slot;
    // Seven band conditions over all three attributes relative to the anchor
    // A — the multi-condition price/volume band shape of chart-pattern
    // queries ("rising within a tolerance band on comparable volume").
    const auto cond = [](BinOp op, event::AttrSlot slot, event::AttrSlot ref,
                         double delta) {
        return query::binary(op, query::attr(slot),
                             query::binary(delta < 0 ? BinOp::Sub : BinOp::Add,
                                           query::bound_attr(0, ref),
                                           query::constant(std::abs(delta))));
    };
    auto band = query::binary(
        BinOp::Ge, query::attr(volume),
        query::binary(BinOp::Sub, query::bound_attr(0, volume), query::constant(1e9)));
    band = query::binary(BinOp::And, cond(BinOp::Le, volume, volume, 1e9), band);
    band = query::binary(BinOp::And, cond(BinOp::Ge, close, close, -2.0), band);
    band = query::binary(BinOp::And, cond(BinOp::Le, open, open, 9.0), band);
    band = query::binary(BinOp::And, cond(BinOp::Ge, open, open, -4.0), band);
    band = query::binary(BinOp::And, cond(BinOp::Lt, close, close, 8.0), band);
    band = query::binary(
        BinOp::And,
        query::binary(BinOp::Gt, query::attr(close), query::bound_attr(0, close)), band);
    query::QueryBuilder b(v.schema);
    b.single("A", query::binary(BinOp::Lt, query::attr(close), query::constant(100.0)));
    b.plus("B", band);
    b.single("C", query::binary(BinOp::Gt, query::attr(close),
                                query::binary(BinOp::Add, query::bound_attr(0, close),
                                              query::constant(20.0))));
    b.window(query::WindowSpec::sliding_count(400, 80));
    b.consume_none();
    b.emit("rise", query::binary(BinOp::Sub, query::bound_attr(2, close),
                                 query::bound_attr(0, close)));
    return b.build();
}

std::vector<Workload> make_workloads() {
    std::vector<Workload> w;
    {
        auto vocab = bench::fresh_vocab();
        queries::Q1Params p;
        p.q = 20;
        p.ws = 2000;
        Workload wl{"Q1", queries::make_q1(vocab, p),
                    bench::nyse_store(vocab, bench::scaled(100'000), 11)};
        w.push_back(std::move(wl));
    }
    {
        auto vocab = bench::fresh_vocab();
        Workload wl{"Q2", queries::make_q2(vocab, queries::Q2Params{}),
                    bench::nyse_store_reverting(vocab, bench::scaled(60'000), 12)};
        w.push_back(std::move(wl));
    }
    {
        auto vocab = bench::fresh_vocab();
        Workload wl{"Plus", make_plus_chart(vocab),
                    bench::nyse_store_reverting(vocab, bench::scaled(100'000), 13)};
        w.push_back(std::move(wl));
    }
    {
        auto vocab = bench::fresh_vocab();
        Workload wl{"Set", queries::make_q3(vocab, queries::Q3Params{}),
                    bench::rand_store(vocab, bench::scaled(50'000), 14)};
        w.push_back(std::move(wl));
    }
    return w;
}

struct RunStats {
    double secs = 0;
    std::uint64_t fed = 0;
    std::uint64_t completed = 0;
    double avg_active = 0;
};

RunStats drive(const CompiledQuery& cq, const event::EventStore& store,
               const std::vector<query::WindowInfo>& windows, EvalMode mode) {
    Detector det(&cq, mode);
    // Measure the instrumented loop by default so the reported events/second
    // carries the metrics cost; SPECTRE_OBS_OFF=1 is the uninstrumented
    // baseline run_perf.sh's overhead row compares against.
    static obs::Registry registry;
    static const obs::ShardPtr shard = registry.make_shard();
    if (obs::enabled()) det.bind_obs(shard.get());
    Feedback fb;
    RunStats rs;
    std::uint64_t active_sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& w : windows) {
        const event::Seq end = std::min<event::Seq>(w.last, store.size() - 1);
        det.begin_window(w);
        for (event::Seq pos = w.first; pos <= end; ++pos) {
            fb.clear();
            det.on_event(store.at(pos), fb);
            rs.completed += fb.completed.size();
            active_sum += det.active_matches();
            ++rs.fed;
        }
        fb.clear();
        det.end_window(fb);
    }
    rs.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    rs.avg_active = rs.fed ? static_cast<double>(active_sum) / static_cast<double>(rs.fed) : 0;
    return rs;
}

bool feedback_identical(const Feedback& a, const Feedback& b) {
    if (a.created.size() != b.created.size() || a.bound.size() != b.bound.size() ||
        a.completed.size() != b.completed.size() ||
        a.abandoned.size() != b.abandoned.size() ||
        a.transitions.size() != b.transitions.size())
        return false;
    for (std::size_t i = 0; i < a.created.size(); ++i)
        if (a.created[i].id != b.created[i].id || a.created[i].delta != b.created[i].delta ||
            a.created[i].consumable != b.created[i].consumable)
            return false;
    for (std::size_t i = 0; i < a.bound.size(); ++i)
        if (a.bound[i].id != b.bound[i].id || a.bound[i].seq != b.bound[i].seq ||
            a.bound[i].consumable != b.bound[i].consumable ||
            a.bound[i].delta_after != b.bound[i].delta_after)
            return false;
    for (std::size_t i = 0; i < a.completed.size(); ++i) {
        const auto& ca = a.completed[i];
        const auto& cb = b.completed[i];
        if (ca.id != cb.id || ca.consumed != cb.consumed) return false;
        if (ca.complex_event.window_id != cb.complex_event.window_id ||
            ca.complex_event.constituents != cb.complex_event.constituents ||
            ca.complex_event.payload.size() != cb.complex_event.payload.size())
            return false;
        for (std::size_t j = 0; j < ca.complex_event.payload.size(); ++j) {
            if (ca.complex_event.payload[j].first != cb.complex_event.payload[j].first)
                return false;
            // Bit comparison: a NaN payload must match the other mode's NaN.
            if (std::bit_cast<std::uint64_t>(ca.complex_event.payload[j].second) !=
                std::bit_cast<std::uint64_t>(cb.complex_event.payload[j].second))
                return false;
        }
    }
    for (std::size_t i = 0; i < a.abandoned.size(); ++i)
        if (a.abandoned[i].id != b.abandoned[i].id ||
            a.abandoned[i].reason != b.abandoned[i].reason)
            return false;
    for (std::size_t i = 0; i < a.transitions.size(); ++i)
        if (a.transitions[i].from != b.transitions[i].from ||
            a.transitions[i].to != b.transitions[i].to)
            return false;
    return true;
}

// Lockstep smoke run: both modes see the same windows/events; any Feedback
// divergence is a §5.1 parity break.
bool parity_check(const CompiledQuery& cq, const event::EventStore& store,
                  const std::vector<query::WindowInfo>& windows,
                  std::uint64_t max_events) {
    Detector dc(&cq, EvalMode::Compiled);
    Detector dt(&cq, EvalMode::Tree);
    Feedback fc, ft;
    std::uint64_t fed = 0;
    for (const auto& w : windows) {
        if (fed >= max_events) break;
        const event::Seq end = std::min<event::Seq>(w.last, store.size() - 1);
        dc.begin_window(w);
        dt.begin_window(w);
        for (event::Seq pos = w.first; pos <= end; ++pos) {
            fc.clear();
            ft.clear();
            dc.on_event(store.at(pos), fc);
            dt.on_event(store.at(pos), ft);
            ++fed;
            if (!feedback_identical(fc, ft)) {
                std::fprintf(stderr,
                             "PARITY BREAK: window %llu event %llu (compiled vs tree)\n",
                             static_cast<unsigned long long>(w.id),
                             static_cast<unsigned long long>(pos));
                return false;
            }
        }
        fc.clear();
        ft.clear();
        dc.end_window(fc);
        dt.end_window(ft);
        if (!feedback_identical(fc, ft)) {
            std::fprintf(stderr, "PARITY BREAK: end_window %llu\n",
                         static_cast<unsigned long long>(w.id));
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    harness::print_header("E-hotpath",
                          "detector inner loop: compiled programs vs tree evaluator");

    std::ofstream json_out;
    if (argc > 1) {
        json_out.open(argv[1], std::ios::trunc);
        if (!json_out) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
    }

    const int caps[] = {1, 8, 32};
    harness::Table table({"shape", "max_matches", "avg active", "events", "eps tree",
                          "eps compiled", "speedup", "parity"});
    bool all_parity_ok = true;
    double best_speedup = 0;

    auto workloads = make_workloads();
    for (auto& wl : workloads) {
        const auto windows = query::assign_windows(wl.store, wl.q.window);
        for (const int cap : caps) {
            query::Query q = wl.q;
            if (cap != 1) {
                q.selection = query::SelectionPolicy::Each;
                q.max_matches_per_window = cap;
            }
            const auto cq = CompiledQuery::compile(std::move(q));

            // Smoke-level lockstep differential first (always, every scale).
            const bool parity = parity_check(cq, wl.store, windows, 50'000);
            all_parity_ok = all_parity_ok && parity;

            // Two reps per mode, best-of (the container shares its core).
            RunStats tree = drive(cq, wl.store, windows, EvalMode::Tree);
            RunStats comp = drive(cq, wl.store, windows, EvalMode::Compiled);
            const RunStats tree2 = drive(cq, wl.store, windows, EvalMode::Tree);
            const RunStats comp2 = drive(cq, wl.store, windows, EvalMode::Compiled);
            if (tree2.secs < tree.secs) tree = tree2;
            if (comp2.secs < comp.secs) comp = comp2;
            if (tree.completed != comp.completed) {
                std::fprintf(stderr, "PARITY BREAK: completion counts diverge (%s)\n",
                             wl.name.c_str());
                all_parity_ok = false;
            }

            const double eps_tree = tree.fed / tree.secs;
            const double eps_comp = comp.fed / comp.secs;
            const double speedup = eps_comp / eps_tree;
            if (speedup > best_speedup) best_speedup = speedup;

            table.row({wl.name, std::to_string(cap), harness::fmt_double(comp.avg_active, 2),
                       std::to_string(comp.fed), harness::fmt_eps(eps_tree),
                       harness::fmt_eps(eps_comp), harness::fmt_double(speedup, 2) + "x",
                       parity ? "ok" : "BROKEN"});

            harness::JsonLine row("E-hotpath");
            row.field("shape", wl.name)
                .field("max_matches", cap)
                .field("avg_active", comp.avg_active)
                .field("events", comp.fed)
                .field("completions", comp.completed)
                .field("eps_tree", eps_tree)
                .field("eps_compiled", eps_comp)
                .field("speedup", speedup)
                .field("scale", bench::bench_scale())
                .field("parity", std::string(parity ? "ok" : "broken"));
            // Tag uninstrumented rows so perf_trend.py never compares an
            // obs-off overhead pass against the committed instrumented rows.
            if (!obs::enabled()) row.field("obs", std::string("off"));
            row.print();
            if (json_out) json_out << row.str() << "\n";
        }
    }

    table.print();
    std::printf("best speedup: %.2fx — parity: %s\n", best_speedup,
                all_parity_ok ? "ok" : "BROKEN");
    return all_parity_ok ? 0 : 1;
}
