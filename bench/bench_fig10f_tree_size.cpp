// E7 — Fig. 10(f): maximal number of window versions held in the dependency
// tree at once, as a function of the number of operator instances (Q1,
// q = 80, ws = 8000). The paper measured 41 versions at k=1 growing to 6,730
// at k=32 — memory is not a concern, but picking the right top-k out of that
// many versions is what the prediction model earns its keep on.
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"

using namespace spectre;

int main() {
    harness::print_header("E7 / Fig. 10(f)", "max dependency-tree size vs instances");

    const std::uint64_t events = bench::scaled(20'000);
    harness::Table table({"k", "max tree versions", "versions created", "dropped",
                          "rollbacks"});

    for (const int k : {1, 2, 4, 8, 16, 32}) {
        const auto vocab = bench::fresh_vocab();
        const auto cq = detect::CompiledQuery::compile(
            queries::make_q1(vocab, queries::Q1Params{.q = 80, .ws = 8000}));
        const auto store = bench::nyse_store(vocab, events, 42);
        const auto cal = harness::calibrate(cq, store, 1);

        core::SimRuntime sim(&store, &cq, harness::paper_machine_sim(cal, k),
                             harness::paper_markov(cq.min_length()));
        const auto result = sim.run();
        table.row({std::to_string(k), std::to_string(result.metrics.max_tree_versions),
                   std::to_string(result.metrics.groups_created),
                   std::to_string(result.metrics.versions_dropped),
                   std::to_string(result.metrics.rollbacks)});
    }
    table.print();
    std::printf("\npaper shape: tree grows with k (41 @1 up to 6,730 versions @32) —\n"
                "deeper speculation horizons hold more concurrent versions.\n");
    return 0;
}
