#!/usr/bin/env bash
# Performance sweep for the hot-path record (DESIGN.md §5.1 methodology):
# runs the detector microbench plus the macro benches (streaming ingest,
# server throughput, shard scaling) and collects every JSON-lines row into
# BENCH_hotpath.json at the repo root.
#
#   bench/run_perf.sh [build-dir] [output-json] [scale]
#
# Defaults: build dir `build`, output `BENCH_hotpath.json` next to this
# script's repo root, SPECTRE_BENCH_SCALE from the environment (or 0.3 — big
# enough for stable events/s on one core, small enough to finish in minutes).
# Exits non-zero if any bench fails, which includes bench_detect_hot's
# tree-vs-compiled parity guard, bench_server_throughput's per-row
# sequential parity check, and bench_shard_scaling's merged-vs-reference
# parity gate (DESIGN.md §10).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_hotpath.json}"
export SPECTRE_BENCH_SCALE="${3:-${SPECTRE_BENCH_SCALE:-0.3}}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() {
    local bench="$1"
    echo "=== $bench (scale $SPECTRE_BENCH_SCALE)" >&2
    # JSON-lines rows start with '{'; everything else is human tables.
    "$build_dir/$bench" | tee /dev/stderr | grep '^{' >> "$tmp" || {
        echo "FAILED: $bench" >&2
        exit 1
    }
}

run bench_detect_hot
run bench_streaming_ingest
run bench_server_throughput
run bench_shard_scaling

mv "$tmp" "$out"
trap - EXIT
echo "wrote $(wc -l < "$out") rows to $out" >&2
