#!/usr/bin/env bash
# Performance sweep for the hot-path record (DESIGN.md §5.1 methodology):
# runs the detector microbench plus the macro benches (streaming ingest,
# server throughput, shard scaling, shared-plane multi-query) and collects
# every JSON-lines row into BENCH_hotpath.json at the repo root.
#
#   bench/run_perf.sh [build-dir] [output-json] [scale]
#
# Defaults: build dir `build`, output `BENCH_hotpath.json` next to this
# script's repo root, SPECTRE_BENCH_SCALE from the environment (or 0.3 — big
# enough for stable events/s on one core, small enough to finish in minutes).
# Exits non-zero if any bench fails, which includes bench_detect_hot's
# tree-vs-compiled parity guard, bench_server_throughput's per-row
# sequential parity check, and bench_shard_scaling's merged-vs-reference
# parity gate (DESIGN.md §10).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_hotpath.json}"
export SPECTRE_BENCH_SCALE="${3:-${SPECTRE_BENCH_SCALE:-0.3}}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() {
    local bench="$1"
    echo "=== $bench (scale $SPECTRE_BENCH_SCALE)" >&2
    # JSON-lines rows start with '{'; everything else is human tables.
    "$build_dir/$bench" | tee /dev/stderr | grep '^{' >> "$tmp" || {
        echo "FAILED: $bench" >&2
        exit 1
    }
}

run bench_detect_hot
# Metrics-overhead row (DESIGN.md §12, warn-only): the same microbench with
# the obs kill switch flipped. Rows carry "obs":"off" so perf_trend.py keys
# them separately from the instrumented record; the ratio printed below is
# advisory — the <3% budget is judged on the committed full-scale record.
SPECTRE_OBS_OFF=1 run bench_detect_hot
run bench_streaming_ingest
run bench_server_throughput
run bench_shard_scaling
run bench_multi_query

python3 - "$tmp" >&2 <<'EOF' || true
import json, sys
on, off = {}, {}
for line in open(sys.argv[1]):
    row = json.loads(line)
    if row.get("experiment") != "E-hotpath":
        continue
    key = (row.get("shape"), row.get("max_matches"))
    (off if row.get("obs") == "off" else on)[key] = row.get("eps_compiled", 0)
pairs = [(on[k], off[k]) for k in on if k in off and on[k] and off[k]]
if pairs:
    worst = min(i / u for i, u in pairs)
    print(f"metrics overhead (warn-only): instrumented/uninstrumented "
          f"eps_compiled worst ratio {worst:.3f} over {len(pairs)} rows"
          + (" — above 3% budget, investigate" if worst < 0.97 else ""))
EOF

mv "$tmp" "$out"
trap - EXIT
echo "wrote $(wc -l < "$out") rows to $out" >&2
