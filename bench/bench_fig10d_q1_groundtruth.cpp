// E5 — Fig. 10(d): ground-truth consumption-group completion probability of
// Q1 vs the pattern-size / window-size ratio, from a sequential pass without
// speculation ("the number of created consumption groups divided by the
// number of produced complex events provides the ground truth value", §4.2.1).
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

int main() {
    harness::print_header("E5 / Fig. 10(d)", "Q1 ground-truth completion probability");

    const std::uint64_t events = bench::scaled(30'000);
    const std::uint64_t ws = 8000;
    harness::Table table({"ratio", "q", "groups", "completed", "p_complete"});

    for (const int q_size : {40, 80, 160, 320, 640, 1280, 2560}) {
        const auto vocab = bench::fresh_vocab();
        const auto cq = detect::CompiledQuery::compile(
            queries::make_q1(vocab, queries::Q1Params{.q = q_size, .ws = ws}));
        const auto store = bench::nyse_store(vocab, events, 42);
        const auto r = sequential::SequentialEngine(&cq).run(store);
        table.row({harness::fmt_double((double)q_size / (double)ws, 3),
                   std::to_string(q_size), std::to_string(r.stats.groups_created),
                   std::to_string(r.stats.groups_completed),
                   harness::fmt_double(r.stats.completion_probability(), 3)});
    }
    table.print();
    std::printf("\npaper shape: 100%% at ratio 0.005 falling to 13%% at ratio 0.32.\n");
    return 0;
}
