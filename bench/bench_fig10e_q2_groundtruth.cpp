// E6 — Fig. 10(e): ground-truth completion probability of Q2 vs the average
// pattern size (controlled through the price limits), sequential pass.
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;

int main() {
    harness::print_header("E6 / Fig. 10(e)", "Q2 ground-truth completion probability");

    const std::uint64_t events = bench::scaled(30'000);
    struct Limits {
        double lower, upper;
        const char* label;
    };
    const Limits limit_grid[] = {
        {97, 103, "narrow"},    {95, 105, "medium"},   {92, 108, "wide"},
        {88, 112, "wider"},     {80, 120, "widest"},   {95, 1e9, "0 cplx"},
    };

    harness::Table table({"limits", "avg_pattern", "groups", "completed", "p_complete"});
    for (const auto& lim : limit_grid) {
        const auto vocab = bench::fresh_vocab();
        const auto cq = detect::CompiledQuery::compile(queries::make_q2(
            vocab, queries::Q2Params{.lower = lim.lower, .upper = lim.upper,
                                     .ws = 8000, .slide = 1000}));
        const auto store = bench::nyse_store_reverting(vocab, events, 42);
        const auto r = sequential::SequentialEngine(&cq).run(store);
        double avg = 0.0;
        for (const auto& ce : r.complex_events)
            avg += static_cast<double>(ce.constituents.size());
        if (!r.complex_events.empty()) avg /= static_cast<double>(r.complex_events.size());
        table.row({lim.label, harness::fmt_double(avg, 0),
                   std::to_string(r.stats.groups_created),
                   std::to_string(r.stats.groups_completed),
                   harness::fmt_double(r.stats.completion_probability(), 3)});
    }
    table.print();
    std::printf("\npaper shape: 100%% for small patterns, 50%% around size 560, 0%% when\n"
                "the pattern cannot complete.\n");
    return 0;
}
