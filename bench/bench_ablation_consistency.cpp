// A1 — ablation (ours): consistency-check frequency (Fig. 8 line 32).
// Checking rarely lets stale suppression run longer before a rollback wipes
// more work; checking every event pays the check on the hot path. The sweep
// exposes the trade-off on a mid-probability Q1 workload where late
// consumption-group updates actually occur.
#include <cstdio>

#include "bench_workloads.hpp"
#include "queries/paper_queries.hpp"

using namespace spectre;

int main() {
    harness::print_header("A1 / ablation", "consistency-check frequency sweep (Q1, k=8)");

    const std::uint64_t events = bench::scaled(20'000);
    const auto vocab = bench::fresh_vocab();
    const auto cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 320, .ws = 8000}));
    const auto store = bench::nyse_store(vocab, events, 42);
    const auto cal = harness::calibrate(cq, store, 1);

    harness::Table table({"check freq", "throughput", "rollbacks", "late validations"});
    for (const std::uint64_t freq : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
        auto cfg = harness::paper_machine_sim(cal, 8);
        cfg.splitter.instance.consistency_check_freq = freq;
        core::SimRuntime sim(&store, &cq, cfg, harness::paper_markov(cq.min_length()));
        const auto r = sim.run();
        table.row({std::to_string(freq), harness::fmt_eps(r.throughput_eps),
                   std::to_string(r.metrics.rollbacks),
                   std::to_string(r.metrics.late_validations)});
    }
    table.print();
    std::printf("\nexpected: throughput roughly flat in the middle of the sweep; the\n"
                "paper's observation that cheap periodic checks beat checkpointing\n"
                "motivated restart-based rollback (§3.3).\n");
    return 0;
}
