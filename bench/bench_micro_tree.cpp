// A3 — microbenchmarks (google-benchmark) for the data structures on
// SPECTRE's hot paths: dependency-tree maintenance, top-k selection, Markov
// prediction, and the detector's per-event step.
#include <benchmark/benchmark.h>

#include "bench_workloads.hpp"
#include "model/fixed_model.hpp"
#include "model/markov_model.hpp"
#include "queries/paper_queries.hpp"
#include "spectre/dependency_tree.hpp"

using namespace spectre;

namespace {

struct TreeBench {
    data::StockVocab vocab = bench::fresh_vocab();
    detect::CompiledQuery cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 8, .ws = 64}));
    std::uint64_t next_id = 1;
    core::DependencyTree tree;

    TreeBench()
        : tree([this](const query::WindowInfo& w, std::vector<core::CgPtr> suppressed) {
              return std::make_shared<core::WindowVersion>(next_id++, w, &cq,
                                                           std::move(suppressed));
          }) {}

    query::WindowInfo win(std::uint64_t id) {
        return query::WindowInfo{id, id * 4, id * 4 + 63};
    }
};

void BM_TreeOpenWindow(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        TreeBench t;
        state.ResumeTiming();
        for (std::uint64_t i = 0; i < 64; ++i) t.tree.open_window(t.win(i));
        benchmark::DoNotOptimize(t.tree.live_versions());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TreeOpenWindow);

void BM_TreeGroupCreateResolve(benchmark::State& state) {
    const auto depth = static_cast<std::uint64_t>(state.range(0));
    model::FixedModel half(0.5);
    for (auto _ : state) {
        state.PauseTiming();
        TreeBench t;
        for (std::uint64_t i = 0; i < depth; ++i) t.tree.open_window(t.win(i));
        const auto root = t.tree.top_k(1, half).at(0);
        auto cg = std::make_shared<core::ConsumptionGroup>(1, 0, root->version_id(), 2);
        cg->add_event(1);
        state.ResumeTiming();
        t.tree.on_group_created(cg);
        t.tree.on_group_resolved(cg, true);
        benchmark::DoNotOptimize(t.tree.live_versions());
    }
}
BENCHMARK(BM_TreeGroupCreateResolve)->Arg(4)->Arg(16)->Arg(64);

void BM_TreeTopK(benchmark::State& state) {
    const auto k = static_cast<std::size_t>(state.range(0));
    TreeBench t;
    model::FixedModel half(0.5);
    // Build a tree with pending groups so top-k actually branches.
    for (std::uint64_t i = 0; i < 32; ++i) t.tree.open_window(t.win(i));
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto versions = t.tree.top_k(32, half);
        const auto& owner = versions[i % versions.size()];
        auto cg = std::make_shared<core::ConsumptionGroup>(100 + i, owner->window().id,
                                                           owner->version_id(), 2);
        cg->add_event(owner->window().first);
        t.tree.on_group_created(cg);
    }
    for (auto _ : state) {
        auto top = t.tree.top_k(k, half);
        benchmark::DoNotOptimize(top);
    }
}
BENCHMARK(BM_TreeTopK)->Arg(1)->Arg(8)->Arg(32);

void BM_MarkovPredict(benchmark::State& state) {
    model::MarkovParams params;
    model::MarkovModel model(64, params);
    for (int i = 0; i < 5000; ++i) model.observe(8, (i % 2) ? 7 : 8);
    model.refresh();
    std::uint64_t n = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.completion_probability(8, n));
        n = (n % 4096) + 1;
    }
}
BENCHMARK(BM_MarkovPredict);

void BM_MarkovRefresh(benchmark::State& state) {
    model::MarkovParams params;
    params.refresh_every = UINT64_MAX;
    model::MarkovModel model(static_cast<int>(state.range(0)), params);
    for (int i = 0; i < 2000; ++i) model.observe(5, 4);
    for (auto _ : state) {
        model.observe(5, 4);
        model.refresh();
        benchmark::DoNotOptimize(model.completion_probability(5, 100));
    }
}
BENCHMARK(BM_MarkovRefresh)->Arg(8)->Arg(64)->Arg(2560);

void BM_DetectorStep(benchmark::State& state) {
    const auto vocab = bench::fresh_vocab();
    const auto cq = detect::CompiledQuery::compile(
        queries::make_q1(vocab, queries::Q1Params{.q = 80, .ws = 8000}));
    const auto store = bench::nyse_store(vocab, 20'000, 42);
    detect::Detector det(&cq);
    detect::Feedback fb;
    query::WindowInfo w{0, 0, store.size() - 1};
    det.begin_window(w);
    event::Seq pos = 0;
    for (auto _ : state) {
        fb.clear();
        det.on_event(store.at(pos), fb);
        benchmark::DoNotOptimize(fb);
        if (++pos >= store.size()) {
            pos = 0;
            det.begin_window(w);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorStep);

}  // namespace

BENCHMARK_MAIN();
