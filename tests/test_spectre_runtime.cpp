// End-to-end correctness of SPECTRE: for every query shape, window kind,
// instance count and random stream, the framework must deliver *exactly* the
// complex events of sequential processing — same instances, same payloads,
// same (window) order; no false positives, no false negatives (§2.3).
#include <gtest/gtest.h>

#include "model/fixed_model.hpp"
#include "model/markov_model.hpp"
#include "spectre/runtime.hpp"
#include "spectre/sim_runtime.hpp"
#include "sequential/seq_engine.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

namespace {

// Random stream over the letters A..E.
event::EventStore random_store(TestEnv& env, std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    event::EventStore store;
    for (std::size_t i = 0; i < n; ++i) {
        const char c = static_cast<char>('A' + rng.uniform_int(0, 4));
        store.append(env.ev(c, static_cast<double>(rng.uniform_int(0, 9)),
                            static_cast<event::Timestamp>(i)));
    }
    return store;
}

void expect_same_output(const std::vector<event::ComplexEvent>& expected,
                        const std::vector<event::ComplexEvent>& actual,
                        const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
        EXPECT_EQ(expected[i].constituents, actual[i].constituents) << label << " @" << i;
        EXPECT_EQ(expected[i].payload, actual[i].payload) << label << " @" << i;
    }
}

std::unique_ptr<model::CompletionModel> make_markov(const detect::CompiledQuery& cq) {
    model::MarkovParams params;
    params.refresh_every = 200;
    return std::make_unique<model::MarkovModel>(cq.min_length(), params);
}

void check_sim_equivalence(const query::Query& q, const event::EventStore& store,
                           int instances, const std::string& label) {
    const auto cq = detect::CompiledQuery::compile(q);
    const auto expected = sequential::SequentialEngine(&cq).run(store);

    core::SimConfig cfg;
    cfg.splitter.instances = instances;
    cfg.splitter.instance.consistency_check_freq = 8;
    cfg.batch_events = 16;
    cfg.model_contention = false;
    core::SimRuntime sim(&store, &cq, cfg, make_markov(cq));
    const auto result = sim.run();
    expect_same_output(expected.complex_events, result.output, label);
}

}  // namespace

// ---------------------------------------------------------------------------
// Simulated runtime equivalence across query shapes.
// ---------------------------------------------------------------------------

TEST(SpectreEquivalence, SequenceConsumeAllOverlappingWindows) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    for (const std::uint64_t seed : {1u, 2u, 3u})
        check_sim_equivalence(q, random_store(env, 300, seed), 4,
                              "seq-consume-all seed=" + std::to_string(seed));
}

TEST(SpectreEquivalence, SubsetConsumption) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(24, 6))
                 .consume({"B"})
                 .build();
    for (const std::uint64_t seed : {7u, 8u})
        check_sim_equivalence(q, random_store(env, 300, seed), 4,
                              "subset-consume seed=" + std::to_string(seed));
}

TEST(SpectreEquivalence, NoConsumptionIsEmbarrassinglyParallel) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .build();
    check_sim_equivalence(q, random_store(env, 400, 11), 8, "no-consumption");
}

TEST(SpectreEquivalence, KleenePlusPattern) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(30, 10))
                 .consume_all()
                 .build();
    for (const std::uint64_t seed : {21u, 22u})
        check_sim_equivalence(q, random_store(env, 300, seed), 4,
                              "kleene seed=" + std::to_string(seed));
}

TEST(SpectreEquivalence, SetPattern) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .set("S", {{"X", env.is('B')}, {"Y", env.is('C')}, {"Z", env.is('D')}})
                 .window(query::WindowSpec::sliding_count(25, 5))
                 .consume_all()
                 .build();
    check_sim_equivalence(q, random_store(env, 300, 31), 4, "set");
}

TEST(SpectreEquivalence, GuardedPattern) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .guard(env.is('E'))  // no E between A and B
                 .window(query::WindowSpec::sliding_count(20, 4))
                 .consume_all()
                 .build();
    check_sim_equivalence(q, random_store(env, 300, 41), 4, "guard");
}

TEST(SpectreEquivalence, SelectEachManyGroupsPerWindow) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(12, 4))
                 .select(query::SelectionPolicy::Each)
                 .consume_all()
                 .build();
    for (const std::uint64_t seed : {51u, 52u})
        check_sim_equivalence(q, random_store(env, 200, seed), 4,
                              "each seed=" + std::to_string(seed));
}

TEST(SpectreEquivalence, PredicateOpenWindowsWithSticky) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .sticky()
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::predicate_open_count(env.is('A'), 15))
                 .consume({"B"})
                 .build();
    check_sim_equivalence(q, random_store(env, 250, 61), 4, "sticky-predicate-open");
}

TEST(SpectreEquivalence, NonOverlappingWindows) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 15))  // gaps
                 .consume_all()
                 .build();
    check_sim_equivalence(q, random_store(env, 300, 71), 4, "gaps");
}

TEST(SpectreEquivalence, InstanceCountSweep) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(25, 5))
                 .consume_all()
                 .build();
    const auto store = random_store(env, 400, 81);
    for (const int k : {1, 2, 3, 8, 16})
        check_sim_equivalence(q, store, k, "k=" + std::to_string(k));
}

TEST(SpectreEquivalence, FixedModelsAnyProbabilityStayCorrect) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 300, 91);
    const auto expected = sequential::SequentialEngine(&cq).run(store);
    // Wrong probability predictions cost throughput, never correctness.
    for (const double p : {0.0, 0.3, 0.7, 1.0}) {
        core::SimConfig cfg;
        cfg.splitter.instances = 4;
        cfg.model_contention = false;
        core::SimRuntime sim(&store, &cq, cfg, std::make_unique<model::FixedModel>(p));
        expect_same_output(expected.complex_events, sim.run().output,
                           "fixed p=" + std::to_string(p));
    }
}

TEST(SpectreEquivalence, TinyConsistencyCheckFrequency) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(16, 4))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 200, 101);
    const auto expected = sequential::SequentialEngine(&cq).run(store);
    core::SimConfig cfg;
    cfg.splitter.instances = 4;
    cfg.splitter.instance.consistency_check_freq = 1;  // check every event
    cfg.model_contention = false;
    core::SimRuntime sim(&store, &cq, cfg, make_markov(cq));
    expect_same_output(expected.complex_events, sim.run().output, "check-freq-1");
}

TEST(SpectreEquivalence, SmallLookaheadStillCorrect) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 200, 111);
    const auto expected = sequential::SequentialEngine(&cq).run(store);
    core::SimConfig cfg;
    cfg.splitter.instances = 4;
    cfg.splitter.lookahead_windows = 2;
    cfg.model_contention = false;
    core::SimRuntime sim(&store, &cq, cfg, make_markov(cq));
    expect_same_output(expected.complex_events, sim.run().output, "lookahead-2");
}

TEST(SpectreEquivalence, EmptyStore) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .window(query::WindowSpec::sliding_count(10, 5))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    event::EventStore store;
    core::SimConfig cfg;
    cfg.splitter.instances = 2;
    core::SimRuntime sim(&store, &cq, cfg, make_markov(cq));
    EXPECT_TRUE(sim.run().output.empty());
}

// Property sweep: seeds x stream lengths, Markov model, consumption on.
class EquivalenceSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EquivalenceSweep, RandomStreamsMatchSequential) {
    const auto [seed, length] = GetParam();
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(18, 6))
                 .consume_all()
                 .build();
    check_sim_equivalence(q, random_store(env, static_cast<std::size_t>(length),
                                          static_cast<std::uint64_t>(seed)),
                          4, "sweep");
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSweep,
                         ::testing::Combine(::testing::Values(201, 202, 203, 204, 205),
                                            ::testing::Values(120, 350)));

// ---------------------------------------------------------------------------
// Threaded runtime: real threads, same equivalence guarantee.
// ---------------------------------------------------------------------------

TEST(SpectreThreaded, MatchesSequentialWithConsumption) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 500, 301);
    const auto expected = sequential::SequentialEngine(&cq).run(store);

    core::RuntimeConfig cfg;
    cfg.splitter.instances = 4;
    cfg.splitter.instance.consistency_check_freq = 16;
    cfg.batch_events = 32;
    core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
    const auto result = rt.run();
    expect_same_output(expected.complex_events, result.output, "threaded");
    EXPECT_GT(result.throughput_eps, 0.0);
}

TEST(SpectreThreaded, RepeatedRunsAreStable) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(24, 8))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 300, 302);
    const auto expected = sequential::SequentialEngine(&cq).run(store);
    for (int rep = 0; rep < 3; ++rep) {
        core::RuntimeConfig cfg;
        cfg.splitter.instances = 3;
        core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
        expect_same_output(expected.complex_events, rt.run().output,
                           "rep=" + std::to_string(rep));
    }
}

// ---------------------------------------------------------------------------
// Metrics plumbing.
// ---------------------------------------------------------------------------

TEST(SpectreMetrics, CountsGroupsWindowsAndTreeSize) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 300, 401);
    core::SimConfig cfg;
    cfg.splitter.instances = 4;
    cfg.model_contention = false;
    core::SimRuntime sim(&store, &cq, cfg, make_markov(cq));
    const auto result = sim.run();

    const auto seq = sequential::SequentialEngine(&cq).run(store);
    EXPECT_EQ(result.metrics.windows_retired, seq.stats.windows);
    EXPECT_EQ(result.metrics.complex_events, seq.stats.complex_events);
    EXPECT_GT(result.metrics.cycles, 0u);
    EXPECT_GE(result.metrics.max_tree_versions, seq.stats.windows > 0 ? 1u : 0u);
    EXPECT_GT(result.virtual_seconds, 0.0);
    std::uint64_t processed = 0;
    for (const auto& s : result.instance_stats) processed += s.events_processed;
    EXPECT_GT(processed, 0u);
}

TEST(SimRuntimeTest, ContentionFactorModelsHyperThreading) {
    using core::SimRuntime;
    EXPECT_DOUBLE_EQ(SimRuntime::contention_factor(8, 20, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(SimRuntime::contention_factor(20, 20, 0.25), 1.0);
    const double f33 = SimRuntime::contention_factor(33, 20, 0.25);
    EXPECT_GT(f33, 1.0);
    const double f40 = SimRuntime::contention_factor(40, 20, 0.25);
    EXPECT_GT(f40, f33);
}
