#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>

#include "data/nyse_synth.hpp"
#include "net/egress_ring.hpp"
#include "net/io_backend.hpp"
#include "net/session.hpp"
#include "net/tcp.hpp"

using namespace spectre;
using namespace spectre::net;

namespace {

data::StockVocab vocab() {
    return data::StockVocab::create(std::make_shared<event::Schema>());
}

}  // namespace

TEST(Frame, EncodeDecodeRoundTrip) {
    WireQuote q;
    q.ts = 1234567;
    q.open = 100.25;
    q.close = 101.5;
    q.volume = 42;
    q.symbol = "AAPL";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    std::size_t off = 0;
    const auto back = decode(buf, off);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, q);
    EXPECT_EQ(off, buf.size());
}

TEST(Frame, PartialFrameReturnsNullopt) {
    WireQuote q;
    q.symbol = "MSFT";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        std::vector<std::uint8_t> partial(buf.begin(),
                                          buf.begin() + static_cast<std::ptrdiff_t>(cut));
        std::size_t off = 0;
        EXPECT_EQ(decode(partial, off), std::nullopt) << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }
}

TEST(Frame, MultipleFramesDecodeSequentially) {
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 5; ++i) {
        WireQuote q;
        q.ts = i;
        q.symbol = "S" + std::to_string(i);
        encode(q, buf);
    }
    std::size_t off = 0;
    for (int i = 0; i < 5; ++i) {
        const auto q = decode(buf, off);
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->ts, i);
        EXPECT_EQ(q->symbol, "S" + std::to_string(i));
    }
    EXPECT_EQ(decode(buf, off), std::nullopt);
}

TEST(Frame, CorruptSymbolLengthThrows) {
    WireQuote q;
    q.symbol = "OK";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    // Symbol length field sits after ts + 3 doubles = 32 bytes.
    buf[32] = 0xff;
    buf[33] = 0xff;
    std::size_t off = 0;
    EXPECT_THROW(decode(buf, off), std::runtime_error);
}

TEST(Frame, WireConversionsPreserveEvent) {
    const auto v = vocab();
    const auto e =
        data::make_quote(v, 42, v.schema->intern_subject("IBM"), 10.5, 11.25, 300);
    const auto wire = to_wire(e, v);
    EXPECT_EQ(wire.symbol, "IBM");
    const auto back = from_wire(wire, v);
    EXPECT_EQ(back.ts, e.ts);
    EXPECT_EQ(back.subject, e.subject);
    EXPECT_DOUBLE_EQ(back.attr(v.open_slot), e.attr(v.open_slot));
}

TEST(Frame, ZeroLengthSymbolRoundTrips) {
    WireQuote q;
    q.ts = 7;
    q.open = 1.5;
    q.symbol = "";  // legal: symbols travel by (possibly empty) name
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    std::size_t off = 0;
    const auto back = decode(buf, off);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->symbol, "");
    EXPECT_EQ(*back, q);
    EXPECT_EQ(off, buf.size());
}

TEST(Frame, IncrementalDecodeAcrossOneByteFeeds) {
    // Feed a multi-frame buffer one byte at a time through a FrameReader:
    // every prefix must decode to exactly the frames whose bytes are
    // complete, with no byte lost or duplicated at any split point.
    std::vector<WireQuote> quotes;
    for (int i = 0; i < 4; ++i) {
        WireQuote q;
        q.ts = 100 + i;
        q.open = 1.0 + i;
        q.symbol = i % 2 ? "" : "SYM" + std::to_string(i);
        quotes.push_back(q);
    }
    std::vector<std::uint8_t> wire;
    for (const auto& q : quotes) encode_frame(SessionFrame{q}, wire);

    FrameReader reader;
    std::vector<WireQuote> got;
    for (const auto byte : wire) {
        reader.feed(&byte, 1);
        while (auto f = reader.poll()) got.push_back(std::get<WireQuote>(*f));
    }
    EXPECT_FALSE(reader.mid_frame());
    ASSERT_EQ(got.size(), quotes.size());
    for (std::size_t i = 0; i < quotes.size(); ++i) EXPECT_EQ(got[i], quotes[i]);
}

// ---------------------------------------------------------------------------
// Session control frames (net/session.hpp).
// ---------------------------------------------------------------------------

namespace {

SessionFrame round_trip(const SessionFrame& f) {
    std::vector<std::uint8_t> buf;
    encode_frame(f, buf);
    std::size_t off = 0;
    const auto back = decode_frame(buf, off);
    EXPECT_TRUE(back.has_value());
    EXPECT_EQ(off, buf.size());
    return *back;
}

}  // namespace

TEST(SessionFrame, ControlFramesRoundTrip) {
    HelloFrame hello{"PATTERN (A B) DEFINE ...", 4, 0, ""};
    EXPECT_EQ(std::get<HelloFrame>(round_trip(SessionFrame{hello})), hello);

    // Sharded HELLO (DESIGN.md §10): shard count and partition key survive.
    HelloFrame sharded{"PATTERN (A B) DEFINE ...", 2, 8, "SUBJECT"};
    EXPECT_EQ(std::get<HelloFrame>(round_trip(SessionFrame{sharded})), sharded);

    ResultFrame result;
    result.window_id = 42;
    result.constituents = {3, 7, 19};
    result.payload = {{"gain", 1.25}, {"", -3.5}};
    EXPECT_EQ(std::get<ResultFrame>(round_trip(SessionFrame{result})), result);

    ResultFrame empty_result;  // zero constituents, zero payload
    EXPECT_EQ(std::get<ResultFrame>(round_trip(SessionFrame{empty_result})), empty_result);

    ByeFrame bye{12345};
    EXPECT_EQ(std::get<ByeFrame>(round_trip(SessionFrame{bye})), bye);

    ErrorFrame error{"corrupt frame: symbol too long"};
    EXPECT_EQ(std::get<ErrorFrame>(round_trip(SessionFrame{error})), error);

    WireQuote data;
    data.ts = 9;
    data.symbol = "IBM";
    EXPECT_EQ(std::get<WireQuote>(round_trip(SessionFrame{data})), data);
}

TEST(SessionFrame, PartialControlFramesReturnNullopt) {
    ResultFrame result;
    result.window_id = 1;
    result.constituents = {1, 2, 3};
    result.payload = {{"x", 1.0}};
    for (const auto& frame :
         {SessionFrame{HelloFrame{"PATTERN (A)", 2, 0, ""}}, SessionFrame{result},
          SessionFrame{ByeFrame{7}}, SessionFrame{ErrorFrame{"oops"}}}) {
        std::vector<std::uint8_t> buf;
        encode_frame(frame, buf);
        for (std::size_t cut = 1; cut < buf.size(); ++cut) {
            std::vector<std::uint8_t> partial(
                buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
            std::size_t off = 0;
            EXPECT_EQ(decode_frame(partial, off), std::nullopt) << "cut=" << cut;
            EXPECT_EQ(off, 0u);
        }
    }
}

TEST(SessionFrame, UnknownTagThrows) {
    const std::vector<std::uint8_t> buf = {0xff, 0x00, 0x01};
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(buf, off), std::runtime_error);
}

TEST(SessionFrame, CorruptLengthsThrow) {
    // HELLO whose query length exceeds the sanity bound.
    std::vector<std::uint8_t> hello;
    encode_frame(SessionFrame{HelloFrame{"q", 1, 0, ""}}, hello);
    hello[1] = 0xff;  // query length bytes sit right after the tag
    hello[2] = 0xff;
    hello[3] = 0xff;
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(hello, off), std::runtime_error);

    // RESULT whose constituent count exceeds the sanity bound.
    std::vector<std::uint8_t> result;
    encode_frame(SessionFrame{ResultFrame{}}, result);
    result[9] = 0xff;  // constituent count sits after tag + window id
    result[10] = 0xff;
    result[11] = 0xff;
    result[12] = 0xff;
    off = 0;
    EXPECT_THROW(decode_frame(result, off), std::runtime_error);

    // DATA wrapping a corrupt quote (symbol length beyond kMaxSymbolLength)
    // propagates the inner corruption.
    WireQuote q;
    q.symbol = "OK";
    std::vector<std::uint8_t> data;
    encode_frame(SessionFrame{q}, data);
    data[33] = 0xff;  // symbol length field: tag byte + 32-byte quote header
    data[34] = 0xff;
    off = 0;
    EXPECT_THROW(decode_frame(data, off), std::runtime_error);
}

TEST(SessionFrame, StatsFrameRoundTrips) {
    // Response shape: a JSON body.
    StatsFrame reply{"{\"server\":{\"events_ingested\":42},\"session\":{}}"};
    EXPECT_EQ(std::get<StatsFrame>(round_trip(SessionFrame{reply})), reply);

    // Request shape: zero-length body (the client asks, the server fills).
    StatsFrame request{};
    const auto back = std::get<StatsFrame>(round_trip(SessionFrame{request}));
    EXPECT_EQ(back, request);
    EXPECT_TRUE(back.json.empty());
}

TEST(SessionFrame, TruncatedStatsFrameReturnsNullopt) {
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{StatsFrame{"{\"events_ingested\":7}"}}, buf);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        std::vector<std::uint8_t> partial(
            buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
        std::size_t off = 0;
        EXPECT_EQ(decode_frame(partial, off), std::nullopt) << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }
}

TEST(SessionFrame, CorruptStatsLengthThrows) {
    // STATS whose body length exceeds kMaxStatsLength is corrupt, not
    // incomplete: decode must throw, never wait for more bytes.
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{StatsFrame{"{}"}}, buf);
    buf[1] = 0xff;  // length bytes sit right after the tag
    buf[2] = 0xff;
    buf[3] = 0xff;
    buf[4] = 0x7f;
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(buf, off), std::runtime_error);
}

TEST(SessionFrame, DecodeAdvancesAcrossMixedFrames) {
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{HelloFrame{"PATTERN (A)", 0, 0, ""}}, buf);
    WireQuote q;
    q.ts = 1;
    q.symbol = "A";
    encode_frame(SessionFrame{q}, buf);
    encode_frame(SessionFrame{ByeFrame{0}}, buf);

    std::size_t off = 0;
    EXPECT_TRUE(std::holds_alternative<HelloFrame>(*decode_frame(buf, off)));
    EXPECT_TRUE(std::holds_alternative<WireQuote>(*decode_frame(buf, off)));
    EXPECT_TRUE(std::holds_alternative<ByeFrame>(*decode_frame(buf, off)));
    EXPECT_EQ(off, buf.size());
    EXPECT_EQ(decode_frame(buf, off), std::nullopt);
}

// ---------------------------------------------------------------------------
// TCP stream error surfacing.
// ---------------------------------------------------------------------------

TEST(Tcp, DisconnectMidFrameSurfacesStreamError) {
    const auto v = vocab();
    TcpSource source(0);
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        // One complete frame, then half of a second one, then vanish.
        WireQuote q;
        q.ts = 1;
        q.symbol = "AAPL";
        c.send(q);
        std::vector<std::uint8_t> partial;
        encode(q, partial);
        partial.resize(partial.size() / 2);
        c.send_raw(partial.data(), partial.size());
        c.close();
    });
    TcpStream stream(source, v);
    EXPECT_TRUE(stream.next().has_value());       // the complete frame
    EXPECT_THROW(stream.next(), std::runtime_error);  // the truncated one
    client.join();
}

TEST(Tcp, CleanDisconnectAtFrameBoundaryEndsStream) {
    const auto v = vocab();
    TcpSource source(0);
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        WireQuote q;
        q.ts = 2;
        q.symbol = "IBM";
        c.send(q);
        c.close();
    });
    TcpStream stream(source, v);
    EXPECT_TRUE(stream.next().has_value());
    EXPECT_EQ(stream.next(), std::nullopt);  // clean end-of-stream
    client.join();
}

TEST(Tcp, LoopbackStreamDeliversAllEvents) {
    const auto v = vocab();
    data::NyseSynthConfig cfg;
    cfg.events = 2000;
    cfg.symbols = 20;
    const auto events = data::generate_nyse(v, cfg);

    TcpSource source(0);  // ephemeral port
    event::EventStore store;
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        c.send_all(events, v);
    });
    const auto received = source.receive_into(store, v);
    client.join();

    ASSERT_EQ(received, events.size());
    ASSERT_EQ(store.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(store.at(i).subject, events[i].subject);
        EXPECT_DOUBLE_EQ(store.at(i).attr(v.close_slot), events[i].attr(v.close_slot));
    }
}

// ---------------------------------------------------------------------------
// EgressRing (DESIGN.md §14): batched vectored egress. Every test here checks
// the invariant the server's parity guarantee rests on — the byte stream a
// flush schedule produces equals concatenating encode_frame() over the
// appended frames, no matter how sends split, coalesce, block or die.

namespace {

std::vector<SessionFrame> result_burst(int n) {
    std::vector<SessionFrame> frames;
    for (int i = 0; i < n; ++i) {
        ResultFrame r;
        r.window_id = static_cast<std::uint64_t>(i);
        r.constituents = {static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) + 1,
                          static_cast<std::uint64_t>(i) + 2};
        r.payload = {{"gain", 0.25 * i}, {"lane", static_cast<double>(i % 7)}};
        frames.push_back(SessionFrame{std::move(r)});
    }
    return frames;
}

std::vector<std::uint8_t> encode_all(const std::vector<SessionFrame>& frames) {
    std::vector<std::uint8_t> out;
    for (const auto& f : frames) encode_frame(f, out);
    return out;
}

// A sendv that accepts at most `cap` bytes per call into `got` — the
// partial-write schedule knob.
EgressRing::SendvFn capped_sink(std::vector<std::uint8_t>& got, std::size_t cap) {
    return [&got, cap](const struct iovec* iov, int cnt) -> ssize_t {
        std::size_t budget = cap, wrote = 0;
        for (int i = 0; i < cnt && budget > 0; ++i) {
            const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
            const std::size_t take = std::min(iov[i].iov_len, budget);
            got.insert(got.end(), base, base + take);
            wrote += take;
            budget -= take;
        }
        return static_cast<ssize_t>(wrote);
    };
}

}  // namespace

TEST(EgressRing, FlushIsByteIdenticalAcrossPartialWriteSchedules) {
    const auto frames = result_burst(200);
    const auto expect = encode_all(frames);
    for (const std::size_t cap : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                                  std::size_t{64}, std::size_t{1000}, expect.size()}) {
        EgressRing ring;
        for (const auto& f : frames) ring.append(f);
        ASSERT_EQ(ring.bytes(), expect.size());
        std::vector<std::uint8_t> got;
        const auto r = ring.flush(capped_sink(got, cap));
        EXPECT_EQ(r.status, EgressRing::FlushStatus::Drained) << "cap=" << cap;
        EXPECT_EQ(r.sent, expect.size());
        EXPECT_TRUE(ring.empty());
        EXPECT_EQ(got, expect) << "cap=" << cap;
    }
}

TEST(EgressRing, SmallBlocksForceMultiRoundGatherAndStayByteIdentical) {
    // 64-byte blocks: 200 frames span far more blocks than kMaxIov, so one
    // flush takes several gather rounds; coalescing must not reorder bytes.
    const auto frames = result_burst(200);
    const auto expect = encode_all(frames);
    EgressRing ring(64);
    for (const auto& f : frames) ring.append(f);
    std::vector<std::uint8_t> got;
    const auto r = ring.flush(capped_sink(got, expect.size()));
    EXPECT_EQ(r.status, EgressRing::FlushStatus::Drained);
    EXPECT_EQ(got, expect);
}

TEST(EgressRing, EintrRetriesUntilDrained) {
    const auto frames = result_burst(50);
    const auto expect = encode_all(frames);
    EgressRing ring;
    for (const auto& f : frames) ring.append(f);
    std::vector<std::uint8_t> got;
    int calls = 0;
    const auto inner = capped_sink(got, 128);
    const auto r = ring.flush([&](const struct iovec* iov, int cnt) -> ssize_t {
        if (++calls % 2 == 1) {  // every other send is interrupted
            errno = EINTR;
            return -1;
        }
        return inner(iov, cnt);
    });
    EXPECT_EQ(r.status, EgressRing::FlushStatus::Drained);
    EXPECT_EQ(got, expect);
    EXPECT_GT(calls, 2);
}

TEST(EgressRing, EagainBlocksThenResumesWithoutLosingBytes) {
    const auto frames = result_burst(80);
    const auto expect = encode_all(frames);
    EgressRing ring;
    for (const auto& f : frames) ring.append(f);
    std::vector<std::uint8_t> got;
    std::size_t sent_first = 0;
    {
        const auto inner = capped_sink(got, 96);
        int calls = 0;
        const auto r = ring.flush([&](const struct iovec* iov, int cnt) -> ssize_t {
            if (++calls > 3) {  // the socket buffer "fills" after three sends
                errno = EAGAIN;
                return -1;
            }
            return inner(iov, cnt);
        });
        EXPECT_EQ(r.status, EgressRing::FlushStatus::Blocked);
        sent_first = r.sent;
        EXPECT_EQ(ring.bytes(), expect.size() - sent_first);
    }
    // Appending while blocked must keep append order on the wire.
    const auto more = result_burst(5);
    for (const auto& f : more) ring.append(f);
    auto full_expect = expect;
    {
        const auto tail = encode_all(more);
        full_expect.insert(full_expect.end(), tail.begin(), tail.end());
    }
    const auto r2 = ring.flush(capped_sink(got, full_expect.size()));
    EXPECT_EQ(r2.status, EgressRing::FlushStatus::Drained);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(got, full_expect);
}

TEST(EgressRing, MidIovecConnectionDeathReportsError) {
    const auto frames = result_burst(40);
    const auto expect = encode_all(frames);
    EgressRing ring;
    for (const auto& f : frames) ring.append(f);
    std::vector<std::uint8_t> got;
    int calls = 0;
    const auto inner = capped_sink(got, 100);
    const auto r = ring.flush([&](const struct iovec* iov, int cnt) -> ssize_t {
        if (++calls > 2) {  // the peer died after two partial writes
            errno = EPIPE;
            return -1;
        }
        return inner(iov, cnt);
    });
    EXPECT_EQ(r.status, EgressRing::FlushStatus::Error);
    EXPECT_EQ(r.error, EPIPE);
    EXPECT_EQ(r.sent, 200u);
    // What did reach the wire is a clean prefix — never torn or reordered.
    ASSERT_LE(got.size(), expect.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
    ring.clear();  // what the session does when it poisons egress
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// scatter_data (§14): the zero-copy DATA decode the reactor runs directly on
// the backend's read views.

namespace {

// Mimics the session's ingest loop: scatter while the reader is empty, stage
// the rest of the view otherwise, poll staged frames out. The frames it
// collects must match the all-staged FrameReader decode for any view split.
struct MiniScatterConsumer {
    FrameReader reader;
    std::vector<SessionFrame> frames;

    void consume(const std::uint8_t* data, std::size_t size) {
        std::size_t pos = 0;
        while (pos < size && reader.empty()) {
            DataFrameView dv;
            const auto st = scatter_data(data, size, pos, dv);
            if (st == ScatterStatus::Data) {
                WireQuote q;
                q.ts = dv.ts;
                q.open = dv.open;
                q.close = dv.close;
                q.volume = dv.volume;
                q.symbol = std::string(dv.symbol_view());
                frames.push_back(SessionFrame{std::move(q)});
                continue;
            }
            break;  // Control or NeedMore: stage the tail
        }
        if (pos < size) reader.feed(data + pos, size - pos);
        while (auto f = reader.poll()) frames.push_back(std::move(*f));
    }
};

}  // namespace

TEST(Scatter, StatusPerFrameKind) {
    WireQuote q;
    q.ts = 7;
    q.open = 1;
    q.close = 2;
    q.volume = 3;
    q.symbol = "IBM";
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{q}, buf);

    std::size_t pos = 0;
    DataFrameView dv;
    ASSERT_EQ(scatter_data(buf.data(), buf.size(), pos, dv), ScatterStatus::Data);
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(dv.ts, 7);
    EXPECT_EQ(dv.symbol_view(), "IBM");
    EXPECT_DOUBLE_EQ(dv.open, 1);
    EXPECT_DOUBLE_EQ(dv.close, 2);
    EXPECT_DOUBLE_EQ(dv.volume, 3);

    // Truncated DATA: NeedMore at every cut, pos untouched.
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        pos = 0;
        EXPECT_EQ(scatter_data(buf.data(), cut, pos, dv), ScatterStatus::NeedMore) << cut;
        EXPECT_EQ(pos, 0u);
    }

    // Control frame: left untouched for the staged path.
    std::vector<std::uint8_t> ctl;
    encode_frame(SessionFrame{ByeFrame{}}, ctl);
    pos = 0;
    EXPECT_EQ(scatter_data(ctl.data(), ctl.size(), pos, dv), ScatterStatus::Control);
    EXPECT_EQ(pos, 0u);
}

TEST(Scatter, CorruptSymbolLengthThrowsLikeStagedDecode) {
    WireQuote q;
    q.ts = 1;
    q.symbol = "OK";
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{q}, buf);
    // Patch the symbol-length field (tag byte + ts/open/close/volume = 33).
    for (std::size_t i = 0; i < 4; ++i) buf[1 + 32 + i] = 0xff;
    std::size_t pos = 0;
    DataFrameView dv;
    EXPECT_THROW(scatter_data(buf.data(), buf.size(), pos, dv), std::runtime_error);
    // The staged path agrees that the stream is corrupt.
    FrameReader r;
    r.feed(buf.data(), buf.size());
    EXPECT_THROW(r.poll(), std::runtime_error);
}

TEST(Scatter, SplitAtEveryBoundaryMatchesStagedDecode) {
    WireQuote a;
    a.ts = 1;
    a.open = 1;
    a.close = 2;
    a.volume = 3;
    a.symbol = "AAPL";
    WireQuote b;
    b.ts = 2;
    b.open = -1;
    b.close = 0.5;
    b.volume = 1e9;
    b.symbol = "";  // empty symbol is legal on the wire
    WireQuote c;
    c.ts = 3;
    c.symbol = "A_VERY_LONG_SYMBOL_NAME_FOR_TESTS";

    std::vector<SessionFrame> frames;
    frames.push_back(SessionFrame{a});
    frames.push_back(SessionFrame{b});
    frames.push_back(SessionFrame{StatsFrame{}});  // control mid-stream
    frames.push_back(SessionFrame{c});
    frames.push_back(SessionFrame{ResultFrame{9, {1, 2}, {{"x", 1.5}}}});
    frames.push_back(SessionFrame{a});
    frames.push_back(SessionFrame{ByeFrame{7}});

    std::vector<std::uint8_t> stream;
    for (const auto& f : frames) encode_frame(f, stream);

    // Ground truth: the all-staged decode.
    std::vector<SessionFrame> expect;
    {
        FrameReader r;
        r.feed(stream.data(), stream.size());
        while (auto f = r.poll()) expect.push_back(std::move(*f));
        EXPECT_TRUE(r.empty());
    }
    ASSERT_EQ(expect.size(), frames.size());

    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        MiniScatterConsumer mc;
        mc.consume(stream.data(), cut);
        mc.consume(stream.data() + cut, stream.size() - cut);
        EXPECT_EQ(mc.frames, expect) << "cut=" << cut;
    }

    // One byte at a time: everything funnels through NeedMore + staging.
    MiniScatterConsumer mc;
    for (std::size_t i = 0; i < stream.size(); ++i) mc.consume(stream.data() + i, 1);
    EXPECT_EQ(mc.frames, expect);
}

// ---------------------------------------------------------------------------
// IoBackend (§14): the same stream lifecycle driven through both reactor
// backends — bytes in order, clean EOF, cross-thread wake. The uring test
// self-skips where the kernel (or a sandbox) refuses io_uring.

namespace {

void exercise_stream(IoBackend& io) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
    const int rfd = sv[0], wfd = sv[1];
    ASSERT_TRUE(io.add(rfd, 7, IoBackend::kRead | IoBackend::kStream));

    std::vector<std::uint8_t> pattern(256 * 1024);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 8));

    std::vector<std::uint8_t> got;
    std::size_t written = 0;
    bool writer_closed = false;
    bool saw_eof = false;
    bool toggled = false;
    int spins = 0;
    while (!saw_eof && ++spins < 100000) {
        // Feed the writer until its socket buffer fills (or all is written),
        // then close it so the reader side sees EOF.
        while (written < pattern.size()) {
            const ssize_t w = ::send(wfd, pattern.data() + written, pattern.size() - written,
                                     MSG_NOSIGNAL | MSG_DONTWAIT);
            if (w > 0) {
                written += static_cast<std::size_t>(w);
                continue;
            }
            if (w < 0 && errno == EINTR) continue;
            ASSERT_TRUE(w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                << "send: " << std::strerror(errno);
            break;
        }
        if (written == pattern.size() && !writer_closed) {
            ::close(wfd);
            writer_closed = true;
        }
        IoEvent events[8];
        const int n = io.wait(events, 8);
        ASSERT_GE(n, 0);
        for (int i = 0; i < n; ++i) {
            if (events[i].tag != 7) continue;
            for (;;) {
                IoBackend::ReadView view;
                const auto rs = io.read(rfd, view);
                if (rs == IoBackend::ReadStatus::Data) {
                    got.insert(got.end(), view.data, view.data + view.size);
                    continue;
                }
                if (rs == IoBackend::ReadStatus::Eof) saw_eof = true;
                ASSERT_NE(rs, IoBackend::ReadStatus::Error)
                    << std::strerror(io.read_error());
                break;
            }
        }
        // Once, mid-stream: pause + resume read interest (the ingest
        // backpressure path the server drives on every watermark crossing).
        if (!toggled && got.size() > pattern.size() / 2) {
            toggled = true;
            ASSERT_TRUE(io.mod(rfd, 7, 0));
            ASSERT_TRUE(io.mod(rfd, 7, IoBackend::kRead));
        }
    }
    ASSERT_TRUE(saw_eof) << "stream never reached EOF";
    ASSERT_EQ(got.size(), pattern.size());
    EXPECT_EQ(got, pattern);
    EXPECT_TRUE(toggled);

    // wake() from another thread surfaces as a kWakeTag event. Deregister the
    // (EOF-readable, level-triggered) stream fd first so wait() genuinely
    // blocks: on one core a bounded spin of instant wait() returns could
    // exhaust itself before the waker thread is ever scheduled.
    io.del(rfd);
    ::close(rfd);
    if (!writer_closed) ::close(wfd);
    std::thread waker([&io] { io.wake(); });
    bool woke = false;
    while (!woke) {
        IoEvent events[8];
        const int n = io.wait(events, 8);  // blocks; 0 only on EINTR
        ASSERT_GE(n, 0);
        for (int i = 0; i < n; ++i)
            if (events[i].tag == IoBackend::kWakeTag) woke = true;
    }
    waker.join();
    EXPECT_TRUE(woke);
}

}  // namespace

TEST(IoBackend, EpollStreamsBytesInOrder) {
    const auto io = make_epoll_backend();
    ASSERT_NE(io, nullptr);
    EXPECT_STREQ(io->name(), "epoll");
    exercise_stream(*io);
}

TEST(IoBackend, UringStreamsBytesInOrder) {
    if (!uring_supported()) GTEST_SKIP() << "io_uring unavailable on this kernel";
    const auto io = make_uring_backend();
    ASSERT_NE(io, nullptr);
    EXPECT_STREQ(io->name(), "io_uring");
    exercise_stream(*io);
}

TEST(IoBackend, FactoryHonorsKindAndFallsBack) {
    // SPECTRE_IO_BACKEND overrides the requested kind (that is how the CI
    // uring leg re-runs every suite); without it the kind wins.
    const char* env = std::getenv("SPECTRE_IO_BACKEND");
    const std::string forced = env ? env : "";

    const auto epoll = make_io_backend(IoBackendKind::Epoll);
    ASSERT_NE(epoll, nullptr);
    if (forced.empty()) {
        EXPECT_STREQ(epoll->name(), "epoll");
    } else if (forced == "uring" && uring_supported()) {
        EXPECT_STREQ(epoll->name(), "io_uring");
    }

    // A Uring request never yields nullptr: it is io_uring where supported
    // and the epoll fallback everywhere else.
    const auto uring = make_io_backend(IoBackendKind::Uring);
    ASSERT_NE(uring, nullptr);
    if (forced == "epoll" || !uring_supported()) {
        EXPECT_STREQ(uring->name(), "epoll");
    } else {
        EXPECT_STREQ(uring->name(), "io_uring");
    }
}

TEST(FrameReader, TailNeedNamesExactCompletionBytes) {
    std::vector<SessionFrame> frames;
    frames.push_back(SessionFrame{HelloFrame{"PATTERN (A B)", 2, 0, "SUBJECT"}});
    WireQuote q;
    q.ts = 5;
    q.symbol = "AAPL";
    frames.push_back(SessionFrame{q});
    frames.push_back(SessionFrame{ResultFrame{3, {1, 2, 3}, {{"gain", 1.0}, {"x", 2.0}}}});
    frames.push_back(SessionFrame{StatsFrame{"{\"a\":1}"}});
    frames.push_back(SessionFrame{ErrorFrame{"boom"}});
    frames.push_back(SessionFrame{ByeFrame{9}});
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
        std::vector<std::uint8_t> buf;
        encode_frame(frames[fi], buf);
        FrameReader r;
        r.feed(buf.data(), 1);  // the tag byte alone
        std::size_t fed = 1;
        int steps = 0;
        while (fed < buf.size()) {
            ASSERT_LT(++steps, 16) << "frame " << fi << " did not converge";
            const auto need = r.tail_need();
            ASSERT_GT(need, 0u) << "frame " << fi;
            // A lower bound: never asks past the actual frame end.
            ASSERT_LE(need, buf.size() - fed) << "frame " << fi;
            r.feed(buf.data() + fed, need);
            fed += need;
        }
        EXPECT_EQ(r.tail_need(), 0u) << "frame " << fi;
        EXPECT_TRUE(r.poll().has_value()) << "frame " << fi;
        EXPECT_TRUE(r.empty()) << "frame " << fi;
        EXPECT_EQ(r.tail_need(), 0u) << "frame " << fi;
    }
}

// ---------------------------------------------------------------------------
// HELLO v2 (DESIGN.md §15): the versioned key-value handshake frame, and the
// fuzz-style sweep over the whole frame catalogue that the append-only wire
// versioning rule is pinned by.
// ---------------------------------------------------------------------------

TEST(SessionFrame, Hello2RoundTrips) {
    Hello2Frame hello;
    hello.set("role", "subscribe");
    hello.set("stream", "nyse");
    hello.set("query", "PATTERN (A B) DEFINE A AS A.close > A.open");
    hello.set("instances", "4");
    hello.set("empty", "");  // empty values survive
    EXPECT_EQ(std::get<Hello2Frame>(round_trip(SessionFrame{hello})), hello);

    Hello2Frame none;  // zero pairs is a valid (if useless) v2 HELLO
    EXPECT_EQ(std::get<Hello2Frame>(round_trip(SessionFrame{none})), none);

    // Unknown keys ride along untouched — that's the extensibility contract.
    Hello2Frame future;
    future.set("role", "publish");
    future.set("stream", "s");
    future.set("some_future_knob", "whatever");
    const auto back = std::get<Hello2Frame>(round_trip(SessionFrame{future}));
    EXPECT_EQ(back.get("some_future_knob"), "whatever");
}

TEST(SessionFrame, Hello2PartialReturnsNulloptAndBoundsReject) {
    Hello2Frame hello;
    hello.set("role", "subscribe");
    hello.set("stream", "nyse");
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{hello}, buf);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        std::size_t off = 0;
        const std::vector<std::uint8_t> partial(
            buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_EQ(decode_frame(partial, off), std::nullopt) << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }

    // Pair count beyond the sanity bound throws (framing is lost). Patched
    // at the byte level — the encoder refuses to produce such a frame.
    auto fat = buf;
    fat[1] = 0xff;  // pair count sits right after the tag
    fat[2] = 0xff;
    fat[3] = 0xff;
    fat[4] = 0xff;
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(fat, off), std::runtime_error);

    // So does a key length beyond its bound.
    auto long_key = buf;
    long_key[5] = 0xff;  // first key's length field
    long_key[6] = 0xff;
    off = 0;
    EXPECT_THROW(decode_frame(long_key, off), std::runtime_error);
}

namespace {

// One of each catalogued frame kind (tags 1..7), with representative payloads.
std::vector<SessionFrame> frame_catalogue() {
    std::vector<SessionFrame> frames;
    frames.push_back(SessionFrame{HelloFrame{"PATTERN (A B) DEFINE ...", 2, 4, "SUBJECT"}});
    WireQuote q;
    q.ts = 77;
    q.symbol = "MSFT";
    frames.push_back(SessionFrame{q});
    frames.push_back(SessionFrame{ResultFrame{9, {4, 5, 6}, {{"gain", 0.5}}}});
    frames.push_back(SessionFrame{ByeFrame{123}});
    frames.push_back(SessionFrame{ErrorFrame{"bad things"}});
    frames.push_back(SessionFrame{StatsFrame{"{\"x\":1}"}});
    Hello2Frame h2;
    h2.set("role", "subscribe");
    h2.set("stream", "nyse");
    h2.set("query", "PATTERN (A)");
    frames.push_back(SessionFrame{h2});
    return frames;
}

}  // namespace

// Fuzz-style sweep: random interleavings of every frame kind, fed to a
// FrameReader in random-size slices, must decode to exactly the encoded
// sequence; random single-byte corruptions of the same stream must either
// decode, stall awaiting more bytes, or throw — never mis-frame silently
// into a *different* valid frame sequence of equal length.
TEST(FrameReader, FuzzedSplitsAndCorruptionsNeverSilentlyMisframe) {
    std::mt19937 rng(20260808);
    const auto kinds = frame_catalogue();
    for (int iter = 0; iter < 200; ++iter) {
        // A random message sequence over the full catalogue.
        std::vector<SessionFrame> sent;
        std::vector<std::uint8_t> wire;
        const std::size_t count = 1 + rng() % 12;
        for (std::size_t i = 0; i < count; ++i) {
            sent.push_back(kinds[rng() % kinds.size()]);
            encode_frame(sent.back(), wire);
        }

        // Random split schedule: any slicing decodes to the same frames.
        FrameReader r;
        std::vector<SessionFrame> got;
        std::size_t fed = 0;
        while (fed < wire.size()) {
            const std::size_t n =
                std::min<std::size_t>(1 + rng() % 23, wire.size() - fed);
            r.feed(wire.data() + fed, n);
            fed += n;
            while (auto f = r.poll()) got.push_back(std::move(*f));
        }
        ASSERT_EQ(got.size(), sent.size()) << "iter=" << iter;
        for (std::size_t i = 0; i < sent.size(); ++i)
            EXPECT_EQ(got[i], sent[i]) << "iter=" << iter << " frame=" << i;
        EXPECT_TRUE(r.empty()) << "iter=" << iter;

        // Single-byte corruption: whatever still decodes must be a prefix
        // that re-encodes into the bytes it was decoded from (no silent
        // misframing); everything else throws or stalls.
        auto mutated = wire;
        const std::size_t at = rng() % mutated.size();
        mutated[at] ^= static_cast<std::uint8_t>(1 + rng() % 255);
        FrameReader m;
        m.feed(mutated.data(), mutated.size());
        std::vector<std::uint8_t> reencoded;
        try {
            while (auto f = m.poll()) encode_frame(*f, reencoded);
        } catch (const std::runtime_error&) {
            continue;  // corruption detected — the desired outcome
        }
        ASSERT_LE(reencoded.size(), mutated.size()) << "iter=" << iter;
        EXPECT_TRUE(std::equal(reencoded.begin(), reencoded.end(), mutated.begin()))
            << "iter=" << iter << ": decoded frames disagree with their own bytes";
    }
}
