#include <gtest/gtest.h>

#include <thread>

#include "data/nyse_synth.hpp"
#include "net/session.hpp"
#include "net/tcp.hpp"

using namespace spectre;
using namespace spectre::net;

namespace {

data::StockVocab vocab() {
    return data::StockVocab::create(std::make_shared<event::Schema>());
}

}  // namespace

TEST(Frame, EncodeDecodeRoundTrip) {
    WireQuote q;
    q.ts = 1234567;
    q.open = 100.25;
    q.close = 101.5;
    q.volume = 42;
    q.symbol = "AAPL";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    std::size_t off = 0;
    const auto back = decode(buf, off);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, q);
    EXPECT_EQ(off, buf.size());
}

TEST(Frame, PartialFrameReturnsNullopt) {
    WireQuote q;
    q.symbol = "MSFT";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        std::vector<std::uint8_t> partial(buf.begin(),
                                          buf.begin() + static_cast<std::ptrdiff_t>(cut));
        std::size_t off = 0;
        EXPECT_EQ(decode(partial, off), std::nullopt) << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }
}

TEST(Frame, MultipleFramesDecodeSequentially) {
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 5; ++i) {
        WireQuote q;
        q.ts = i;
        q.symbol = "S" + std::to_string(i);
        encode(q, buf);
    }
    std::size_t off = 0;
    for (int i = 0; i < 5; ++i) {
        const auto q = decode(buf, off);
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->ts, i);
        EXPECT_EQ(q->symbol, "S" + std::to_string(i));
    }
    EXPECT_EQ(decode(buf, off), std::nullopt);
}

TEST(Frame, CorruptSymbolLengthThrows) {
    WireQuote q;
    q.symbol = "OK";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    // Symbol length field sits after ts + 3 doubles = 32 bytes.
    buf[32] = 0xff;
    buf[33] = 0xff;
    std::size_t off = 0;
    EXPECT_THROW(decode(buf, off), std::runtime_error);
}

TEST(Frame, WireConversionsPreserveEvent) {
    const auto v = vocab();
    const auto e =
        data::make_quote(v, 42, v.schema->intern_subject("IBM"), 10.5, 11.25, 300);
    const auto wire = to_wire(e, v);
    EXPECT_EQ(wire.symbol, "IBM");
    const auto back = from_wire(wire, v);
    EXPECT_EQ(back.ts, e.ts);
    EXPECT_EQ(back.subject, e.subject);
    EXPECT_DOUBLE_EQ(back.attr(v.open_slot), e.attr(v.open_slot));
}

TEST(Frame, ZeroLengthSymbolRoundTrips) {
    WireQuote q;
    q.ts = 7;
    q.open = 1.5;
    q.symbol = "";  // legal: symbols travel by (possibly empty) name
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    std::size_t off = 0;
    const auto back = decode(buf, off);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->symbol, "");
    EXPECT_EQ(*back, q);
    EXPECT_EQ(off, buf.size());
}

TEST(Frame, IncrementalDecodeAcrossOneByteFeeds) {
    // Feed a multi-frame buffer one byte at a time through a FrameReader:
    // every prefix must decode to exactly the frames whose bytes are
    // complete, with no byte lost or duplicated at any split point.
    std::vector<WireQuote> quotes;
    for (int i = 0; i < 4; ++i) {
        WireQuote q;
        q.ts = 100 + i;
        q.open = 1.0 + i;
        q.symbol = i % 2 ? "" : "SYM" + std::to_string(i);
        quotes.push_back(q);
    }
    std::vector<std::uint8_t> wire;
    for (const auto& q : quotes) encode_frame(SessionFrame{q}, wire);

    FrameReader reader;
    std::vector<WireQuote> got;
    for (const auto byte : wire) {
        reader.feed(&byte, 1);
        while (auto f = reader.poll()) got.push_back(std::get<WireQuote>(*f));
    }
    EXPECT_FALSE(reader.mid_frame());
    ASSERT_EQ(got.size(), quotes.size());
    for (std::size_t i = 0; i < quotes.size(); ++i) EXPECT_EQ(got[i], quotes[i]);
}

// ---------------------------------------------------------------------------
// Session control frames (net/session.hpp).
// ---------------------------------------------------------------------------

namespace {

SessionFrame round_trip(const SessionFrame& f) {
    std::vector<std::uint8_t> buf;
    encode_frame(f, buf);
    std::size_t off = 0;
    const auto back = decode_frame(buf, off);
    EXPECT_TRUE(back.has_value());
    EXPECT_EQ(off, buf.size());
    return *back;
}

}  // namespace

TEST(SessionFrame, ControlFramesRoundTrip) {
    HelloFrame hello{"PATTERN (A B) DEFINE ...", 4, 0, ""};
    EXPECT_EQ(std::get<HelloFrame>(round_trip(SessionFrame{hello})), hello);

    // Sharded HELLO (DESIGN.md §10): shard count and partition key survive.
    HelloFrame sharded{"PATTERN (A B) DEFINE ...", 2, 8, "SUBJECT"};
    EXPECT_EQ(std::get<HelloFrame>(round_trip(SessionFrame{sharded})), sharded);

    ResultFrame result;
    result.window_id = 42;
    result.constituents = {3, 7, 19};
    result.payload = {{"gain", 1.25}, {"", -3.5}};
    EXPECT_EQ(std::get<ResultFrame>(round_trip(SessionFrame{result})), result);

    ResultFrame empty_result;  // zero constituents, zero payload
    EXPECT_EQ(std::get<ResultFrame>(round_trip(SessionFrame{empty_result})), empty_result);

    ByeFrame bye{12345};
    EXPECT_EQ(std::get<ByeFrame>(round_trip(SessionFrame{bye})), bye);

    ErrorFrame error{"corrupt frame: symbol too long"};
    EXPECT_EQ(std::get<ErrorFrame>(round_trip(SessionFrame{error})), error);

    WireQuote data;
    data.ts = 9;
    data.symbol = "IBM";
    EXPECT_EQ(std::get<WireQuote>(round_trip(SessionFrame{data})), data);
}

TEST(SessionFrame, PartialControlFramesReturnNullopt) {
    ResultFrame result;
    result.window_id = 1;
    result.constituents = {1, 2, 3};
    result.payload = {{"x", 1.0}};
    for (const auto& frame :
         {SessionFrame{HelloFrame{"PATTERN (A)", 2, 0, ""}}, SessionFrame{result},
          SessionFrame{ByeFrame{7}}, SessionFrame{ErrorFrame{"oops"}}}) {
        std::vector<std::uint8_t> buf;
        encode_frame(frame, buf);
        for (std::size_t cut = 1; cut < buf.size(); ++cut) {
            std::vector<std::uint8_t> partial(
                buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
            std::size_t off = 0;
            EXPECT_EQ(decode_frame(partial, off), std::nullopt) << "cut=" << cut;
            EXPECT_EQ(off, 0u);
        }
    }
}

TEST(SessionFrame, UnknownTagThrows) {
    const std::vector<std::uint8_t> buf = {0xff, 0x00, 0x01};
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(buf, off), std::runtime_error);
}

TEST(SessionFrame, CorruptLengthsThrow) {
    // HELLO whose query length exceeds the sanity bound.
    std::vector<std::uint8_t> hello;
    encode_frame(SessionFrame{HelloFrame{"q", 1, 0, ""}}, hello);
    hello[1] = 0xff;  // query length bytes sit right after the tag
    hello[2] = 0xff;
    hello[3] = 0xff;
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(hello, off), std::runtime_error);

    // RESULT whose constituent count exceeds the sanity bound.
    std::vector<std::uint8_t> result;
    encode_frame(SessionFrame{ResultFrame{}}, result);
    result[9] = 0xff;  // constituent count sits after tag + window id
    result[10] = 0xff;
    result[11] = 0xff;
    result[12] = 0xff;
    off = 0;
    EXPECT_THROW(decode_frame(result, off), std::runtime_error);

    // DATA wrapping a corrupt quote (symbol length beyond kMaxSymbolLength)
    // propagates the inner corruption.
    WireQuote q;
    q.symbol = "OK";
    std::vector<std::uint8_t> data;
    encode_frame(SessionFrame{q}, data);
    data[33] = 0xff;  // symbol length field: tag byte + 32-byte quote header
    data[34] = 0xff;
    off = 0;
    EXPECT_THROW(decode_frame(data, off), std::runtime_error);
}

TEST(SessionFrame, StatsFrameRoundTrips) {
    // Response shape: a JSON body.
    StatsFrame reply{"{\"server\":{\"events_ingested\":42},\"session\":{}}"};
    EXPECT_EQ(std::get<StatsFrame>(round_trip(SessionFrame{reply})), reply);

    // Request shape: zero-length body (the client asks, the server fills).
    StatsFrame request{};
    const auto back = std::get<StatsFrame>(round_trip(SessionFrame{request}));
    EXPECT_EQ(back, request);
    EXPECT_TRUE(back.json.empty());
}

TEST(SessionFrame, TruncatedStatsFrameReturnsNullopt) {
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{StatsFrame{"{\"events_ingested\":7}"}}, buf);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        std::vector<std::uint8_t> partial(
            buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
        std::size_t off = 0;
        EXPECT_EQ(decode_frame(partial, off), std::nullopt) << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }
}

TEST(SessionFrame, CorruptStatsLengthThrows) {
    // STATS whose body length exceeds kMaxStatsLength is corrupt, not
    // incomplete: decode must throw, never wait for more bytes.
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{StatsFrame{"{}"}}, buf);
    buf[1] = 0xff;  // length bytes sit right after the tag
    buf[2] = 0xff;
    buf[3] = 0xff;
    buf[4] = 0x7f;
    std::size_t off = 0;
    EXPECT_THROW(decode_frame(buf, off), std::runtime_error);
}

TEST(SessionFrame, DecodeAdvancesAcrossMixedFrames) {
    std::vector<std::uint8_t> buf;
    encode_frame(SessionFrame{HelloFrame{"PATTERN (A)", 0, 0, ""}}, buf);
    WireQuote q;
    q.ts = 1;
    q.symbol = "A";
    encode_frame(SessionFrame{q}, buf);
    encode_frame(SessionFrame{ByeFrame{0}}, buf);

    std::size_t off = 0;
    EXPECT_TRUE(std::holds_alternative<HelloFrame>(*decode_frame(buf, off)));
    EXPECT_TRUE(std::holds_alternative<WireQuote>(*decode_frame(buf, off)));
    EXPECT_TRUE(std::holds_alternative<ByeFrame>(*decode_frame(buf, off)));
    EXPECT_EQ(off, buf.size());
    EXPECT_EQ(decode_frame(buf, off), std::nullopt);
}

// ---------------------------------------------------------------------------
// TCP stream error surfacing.
// ---------------------------------------------------------------------------

TEST(Tcp, DisconnectMidFrameSurfacesStreamError) {
    const auto v = vocab();
    TcpSource source(0);
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        // One complete frame, then half of a second one, then vanish.
        WireQuote q;
        q.ts = 1;
        q.symbol = "AAPL";
        c.send(q);
        std::vector<std::uint8_t> partial;
        encode(q, partial);
        partial.resize(partial.size() / 2);
        c.send_raw(partial.data(), partial.size());
        c.close();
    });
    TcpStream stream(source, v);
    EXPECT_TRUE(stream.next().has_value());       // the complete frame
    EXPECT_THROW(stream.next(), std::runtime_error);  // the truncated one
    client.join();
}

TEST(Tcp, CleanDisconnectAtFrameBoundaryEndsStream) {
    const auto v = vocab();
    TcpSource source(0);
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        WireQuote q;
        q.ts = 2;
        q.symbol = "IBM";
        c.send(q);
        c.close();
    });
    TcpStream stream(source, v);
    EXPECT_TRUE(stream.next().has_value());
    EXPECT_EQ(stream.next(), std::nullopt);  // clean end-of-stream
    client.join();
}

TEST(Tcp, LoopbackStreamDeliversAllEvents) {
    const auto v = vocab();
    data::NyseSynthConfig cfg;
    cfg.events = 2000;
    cfg.symbols = 20;
    const auto events = data::generate_nyse(v, cfg);

    TcpSource source(0);  // ephemeral port
    event::EventStore store;
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        c.send_all(events, v);
    });
    const auto received = source.receive_into(store, v);
    client.join();

    ASSERT_EQ(received, events.size());
    ASSERT_EQ(store.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(store.at(i).subject, events[i].subject);
        EXPECT_DOUBLE_EQ(store.at(i).attr(v.close_slot), events[i].attr(v.close_slot));
    }
}
