#include <gtest/gtest.h>

#include <thread>

#include "data/nyse_synth.hpp"
#include "net/tcp.hpp"

using namespace spectre;
using namespace spectre::net;

namespace {

data::StockVocab vocab() {
    return data::StockVocab::create(std::make_shared<event::Schema>());
}

}  // namespace

TEST(Frame, EncodeDecodeRoundTrip) {
    WireQuote q;
    q.ts = 1234567;
    q.open = 100.25;
    q.close = 101.5;
    q.volume = 42;
    q.symbol = "AAPL";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    std::size_t off = 0;
    const auto back = decode(buf, off);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, q);
    EXPECT_EQ(off, buf.size());
}

TEST(Frame, PartialFrameReturnsNullopt) {
    WireQuote q;
    q.symbol = "MSFT";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
        std::vector<std::uint8_t> partial(buf.begin(),
                                          buf.begin() + static_cast<std::ptrdiff_t>(cut));
        std::size_t off = 0;
        EXPECT_EQ(decode(partial, off), std::nullopt) << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }
}

TEST(Frame, MultipleFramesDecodeSequentially) {
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 5; ++i) {
        WireQuote q;
        q.ts = i;
        q.symbol = "S" + std::to_string(i);
        encode(q, buf);
    }
    std::size_t off = 0;
    for (int i = 0; i < 5; ++i) {
        const auto q = decode(buf, off);
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->ts, i);
        EXPECT_EQ(q->symbol, "S" + std::to_string(i));
    }
    EXPECT_EQ(decode(buf, off), std::nullopt);
}

TEST(Frame, CorruptSymbolLengthThrows) {
    WireQuote q;
    q.symbol = "OK";
    std::vector<std::uint8_t> buf;
    encode(q, buf);
    // Symbol length field sits after ts + 3 doubles = 32 bytes.
    buf[32] = 0xff;
    buf[33] = 0xff;
    std::size_t off = 0;
    EXPECT_THROW(decode(buf, off), std::runtime_error);
}

TEST(Frame, WireConversionsPreserveEvent) {
    const auto v = vocab();
    const auto e =
        data::make_quote(v, 42, v.schema->intern_subject("IBM"), 10.5, 11.25, 300);
    const auto wire = to_wire(e, v);
    EXPECT_EQ(wire.symbol, "IBM");
    const auto back = from_wire(wire, v);
    EXPECT_EQ(back.ts, e.ts);
    EXPECT_EQ(back.subject, e.subject);
    EXPECT_DOUBLE_EQ(back.attr(v.open_slot), e.attr(v.open_slot));
}

TEST(Tcp, LoopbackStreamDeliversAllEvents) {
    const auto v = vocab();
    data::NyseSynthConfig cfg;
    cfg.events = 2000;
    cfg.symbols = 20;
    const auto events = data::generate_nyse(v, cfg);

    TcpSource source(0);  // ephemeral port
    event::EventStore store;
    std::thread client([&] {
        TcpClient c("127.0.0.1", source.port());
        c.send_all(events, v);
    });
    const auto received = source.receive_into(store, v);
    client.join();

    ASSERT_EQ(received, events.size());
    ASSERT_EQ(store.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(store.at(i).subject, events[i].subject);
        EXPECT_DOUBLE_EQ(store.at(i).attr(v.close_slot), events[i].attr(v.close_slot));
    }
}
