#include <gtest/gtest.h>

#include "query/parser.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using namespace spectre::query;
using spectre::testing::TestEnv;

TEST(Parser, SimpleSequenceQuery) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A B) "
        "DEFINE A AS TYPE = 'A', B AS TYPE = 'B' "
        "WITHIN 100 EVENTS FROM EVERY 10 EVENTS "
        "CONSUME ALL",
        env.schema);
    ASSERT_EQ(q.pattern.elements.size(), 2u);
    EXPECT_EQ(q.pattern.elements[0].name, "A");
    EXPECT_EQ(q.pattern.elements[1].kind, ElementKind::Single);
    EXPECT_EQ(q.window.kind, WindowKind::SlidingCount);
    EXPECT_EQ(q.window.size, 100u);
    EXPECT_EQ(q.window.slide, 10u);
    EXPECT_EQ(q.consumption.kind, ConsumptionPolicy::Kind::All);
}

TEST(Parser, Q1StyleQueryWithLeadersAndSelfRefs) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (MLE RE1 RE2) "
        "DEFINE MLE AS SYMBOL IN ('AAPL','IBM') AND MLE.close > MLE.open, "
        "       RE1 AS RE1.close > RE1.open, "
        "       RE2 AS RE2.close > RE2.open "
        "WITHIN 8000 EVENTS FROM MLE "
        "CONSUME (MLE RE1 RE2)",
        env.schema);
    EXPECT_EQ(q.pattern.elements.size(), 3u);
    EXPECT_EQ(q.window.kind, WindowKind::PredicateOpen);
    EXPECT_EQ(q.window.size, 8000u);
    EXPECT_EQ(q.consumption.kind, ConsumptionPolicy::Kind::Subset);
    // Self-references compile to current-event attrs, so the open predicate
    // is standalone-evaluable.
    event::Event e;
    e.type = env.schema->lookup_type("QUOTE");
    e.subject = env.schema->lookup_subject("IBM");
    const auto open = env.schema->lookup_attr("open");
    const auto close = env.schema->lookup_attr("close");
    ASSERT_NE(open, event::kMaxAttrs);
    ASSERT_NE(close, event::kMaxAttrs);
    e.set_attr(open, 1.0);
    e.set_attr(close, 2.0);
    EvalContext ctx;
    ctx.current = &e;
    EXPECT_TRUE(eval_bool(q.window.open_pred, ctx));
}

TEST(Parser, Q2StyleKleenePlusAndConsumeWithPlusMarks) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A B+ C) "
        "DEFINE A AS close < 10, "
        "       B AS close > 10 AND close < 20, "
        "       C AS close > 20 "
        "WITHIN 8000 EVENTS FROM EVERY 1000 EVENTS "
        "CONSUME (A B+ C)",
        env.schema);
    EXPECT_EQ(q.pattern.elements[1].kind, ElementKind::Plus);
    EXPECT_EQ(q.consumption.elements,
              (std::vector<std::string>{"A", "B", "C"}));
}

TEST(Parser, Q3StyleSetQuery) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A SET(X1 X2 X3)) "
        "DEFINE A AS SYMBOL = 'AAPL', "
        "       X1 AS SYMBOL = 'IBM', X2 AS SYMBOL = 'HPQ', X3 AS SYMBOL = 'MU' "
        "WITHIN 1000 EVENTS FROM EVERY 100 EVENTS "
        "CONSUME ALL",
        env.schema);
    ASSERT_EQ(q.pattern.elements.size(), 2u);
    EXPECT_EQ(q.pattern.elements[1].kind, ElementKind::Set);
    EXPECT_EQ(q.pattern.elements[1].members.size(), 3u);
    EXPECT_EQ(q.pattern.elements[1].members[1].name, "X2");
    EXPECT_EQ(q.pattern.min_length(), 4);
}

TEST(Parser, QeStyleTimeWindowStickyAndEmit) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A B) "
        "DEFINE A AS TYPE = 'A', B AS TYPE = 'B' "
        "WITHIN 60 TIME FROM A "
        "SELECT FIRST "
        "STICKY (A) "
        "CONSUME (B) "
        "EMIT factor = B.v / A.v",
        env.schema);
    EXPECT_EQ(q.window.kind, WindowKind::PredicateOpen);
    EXPECT_EQ(q.window.extent, ExtentKind::Time);
    EXPECT_EQ(q.window.duration, 60);
    EXPECT_TRUE(q.pattern.elements[0].sticky);
    EXPECT_FALSE(q.pattern.elements[1].sticky);
    ASSERT_EQ(q.payload.size(), 1u);
    EXPECT_EQ(q.payload[0].name, "factor");
}

TEST(Parser, GuardClauseAttachesNegation) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A B) "
        "DEFINE A AS TYPE = 'A', B AS TYPE = 'B' "
        "GUARD B AS TYPE = 'C' "
        "WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
        env.schema);
    EXPECT_EQ(q.pattern.elements[0].guard, nullptr);
    EXPECT_NE(q.pattern.elements[1].guard, nullptr);
}

TEST(Parser, SelectEachAllowsManyMatches) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A) DEFINE A AS TYPE = 'A' "
        "WITHIN 10 EVENTS FROM EVERY 5 EVENTS SELECT EACH",
        env.schema);
    EXPECT_EQ(q.selection, SelectionPolicy::Each);
    EXPECT_EQ(q.max_matches_per_window, 0);
}

TEST(Parser, OperatorPrecedenceIsConventional) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A) DEFINE A AS v + 2 * 3 = 7 AND NOT v > 100 "
        "WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
        env.schema);
    const auto e = [&] {
        event::Event ev;
        ev.type = env.schema->lookup_type("QUOTE");
        ev.set_attr(env.schema->lookup_attr("v"), 1.0);
        return ev;
    }();
    EvalContext ctx;
    ctx.current = &e;
    EXPECT_TRUE(eval_bool(q.pattern.elements[0].pred, ctx));  // 1+6=7, !(1>100)
}

TEST(Parser, ErrorsCarryOffsets) {
    TestEnv env;
    try {
        parse_query("PATTERN (A DEFINE", env.schema);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
}

TEST(Parser, RejectsUndefinedElement) {
    TestEnv env;
    EXPECT_THROW(parse_query("PATTERN (A B) DEFINE A AS TYPE = 'A' "
                             "WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
                             env.schema),
                 ParseError);
}

TEST(Parser, RejectsForwardBoundReference) {
    TestEnv env;
    // B references C which does not exist as element.
    EXPECT_THROW(parse_query("PATTERN (A B) DEFINE A AS TYPE='A', B AS C.v > 1 "
                             "WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
                             env.schema),
                 ParseError);
}

TEST(Parser, RejectsOpenPredicateWithCrossReference) {
    TestEnv env;
    EXPECT_THROW(parse_query("PATTERN (A B) DEFINE A AS B.v > 1, B AS TYPE='B' "
                             "WITHIN 10 EVENTS FROM A",
                             env.schema),
                 ParseError);
}

TEST(Parser, RejectsMixedWindowUnits) {
    TestEnv env;
    EXPECT_THROW(parse_query("PATTERN (A) DEFINE A AS TYPE='A' "
                             "WITHIN 10 EVENTS FROM EVERY 5 TIME",
                             env.schema),
                 ParseError);
}

TEST(Parser, RejectsUnterminatedString) {
    TestEnv env;
    EXPECT_THROW(parse_query("PATTERN (A) DEFINE A AS TYPE = 'A "
                             "WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
                             env.schema),
                 ParseError);
}

TEST(Parser, RejectsTrailingGarbage) {
    TestEnv env;
    EXPECT_THROW(parse_query("PATTERN (A) DEFINE A AS TYPE='A' "
                             "WITHIN 10 EVENTS FROM EVERY 5 EVENTS banana",
                             env.schema),
                 ParseError);
}

TEST(Parser, StickyUnknownElementRejected) {
    TestEnv env;
    EXPECT_THROW(parse_query("PATTERN (A) DEFINE A AS TYPE='A' "
                             "WITHIN 10 EVENTS FROM EVERY 5 EVENTS STICKY (Z)",
                             env.schema),
                 ParseError);
}

TEST(Parser, SymbolInListAndNotEquals) {
    TestEnv env;
    const auto q = parse_query(
        "PATTERN (A) DEFINE A AS SYMBOL IN ('X','Y') AND SYMBOL != 'Z' "
        "WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
        env.schema);
    event::Event e;
    e.subject = env.schema->lookup_subject("Y");
    EvalContext ctx;
    ctx.current = &e;
    EXPECT_TRUE(eval_bool(q.pattern.elements[0].pred, ctx));
    e.subject = env.schema->lookup_subject("Z");
    EXPECT_FALSE(eval_bool(q.pattern.elements[0].pred, ctx));
}
