// CompileCache (DESIGN.md §15): structural sharing of compiled query
// artifacts across subscriber sessions. The two properties the shared plane
// leans on:
//   * a hit is exact — truncated-hash bucket collisions are resolved by full
//     signature compare, so a tiny hash can never hand back the wrong
//     artifact (differential against the full-width cache pins this);
//   * schema identity keys the entry — the "same" query against a different
//     stream's schema compiles fresh, and replacing a stream's schema
//     invalidates its cached artifacts naturally.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "detect/compile_cache.hpp"
#include "event/event.hpp"
#include "query/parser.hpp"

namespace spectre {
namespace {

std::shared_ptr<event::Schema> make_schema() {
    return std::make_shared<event::Schema>();
}

// Distinct-by-structure queries: the window length constant differs.
std::string query_text(int within) {
    return "PATTERN (R1 R2) "
           "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
           "WITHIN " + std::to_string(within) + " EVENTS FROM EVERY 10 EVENTS "
           "CONSUME ALL";
}

TEST(CompileCache, IdenticalQueriesShareOneArtifact) {
    const auto schema = make_schema();
    detect::CompileCache cache;

    const auto a = cache.get(query::parse_query(query_text(40), schema));
    const auto b = cache.get(query::parse_query(query_text(40), schema));
    EXPECT_EQ(a.get(), b.get()) << "same structure + schema must share";
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);

    const auto c = cache.get(query::parse_query(query_text(41), schema));
    EXPECT_NE(a.get(), c.get()) << "different window constant must not share";
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CompileCache, StructuralSignatureSeparatesConstantsAndPolicies) {
    const auto schema = make_schema();
    const auto sig = [&](const std::string& text) {
        return detect::structural_signature(query::parse_query(text, schema));
    };
    EXPECT_EQ(sig(query_text(40)), sig(query_text(40)));
    EXPECT_NE(sig(query_text(40)), sig(query_text(41)));
    // Consumption policy is part of the structure.
    EXPECT_NE(sig("PATTERN (R1 R2) "
                  "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
                  "WITHIN 40 EVENTS FROM EVERY 10 EVENTS CONSUME ALL"),
              sig("PATTERN (R1 R2) "
                  "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
                  "WITHIN 40 EVENTS FROM EVERY 10 EVENTS CONSUME (R1)"));
    // Payload definitions are part of the structure.
    EXPECT_NE(sig(query_text(40)),
              sig(query_text(40) + " EMIT gain = R2.close - R1.open"));
}

// The collision differential the truncation knob exists for: a 1-bit hash
// (two buckets) forces nearly every lookup through the full-signature
// confirm path. Behavior — which artifact each query maps to, and the
// hit/miss totals — must be identical to the full 64-bit cache.
TEST(CompileCache, TruncatedHashCollisionsNeverProduceFalseHits) {
    const auto schema = make_schema();
    detect::CompileCache tiny(1);
    detect::CompileCache full(64);

    constexpr int kQueries = 24;
    std::vector<std::shared_ptr<const detect::CompiledQuery>> tiny_first;
    std::vector<std::shared_ptr<const detect::CompiledQuery>> full_first;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < kQueries; ++i) {
            const auto t = tiny.get(query::parse_query(query_text(10 + i), schema));
            const auto f = full.get(query::parse_query(query_text(10 + i), schema));
            // The artifact must be the one compiled from *this* structure —
            // colliding buckets may share a chain, never an artifact.
            EXPECT_EQ(detect::structural_signature(t->query()),
                      detect::structural_signature(f->query()))
                << "i=" << i;
            if (round == 0) {
                tiny_first.push_back(t);
                full_first.push_back(f);
            } else {
                EXPECT_EQ(t.get(), tiny_first[static_cast<std::size_t>(i)].get());
                EXPECT_EQ(f.get(), full_first[static_cast<std::size_t>(i)].get());
            }
        }
    }
    EXPECT_EQ(tiny.stats().hits, full.stats().hits);
    EXPECT_EQ(tiny.stats().misses, full.stats().misses);
    EXPECT_EQ(tiny.size(), static_cast<std::size_t>(kQueries));
}

TEST(CompileCache, SchemaIdentityKeysTheEntry) {
    detect::CompileCache cache;
    const auto schema_a = make_schema();
    const auto schema_b = make_schema();  // structurally identical, distinct object

    const auto a = cache.get(query::parse_query(query_text(40), schema_a));
    const auto b = cache.get(query::parse_query(query_text(40), schema_b));
    EXPECT_NE(a.get(), b.get())
        << "same text against another stream's schema must compile fresh";
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);

    // Each schema's artifact stays independently cached.
    EXPECT_EQ(cache.get(query::parse_query(query_text(40), schema_a)).get(), a.get());
    EXPECT_EQ(cache.get(query::parse_query(query_text(40), schema_b)).get(), b.get());
    EXPECT_EQ(cache.stats().hits, 2u);
}

// Dropping a stream's schema (the last external reference) makes its entries
// evictable; a full cache sheds them instead of refusing new work.
TEST(CompileCache, StaleSchemaEntriesAreEvictedUnderPressure) {
    detect::CompileCache cache;
    auto stale = make_schema();
    const auto live = make_schema();

    cache.get(query::parse_query(query_text(40), stale));
    cache.get(query::parse_query(query_text(41), stale));
    EXPECT_EQ(cache.size(), 2u);
    stale.reset();  // the cache now holds the only references

    // Fill to capacity with live-schema entries; the stale ones must make
    // room rather than block caching.
    for (std::size_t i = 0; i < detect::CompileCache::kMaxEntries; ++i) {
        cache.get(query::parse_query(
            query_text(100 + static_cast<int>(i)), live));
    }
    EXPECT_LE(cache.size(), detect::CompileCache::kMaxEntries);
    // Live entries inserted after the evictions still hit.
    const auto before = cache.stats().hits;
    cache.get(query::parse_query(
        query_text(100 + static_cast<int>(detect::CompileCache::kMaxEntries) - 1),
        live));
    EXPECT_EQ(cache.stats().hits, before + 1);
}

}  // namespace
}  // namespace spectre
