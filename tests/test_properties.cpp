// Property-based sweeps over the framework's core invariants:
//   * SPECTRE == sequential for every query shape × random stream (the
//     paper's no-false-positives / no-false-negatives guarantee, §2.3);
//   * consumption can only remove matches, never add them;
//   * detector output well-formedness (sorted constituents inside the
//     window, consumed ⊆ constituents);
//   * Markov model monotonicity (more lookahead → more likely to complete;
//     larger δ → less likely) and probability bounds;
//   * window assignment coverage and monotone ends;
//   * dependency-tree invariants under randomized create/resolve fuzzing.
#include <gtest/gtest.h>

#include "model/fixed_model.hpp"
#include "model/markov_model.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/sim_runtime.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

namespace {

event::EventStore random_store(TestEnv& env, std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    event::EventStore store;
    for (std::size_t i = 0; i < n; ++i)
        store.append(env.ev(static_cast<char>('A' + rng.uniform_int(0, 4)),
                            static_cast<double>(rng.uniform_int(0, 9)),
                            static_cast<event::Timestamp>(i)));
    return store;
}

enum class Shape {
    SeqConsumeAll,
    SeqConsumeSubset,
    SeqNoConsume,
    Kleene,
    Set,
    Guard,
    Each,
    Sticky,
};

const Shape kShapes[] = {Shape::SeqConsumeAll, Shape::SeqConsumeSubset,
                         Shape::SeqNoConsume,  Shape::Kleene,
                         Shape::Set,           Shape::Guard,
                         Shape::Each,          Shape::Sticky};

const char* shape_name(Shape s) {
    switch (s) {
        case Shape::SeqConsumeAll: return "SeqConsumeAll";
        case Shape::SeqConsumeSubset: return "SeqConsumeSubset";
        case Shape::SeqNoConsume: return "SeqNoConsume";
        case Shape::Kleene: return "Kleene";
        case Shape::Set: return "Set";
        case Shape::Guard: return "Guard";
        case Shape::Each: return "Each";
        case Shape::Sticky: return "Sticky";
    }
    return "?";
}

query::Query make_shape(TestEnv& env, Shape shape) {
    using query::QueryBuilder;
    using query::WindowSpec;
    switch (shape) {
        case Shape::SeqConsumeAll:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .window(WindowSpec::sliding_count(20, 5))
                .consume_all()
                .build();
        case Shape::SeqConsumeSubset:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .single("C", env.is('C'))
                .window(WindowSpec::sliding_count(24, 6))
                .consume({"B"})
                .build();
        case Shape::SeqNoConsume:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .window(WindowSpec::sliding_count(20, 5))
                .build();
        case Shape::Kleene:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .plus("B", env.is('B'))
                .single("C", env.is('C'))
                .window(WindowSpec::sliding_count(30, 10))
                .consume_all()
                .build();
        case Shape::Set:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .set("S", {{"X", env.is('B')}, {"Y", env.is('C')}})
                .window(WindowSpec::sliding_count(25, 5))
                .consume_all()
                .build();
        case Shape::Guard:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .guard(env.is('E'))
                .window(WindowSpec::sliding_count(20, 4))
                .consume_all()
                .build();
        case Shape::Each:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .window(WindowSpec::sliding_count(12, 4))
                .select(query::SelectionPolicy::Each)
                .consume_all()
                .build();
        case Shape::Sticky:
            return QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .sticky()
                .single("B", env.is('B'))
                .window(WindowSpec::predicate_open_count(env.is('A'), 15))
                .consume({"B"})
                .build();
    }
    throw std::logic_error("unknown shape");
}

}  // namespace

// --------------------------------------------------------------------------
// SPECTRE == sequential across all shapes × seeds.
// --------------------------------------------------------------------------

class ShapeEquivalence : public ::testing::TestWithParam<std::tuple<Shape, int>> {};

TEST_P(ShapeEquivalence, SimulatedRuntimeMatchesSequential) {
    const auto [shape, seed] = GetParam();
    TestEnv env;
    const auto q = make_shape(env, shape);
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = random_store(env, 250, static_cast<std::uint64_t>(seed));

    const auto expected = sequential::SequentialEngine(&cq).run(store);

    core::SimConfig cfg;
    cfg.splitter.instances = 3;
    cfg.splitter.instance.consistency_check_freq = 8;
    cfg.batch_events = 16;
    cfg.model_contention = false;
    model::MarkovParams params;
    params.refresh_every = 150;
    core::SimRuntime sim(&store, &cq, cfg,
                         std::make_unique<model::MarkovModel>(cq.min_length(), params));
    const auto result = sim.run();

    ASSERT_EQ(expected.complex_events.size(), result.output.size()) << shape_name(shape);
    for (std::size_t i = 0; i < result.output.size(); ++i) {
        EXPECT_EQ(expected.complex_events[i].window_id, result.output[i].window_id);
        EXPECT_EQ(expected.complex_events[i].constituents, result.output[i].constituents);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ShapeEquivalence,
    ::testing::Combine(::testing::ValuesIn(kShapes), ::testing::Values(11, 12, 13, 14)),
    [](const ::testing::TestParamInfo<std::tuple<Shape, int>>& info) {
        return std::string(shape_name(std::get<0>(info.param))) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------------------------
// Consumption monotonicity: consuming can only remove complex events.
// --------------------------------------------------------------------------

class ConsumptionMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ConsumptionMonotone, ConsumeAllNeverAddsMatches) {
    TestEnv env;
    const auto store = random_store(env, 300, static_cast<std::uint64_t>(GetParam()));
    auto with = query::QueryBuilder(env.schema)
                    .single("A", env.is('A'))
                    .single("B", env.is('B'))
                    .window(query::WindowSpec::sliding_count(18, 6))
                    .consume_all()
                    .build();
    auto without = query::QueryBuilder(env.schema)
                       .single("A", env.is('A'))
                       .single("B", env.is('B'))
                       .window(query::WindowSpec::sliding_count(18, 6))
                       .build();
    const auto cq_with = detect::CompiledQuery::compile(with);
    const auto cq_without = detect::CompiledQuery::compile(without);
    const auto r_with = sequential::SequentialEngine(&cq_with).run(store);
    const auto r_without = sequential::SequentialEngine(&cq_without).run(store);
    EXPECT_LE(r_with.complex_events.size(), r_without.complex_events.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsumptionMonotone, ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------------------------------
// Detector well-formedness on random streams.
// --------------------------------------------------------------------------

class DetectorWellFormed : public ::testing::TestWithParam<int> {};

TEST_P(DetectorWellFormed, ConstituentsSortedInWindowConsumedSubset) {
    TestEnv env;
    const auto store = random_store(env, 300, static_cast<std::uint64_t>(GetParam()));
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(25, 5))
                 .consume({"B"})
                 .select(query::SelectionPolicy::Each)
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto windows = query::assign_windows(store, q.window);

    detect::Detector det(&cq);
    detect::Feedback fb;
    for (const auto& w : windows) {
        det.begin_window(w);
        for (event::Seq pos = w.first; pos <= w.last; ++pos) {
            fb.clear();
            det.on_event(store.at(pos), fb);
            for (const auto& done : fb.completed) {
                const auto& ce = done.complex_event;
                EXPECT_TRUE(std::is_sorted(ce.constituents.begin(), ce.constituents.end()));
                for (const auto s : ce.constituents) {
                    EXPECT_GE(s, w.first);
                    EXPECT_LE(s, w.last);
                }
                for (const auto s : done.consumed) {
                    EXPECT_TRUE(std::find(ce.constituents.begin(), ce.constituents.end(),
                                          s) != ce.constituents.end());
                }
            }
        }
        fb.clear();
        det.end_window(fb);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorWellFormed, ::testing::Values(21, 22, 23));

// --------------------------------------------------------------------------
// Markov model monotonicity and bounds across parameterizations.
// --------------------------------------------------------------------------

class MarkovProperties
    : public ::testing::TestWithParam<std::tuple<double /*alpha*/, int /*step*/>> {};

TEST_P(MarkovProperties, BoundedAndMonotone) {
    const auto [alpha, step] = GetParam();
    model::MarkovParams params;
    params.alpha = alpha;
    params.step = step;
    params.refresh_every = 100;
    model::MarkovModel m(10, params);
    // Noisy statistics: advance ~60% of the time.
    util::Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        for (int d = 10; d >= 1; --d) m.observe(d, rng.flip(0.6) ? d - 1 : d);
    }
    m.refresh();

    for (int delta = 0; delta <= 10; ++delta) {
        double prev = -1.0;
        for (const std::uint64_t n : {1ull, 5ull, 20ull, 100ull, 500ull}) {
            const double p = m.completion_probability(delta, n);
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
            // More events of lookahead can only help (absorbing chain).
            EXPECT_GE(p, prev - 1e-12) << "delta=" << delta << " n=" << n;
            prev = p;
        }
    }
    // Larger delta with the same lookahead can only hurt (monotone chain:
    // states only move downward).
    for (const std::uint64_t n : {10ull, 100ull}) {
        double prev = 2.0;
        for (int delta = 0; delta <= 10; ++delta) {
            const double p = m.completion_probability(delta, n);
            EXPECT_LE(p, prev + 1e-12) << "delta=" << delta << " n=" << n;
            prev = p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Params, MarkovProperties,
                         ::testing::Combine(::testing::Values(0.3, 0.7, 1.0),
                                            ::testing::Values(1, 10, 37)));

// --------------------------------------------------------------------------
// Window assignment properties across spec grids.
// --------------------------------------------------------------------------

class WindowProperties
    : public ::testing::TestWithParam<std::tuple<int /*size*/, int /*slide*/>> {};

TEST_P(WindowProperties, MonotoneCoverCorrectLengths) {
    const auto [size, slide] = GetParam();
    TestEnv env;
    const auto store = random_store(env, 157, 5);
    const auto wins = query::assign_windows(
        store, query::WindowSpec::sliding_count(static_cast<std::uint64_t>(size),
                                                static_cast<std::uint64_t>(slide)));
    ASSERT_FALSE(wins.empty());
    // Starts advance by exactly `slide`; ends are monotone; ids dense.
    for (std::size_t i = 0; i < wins.size(); ++i) {
        EXPECT_EQ(wins[i].id, i);
        EXPECT_EQ(wins[i].first, i * static_cast<std::uint64_t>(slide));
        EXPECT_LE(wins[i].length(), static_cast<std::uint64_t>(size));
        if (i > 0) {
            EXPECT_GE(wins[i].last, wins[i - 1].last);
        }
    }
    // Every event is covered by at least one window when slide <= size.
    if (slide <= size) {
        std::vector<bool> covered(store.size(), false);
        for (const auto& w : wins)
            for (event::Seq s = w.first; s <= w.last; ++s) covered[s] = true;
        for (const auto c : covered) EXPECT_TRUE(c);
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, WindowProperties,
                         ::testing::Combine(::testing::Values(8, 20, 64),
                                            ::testing::Values(3, 8, 40)));

// --------------------------------------------------------------------------
// Dependency-tree fuzz: random window/group operations keep the invariants.
// --------------------------------------------------------------------------

class TreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TreeFuzz, RandomOperationsKeepInvariants) {
    TestEnv env;
    auto cq = detect::CompiledQuery::compile(query::QueryBuilder(env.schema)
                                                 .single("A", env.is('A'))
                                                 .single("B", env.is('B'))
                                                 .window(query::WindowSpec::sliding_count(8, 2))
                                                 .consume_all()
                                                 .build());
    std::uint64_t next_id = 1;
    core::DependencyTree tree(
        [&](const query::WindowInfo& w, std::vector<core::CgPtr> suppressed) {
            return std::make_shared<core::WindowVersion>(next_id++, w, &cq,
                                                         std::move(suppressed));
        });
    util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    model::FixedModel half(0.5);

    std::uint64_t next_window = 0, next_cg = 1000;
    std::vector<core::CgPtr> pending;
    for (int step = 0; step < 200; ++step) {
        const auto dice = rng.uniform_int(0, 9);
        if (dice < 3 && next_window < 40) {
            tree.open_window(
                query::WindowInfo{next_window, next_window * 2, next_window * 2 + 7});
            ++next_window;
        } else if (dice < 7) {
            // Create a group under a random live version.
            const auto top = tree.top_k(16, half);
            if (!top.empty()) {
                const auto& owner =
                    top[static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(top.size()) - 1))];
                auto cg = std::make_shared<core::ConsumptionGroup>(
                    next_cg++, owner->window().id, owner->version_id(), 1);
                cg->add_event(owner->window().first);
                if (tree.on_group_created(cg)) pending.push_back(cg);
            }
        } else if (!pending.empty()) {
            const auto idx = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
            auto cg = pending[idx];
            pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
            const bool complete = rng.flip(0.5);
            cg->resolve(complete ? core::CgOutcome::Completed : core::CgOutcome::Abandoned);
            tree.on_group_resolved(cg, complete);
        }
        tree.check_invariants();
        // Survival probabilities are proper probabilities and the top-k walk
        // returns them in non-increasing order.
        const auto top = tree.top_k(8, half);
        double prev = 1.0 + 1e-12;
        for (const auto& wv : top) {
            const double sp = tree.survival_probability(wv->version_id(), half);
            EXPECT_GE(sp, 0.0);
            EXPECT_LE(sp, 1.0);
            EXPECT_LE(sp, prev + 1e-9);
            prev = sp;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzz, ::testing::Values(31, 32, 33, 34));
