// Randomized differential test for the compiled expression programs
// (DESIGN.md §5.1): thousands of random expression trees evaluated against
// random contexts must produce bit-identical results — value AND ok flag —
// between the tree walker (query::eval) and the flat bytecode (ExprProgram),
// including the unbound-BoundAttr and division-by-zero paths. A second suite
// runs whole random queries through the sequential engine in both detector
// eval modes and requires identical results end to end.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "detect/expr_program.hpp"
#include "sequential/seq_engine.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace spectre;
using namespace spectre::detect;
using query::BinOp;
using query::Expr;
using query::UnOp;

namespace {

constexpr std::size_t kBoundSlots = 5;

// Random expression tree over up to 4 attr slots, kBoundSlots binding slots,
// a small subject/type vocabulary, and every operator — biased toward the
// numeric ops so comparisons and divisions nest deeply.
Expr gen_expr(util::Rng& rng, int depth, bool allow_current) {
    const bool leaf = depth <= 0 || rng.flip(0.3);
    if (leaf) {
        switch (rng.uniform_int(0, allow_current ? 4 : 1)) {
            case 0: {
                // Constants including exact zero (division-by-zero fodder).
                static const double consts[] = {0.0, 1.0, -1.0, 0.5, 100.0, -3.25};
                return query::constant(consts[rng.uniform_int(0, 5)]);
            }
            case 1:
                return query::bound_attr(static_cast<int>(rng.uniform_int(0, kBoundSlots)),
                                         static_cast<event::AttrSlot>(rng.uniform_int(0, 3)));
            case 2:
                return query::attr(static_cast<event::AttrSlot>(rng.uniform_int(0, 3)));
            case 3: {
                std::vector<event::SubjectId> subjects;
                const int n = static_cast<int>(rng.uniform_int(1, 4));
                for (int i = 0; i < n; ++i)
                    subjects.push_back(static_cast<event::SubjectId>(rng.uniform_int(0, 7)));
                return query::subject_in(std::move(subjects));
            }
            default:
                return query::type_is(static_cast<event::TypeId>(rng.uniform_int(0, 7)));
        }
    }
    if (rng.flip(0.15))
        return query::unary(rng.flip(0.5) ? UnOp::Neg : UnOp::Not,
                            gen_expr(rng, depth - 1, allow_current));
    static const BinOp ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                                BinOp::Lt,  BinOp::Le,  BinOp::Gt,  BinOp::Ge,
                                BinOp::Eq,  BinOp::Ne,  BinOp::And, BinOp::Or};
    const BinOp op = ops[rng.uniform_int(0, 11)];
    return query::binary(op, gen_expr(rng, depth - 1, allow_current),
                         gen_expr(rng, depth - 1, allow_current));
}

event::Event gen_event(util::Rng& rng, event::Seq seq) {
    event::Event e;
    e.seq = seq;
    e.ts = static_cast<event::Timestamp>(seq);
    e.type = static_cast<event::TypeId>(rng.uniform_int(0, 7));
    e.subject = static_cast<event::SubjectId>(rng.uniform_int(0, 7));
    for (event::AttrSlot s = 0; s < 4; ++s) {
        // Mix of zeros (div-by-zero), negatives, and equal-prone values.
        const double v = rng.flip(0.2) ? 0.0 : static_cast<double>(rng.uniform_int(-4, 4));
        e.set_attr(s, v);
    }
    return e;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

}  // namespace

TEST(ExprProgram, RandomTreesBitIdenticalToTreeEval) {
    util::Rng rng(20260728);
    std::size_t unbound_hits = 0, div_by_zero_capable = 0;

    for (int t = 0; t < 4000; ++t) {
        const Expr tree = gen_expr(rng, static_cast<int>(rng.uniform_int(1, 6)), true);
        const ExprProgram prog = ExprProgram::compile(tree);
        ASSERT_TRUE(prog.valid());
        EvalScratch scratch;

        for (int c = 0; c < 8; ++c) {
            const event::Event current = gen_event(rng, static_cast<event::Seq>(c));
            // Bound slots with random gaps: unbound references must
            // short-circuit identically in both evaluators.
            std::vector<event::Event> pool;
            pool.reserve(kBoundSlots);
            std::vector<const event::Event*> bound(kBoundSlots, nullptr);
            for (std::size_t i = 0; i < kBoundSlots; ++i) {
                pool.push_back(gen_event(rng, static_cast<event::Seq>(100 + i)));
                if (rng.flip(0.6)) bound[i] = &pool.back();
            }

            query::EvalContext ctx;
            ctx.current = &current;
            ctx.bound = bound;

            bool tree_ok = true;
            const double tree_v = query::eval(*tree, ctx, tree_ok);
            bool prog_ok = true;
            const double prog_v = prog.run(&current, bound, prog_ok, scratch);

            ASSERT_EQ(tree_ok, prog_ok) << "ok flag diverged on tree " << t;
            ASSERT_EQ(bits(tree_v), bits(prog_v))
                << "value diverged on tree " << t << ": " << tree_v << " vs " << prog_v;

            // eval_bool parity (the predicate-path contract).
            ASSERT_EQ(query::eval_bool(tree, ctx),
                      prog.run_bool(&current, bound, scratch));

            if (!tree_ok) ++unbound_hits;
            if (std::isnan(tree_v) || std::isinf(tree_v)) ++div_by_zero_capable;
        }
    }
    // The generator must actually exercise the interesting paths.
    EXPECT_GT(unbound_hits, 100u);
    EXPECT_GT(div_by_zero_capable, 10u);
}

TEST(ExprProgram, PayloadStyleNullCurrentContexts) {
    // Payload expressions run with current == nullptr; restrict leaves to
    // constants and bound refs (an Attr would throw in both evaluators).
    util::Rng rng(777);
    for (int t = 0; t < 1000; ++t) {
        const Expr tree = gen_expr(rng, static_cast<int>(rng.uniform_int(1, 5)), false);
        const ExprProgram prog = ExprProgram::compile(tree);
        EvalScratch scratch;

        std::vector<event::Event> pool;
        pool.reserve(kBoundSlots);
        std::vector<const event::Event*> bound(kBoundSlots, nullptr);
        for (std::size_t i = 0; i < kBoundSlots; ++i) {
            pool.push_back(gen_event(rng, static_cast<event::Seq>(i)));
            if (rng.flip(0.5)) bound[i] = &pool.back();
        }

        query::EvalContext ctx;
        ctx.current = nullptr;
        ctx.bound = bound;

        bool tree_ok = true;
        const double tree_v = query::eval(*tree, ctx, tree_ok);
        bool prog_ok = true;
        const double prog_v = prog.run(nullptr, bound, prog_ok, scratch);

        ASSERT_EQ(tree_ok, prog_ok);
        ASSERT_EQ(bits(tree_v), bits(prog_v));
        // The engine's payload contract: unbound ⇒ 0.0.
        const double tree_payload = tree_ok ? tree_v : 0.0;
        const double prog_payload = prog_ok ? prog_v : 0.0;
        ASSERT_EQ(bits(tree_payload), bits(prog_payload));
    }
}

TEST(ExprProgram, DeepChainsStayWithinComputedStackDepth) {
    // Left- and right-leaning chains: the compiler's stack-need computation
    // must cover both shapes (right-leaning is the deep one in postfix).
    Expr left = query::constant(1.0);
    Expr right = query::constant(1.0);
    for (int i = 0; i < 200; ++i) {
        left = query::binary(BinOp::Add, left, query::constant(1.0));
        right = query::binary(BinOp::Add, query::constant(1.0), right);
    }
    const ExprProgram pl = ExprProgram::compile(left);
    const ExprProgram pr = ExprProgram::compile(right);
    EXPECT_EQ(pl.stack_depth(), 2u);
    EXPECT_EQ(pr.stack_depth(), 201u);

    EvalScratch scratch;
    bool ok = true;
    EXPECT_EQ(pl.run(nullptr, {}, ok, scratch), 201.0);
    EXPECT_EQ(pr.run(nullptr, {}, ok, scratch), 201.0);
    EXPECT_TRUE(ok);
}

namespace {

// Random end-to-end queries: both detector eval modes must produce identical
// SeqResults over identical random streams.
struct DiffEnv {
    std::shared_ptr<event::Schema> schema = std::make_shared<event::Schema>();
    event::AttrSlot v = schema->intern_attr("v");
    event::AttrSlot w = schema->intern_attr("w");
    std::vector<event::TypeId> types;
    std::vector<event::SubjectId> subjects;

    DiffEnv() {
        for (char c = 'A'; c <= 'E'; ++c) types.push_back(schema->intern_type(std::string(1, c)));
        for (int i = 0; i < 4; ++i)
            subjects.push_back(schema->intern_subject("S" + std::to_string(i)));
    }

    Expr rand_pred(util::Rng& rng, int max_bound_slot) {
        // A type test, optionally AND/OR-combined with an attribute
        // comparison that may reference an earlier binding slot.
        Expr base = query::type_is(types[rng.uniform_int(0, 4)]);
        if (rng.flip(0.5)) return base;
        Expr lhs = query::attr(rng.flip(0.5) ? v : w);
        Expr rhs = max_bound_slot >= 0 && rng.flip(0.5)
                       ? query::bound_attr(static_cast<int>(rng.uniform_int(0, max_bound_slot)),
                                           rng.flip(0.5) ? v : w)
                       : query::constant(static_cast<double>(rng.uniform_int(-2, 6)));
        static const BinOp cmps[] = {BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Ne};
        Expr cmp = query::binary(cmps[rng.uniform_int(0, 4)], std::move(lhs), std::move(rhs));
        return query::binary(rng.flip(0.5) ? BinOp::And : BinOp::Or, std::move(base),
                             std::move(cmp));
    }

    query::Query rand_query(util::Rng& rng) {
        query::QueryBuilder b(schema);
        const int elems = static_cast<int>(rng.uniform_int(2, 4));
        int slot = 0;
        for (int i = 0; i < elems; ++i) {
            const std::string name(1, static_cast<char>('P' + i));
            const int r = static_cast<int>(rng.uniform_int(0, 9));
            if (r < 6) {
                b.single(name, rand_pred(rng, slot - 1));
                ++slot;
            } else if (r < 8) {
                b.plus(name, rand_pred(rng, slot - 1));
                ++slot;
            } else {
                std::vector<query::SetMember> members;
                const int n = static_cast<int>(rng.uniform_int(2, 3));
                for (int j = 0; j < n; ++j)
                    members.push_back(query::SetMember{name + std::to_string(j),
                                                       rand_pred(rng, slot - 1)});
                b.set(name, std::move(members));
                slot += n + 1;
                continue;
            }
            if (rng.flip(0.2)) b.guard(rand_pred(rng, -1));
        }
        b.window(query::WindowSpec::sliding_count(
            static_cast<std::uint64_t>(rng.uniform_int(10, 30)),
            static_cast<std::uint64_t>(rng.uniform_int(3, 10))));
        switch (rng.uniform_int(0, 2)) {
            case 0: b.consume_none(); break;
            case 1: b.consume_all(); break;
            default: b.consume({"P"}); break;
        }
        if (rng.flip(0.4)) {
            b.select(query::SelectionPolicy::Each);
            b.max_matches(static_cast<int>(rng.uniform_int(0, 4)));
        }
        if (rng.flip(0.5))
            b.emit("val", query::binary(BinOp::Div,
                                        query::bound_attr(0, v),
                                        query::bound_attr(0, w)));
        return b.build();
    }

    event::EventStore rand_store(util::Rng& rng, std::size_t n) {
        event::EventStore s;
        for (std::size_t i = 0; i < n; ++i) {
            event::Event e;
            e.seq = i;
            e.ts = static_cast<event::Timestamp>(i);
            e.type = types[rng.uniform_int(0, 4)];
            e.subject = subjects[rng.uniform_int(0, 3)];
            e.set_attr(v, static_cast<double>(rng.uniform_int(-3, 6)));
            e.set_attr(w, rng.flip(0.15) ? 0.0 : static_cast<double>(rng.uniform_int(1, 5)));
            s.append(e);
        }
        return s;
    }
};

// Bit-exact complex-event comparison: payload doubles are compared by bit
// pattern, so a NaN payload (0/0 from the random divisions) must match the
// other engine's NaN exactly instead of poisoning operator== (NaN != NaN).
bool bit_identical(const std::vector<event::ComplexEvent>& a,
                   const std::vector<event::ComplexEvent>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].window_id != b[i].window_id) return false;
        if (a[i].constituents != b[i].constituents) return false;
        if (a[i].payload.size() != b[i].payload.size()) return false;
        for (std::size_t j = 0; j < a[i].payload.size(); ++j) {
            if (a[i].payload[j].first != b[i].payload[j].first) return false;
            if (bits(a[i].payload[j].second) != bits(b[i].payload[j].second)) return false;
        }
    }
    return true;
}

}  // namespace

TEST(ExprProgram, DetectorModesProduceIdenticalSequentialRuns) {
    DiffEnv env;
    util::Rng rng(42424242);
    std::size_t total_ces = 0;
    for (int t = 0; t < 60; ++t) {
        const auto q = env.rand_query(rng);
        const auto cq = CompiledQuery::compile(q);
        const auto store = env.rand_store(rng, 300);

        const sequential::SequentialEngine compiled(&cq, EvalMode::Compiled);
        const sequential::SequentialEngine tree(&cq, EvalMode::Tree);
        const auto rc = compiled.run(store);
        const auto rt = tree.run(store);

        ASSERT_TRUE(bit_identical(rc.complex_events, rt.complex_events)) << "query " << t;
        total_ces += rc.complex_events.size();
        EXPECT_EQ(rc.stats.events_processed, rt.stats.events_processed);
        EXPECT_EQ(rc.stats.events_suppressed, rt.stats.events_suppressed);
        EXPECT_EQ(rc.stats.groups_created, rt.stats.groups_created);
        EXPECT_EQ(rc.stats.groups_completed, rt.stats.groups_completed);
        EXPECT_EQ(rc.stats.groups_abandoned, rt.stats.groups_abandoned);
    }
    EXPECT_GT(total_ces, 100u) << "random queries must actually produce matches";
}
