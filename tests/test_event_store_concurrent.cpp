// Concurrency contract of the chunked EventStore (DESIGN.md §6): one writer
// appends while many readers follow the frontier; published events are
// immutable with stable addresses; the closed flag hands the final length to
// readers. The stress tests are written to be clean under ThreadSanitizer
// (configure with -DSPECTRE_TSAN=ON): readers only touch seqs below an
// acquired frontier, so any racy access is a real bug, not test noise.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "event/stream.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

TEST(EventStoreChunks, AddressesStableAcrossChunkBoundaries) {
    TestEnv env;
    event::EventStore store;
    const std::size_t n = event::EventStore::kChunkSize * 2 + 17;

    store.append(env.ev('A', 0.0, 0));
    const event::Event* first = &store.at(0);
    for (std::size_t i = 1; i < n; ++i)
        store.append(env.ev('A', static_cast<double>(i), static_cast<event::Timestamp>(i)));

    // No reallocation ever moves a published event.
    EXPECT_EQ(first, &store.at(0));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(store.at(i).seq, i);
        EXPECT_EQ(store.at(i).ts, static_cast<event::Timestamp>(i));
    }
    EXPECT_EQ(store.size(), n);
}

TEST(EventStoreChunks, RangeSpansChunkBoundary) {
    TestEnv env;
    event::EventStore store;
    const std::size_t n = event::EventStore::kChunkSize + 10;
    for (std::size_t i = 0; i < n; ++i)
        store.append(env.ev('A', static_cast<double>(i), static_cast<event::Timestamp>(i)));

    const auto r = store.range(event::EventStore::kChunkSize - 5,
                               event::EventStore::kChunkSize + 4);
    ASSERT_EQ(r.size(), 10u);
    std::size_t i = 0;
    for (const auto& e : r) {
        EXPECT_EQ(e.seq, event::EventStore::kChunkSize - 5 + i);
        ++i;
    }
    EXPECT_EQ(r.front().seq, event::EventStore::kChunkSize - 5);
    EXPECT_EQ(r.back().seq, event::EventStore::kChunkSize + 4);
}

TEST(EventStoreChunks, CloseRejectsFurtherAppends) {
    TestEnv env;
    event::EventStore store;
    store.append(env.ev('A', 1, 0));
    EXPECT_FALSE(store.closed());
    store.close();
    EXPECT_TRUE(store.closed());
    EXPECT_THROW(store.append(env.ev('B', 2, 1)), std::invalid_argument);
    EXPECT_EQ(store.size(), 1u);
}

TEST(EventStoreChunks, MoveTransfersContentsAndLeavesSourceEmpty) {
    TestEnv env;
    event::EventStore a;
    for (int i = 0; i < 5; ++i)
        a.append(env.ev('A', static_cast<double>(i), static_cast<event::Timestamp>(i)));
    a.close();

    event::EventStore b = std::move(a);
    EXPECT_EQ(b.size(), 5u);
    EXPECT_TRUE(b.closed());
    EXPECT_EQ(b.at(3).ts, 3);
    EXPECT_EQ(a.size(), 0u);
    EXPECT_FALSE(a.closed());
    a.append(env.ev('B', 0, 0));  // moved-from store is reusable
    EXPECT_EQ(a.size(), 1u);
}

// One writer, several readers chasing the frontier: every event a reader can
// see (seq < size()) must be fully published — seq assigned, payload intact —
// and its address must never change.
TEST(EventStoreConcurrent, WriterWithChasingReaders) {
    TestEnv env;
    event::EventStore store;
    constexpr std::size_t kTotal = 150'000;  // crosses many chunk boundaries
    constexpr int kReaders = 3;

    std::atomic<bool> failed{false};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&store, &failed] {
            std::size_t seen = 0;
            const event::Event* addr0 = nullptr;
            while (seen < kTotal && !failed.load(std::memory_order_relaxed)) {
                const std::size_t frontier = store.size();
                if (frontier == 0) continue;
                if (addr0 == nullptr) addr0 = &store.at(0);
                // Validate the newly visible suffix plus a stable-address probe.
                for (std::size_t i = seen; i < frontier; ++i) {
                    const auto& e = store.at(i);
                    if (e.seq != i || e.ts != static_cast<event::Timestamp>(i) ||
                        e.attr(0) != static_cast<double>(i % 1024)) {
                        failed.store(true, std::memory_order_relaxed);
                        return;
                    }
                }
                if (addr0 != &store.at(0)) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
                seen = frontier;
            }
        });
    }

    for (std::size_t i = 0; i < kTotal; ++i)
        store.append(env.ev('A', static_cast<double>(i % 1024),
                            static_cast<event::Timestamp>(i)));
    store.close();

    for (auto& t : readers) t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(store.size(), kTotal);
}

// Range views taken below the frontier stay valid while the writer appends.
TEST(EventStoreConcurrent, RangesSurviveConcurrentAppend) {
    TestEnv env;
    event::EventStore store;
    constexpr std::size_t kTotal = 60'000;

    std::atomic<bool> failed{false};
    std::thread reader([&store, &failed] {
        while (store.size() < kTotal && !failed.load(std::memory_order_relaxed)) {
            const std::size_t frontier = store.size();
            if (frontier < 100) continue;
            const auto r = store.range(frontier - 100, frontier - 1);
            std::size_t expect = frontier - 100;
            for (const auto& e : r) {
                if (e.seq != expect++) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }
    });

    for (std::size_t i = 0; i < kTotal; ++i)
        store.append(env.ev('A', 0.0, static_cast<event::Timestamp>(i)));
    reader.join();
    EXPECT_FALSE(failed.load());
}

// The closed flag publishes the final length: once a reader observes
// closed(), the very next size() read is the stream's end.
TEST(EventStoreConcurrent, CloseHandsOffFinalSize) {
    TestEnv env;
    for (int rep = 0; rep < 20; ++rep) {
        event::EventStore store;
        constexpr std::size_t kTotal = 5'000;
        std::size_t final_size = 0;
        std::thread reader([&store, &final_size] {
            while (!store.closed()) {
            }
            final_size = store.size();
        });
        for (std::size_t i = 0; i < kTotal; ++i)
            store.append(env.ev('A', 0.0, static_cast<event::Timestamp>(i)));
        store.close();
        reader.join();
        EXPECT_EQ(final_size, kTotal) << "rep=" << rep;
    }
}

TEST(LiveStreamTest, DeliversPushedEventsThenEndOfStream) {
    TestEnv env;
    event::LiveStream stream;
    stream.push(env.ev('A', 1, 0));
    stream.push_all({env.ev('B', 2, 1), env.ev('C', 3, 2)});
    stream.close();

    auto a = stream.next();
    auto b = stream.next();
    auto c = stream.next();
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(a->ts, 0);
    EXPECT_EQ(b->ts, 1);
    EXPECT_EQ(c->ts, 2);
    EXPECT_EQ(stream.next(), std::nullopt);
    EXPECT_EQ(stream.next(), std::nullopt);  // stays at end-of-stream
    EXPECT_THROW(stream.push(env.ev('D', 4, 3)), std::invalid_argument);
}

TEST(LiveStreamTest, BlockingNextWakesOnPush) {
    TestEnv env;
    event::LiveStream stream;
    std::thread producer([&stream, &env] {
        for (int i = 0; i < 1000; ++i)
            stream.push(env.ev('A', static_cast<double>(i), i));
        stream.close();
    });
    std::size_t got = 0;
    while (auto e = stream.next()) {
        EXPECT_EQ(e->ts, static_cast<event::Timestamp>(got));
        ++got;
    }
    producer.join();
    EXPECT_EQ(got, 1000u);
}
