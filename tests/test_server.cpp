// Multi-session CEP server (DESIGN.md §8, §9): many concurrent clients, each
// with its own query and engine, over one epoll reactor and a shared engine
// worker pool. The acceptance bar is the parity invariant extended to the
// wire: each session's RESULT stream — received over TCP, in arrival order —
// must be byte-identical (events, payloads, window order) to a
// SequentialEngine run over that session's input, and results must
// observably arrive before the client ends its stream (streaming egress).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "harness/load_gen.hpp"
#include "net/tcp.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"
#include "server_test_util.hpp"

using namespace spectre;
using namespace spectre::testing;

// ---------------------------------------------------------------------------
// The acceptance-criteria test: >= 4 concurrent clients, different queries,
// one CepServer; each RESULT stream byte-identical to a sequential run of
// that session's input; results observably arrive before end-of-stream.
// ---------------------------------------------------------------------------

TEST(CepServer, FourConcurrentSessionsMatchSequentialByteForByte) {
    server::CepServer srv;
    srv.start();

    // Four sessions: distinct queries, distinct inputs, a mix of sequential
    // (k=0) and speculative SPECTRE (k>0) engines. Each blocks mid-stream
    // until its first RESULT arrives, proving egress precedes end-of-stream.
    std::vector<harness::LoadGenSession> specs(4);
    specs[0] = make_session(kRisingPairQuery, 0, wire_events(600, 11), /*wait_result_after=*/300);
    specs[1] = make_session(kRisingTripleQuery, 2, wire_events(500, 22), /*wait_result_after=*/250);
    specs[2] = make_session(kFallingPairQuery, 1, wire_events(550, 33, 30, 0.4),
                /*wait_result_after=*/275);
    specs[3] = make_session(kLeaderQuery, 2, wire_events(450, 44), /*wait_result_after=*/225);

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto& out = outcomes[i];
        const std::string label = "session " + std::to_string(i);
        EXPECT_TRUE(out.error.empty()) << label << ": " << out.error;
        EXPECT_TRUE(out.completed) << label;
        // Streaming egress: at least one result arrived before BYE was sent.
        EXPECT_GE(out.results_before_bye, 1u) << label;
        EXPECT_EQ(out.server_reported_results, out.results.size()) << label;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              out.results, label);
    }

    srv.stop();
    const auto stats = srv.stats();
    EXPECT_EQ(stats.sessions_accepted, 4u);
    EXPECT_EQ(stats.sessions_completed, 4u);
    EXPECT_EQ(stats.sessions_failed, 0u);
    EXPECT_EQ(stats.events_ingested, 600u + 500 + 550 + 450);
    // Pool hygiene (§9): the engines multiplexed over the shared workers and
    // every task drained.
    EXPECT_GE(stats.quanta_executed, 4u);
    EXPECT_EQ(stats.tasks_added, 4u);
    EXPECT_EQ(stats.tasks_finished, 4u);
    EXPECT_EQ(stats.tasks_live, 0u);
    EXPECT_EQ(stats.sessions_live, 0u);
}

// ---------------------------------------------------------------------------
// Handshake versioning (§15): v1 HELLO sessions are untouched by the v2
// handshake — same engine selection, no capability echo injected into their
// RESULT stream, byte-identical output — even while v2 publisher/subscriber
// sessions share the same server.
// ---------------------------------------------------------------------------

TEST(CepServer, HelloV1SessionsUnchangedAlongsideV2Sessions) {
    server::CepServer srv;
    srv.start();

    const auto shared_wire = wire_events(500, 91);
    harness::PublisherClient pub("127.0.0.1", srv.port(), "v2stream");
    ASSERT_TRUE(pub.ok()) << pub.error();
    harness::SubscriberClient::Spec spec;
    spec.stream = "v2stream";
    spec.query = kRisingPairQuery;
    harness::SubscriberClient sub("127.0.0.1", srv.port(), std::move(spec));
    ASSERT_TRUE(sub.ok()) << sub.error();

    harness::LoadGenOutcome sub_out;
    std::thread sub_thread([&] { sub_out = sub.run(); });

    // The v1 session runs concurrently with the v2 pair. Its outcome is the
    // pre-§15 contract verbatim: HELLO → RESULTs → BYE, nothing else (the
    // LoadGen driver rejects any unexpected frame as a protocol error).
    const auto v1_wire = wire_events(600, 92);
    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto v1_out = client.run_one(make_session(kRisingTripleQuery, 2, v1_wire));

    pub.publish(shared_wire);
    EXPECT_TRUE(pub.finish()) << pub.error();
    sub_thread.join();

    EXPECT_TRUE(v1_out.error.empty()) << v1_out.error;
    EXPECT_TRUE(v1_out.completed);
    expect_byte_identical(sequential_ground_truth(kRisingTripleQuery, v1_wire),
                          v1_out.results, "v1 session");
    EXPECT_TRUE(sub_out.completed) << sub_out.error;
    expect_byte_identical(sequential_ground_truth(kRisingPairQuery, shared_wire),
                          sub_out.results, "v2 subscriber");
    srv.stop();
}

// ---------------------------------------------------------------------------
// Failure isolation: a corrupt frame fails only its own session.
// ---------------------------------------------------------------------------

TEST(CepServer, CorruptFrameFailsOnlyThatSession) {
    server::CepServer srv;
    srv.start();

    std::vector<harness::LoadGenSession> specs(3);
    specs[0] = make_session(kRisingPairQuery, 0, wire_events(400, 55));
    specs[1] = make_session(kRisingPairQuery, 2, wire_events(400, 66));
    specs[1].corrupt_after = 100;  // injects an invalid frame tag mid-stream
    specs[2] = make_session(kRisingTripleQuery, 0, wire_events(400, 77));

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);

    // The corrupted session got an ERROR frame and was disconnected.
    EXPECT_FALSE(outcomes[1].completed);
    EXPECT_FALSE(outcomes[1].error.empty());

    // Its neighbours are untouched and still byte-identical.
    for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        const std::string label = "session " + std::to_string(i);
        EXPECT_TRUE(outcomes[i].error.empty()) << label << ": " << outcomes[i].error;
        EXPECT_TRUE(outcomes[i].completed) << label;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              outcomes[i].results, label);
    }

    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 1u);
    EXPECT_EQ(srv.stats().sessions_completed, 2u);
}

// ---------------------------------------------------------------------------
// Death mid-frame: a truncated final DATA frame is a surfaced stream error,
// not a silent drop; the server survives and other sessions are unaffected.
// ---------------------------------------------------------------------------

TEST(CepServer, ClientDeathMidFrameIsIsolated) {
    server::CepServer srv;
    srv.start();

    std::vector<harness::LoadGenSession> specs(2);
    specs[0] = make_session(kRisingPairQuery, 1, wire_events(300, 88));
    specs[0].truncate_frame_at_event = 150;  // dies halfway through a frame
    specs[1] = make_session(kRisingPairQuery, 0, wire_events(300, 99));

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);

    EXPECT_FALSE(outcomes[0].completed);
    EXPECT_TRUE(outcomes[1].completed) << outcomes[1].error;
    expect_byte_identical(sequential_ground_truth(specs[1].query, specs[1].events),
                          outcomes[1].results, "survivor");

    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 1u);
}

// ---------------------------------------------------------------------------
// Session protocol errors.
// ---------------------------------------------------------------------------

TEST(CepServer, MalformedQueryGetsErrorFrame) {
    server::CepServer srv;
    srv.start();

    harness::LoadGenClient client("127.0.0.1", srv.port());
    harness::LoadGenSession spec;
    spec.query = "PATTERN (A DEFINE oops";
    spec.instances = 1;
    spec.events = wire_events(10, 1);
    const auto out = client.run_one(spec);

    EXPECT_FALSE(out.completed);
    EXPECT_NE(out.error.find("HELLO rejected"), std::string::npos) << out.error;

    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 1u);
}

TEST(CepServer, InstancesBeyondServerLimitRejected) {
    const server::ServerConfig cfg =
        server::ServerConfigBuilder{}.max_instances(2).build();
    server::CepServer srv(cfg);
    srv.start();

    harness::LoadGenClient client("127.0.0.1", srv.port());
    harness::LoadGenSession spec;
    spec.query = kRisingPairQuery;
    spec.instances = 16;
    spec.events = wire_events(10, 1);
    const auto out = client.run_one(spec);

    EXPECT_FALSE(out.completed);
    EXPECT_NE(out.error.find("instances exceed"), std::string::npos) << out.error;
    srv.stop();
}

// ---------------------------------------------------------------------------
// The metrics plane (DESIGN.md §12): the in-band STATS frame and the
// reactor-hosted admin scrape endpoint, both against a *live* server.
// ---------------------------------------------------------------------------

namespace {

// High result volume per input event (the test_pool_stress shape): the
// egress byte count dwarfs the shrunken socket buffers, so the slow-reader
// session below parks on egress credit quickly.
const char* kFatResultQuery =
    "PATTERN (R1 R2) "
    "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 20 EVENTS FROM EVERY 2 EVENTS "
    "EMIT open1 = R1.open, close1 = R1.close, open2 = R2.open, "
    "     close2 = R2.close, gain = R2.close - R1.open, spread = R2.close - R2.open";

// Minimal scrape client: one HTTP/1.0 GET against the admin port, response
// read to EOF (the server closes once the body is flushed).
std::string http_scrape(std::uint16_t port) {
    net::TcpClient conn("127.0.0.1", port);
    const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
    conn.send_raw(reinterpret_cast<const std::uint8_t*>(req.data()), req.size());
    std::string resp;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
            resp.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;
    }
    return resp;
}

// Value of an unlabeled series in a Prometheus text exposition; 0 if absent.
std::uint64_t series_value(const std::string& text, const std::string& name) {
    const auto pos = text.find("\n" + name + " ");
    if (pos == std::string::npos) return 0;
    return std::strtoull(text.c_str() + pos + 1 + name.size() + 1, nullptr, 10);
}

}  // namespace

// A STATS request sent mid-stream gets a JSON reply riding the ordinary
// egress stream — interleaved with RESULT frames, without perturbing the
// byte-parity invariant.
TEST(CepServer, StatsFrameAnswersMidStream) {
    server::CepServer srv;
    srv.start();

    auto spec = make_session(kRisingTripleQuery, 2, wire_events(600, 77),
                             /*wait_result_after=*/300);
    spec.stats_after = 200;

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto out = client.run_one(spec);

    ASSERT_TRUE(out.completed) << out.error;
    ASSERT_EQ(out.stats_json.size(), 1u);
    const std::string& j = out.stats_json.front();
    // Both scopes of the reply: server-wide aggregate + this session's own.
    EXPECT_NE(j.find("\"server\":{"), std::string::npos) << j.substr(0, 200);
    EXPECT_NE(j.find("\"session\":{"), std::string::npos) << j.substr(0, 200);
    EXPECT_NE(j.find("\"events_ingested\":"), std::string::npos);
    EXPECT_NE(j.find("\"result_latency_ns\":"), std::string::npos);

    // The interleaved STATS exchange didn't perturb the RESULT stream.
    expect_byte_identical(sequential_ground_truth(spec.query, spec.events),
                          out.results, "stats-mid-stream");
    srv.stop();
}

// Scraping the admin endpoint must work against a *live* loaded server —
// here one whose only session is parked on egress backpressure — without
// stopping any worker, and counters must be monotone between scrapes.
TEST(CepServer, AdminScrapeIsLiveAndMonotoneDuringBackpressure) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                          .pool_workers(2)
                                          .egress_buffer_bytes(2048)  // tiny credit: park quickly
                                          .quantum_windows(1)
                                          .session_sndbuf(8192)
                                          .build();
    server::CepServer srv(cfg);
    srv.start();

    auto gate = std::make_shared<std::atomic<bool>>(false);
    auto spec = make_session(kFatResultQuery, 0, wire_events(1500, 11, 40, 0.7));
    spec.read_gate = gate;
    spec.rcvbuf = 8192;

    harness::LoadGenClient client("127.0.0.1", srv.port());
    harness::LoadGenOutcome out;
    std::thread driver([&] { out = client.run_one(spec); });

    // Wait until the session is parked on egress credit — the server is now
    // "stuck" from the session's point of view, but the scrape must not be.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (srv.stats().parks_egress < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GE(srv.stats().parks_egress, 1u) << "session never parked on egress";

    const std::string scrape1 = http_scrape(srv.admin_port());
    EXPECT_NE(scrape1.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(scrape1.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(scrape1.find("# TYPE spectre_events_ingested counter"),
              std::string::npos);
    // Live-session series: the parked session is visible in the aggregate.
    EXPECT_EQ(series_value(scrape1, "spectre_sessions_live"), 1u);
    EXPECT_GE(series_value(scrape1, "spectre_parks_egress"), 1u);
    EXPECT_GE(series_value(scrape1, "spectre_events_ingested"), 1u);
    // The lifecycle histograms are exposed (results were emitted pre-park).
    EXPECT_NE(scrape1.find("spectre_result_latency_ns_count"), std::string::npos);

    const std::string scrape2 = http_scrape(srv.admin_port());
    EXPECT_GE(series_value(scrape2, "spectre_events_ingested"),
              series_value(scrape1, "spectre_events_ingested"))
        << "counter went backwards between live scrapes";

    // Unpark: the slow reader drains, the session completes, and a final
    // scrape (still on the live server) stays monotone across the session's
    // shard retirement — the fold must not lose counts.
    gate->store(true, std::memory_order_release);
    driver.join();
    ASSERT_TRUE(out.completed) << out.error;

    const std::string scrape3 = http_scrape(srv.admin_port());
    EXPECT_GE(series_value(scrape3, "spectre_events_ingested"),
              series_value(scrape2, "spectre_events_ingested"));
    EXPECT_EQ(series_value(scrape3, "spectre_events_ingested"), 1500u);
    EXPECT_EQ(series_value(scrape3, "spectre_sessions_completed"), 1u);
    EXPECT_EQ(series_value(scrape3, "spectre_results_emitted"),
              out.results.size());

    srv.stop();
}

// The admin endpoint is an HTTP server, not an echo chamber: anything that
// is not a GET — a POST, a stray TLS ClientHello, plain garbage — gets a 400
// and the close, never a 200 with a metrics body. (It used to answer any
// EOF'd garbage with the full scrape.)
TEST(CepServer, AdminScrapeRejectsNonGetRequests) {
    server::CepServer srv;
    srv.start();

    const auto send_raw_expect = [&](const std::string& req) {
        net::TcpClient conn("127.0.0.1", srv.admin_port());
        conn.send_raw(reinterpret_cast<const std::uint8_t*>(req.data()), req.size());
        ::shutdown(conn.fd(), SHUT_WR);  // EOF the request side
        std::string resp;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
            if (n > 0) {
                resp.append(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            break;
        }
        return resp;
    };

    const std::string post = send_raw_expect("POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.0 400"), std::string::npos) << post.substr(0, 120);
    EXPECT_EQ(post.find("spectre_"), std::string::npos) << "400 carried a body";

    const std::string garbage = send_raw_expect("\x16\x03\x01\x02garbage");
    EXPECT_NE(garbage.find("HTTP/1.0 400"), std::string::npos)
        << garbage.substr(0, 120);

    // The half-close tolerance the fix must preserve: a bare GET with no
    // headers, EOF'd immediately, still gets the scrape.
    const std::string bare = send_raw_expect("GET /\r\n");
    EXPECT_NE(bare.find("HTTP/1.0 200 OK"), std::string::npos) << bare.substr(0, 120);
    EXPECT_NE(bare.find("spectre_events_ingested"), std::string::npos);

    srv.stop();
}

// stats_after beyond the stream length used to silently skip the STATS
// request (the latch compared with == on the way past). Now the request is
// honored just before BYE and the reply still arrives.
TEST(CepServer, StatsRequestedBeyondStreamStillAnswered) {
    server::CepServer srv;
    srv.start();

    auto spec = make_session(kRisingTripleQuery, 2, wire_events(200, 31));
    spec.stats_after = 100000;  // > events.size(): fires on the pre-BYE latch

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto out = client.run_one(spec);

    ASSERT_TRUE(out.completed) << out.error;
    EXPECT_FALSE(out.stats_missed);
    ASSERT_EQ(out.stats_json.size(), 1u);
    EXPECT_NE(out.stats_json.front().find("\"events_ingested\":"), std::string::npos);
    expect_byte_identical(sequential_ground_truth(spec.query, spec.events),
                          out.results, "stats-beyond-stream");
    srv.stop();
}

// When fault injection kills the stream before the STATS request could be
// sent, the outcome must say so instead of leaving an empty stats_json that
// reads like "no reply yet".
TEST(CepServer, StatsMissReportedWhenStreamTruncates) {
    server::CepServer srv;
    srv.start();

    auto spec = make_session(kRisingPairQuery, 0, wire_events(200, 13));
    spec.truncate_frame_at_event = 50;  // die mid-frame at event 50
    spec.stats_after = 120;             // never reached

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto out = client.run_one(spec);

    EXPECT_FALSE(out.completed);
    EXPECT_TRUE(out.stats_missed);
    EXPECT_TRUE(out.stats_json.empty());
    // The client returns the instant it hard-closes; the server notices the
    // mid-frame death asynchronously.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (srv.stats().sessions_failed < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(srv.stats().sessions_failed, 1u);
    srv.stop();
}

// Elastic partitioning end to end (§13): a sharded session under an active
// ReshardPolicy — grow and steal waves firing off live lane metrics while a
// skewed stream (one symbol dominating) flows — must stay byte-identical to
// the partitioned oracle. Adaptivity may only move lanes, never results.
TEST(CepServer, AdaptiveReshardingSessionStaysByteIdentical) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                          .pool_workers(2)
                                          .quantum_steps(4)
                                          .reshard_every_events(50)  // policy ON
                                          .reshard_steal(1, 1.5)
                                          .reshard_grow(4, 4)
                                          .build();
    server::CepServer srv(cfg);
    srv.start();

    const char* kPartitioned =
        "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
        "WITHIN 12 EVENTS FROM EVERY 4 EVENTS PARTITION BY SUBJECT CONSUME ALL";
    // Skewed input: few symbols means one shard starts with most of the
    // load under S=2 static hashing — exactly what the controller targets.
    auto spec = make_session(kPartitioned, 1, wire_events(1200, 555, /*symbols=*/6));
    spec.shards = 2;

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto out = client.run_one(spec);

    ASSERT_TRUE(out.error.empty()) << out.error;
    ASSERT_TRUE(out.completed);
    expect_byte_identical(
        harness::partitioned_oracle(spec.query, spec.events, /*hello_key=*/""),
        out.results, "adaptive-resharding");

    // The migration ledger is published on the unified metrics plane.
    const std::string scrape = http_scrape(srv.admin_port());
    EXPECT_NE(scrape.find("spectre_lane_migrations"), std::string::npos);
    EXPECT_NE(scrape.find("spectre_reshards"), std::string::npos);

    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 0u);
    EXPECT_EQ(srv.stats().sessions_completed, 1u);
}

// The §13 shrink leg end to end: a generous shrink policy (every window is
// "quiet") keeps halving the active width while grow pressure pushes it back
// up — the width oscillates, the results must not move. Closes ROADMAP's
// "controller never shrinks" honest limit.
TEST(CepServer, ShrinkEnabledAdaptiveSessionStaysByteIdentical) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .pool_workers(2)
                                         .quantum_steps(4)
                                         .reshard_every_events(40)   // policy ON
                                         .reshard_grow(4, 2)
                                         .reshard_shrink(1 << 20, 2) // everything is quiet
                                         .build();
    server::CepServer srv(cfg);
    srv.start();

    const char* kPartitioned =
        "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
        "WITHIN 12 EVENTS FROM EVERY 4 EVENTS PARTITION BY SUBJECT CONSUME ALL";
    auto spec = make_session(kPartitioned, 1, wire_events(1500, 777, /*symbols=*/8));
    spec.shards = 4;

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto out = client.run_one(spec);

    ASSERT_TRUE(out.error.empty()) << out.error;
    ASSERT_TRUE(out.completed);
    expect_byte_identical(
        harness::partitioned_oracle(spec.query, spec.events, /*hello_key=*/""),
        out.results, "shrink-enabled");
    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 0u);
}

// Same input + same query through the sequential (k=0) and speculative (k>0)
// engines, concurrently, over the wire: the parity invariant end to end.
TEST(CepServer, SequentialAndSpectreSessionsAgree) {
    server::CepServer srv;
    srv.start();

    const auto wire = wire_events(500, 123);
    harness::LoadGenClient client("127.0.0.1", srv.port());

    std::vector<harness::LoadGenSession> specs(2);
    specs[0] = make_session(kRisingTripleQuery, 0, wire);  // sequential reference
    specs[1] = make_session(kRisingTripleQuery, 3, wire);  // speculative SPECTRE, k=3
    const auto outcomes = client.run(specs);

    ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
    ASSERT_TRUE(outcomes[1].completed) << outcomes[1].error;
    // Same input + same query through different engines over the wire: the
    // parity invariant, end to end.
    expect_byte_identical(outcomes[0].results, outcomes[1].results, "seq-vs-spectre");
    srv.stop();
}

// ---------------------------------------------------------------------------
// Zero-copy ingest + vectored egress (DESIGN.md §14): the byte-accounting
// counters assert the bulk DATA path takes exactly one copy off the socket,
// and the io_uring backend is held to the same byte-parity bar as epoll.
// ---------------------------------------------------------------------------

TEST(CepServer, ScatterIngestTakesOneCopyOffTheSocket) {
    constexpr std::uint64_t kEvents = 4000;
    // The one-copy invariant is a *hot-path* property: an ingest pause must
    // stage the view's unread tail (the backend recycles its buffer on the
    // next read), which is a deliberate copy under backpressure. Keep the
    // watermark above the whole burst so this test measures the un-paused
    // path the counters are meant to assert.
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .ingest_queue_events(2 * kEvents)
                                         .build();
    server::CepServer srv(cfg);
    srv.start();

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto out = client.run_one(make_session(kRisingPairQuery, 0, wire_events(kEvents, 99)));
    ASSERT_TRUE(out.completed) << out.error;

    srv.stop();  // folds every session shard into the retained block
    const auto snap = srv.registry().snapshot();
    const auto wire = counter(snap, obs::sid::kIngestWireBytes);
    const auto copied = counter(snap, obs::sid::kIngestCopiedBytes);
    const auto scattered = counter(snap, obs::sid::kIngestFramesScatter);
    const auto staged = counter(snap, obs::sid::kIngestFramesStaged);
    const auto reads = counter(snap, obs::sid::kIngestReads);

    // Every DATA byte was read off the socket exactly once...
    EXPECT_GE(wire, kEvents * (1 + net::kWireQuoteHeaderBytes));
    // ...and only a sliver (control frames + the partial frame at a read
    // view's tail) took the FrameReader staging copy: 3 copies -> 1.
    EXPECT_LT(copied * 10, wire) << "copied=" << copied << " wire=" << wire;
    // The DATA frames themselves overwhelmingly decoded in place.
    EXPECT_GE(scattered + staged, kEvents);
    EXPECT_GE(scattered, (kEvents * 9) / 10) << "staged=" << staged;
    // Drain-until-EAGAIN with a 64 KiB view buffer: far fewer read() calls
    // than events (the pre-§14 path paid ~1 recv per TCP segment).
    EXPECT_GT(reads, 0u);
    EXPECT_LT(reads * 2, kEvents) << "reads=" << reads;

    // Results left through vectored sends, and the counters saw the bytes.
    EXPECT_GT(counter(snap, obs::sid::kEgressWritevs), 0u);
    EXPECT_GT(counter(snap, obs::sid::kEgressBytesSent), 0u);
}

TEST(CepServer, UringBackendMatchesSequentialByteForByte) {
    if (!net::uring_supported()) GTEST_SKIP() << "io_uring unavailable on this kernel";
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .io_backend(net::IoBackendKind::Uring)
                                         .build();
    server::CepServer srv(cfg);
    ASSERT_STREQ(srv.io_backend_name(), "io_uring");
    srv.start();

    // The acceptance-test mix — engines, mid-stream waits, an interleaved
    // STATS control frame — driven through the uring reactor.
    std::vector<harness::LoadGenSession> specs(4);
    specs[0] = make_session(kRisingPairQuery, 0, wire_events(600, 101), /*wait_result_after=*/300);
    specs[1] = make_session(kRisingTripleQuery, 2, wire_events(500, 202), /*wait_result_after=*/250);
    specs[2] = make_session(kFallingPairQuery, 1, wire_events(550, 303, 30, 0.4),
                            /*wait_result_after=*/275);
    specs[3] = make_session(kLeaderQuery, 2, wire_events(450, 404), /*wait_result_after=*/225);
    specs[1].stats_after = 200;

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto& out = outcomes[i];
        const std::string label = "uring session " + std::to_string(i);
        EXPECT_TRUE(out.error.empty()) << label << ": " << out.error;
        EXPECT_TRUE(out.completed) << label;
        EXPECT_GE(out.results_before_bye, 1u) << label;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              out.results, label);
    }

    srv.stop();
    EXPECT_EQ(srv.stats().sessions_completed, 4u);
    EXPECT_EQ(srv.stats().sessions_failed, 0u);
}

TEST(CepServer, UringBackendIsolatesCorruptSessions) {
    if (!net::uring_supported()) GTEST_SKIP() << "io_uring unavailable on this kernel";
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .io_backend(net::IoBackendKind::Uring)
                                         .build();
    server::CepServer srv(cfg);
    srv.start();

    std::vector<harness::LoadGenSession> specs(3);
    specs[0] = make_session(kRisingPairQuery, 0, wire_events(400, 111));
    specs[1] = make_session(kRisingPairQuery, 2, wire_events(400, 222));
    specs[1].corrupt_after = 100;
    specs[2] = make_session(kRisingTripleQuery, 0, wire_events(400, 333));

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);
    EXPECT_FALSE(outcomes[1].completed);
    EXPECT_FALSE(outcomes[1].error.empty());
    for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        const std::string label = "uring session " + std::to_string(i);
        EXPECT_TRUE(outcomes[i].completed) << label << ": " << outcomes[i].error;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              outcomes[i].results, label);
    }
    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 1u);
    EXPECT_EQ(srv.stats().sessions_completed, 2u);
}

// ---------------------------------------------------------------------------
// Egress fault injection at the session level (§14): the real ServerSession
// flushing through an adversarial sendv — random partial writes, EINTR,
// EAGAIN — must still put the exact RESULT byte stream on the wire; a
// mid-iovec connection death must poison egress and fail only that session.
// ---------------------------------------------------------------------------

namespace {

// Stand-in for the reactor + pool around one real ServerSession: feeds raw
// client bytes through a socketpair, single-steps the engine task, flushes
// egress — with the vectored-send function replaced by the test.
struct ManualSessionHarness {
    obs::Registry registry;
    server::EngineTask* task = nullptr;
    std::vector<std::pair<std::uint64_t, server::SessionCmd>> cmds;
    std::unique_ptr<net::IoBackend> io = net::make_epoll_backend();
    std::unique_ptr<server::ServerSession> session;
    int client_fd = -1;

    ManualSessionHarness() {
        int sv[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
        client_fd = sv[1];
        server::SessionHooks hooks;
        hooks.post = [this](std::uint64_t id, server::SessionCmd c) {
            cmds.emplace_back(id, c);
        };
        hooks.register_task = [this](std::uint64_t, server::EngineTask* t) { task = t; };
        hooks.notify_task = [](std::uint64_t) {};
        session = std::make_unique<server::ServerSession>(1, sv[0], server::SessionLimits{},
                                                          &registry, registry.make_shard(),
                                                          std::move(hooks));
    }
    ~ManualSessionHarness() {
        session.reset();
        if (client_fd >= 0) ::close(client_fd);
    }

    // Runs the whole lifecycle: trickle `input` in (respecting the socketpair
    // buffer), read/step/flush until the input is consumed, the engine task
    // finished and egress drained. Returns false on livelock.
    bool pump(const std::vector<std::uint8_t>& input) {
        std::size_t off = 0;
        bool sent_all = false;
        bool read_open = true;
        bool task_done = false;
        for (int spin = 0; spin < 200000; ++spin) {
            if (off < input.size()) {
                const ssize_t w = ::send(client_fd, input.data() + off, input.size() - off,
                                         MSG_NOSIGNAL | MSG_DONTWAIT);
                if (w > 0) off += static_cast<std::size_t>(w);
            } else if (!sent_all) {
                ::shutdown(client_fd, SHUT_WR);  // clean client EOF
                sent_all = true;
            }
            if (read_open &&
                session->on_readable(*io) == server::SessionStatus::Finished)
                read_open = false;
            if (task && !task_done &&
                task->run_quantum() == server::EngineTask::Quantum::Done)
                task_done = true;
            if (session->egress_pending()) session->flush_egress();
            if (!read_open && (!task || task_done) && session->egress_idle()) return true;
        }
        return false;
    }
};

std::vector<std::uint8_t> client_stream(const std::string& query,
                                        const std::vector<net::WireQuote>& events) {
    std::vector<std::uint8_t> bytes;
    net::encode_frame(net::SessionFrame{net::HelloFrame{query, 0, 0, ""}}, bytes);
    for (const auto& q : events) net::encode_frame(net::SessionFrame{q}, bytes);
    net::encode_frame(net::SessionFrame{net::ByeFrame{}}, bytes);
    return bytes;
}

}  // namespace

TEST(ServerSessionEgress, PartialWritesEintrAndEagainKeepResultsByteIdentical) {
    ManualSessionHarness h;
    std::vector<std::uint8_t> wire;
    std::uint32_t rng = 0x2545f491u;
    int calls = 0;
    h.session->set_sendv_for_test([&](const struct iovec* iov, int cnt) -> ssize_t {
        ++calls;
        if (calls % 5 == 2) {
            errno = EINTR;
            return -1;
        }
        if (calls % 7 == 3) {
            errno = EAGAIN;  // socket "full": session must re-arm and resume
            return -1;
        }
        rng = rng * 1664525u + 1013904223u;
        std::size_t budget = 1 + rng % 200;  // adversarially small writes
        std::size_t wrote = 0;
        for (int i = 0; i < cnt && budget > 0; ++i) {
            const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
            const std::size_t take = std::min<std::size_t>(iov[i].iov_len, budget);
            wire.insert(wire.end(), base, base + take);
            wrote += take;
            budget -= take;
        }
        return static_cast<ssize_t>(wrote);
    });

    const auto events = wire_events(2000, 123);
    ASSERT_TRUE(h.pump(client_stream(kRisingPairQuery, events))) << "session livelocked";
    EXPECT_GT(calls, 10);

    // Decode what "reached the wire": the RESULT stream must be byte-identical
    // to the sequential ground truth, closed out by a BYE with the count.
    net::FrameReader r;
    r.feed(wire.data(), wire.size());
    std::vector<event::ComplexEvent> results;
    bool saw_bye = false;
    while (auto f = r.poll()) {
        if (const auto* res = std::get_if<net::ResultFrame>(&*f)) {
            ASSERT_FALSE(saw_bye) << "RESULT after BYE";
            results.push_back(net::from_result_frame(*res));
        } else if (const auto* bye = std::get_if<net::ByeFrame>(&*f)) {
            saw_bye = true;
            EXPECT_EQ(bye->results, results.size());
        }
    }
    EXPECT_TRUE(r.empty()) << "torn frame on the wire";
    EXPECT_TRUE(saw_bye);
    expect_byte_identical(sequential_ground_truth(kRisingPairQuery, events), results,
                          "faulty-sendv session");
}

TEST(ServerSessionEgress, MidIovecConnectionDeathPoisonsEgressAndFailsSession) {
    ManualSessionHarness h;
    std::vector<std::uint8_t> wire;
    int calls = 0;
    h.session->set_sendv_for_test([&](const struct iovec* iov, int cnt) -> ssize_t {
        if (++calls <= 2) {  // two partial writes, then the peer dies mid-iovec
            std::size_t budget = 50, wrote = 0;
            for (int i = 0; i < cnt && budget > 0; ++i) {
                const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
                const std::size_t take = std::min<std::size_t>(iov[i].iov_len, budget);
                wire.insert(wire.end(), base, base + take);
                wrote += take;
                budget -= take;
            }
            return static_cast<ssize_t>(wrote);
        }
        errno = EPIPE;
        return -1;
    });

    const auto events = wire_events(2000, 321);
    ASSERT_TRUE(h.pump(client_stream(kRisingPairQuery, events))) << "session livelocked";
    EXPECT_GE(calls, 3);

    // Egress is poisoned: nothing pending, nothing more ever sent.
    EXPECT_FALSE(h.session->egress_pending());
    EXPECT_TRUE(h.session->egress_idle());

    // What did get out before the death is a clean frame-stream prefix.
    net::FrameReader r;
    r.feed(wire.data(), wire.size());
    EXPECT_NO_THROW({
        while (r.poll()) {
        }
    });

    // The session counted itself failed — exactly once, in its shard.
    h.session.reset();  // retire the shard so the snapshot sees the fold
    const auto snap = h.registry.snapshot();
    EXPECT_EQ(counter(snap, obs::sid::kSessionsFailed), 1u);
}
