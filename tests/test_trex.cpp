#include <gtest/gtest.h>

#include <chrono>

#include "data/nyse_synth.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"
#include "test_helpers.hpp"
#include "trex/trex_engine.hpp"
#include "util/rng.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

namespace {

void expect_equal(const std::vector<event::ComplexEvent>& a,
                  const std::vector<event::ComplexEvent>& b, const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].window_id, b[i].window_id) << label << " @" << i;
        EXPECT_EQ(a[i].constituents, b[i].constituents) << label << " @" << i;
        EXPECT_EQ(a[i].payload, b[i].payload) << label << " @" << i;
    }
}

}  // namespace

TEST(GenericEvent, ReifyCopiesNamesAndAttrs) {
    TestEnv env;
    auto e = env.ev('A', 42, 7);
    e.subject = env.schema->intern_subject("IBM");
    const auto g = trex::reify(e, *env.schema);
    EXPECT_EQ(g.type, "A");
    EXPECT_EQ(g.symbol, "IBM");
    EXPECT_DOUBLE_EQ(g.attrs.at("v"), 42.0);
}

TEST(GenericExpr, TranslateEvaluatesLikeCompiled) {
    TestEnv env;
    // (v * 2 > 10) AND TYPE = 'A'
    auto expr = query::binary(
        query::BinOp::And,
        query::binary(query::BinOp::Gt,
                      query::binary(query::BinOp::Mul, query::attr(env.v),
                                    query::constant(2)),
                      query::constant(10)),
        env.is('A'));
    query::Pattern pattern;
    query::Element a;
    a.name = "A";
    a.pred = expr;
    pattern.elements = {a};
    const auto g = trex::translate(*expr, *env.schema, pattern);
    const auto ge = trex::reify(env.ev('A', 6, 0), *env.schema);
    EXPECT_TRUE(trex::eval_bool(g, ge, {}));
    const auto ge2 = trex::reify(env.ev('A', 4, 0), *env.schema);
    EXPECT_FALSE(trex::eval_bool(g, ge2, {}));
    const auto ge3 = trex::reify(env.ev('B', 6, 0), *env.schema);
    EXPECT_FALSE(trex::eval_bool(g, ge3, {}));
}

TEST(GenericExpr, BoundReferencesResolveByName) {
    TestEnv env;
    auto expr = query::binary(query::BinOp::Gt, query::attr(env.v),
                              query::bound_attr(0, env.v));
    query::Pattern pattern;
    query::Element a;
    a.name = "A";
    a.pred = env.is('A');
    query::Element b;
    b.name = "B";
    b.pred = env.is('B');
    pattern.elements = {a, b};
    const auto g = trex::translate(*expr, *env.schema, pattern);
    const auto bound = trex::reify(env.ev('A', 3, 0), *env.schema);
    const auto cur = trex::reify(env.ev('B', 5, 1), *env.schema);
    trex::GenericBindings bindings;
    EXPECT_FALSE(trex::eval_bool(g, cur, bindings));  // unbound -> false
    bindings["A"] = &bound;
    EXPECT_TRUE(trex::eval_bool(g, cur, bindings));
}

TEST(TrexEngine, MatchesSequentialOnRandomStreams) {
    TestEnv env;
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        util::Rng rng(seed);
        event::EventStore store;
        for (int i = 0; i < 300; ++i) {
            store.append(env.ev(static_cast<char>('A' + rng.uniform_int(0, 4)),
                                static_cast<double>(rng.uniform_int(0, 9)),
                                static_cast<event::Timestamp>(i)));
        }
        auto q = query::QueryBuilder(env.schema)
                     .single("A", env.is('A'))
                     .plus("B", env.is('B'))
                     .single("C", env.is('C'))
                     .window(query::WindowSpec::sliding_count(25, 5))
                     .consume_all()
                     .build();
        const auto cq = detect::CompiledQuery::compile(q);
        const auto seq = sequential::SequentialEngine(&cq).run(store);
        const auto trex_result = trex::TrexEngine(&cq).run(store);
        expect_equal(seq.complex_events, trex_result.complex_events,
                     "seed=" + std::to_string(seed));
    }
}

TEST(TrexEngine, MatchesSequentialOnSetAndGuardAndEach) {
    TestEnv env;
    util::Rng rng(77);
    event::EventStore store;
    for (int i = 0; i < 300; ++i)
        store.append(env.ev(static_cast<char>('A' + rng.uniform_int(0, 4)), 0,
                            static_cast<event::Timestamp>(i)));
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .set("S", {{"X", env.is('B')}, {"Y", env.is('C')}})
                 .guard(env.is('E'))
                 .window(query::WindowSpec::sliding_count(20, 4))
                 .select(query::SelectionPolicy::Each)
                 .consume({"X"})
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto seq = sequential::SequentialEngine(&cq).run(store);
    const auto trex_result = trex::TrexEngine(&cq).run(store);
    expect_equal(seq.complex_events, trex_result.complex_events, "set-guard-each");
}

TEST(TrexEngine, MatchesSequentialOnQ1) {
    const auto v = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = 4000;
    cfg.symbols = 60;
    cfg.up_prob = 0.6;
    event::EventStore store;
    data::generate_nyse(v, cfg, store);
    const auto q = queries::make_q1(v, queries::Q1Params{.q = 6, .ws = 120});
    const auto cq = detect::CompiledQuery::compile(q);
    const auto seq = sequential::SequentialEngine(&cq).run(store);
    const auto trex_result = trex::TrexEngine(&cq).run(store);
    ASSERT_GT(seq.complex_events.size(), 0u);
    expect_equal(seq.complex_events, trex_result.complex_events, "q1");
}

TEST(TrexEngine, RejectsStickyPatterns) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .sticky()
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 5))
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    EXPECT_THROW(trex::TrexEngine engine(&cq), std::invalid_argument);
}

TEST(TrexEngine, GenericLayerIsSlowerThanCompiledPath) {
    // The whole point of the baseline: interpreted generic matching pays a
    // real per-event cost against the slot-compiled detector.
    const auto v = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = 20000;
    cfg.symbols = 60;
    cfg.up_prob = 0.6;
    event::EventStore store;
    data::generate_nyse(v, cfg, store);
    const auto q = queries::make_q1(v, queries::Q1Params{.q = 6, .ws = 120});
    const auto cq = detect::CompiledQuery::compile(q);

    const auto t0 = std::chrono::steady_clock::now();
    const auto seq = sequential::SequentialEngine(&cq).run(store);
    const auto t1 = std::chrono::steady_clock::now();
    const auto trex_result = trex::TrexEngine(&cq).run(store);
    const auto t2 = std::chrono::steady_clock::now();

    const double seq_s = std::chrono::duration<double>(t1 - t0).count();
    const double trex_s = std::chrono::duration<double>(t2 - t1).count();
    ASSERT_EQ(seq.complex_events.size(), trex_result.complex_events.size());
    EXPECT_GT(trex_s, seq_s);
}
