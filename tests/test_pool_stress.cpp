// Engine-pool stress and fault-injection suites (DESIGN.md §9): slow
// consumers must park only their own session (bounded memory, no worker
// held hostage), session churn must leave the pool with zero leaked tasks,
// and stop() must drain sessions parked on backpressure. Runs under the
// TSan CI job (-DSPECTRE_TSAN=ON) alongside the concurrent-store suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/load_gen.hpp"
#include "net/tcp.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"
#include "server_test_util.hpp"

using namespace spectre;
using namespace spectre::testing;

namespace {

using Clock = std::chrono::steady_clock;

// Polls `pred` (on the main thread) until it holds or `seconds` elapse.
bool eventually(double seconds, const std::function<bool()>& pred) {
    const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
    while (Clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

// High result volume per input event: every other event starts a window and
// nearly every window matches (up_prob 0.7), each RESULT carrying a six-entry
// payload — the egress byte count dwarfs the shrunken socket buffers below,
// so backpressure must engage at the server's configured cap.
const char* kFatResultQuery =
    "PATTERN (R1 R2) "
    "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 20 EVENTS FROM EVERY 2 EVENTS "
    "EMIT open1 = R1.open, close1 = R1.close, open2 = R2.open, "
    "     close2 = R2.close, gain = R2.close - R1.open, spread = R2.close - R2.open";

}  // namespace

// ---------------------------------------------------------------------------
// Slow consumer: a client that stops reading RESULT frames parks its own
// engine task on egress credit — other sessions keep completing, server
// memory stays bounded by the configured cap, and once the client resumes
// reading the parked session finishes byte-identical to the oracle.
// ---------------------------------------------------------------------------

TEST(PoolStress, SlowConsumerParksOnlyItsOwnSession) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .pool_workers(2)
                                         .egress_buffer_bytes(2048)  // tiny credit: park quickly
                                         .quantum_windows(1)
                                         .session_sndbuf(8192)  // keep result bytes out of auto-tuned buffers
                                         .build();
    server::CepServer srv(cfg);
    srv.start();

    auto gate = std::make_shared<std::atomic<bool>>(false);
    std::vector<harness::LoadGenSession> specs(4);
    // The slow one: ~hundreds of fat RESULT frames, none read until the gate
    // opens — far more bytes than cap + both kernel socket buffers hold.
    specs[0] = make_session(kFatResultQuery, 0, wire_events(1500, 11, 40, 0.7));
    specs[0].read_gate = gate;
    specs[0].rcvbuf = 8192;
    // Three well-behaved neighbours, mixed engines.
    specs[1] = make_session(kRisingTripleQuery, 2, wire_events(400, 22));
    specs[2] = make_session(kFallingPairQuery, 0, wire_events(350, 33, 30, 0.4));
    specs[3] = make_session(kRisingPairQuery, 1, wire_events(300, 44));

    harness::LoadGenClient client("127.0.0.1", srv.port());
    std::vector<harness::LoadGenOutcome> outcomes;
    std::thread driver([&] { outcomes = client.run(specs); });

    // The three readers finish while the slow session is parked on egress.
    EXPECT_TRUE(eventually(30.0, [&] {
        const auto s = srv.stats();
        return s.sessions_completed >= 3 && s.parks_egress >= 1;
    })) << "fast sessions did not finish while a slow consumer was parked";

    {
        const auto s = srv.stats();
        // Bounded memory: the buffered egress never exceeds the cap by more
        // than one scheduling quantum's emission burst.
        EXPECT_LE(s.egress_peak_bytes, cfg.session.egress_buffer_bytes + 64 * 1024);
        EXPECT_GE(s.parks_egress, 1u);
        // No worker is held hostage by the slow reader — the proof is that
        // the three well-behaved sessions above already completed. (The
        // instantaneous tasks_running gauge is deliberately not asserted:
        // a transient re-notify can legitimately have the task mid-quantum.)
    }

    gate->store(true, std::memory_order_release);
    driver.join();

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string label = "session " + std::to_string(i);
        EXPECT_TRUE(outcomes[i].completed) << label << ": " << outcomes[i].error;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              outcomes[i].results, label);
    }

    srv.stop();
    const auto s = srv.stats();
    EXPECT_EQ(s.sessions_completed, 4u);
    EXPECT_EQ(s.sessions_failed, 0u);
    // Counters survive stop(): every task registered on the pool finished.
    EXPECT_EQ(s.tasks_added, s.tasks_finished);
    EXPECT_EQ(s.egress_buffered_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Session churn: repeated connect/HELLO/abandon-mid-DATA cycles (truncated
// frames, corrupt frames, plus clean sessions) leave the pool with zero
// leaked tasks and all workers idle; the server stays healthy throughout.
// ---------------------------------------------------------------------------

TEST(PoolStress, SessionChurnLeavesZeroLeakedTasks) {
    const server::ServerConfig cfg =
        server::ServerConfigBuilder{}.pool_workers(2).quantum_steps(8).build();
    server::CepServer srv(cfg);
    srv.start();

    harness::LoadGenClient client("127.0.0.1", srv.port());
    std::uint64_t expect_failed = 0, expect_completed = 0;
    for (int round = 0; round < 10; ++round) {
        std::vector<harness::LoadGenSession> specs(5);
        // Abandon mid-DATA, mid-frame: the server must surface a stream
        // error and drop the task without leaking it.
        specs[0] = make_session(kRisingPairQuery, 1, wire_events(200, 100 + round));
        specs[0].truncate_frame_at_event = 20 + round;
        // Corrupt framing mid-stream.
        specs[1] = make_session(kRisingTripleQuery, 2, wire_events(200, 200 + round));
        specs[1].corrupt_after = 15 + round;
        // Abandon before HELLO's engine even exists (bad query).
        specs[2] = make_session("PATTERN (oops", 0, wire_events(5, 300 + round));
        // Two clean sessions riding along.
        specs[3] = make_session(kFallingPairQuery, 0, wire_events(80, 400 + round, 30, 0.4));
        specs[4] = make_session(kRisingPairQuery, 2, wire_events(80, 500 + round));
        const auto outcomes = client.run(specs);
        expect_failed += 3;
        expect_completed += 2;
        EXPECT_FALSE(outcomes[0].completed);
        EXPECT_FALSE(outcomes[1].completed);
        EXPECT_FALSE(outcomes[2].completed);
        EXPECT_TRUE(outcomes[3].completed) << outcomes[3].error;
        EXPECT_TRUE(outcomes[4].completed) << outcomes[4].error;
    }

    // Every abandoned session's task drains: zero leaked tasks, all workers
    // idle, every session reaped.
    EXPECT_TRUE(eventually(10.0, [&] {
        const auto s = srv.stats();
        return s.tasks_live == 0 && s.sessions_live == 0 && s.tasks_running == 0;
    })) << "pool did not drain after churn: tasks_live=" << srv.stats().tasks_live
        << " sessions_live=" << srv.stats().sessions_live;
    {
        const auto s = srv.stats();
        EXPECT_EQ(s.tasks_added, s.tasks_finished);
        EXPECT_EQ(s.sessions_failed, expect_failed);
        EXPECT_EQ(s.sessions_completed, expect_completed);
        EXPECT_EQ(s.egress_buffered_bytes, 0u);
    }

    // The survivor check: a fresh session on the churned server still
    // matches the oracle.
    harness::LoadGenSession spec = make_session(kRisingTripleQuery, 2, wire_events(150, 999));
    const auto out = client.run_one(spec);
    ASSERT_TRUE(out.completed) << out.error;
    expect_byte_identical(sequential_ground_truth(spec.query, spec.events), out.results,
                          "post-churn session");
    srv.stop();
}

// ---------------------------------------------------------------------------
// Quantum-budget fairness (DESIGN.md §11): a speculative session sharing one
// worker with a tiny sequential neighbour must yield often enough that the
// neighbour completes promptly. Before the ready-instance scheduler, one
// step() ran a bounded batch on *every* instance — k × batch_events window
// positions per step, so a k = 4 session consumed its whole quantum k times
// faster than the budget intends, and needed ~k× fewer quanta to finish
// (starving co-scheduled sessions in between). The budget caps every step at
// quantum_budget positions regardless of k.
// ---------------------------------------------------------------------------

TEST(PoolStress, QuantumBudgetKeepsSpeculativeSessionsFair) {
    const server::ServerConfig cfg =
        server::ServerConfigBuilder{}
            .pool_workers(1)    // everyone shares a single worker
            .batch_events(16)   // quantum_budget follows batch_events (§11)
            .quantum_steps(8)
            .build();
    server::CepServer srv(cfg);
    srv.start();

    // Heavy speculative session: k = 4 over overlapping windows (40 events
    // every 10 → 4 live windows) — tens of thousands of window positions.
    std::vector<harness::LoadGenSession> specs(2);
    specs[0] = make_session(kRisingPairQuery, 4, wire_events(6000, 311));
    // Tiny sequential neighbour on the same worker.
    specs[1] = make_session(kFallingPairQuery, 0, wire_events(60, 322, 30, 0.4));

    harness::LoadGenClient client("127.0.0.1", srv.port());
    std::vector<harness::LoadGenOutcome> outcomes;
    std::thread driver([&] { outcomes = client.run(specs); });

    // Co-scheduling: the tiny session finishes long before the heavy one.
    EXPECT_TRUE(eventually(30.0, [&] { return srv.stats().sessions_completed >= 1; }))
        << "tiny session starved behind the speculative one";

    driver.join();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string label = "session " + std::to_string(i);
        EXPECT_TRUE(outcomes[i].completed) << label << ": " << outcomes[i].error;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              outcomes[i].results, label);
    }

    srv.stop();
    const auto s = srv.stats();
    EXPECT_EQ(s.sessions_completed, 2u);
    EXPECT_EQ(s.sessions_failed, 0u);
    // The speculative session reported its scheduler stats exactly once.
    ASSERT_EQ(s.sched_sessions, 1u);
    ASSERT_GT(s.sched_steps, 0u);
    // Overlapping windows mean far more window positions than input events.
    EXPECT_GE(s.sched_batch_events, 6000u);
    // The §11 budget, aggregated over the whole run: no step advances more
    // than quantum_budget (= batch_events) window positions. The pre-§11
    // round-robin did k × batch_events per step and fails this by ~4x.
    EXPECT_LE(s.sched_batch_events, s.sched_steps * cfg.session.batch_events);
    // Starvation floor: the work therefore spreads over at least
    // positions / (quantum_steps × budget) pool quanta — each a point where
    // the neighbour could run. (The old step shape needed ~k× fewer.)
    EXPECT_GE(s.quanta_executed,
              s.sched_batch_events /
                  (cfg.session.quantum_steps * cfg.session.batch_events));
}

// ---------------------------------------------------------------------------
// Shutdown regression: stop() while a session is parked on egress credit
// (slow reader) or on input (silent client) must poison the waits and drain
// the tasks — it must never hang on a parked session.
// ---------------------------------------------------------------------------

TEST(PoolStress, StopWhileParkedOnEgressReturnsPromptly) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .pool_workers(2)
                                         .egress_buffer_bytes(1024)  // park fast
                                         .quantum_windows(1)
                                         .session_sndbuf(8192)
                                         .build();
    auto srv = std::make_unique<server::CepServer>(cfg);
    srv->start();

    auto gate = std::make_shared<std::atomic<bool>>(false);
    harness::LoadGenSession spec = make_session(kFatResultQuery, 0, wire_events(1200, 77, 40, 0.7));
    spec.read_gate = gate;
    spec.rcvbuf = 8192;
    harness::LoadGenClient client("127.0.0.1", srv->port());
    harness::LoadGenOutcome outcome;
    std::thread driver([&] { outcome = client.run_one(spec); });

    ASSERT_TRUE(eventually(30.0, [&] { return srv->stats().parks_egress >= 1; }))
        << "session never parked on egress";

    const auto t0 = Clock::now();
    srv->stop();  // must poison the parked session's wait and drain it
    const double stop_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    EXPECT_LT(stop_seconds, 5.0) << "stop() stalled on a parked session";
    EXPECT_EQ(srv->stats().egress_buffered_bytes, 0u);

    gate->store(true, std::memory_order_release);
    driver.join();  // client sees reset/ERROR — the session was aborted
    EXPECT_FALSE(outcome.completed);
    srv.reset();
}

TEST(PoolStress, StopWhileParkedOnInputReturnsPromptly) {
    const server::ServerConfig cfg =
        server::ServerConfigBuilder{}.pool_workers(2).build();
    auto srv = std::make_unique<server::CepServer>(cfg);
    srv->start();

    // HELLO + a little DATA, then silence: the engine drains what arrived
    // and parks waiting for input that never comes.
    net::TcpClient conn("127.0.0.1", srv->port());
    {
        std::vector<std::uint8_t> bytes;
        net::encode_frame(net::SessionFrame{net::HelloFrame{kRisingPairQuery, 1, 0, ""}}, bytes);
        for (const auto& q : wire_events(25, 5))
            net::encode_frame(net::SessionFrame{q}, bytes);
        conn.send_raw(bytes.data(), bytes.size());
    }

    ASSERT_TRUE(eventually(30.0, [&] { return srv->stats().parks_input >= 1; }))
        << "session never parked on input";

    const auto t0 = Clock::now();
    srv->stop();
    const double stop_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    EXPECT_LT(stop_seconds, 5.0) << "stop() stalled on an input-parked session";
    srv.reset();
}
