// Heap discipline of the detection inner loop (DESIGN.md §5.1): after
// warm-up, Detector::on_event must be allocation-free on the Q1 workload —
// the acceptance gate for the flattened hot path. Every global operator new
// in this binary bumps a counter; the test brackets each on_event call and
// requires zero allocations for every steady-state event that does not
// complete a match (a completion hands an escaping ComplexEvent + consumed
// list to the caller, which inherently allocates — that is per-completion,
// not per-event).
//
// Skipped under sanitizers: their allocator interposition changes what a
// "heap allocation" is, and the sanitizer jobs run correctness suites anyway.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "data/nyse_synth.hpp"
#include "detect/detector.hpp"
#include "queries/paper_queries.hpp"
#include "query/window.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SPECTRE_ALLOC_TEST_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SPECTRE_ALLOC_TEST_DISABLED 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

#ifndef SPECTRE_ALLOC_TEST_DISABLED

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
    return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // !SPECTRE_ALLOC_TEST_DISABLED

using namespace spectre;

TEST(DetectorAlloc, Q1SteadyStateIsAllocationFreePerEvent) {
#ifdef SPECTRE_ALLOC_TEST_DISABLED
    GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
#else
    // Q1 at reduced scale: 100 symbols so the 16 leaders (and hence windows)
    // recur every few events, pattern MLE + 5 rising quotes, ws 400.
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    queries::Q1Params params;
    params.q = 5;
    params.ws = 400;
    const auto q = queries::make_q1(vocab, params);
    const auto cq = detect::CompiledQuery::compile(q);

    data::NyseSynthConfig cfg;
    cfg.events = 20'000;
    cfg.symbols = 100;
    cfg.up_prob = 0.5;
    cfg.seed = 7;
    event::EventStore store;
    data::generate_nyse(vocab, cfg, store);

    const auto windows = query::assign_windows(store, q.window);
    ASSERT_GT(windows.size(), 20u) << "workload must open enough Q1 windows";

    detect::Detector det(&cq);
    detect::Feedback fb;

    // Warm-up: the pool, the scratch buffers, the Feedback capacities and the
    // consumed bitmap all reach their high-water marks during the first
    // windows; everything after must run out of recycled storage.
    const std::size_t warmup_windows = windows.size() / 3;
    std::uint64_t steady_events = 0, dirty_events = 0, completions = 0;

    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        const auto& w = windows[wi];
        const event::Seq end = std::min<event::Seq>(w.last, store.size() - 1);
        det.begin_window(w);
        for (event::Seq pos = w.first; pos <= end; ++pos) {
            fb.clear();
            const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
            det.on_event(store.at(pos), fb);
            const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
            if (wi < warmup_windows) continue;
            ++steady_events;
            if (!fb.completed.empty()) {
                ++completions;  // escaping ComplexEvent: allocation allowed
            } else if (after != before) {
                ++dirty_events;
            }
        }
        fb.clear();
        det.end_window(fb);
    }

    EXPECT_GT(steady_events, 5000u);
    EXPECT_GT(completions, 0u) << "Q1 workload must actually complete matches";
    EXPECT_EQ(dirty_events, 0u)
        << "steady-state Detector::on_event allocated on a non-completing event";
#endif
}

TEST(DetectorAlloc, CounterSeesOrdinaryAllocations) {
#ifdef SPECTRE_ALLOC_TEST_DISABLED
    GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
#else
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    auto* p = new std::vector<int>(100);
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    delete p;
    EXPECT_GT(after, before) << "operator new interposition is not active";
#endif
}
