#include <gtest/gtest.h>

#include "model/fixed_model.hpp"
#include "model/markov_model.hpp"

using namespace spectre::model;

TEST(StateMap, IdentityWhenDeltaFitsStateCount) {
    StateMap m(5, 64);
    EXPECT_EQ(m.states(), 6);
    for (int d = 0; d <= 5; ++d) EXPECT_EQ(m.state_of(d), d);
    EXPECT_EQ(m.state_of(99), 5);   // clamped
    EXPECT_EQ(m.state_of(-3), 0);
}

TEST(StateMap, BucketsLargeDeltaMonotonically) {
    StateMap m(2560, 64);
    EXPECT_EQ(m.states(), 64);
    EXPECT_EQ(m.state_of(0), 0);
    EXPECT_GE(m.state_of(1), 1);  // any positive delta stays out of "done"
    EXPECT_EQ(m.state_of(2560), 63);
    int prev = 0;
    for (int d = 0; d <= 2560; d += 40) {
        const int s = m.state_of(d);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

TEST(TransitionStats, EstimateIsRowStochasticWithSelfLoopFallback) {
    StateMap map(3, 64);
    TransitionStats stats(map);
    stats.observe(3, 2);
    stats.observe(3, 2);
    stats.observe(3, 3);
    const auto t = stats.estimate();
    EXPECT_TRUE(t.is_row_stochastic());
    EXPECT_NEAR(t(3, 2), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(t(3, 3), 1.0 / 3.0, 1e-12);
    // Unobserved rows self-loop.
    EXPECT_DOUBLE_EQ(t(2, 2), 1.0);
    EXPECT_EQ(stats.samples(), 3u);
}

TEST(TransitionStats, MergeAndResetAccumulate) {
    StateMap map(2, 64);
    TransitionStats a(map), b(map);
    a.observe(2, 1);
    b.observe(2, 2);
    a.merge(b);
    EXPECT_EQ(a.samples(), 2u);
    const auto t = a.estimate();
    EXPECT_NEAR(t(2, 1), 0.5, 1e-12);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
}

TEST(FixedModel, ConstantEverywhere) {
    FixedModel m(0.3);
    EXPECT_DOUBLE_EQ(m.completion_probability(1, 10), 0.3);
    EXPECT_DOUBLE_EQ(m.completion_probability(100, 1), 0.3);
    EXPECT_THROW(FixedModel(1.5), std::invalid_argument);
}

TEST(MarkovModel, PriorPredictsReasonablyBeforeStatistics) {
    MarkovParams p;
    p.initial_advance_prob = 0.5;
    MarkovModel m(3, p);
    // With plenty of events left the prior chain should nearly always finish.
    EXPECT_GT(m.completion_probability(3, 1000), 0.95);
    // With zero/one event left a 3-step pattern can't plausibly complete.
    EXPECT_LT(m.completion_probability(3, 1), 0.2);
    // Completed matches are certain.
    EXPECT_DOUBLE_EQ(m.completion_probability(0, 0), 1.0);
}

TEST(MarkovModel, LearnsAlwaysAdvanceChain) {
    MarkovParams p;
    p.refresh_every = 10;
    MarkovModel m(3, p);
    for (int i = 0; i < 100; ++i) {
        m.observe(3, 2);
        m.observe(2, 1);
        m.observe(1, 0);
    }
    m.refresh();
    // Deterministic advancement: completing within >=3 events is certain.
    EXPECT_NEAR(m.completion_probability(3, 30), 1.0, 1e-6);
}

TEST(MarkovModel, LearnsNeverAdvanceChain) {
    MarkovParams p;
    p.refresh_every = 10;
    MarkovModel m(3, p);
    for (int i = 0; i < 100; ++i) {
        m.observe(3, 3);
        m.observe(2, 2);
    }
    m.refresh();
    EXPECT_NEAR(m.completion_probability(3, 1000), 0.0, 1e-9);
}

TEST(MarkovModel, FastPathMatchesMatrixPowerReference) {
    MarkovParams p;
    p.refresh_every = 50;
    p.step = 10;
    MarkovModel m(8, p);
    // Noisy but biased statistics.
    for (int i = 0; i < 200; ++i) {
        for (int d = 8; d >= 1; --d) {
            m.observe(d, (i % 3 == 0) ? d : d - 1);
        }
    }
    m.refresh();
    for (const int delta : {1, 3, 5, 8}) {
        for (const std::uint64_t n : {10ull, 50ull, 200ull}) {
            // n multiples of the step size: table lookup must equal the
            // explicit matrix power exactly (no interpolation involved).
            EXPECT_NEAR(m.completion_probability(delta, n), m.reference_probability(delta, n),
                        1e-9)
                << "delta=" << delta << " n=" << n;
        }
    }
}

TEST(MarkovModel, InterpolationBetweenStepsIsLinear) {
    MarkovParams p;
    p.step = 10;
    MarkovModel m(4, p);
    const double p10 = m.completion_probability(4, 10);
    const double p20 = m.completion_probability(4, 20);
    const double p14 = m.completion_probability(4, 14);
    EXPECT_NEAR(p14, 0.6 * p10 + 0.4 * p20, 1e-12);  // Fig. 5 line 6 example
}

TEST(MarkovModel, ZeroEventsLeftClampedToOne) {
    MarkovParams p;
    MarkovModel m(2, p);
    // Fig. 5 lines 3-5: "At least 1 more event expected".
    EXPECT_DOUBLE_EQ(m.completion_probability(2, 0), m.completion_probability(2, 1));
}

TEST(MarkovModel, ExponentialSmoothingBlendsOldAndNew) {
    MarkovParams p;
    p.alpha = 0.5;
    p.refresh_every = 1000000;  // manual refresh only
    MarkovModel m(1, p);
    // First batch: always advance.
    for (int i = 0; i < 100; ++i) m.observe(1, 0);
    m.refresh();
    EXPECT_NEAR(m.transition_matrix()(1, 0), 1.0, 1e-12);
    // Second batch: never advance; alpha=0.5 blends to 0.5.
    for (int i = 0; i < 100; ++i) m.observe(1, 1);
    m.refresh();
    EXPECT_NEAR(m.transition_matrix()(1, 0), 0.5, 1e-12);
    EXPECT_NEAR(m.transition_matrix()(1, 1), 0.5, 1e-12);
}

TEST(MarkovModel, MergeBatchCountsAsSamples) {
    MarkovParams p;
    p.refresh_every = 1000000;
    MarkovModel m(2, p);
    StateMap map(2, p.state_count);
    TransitionStats batch(map);
    for (int i = 0; i < 10; ++i) {
        batch.observe(2, 1);
        batch.observe(1, 0);
    }
    m.merge(batch);
    EXPECT_EQ(m.total_samples(), 20u);
    m.refresh();
    EXPECT_NEAR(m.completion_probability(2, 20), 1.0, 1e-9);
}

TEST(MarkovModel, RejectsBadParameters) {
    MarkovParams bad;
    bad.alpha = 2.0;
    EXPECT_THROW(MarkovModel(3, bad), std::invalid_argument);
    MarkovParams bad2;
    bad2.step = 0;
    EXPECT_THROW(MarkovModel(3, bad2), std::invalid_argument);
}
