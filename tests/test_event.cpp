#include <gtest/gtest.h>

#include "event/merge.hpp"
#include "event/stream.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

TEST(Schema, InternsTypesSubjectsAttrs) {
    event::Schema s;
    const auto a = s.intern_type("A");
    EXPECT_EQ(s.intern_type("A"), a);
    EXPECT_EQ(s.type_name(a), "A");
    const auto ibm = s.intern_subject("IBM");
    EXPECT_EQ(s.subject_name(ibm), "IBM");
    const auto open = s.intern_attr("open");
    EXPECT_EQ(s.intern_attr("open"), open);
    EXPECT_EQ(s.attr_name(open), "open");
}

TEST(Schema, AttrSlotLimitEnforced) {
    event::Schema s;
    for (std::size_t i = 0; i < event::kMaxAttrs; ++i)
        s.intern_attr("a" + std::to_string(i));
    EXPECT_THROW(s.intern_attr("one_too_many"), std::invalid_argument);
    EXPECT_EQ(s.lookup_attr("missing"), event::kMaxAttrs);
}

TEST(EventStore, AppendAssignsDenseSeqs) {
    TestEnv env;
    event::EventStore store;
    const auto s0 = store.append(env.ev('A', 1, 0));
    const auto s1 = store.append(env.ev('B', 2, 1));
    EXPECT_EQ(s0, 0u);
    EXPECT_EQ(s1, 1u);
    EXPECT_EQ(store.at(0).seq, 0u);
    EXPECT_EQ(store.at(1).seq, 1u);
    EXPECT_EQ(store.size(), 2u);
}

TEST(EventStore, RangeIsInclusiveAndChecked) {
    TestEnv env;
    auto store = env.store_of("ABCDE");
    const auto r = store.range(1, 3);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].seq, 1u);
    EXPECT_EQ(r[2].seq, 3u);
    EXPECT_THROW(store.range(3, 1), std::invalid_argument);
    EXPECT_THROW(store.range(0, 99), std::invalid_argument);
    EXPECT_THROW(store.at(99), std::invalid_argument);
}

TEST(EventStore, AppendAllDrainsStream) {
    TestEnv env;
    event::VectorStream vs({env.ev('A', 1, 0), env.ev('B', 2, 1)});
    event::EventStore store;
    store.append_all(vs);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(vs.next(), std::nullopt);
}

TEST(MergedStream, OrdersByTimestampWithSourceTiebreak) {
    TestEnv env;
    std::vector<std::unique_ptr<event::EventStream>> sources;
    sources.push_back(std::make_unique<event::VectorStream>(
        std::vector<event::Event>{env.ev('A', 0, 0), env.ev('A', 1, 10), env.ev('A', 2, 20)}));
    sources.push_back(std::make_unique<event::VectorStream>(
        std::vector<event::Event>{env.ev('B', 3, 5), env.ev('B', 4, 10)}));
    event::MergedStream merged(std::move(sources));

    std::vector<std::pair<char, event::Seq>> got;
    while (auto e = merged.next()) {
        got.emplace_back(env.schema->type_name(e->type)[0], e->seq);
    }
    // ts: A@0, B@5, then tie at 10 resolved to source 0 (A) first, B@10, A@20.
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got[0].first, 'A');
    EXPECT_EQ(got[1].first, 'B');
    EXPECT_EQ(got[2].first, 'A');
    EXPECT_EQ(got[3].first, 'B');
    EXPECT_EQ(got[4].first, 'A');
    // Fresh dense seqs stamped in merge order.
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].second, i);
}

TEST(MergedStream, EmptySourcesYieldNothing) {
    std::vector<std::unique_ptr<event::EventStream>> sources;
    sources.push_back(std::make_unique<event::VectorStream>(std::vector<event::Event>{}));
    event::MergedStream merged(std::move(sources));
    EXPECT_EQ(merged.next(), std::nullopt);
}

TEST(EventToString, RendersTypeSubjectAttrs) {
    TestEnv env;
    auto e = env.ev('A', 42, 7);
    e.subject = env.schema->intern_subject("IBM");
    const auto s = event::to_string(e, *env.schema);
    EXPECT_NE(s.find("A"), std::string::npos);
    EXPECT_NE(s.find("IBM"), std::string::npos);
    EXPECT_NE(s.find("v=42"), std::string::npos);
}

TEST(ComplexEventToString, ListsConstituents) {
    event::ComplexEvent ce;
    ce.window_id = 3;
    ce.constituents = {1, 4, 9};
    ce.payload.emplace_back("factor", 2.5);
    const auto s = event::to_string(ce);
    EXPECT_NE(s.find("w3"), std::string::npos);
    EXPECT_NE(s.find("1,4,9"), std::string::npos);
    EXPECT_NE(s.find("factor=2.5"), std::string::npos);
}
