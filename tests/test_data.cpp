#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "data/csv.hpp"
#include "data/nyse_synth.hpp"
#include "data/rand_stream.hpp"

using namespace spectre;
using namespace spectre::data;

namespace {

StockVocab vocab() { return StockVocab::create(std::make_shared<event::Schema>()); }

}  // namespace

TEST(StockVocab, InternsQuoteVocabularyAndLeaders) {
    const auto v = vocab();
    EXPECT_EQ(v.schema->type_name(v.quote_type), "QUOTE");
    EXPECT_EQ(v.leaders.size(), 16u);
    EXPECT_EQ(v.schema->subject_name(v.leaders[0]), "AAPL");
    EXPECT_NE(v.open_slot, v.close_slot);
}

TEST(NyseSynth, DeterministicForSeed) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 1000;
    cfg.symbols = 50;
    const auto a = generate_nyse(v, cfg);
    const auto b = generate_nyse(v, cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(NyseSynth, RoundRobinSymbolsOneQuotePerMinute) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 10;
    cfg.symbols = 5;
    cfg.shuffle_within_minute = false;
    const auto events = generate_nyse(v, cfg);
    ASSERT_EQ(events.size(), 10u);
    EXPECT_EQ(events[0].subject, events[5].subject);
    EXPECT_EQ(events[0].ts, 0);
    EXPECT_EQ(events[5].ts, 1);  // second minute
}

TEST(NyseSynth, ShuffledMinutesStillCoverEverySymbolOncePerMinute) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 40;
    cfg.symbols = 10;
    const auto events = generate_nyse(v, cfg);  // shuffle on by default
    for (int minute = 0; minute < 4; ++minute) {
        std::set<event::SubjectId> seen;
        for (int i = 0; i < 10; ++i) {
            const auto& e = events[static_cast<std::size_t>(minute * 10 + i)];
            EXPECT_EQ(e.ts, minute);
            seen.insert(e.subject);
        }
        EXPECT_EQ(seen.size(), 10u);  // each symbol exactly once per minute
    }
}

TEST(NyseSynth, UpProbControlsRisingShare) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 20000;
    cfg.symbols = 100;
    cfg.up_prob = 0.8;
    const auto events = generate_nyse(v, cfg);
    std::size_t rising = 0;
    for (const auto& e : events)
        if (e.attr(v.close_slot) > e.attr(v.open_slot)) ++rising;
    const double share = static_cast<double>(rising) / static_cast<double>(events.size());
    EXPECT_NEAR(share, 0.8, 0.02);
}

TEST(NyseSynth, PricesChainAcrossQuotes) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 20;
    cfg.symbols = 2;
    cfg.shuffle_within_minute = false;
    const auto events = generate_nyse(v, cfg);
    // Quote i+2 of the same symbol opens at quote i's close.
    EXPECT_DOUBLE_EQ(events[2].attr(v.open_slot), events[0].attr(v.close_slot));
}

TEST(NyseSynth, FlatQuotesAndMeanReversion) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 10000;
    cfg.symbols = 10;
    cfg.flat_prob = 0.4;
    cfg.mean_reversion = 0.05;
    const auto events = generate_nyse(v, cfg);
    std::size_t flat = 0;
    double max_dev = 0;
    for (const auto& e : events) {
        if (e.attr(v.close_slot) == e.attr(v.open_slot)) ++flat;
        max_dev = std::max(max_dev, std::abs(e.attr(v.close_slot) - cfg.start_price));
    }
    const double share = static_cast<double>(flat) / static_cast<double>(events.size());
    EXPECT_NEAR(share, 0.4, 0.03);
    // Mean reversion keeps prices near the anchor instead of drifting away.
    EXPECT_LT(max_dev, 30.0);
}

TEST(NyseSynth, PricesStayWithinBounds) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 50000;
    cfg.symbols = 3;
    cfg.up_prob = 0.0;  // relentless decline must clamp at min_price
    cfg.min_price = 5.0;
    const auto events = generate_nyse(v, cfg);
    for (const auto& e : events) EXPECT_GE(e.attr(v.close_slot), cfg.min_price);
}

TEST(RandStream, UniformSymbolDistribution) {
    const auto v = vocab();
    RandStreamConfig cfg;
    cfg.events = 30000;
    cfg.symbols = 30;
    const auto events = generate_rand(v, cfg);
    std::vector<int> counts(300, 0);
    for (const auto& e : events) counts[e.subject] += 1;
    int used = 0;
    for (int c : counts)
        if (c > 0) ++used;
    EXPECT_EQ(used, 30);
    // Each symbol should get roughly events/symbols = 1000 hits.
    for (int s = 0; s < 300; ++s) {
        if (counts[s] > 0) {
            EXPECT_NEAR(counts[s], 1000, 250);
        }
    }
}

TEST(RandStream, DeterministicForSeed) {
    const auto v = vocab();
    RandStreamConfig cfg;
    cfg.events = 500;
    const auto a = generate_rand(v, cfg);
    const auto b = generate_rand(v, cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Csv, RoundTripPreservesEvents) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 200;
    cfg.symbols = 10;
    const auto events = generate_nyse(v, cfg);

    std::stringstream ss;
    write_csv(ss, v, events);
    const auto back = read_csv(ss, v);
    ASSERT_EQ(back.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].ts, events[i].ts);
        EXPECT_EQ(back[i].subject, events[i].subject);
        EXPECT_DOUBLE_EQ(back[i].attr(v.open_slot), events[i].attr(v.open_slot));
        EXPECT_DOUBLE_EQ(back[i].attr(v.close_slot), events[i].attr(v.close_slot));
    }
}

TEST(Csv, MalformedRowsRejected) {
    const auto v = vocab();
    std::stringstream ss("ts,symbol,open,close,volume\n1,IBM,1.0\n");
    EXPECT_THROW(read_csv(ss, v), std::runtime_error);
    std::stringstream ss2("1,IBM,x,2.0,3.0\n");
    EXPECT_THROW(read_csv(ss2, v), std::runtime_error);
}

TEST(Csv, FileRoundTrip) {
    const auto v = vocab();
    NyseSynthConfig cfg;
    cfg.events = 50;
    cfg.symbols = 5;
    const auto events = generate_nyse(v, cfg);
    const std::string path = ::testing::TempDir() + "spectre_csv_test.csv";
    write_csv_file(path, v, events);
    const auto back = read_csv_file(path, v);
    EXPECT_EQ(back.size(), events.size());
    EXPECT_THROW(read_csv_file("/nonexistent/nope.csv", v), std::runtime_error);
}
