#include <gtest/gtest.h>

#include "model/fixed_model.hpp"
#include "spectre/dependency_tree.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using namespace spectre::core;
using spectre::testing::TestEnv;

namespace {

struct TreeFixture {
    TestEnv env;
    detect::CompiledQuery cq;
    std::uint64_t next_id = 1;
    DependencyTree tree;

    TreeFixture()
        : cq(detect::CompiledQuery::compile(
              query::QueryBuilder(env.schema)
                  .single("A", env.is('A'))
                  .single("B", env.is('B'))
                  .window(query::WindowSpec::sliding_count(4, 2))
                  .consume_all()
                  .build())),
          tree([this](const query::WindowInfo& w, std::vector<CgPtr> suppressed) {
              return std::make_shared<WindowVersion>(next_id++, w, &cq,
                                                     std::move(suppressed));
          }) {}

    query::WindowInfo win(std::uint64_t id, event::Seq first, event::Seq last) {
        return query::WindowInfo{id, first, last};
    }

    CgPtr group(std::uint64_t cg_id, const WvPtr& owner, std::vector<event::Seq> events) {
        auto cg = std::make_shared<ConsumptionGroup>(cg_id, owner->window().id,
                                                     owner->version_id(), 1);
        for (const auto s : events) cg->add_event(s);
        return cg;
    }
};

model::FixedModel half(0.5);

}  // namespace

TEST(ConsumptionGroupTest, VersionBumpsOnAddAndSnapshotsAreConsistent) {
    ConsumptionGroup cg(7, 0, 1, 3);
    EXPECT_EQ(cg.version(), 0u);
    EXPECT_EQ(cg.delta(), 3);
    cg.add_event(10);
    cg.add_event(11);
    EXPECT_EQ(cg.version(), 2u);
    EXPECT_TRUE(cg.contains(10));
    EXPECT_FALSE(cg.contains(12));
    std::uint64_t v = 0;
    const auto snap = cg.snapshot(v);
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(snap, (std::vector<event::Seq>{10, 11}));
    cg.resolve(CgOutcome::Completed);
    EXPECT_EQ(cg.outcome(), CgOutcome::Completed);
}

TEST(DependencyTreeTest, OverlappingWindowsFormAChain) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    f.tree.open_window(f.win(2, 4, 7));
    EXPECT_EQ(f.tree.live_versions(), 3u);
    EXPECT_EQ(f.tree.live_windows(), 3u);
    f.tree.check_invariants();
    // One version per window: the top-3 are exactly the three versions.
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0]->window().id, 0u);
    EXPECT_EQ(top[1]->window().id, 1u);
    EXPECT_EQ(top[2]->window().id, 2u);
}

TEST(DependencyTreeTest, NonOverlappingWindowStartsNewIndependentTree) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 10, 13));  // gap: independent
    f.tree.check_invariants();
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 2u);
    // Both roots are non-speculative; stats enabled on both.
    EXPECT_TRUE(top[0]->stats_enabled());
    EXPECT_TRUE(top[1]->stats_enabled());
    EXPECT_TRUE(top[0]->suppressed().empty());
    EXPECT_TRUE(top[1]->suppressed().empty());
}

TEST(DependencyTreeTest, GroupCreationDoublesDependentVersions) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    f.tree.check_invariants();
    // w1 now has two versions: with and without suppression of event 2.
    EXPECT_EQ(f.tree.live_versions(), 3u);
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 3u);
    int suppressing = 0;
    for (const auto& wv : top) {
        if (wv->window().id != 1) continue;
        if (!wv->suppressed().empty()) {
            ++suppressing;
            EXPECT_EQ(wv->suppressed()[0]->id(), 100u);
        }
    }
    EXPECT_EQ(suppressing, 1);
}

TEST(DependencyTreeTest, NewWindowUnderGroupLeafGetsTwoVersions) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {1});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    // Group vertex is a leaf; opening w1 must attach a version on each edge
    // (Fig. 4 lines 5-8).
    f.tree.open_window(f.win(1, 2, 5));
    f.tree.check_invariants();
    EXPECT_EQ(f.tree.live_versions(), 3u);
}

TEST(DependencyTreeTest, CompletionPruningKeepsSuppressingSide) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    cg->resolve(CgOutcome::Completed);
    f.tree.on_group_resolved(cg, true);
    f.tree.check_invariants();
    EXPECT_EQ(f.tree.live_versions(), 2u);
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 2u);
    // Surviving w1 version suppresses the completed group's events.
    EXPECT_EQ(top[1]->window().id, 1u);
    ASSERT_EQ(top[1]->suppressed().size(), 1u);
    EXPECT_EQ(top[1]->suppressed()[0]->id(), 100u);
}

TEST(DependencyTreeTest, AbandonPruningDropsSuppressingSide) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    const auto before = f.tree.top_k(8, half);
    WvPtr suppressing;
    for (const auto& wv : before)
        if (wv->window().id == 1 && !wv->suppressed().empty()) suppressing = wv;
    ASSERT_NE(suppressing, nullptr);

    f.tree.on_group_resolved(cg, false);
    f.tree.check_invariants();
    EXPECT_TRUE(suppressing->dropped());
    const auto after = f.tree.top_k(8, half);
    ASSERT_EQ(after.size(), 2u);
    EXPECT_TRUE(after[1]->suppressed().empty());
}

TEST(DependencyTreeTest, SurvivalProbabilityMultipliesAlongRootPath) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_DOUBLE_EQ(f.tree.survival_probability(top[0]->version_id(), half), 1.0);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_DOUBLE_EQ(f.tree.survival_probability(top[i]->version_id(), half), 0.5);
}

TEST(DependencyTreeTest, TopKPrefersLikelySideWithSkewedModel) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    model::FixedModel likely(0.9);
    const auto top = f.tree.top_k(2, likely);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0]->window().id, 0u);
    // Second pick is w1's completion-assuming (suppressing) version.
    EXPECT_EQ(top[1]->window().id, 1u);
    EXPECT_FALSE(top[1]->suppressed().empty());
}

TEST(DependencyTreeTest, SecondGroupPreservesFirstGroupsVerticesInCopy) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg1 = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg1));
    const auto cg2 = f.group(101, root, {3});
    ASSERT_TRUE(f.tree.on_group_created(cg2));
    f.tree.check_invariants();
    // w1 versions: {} (a,a), {cg1} (a,c), {cg2} (c,a), {cg1,cg2} (c,c).
    EXPECT_EQ(f.tree.live_versions(), 5u);
    // Resolving cg1 must prune *both* its vertices (original + copy).
    f.tree.on_group_resolved(cg1, false);
    f.tree.check_invariants();
    EXPECT_EQ(f.tree.live_versions(), 3u);
    f.tree.on_group_resolved(cg2, true);
    f.tree.check_invariants();
    EXPECT_EQ(f.tree.live_versions(), 2u);
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 2u);
    ASSERT_EQ(top[1]->suppressed().size(), 1u);
    EXPECT_EQ(top[1]->suppressed()[0]->id(), 101u);
}

TEST(DependencyTreeTest, RetireFrontRootPromotesChildAndEnablesStats) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    auto top = f.tree.top_k(8, half);
    const auto root = top[0];
    const auto next = top[1];
    EXPECT_TRUE(root->stats_enabled());
    EXPECT_FALSE(next->stats_enabled());
    root->mark_finished();
    const auto retired = f.tree.retire_front_root();
    EXPECT_EQ(retired->version_id(), root->version_id());
    EXPECT_EQ(f.tree.front_root()->version_id(), next->version_id());
    EXPECT_TRUE(next->stats_enabled());
    EXPECT_EQ(f.tree.live_versions(), 1u);
}

TEST(DependencyTreeTest, RetireUnfinishedRootThrows) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    EXPECT_THROW(f.tree.retire_front_root(), std::invalid_argument);
}

TEST(DependencyTreeTest, StaleGroupFromDroppedVersionIgnored) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg1 = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg1));
    // Find the suppressing w1 version and let it "create" a group, then drop
    // it by abandoning cg1: the late group must be ignored.
    WvPtr suppressing;
    for (const auto& wv : f.tree.top_k(8, half))
        if (wv->window().id == 1 && !wv->suppressed().empty()) suppressing = wv;
    ASSERT_NE(suppressing, nullptr);
    const auto stale = f.group(200, suppressing, {4});
    f.tree.on_group_resolved(cg1, false);  // drops `suppressing`
    EXPECT_FALSE(f.tree.on_group_created(stale));
    EXPECT_NO_THROW(f.tree.on_group_resolved(stale, true));
    f.tree.check_invariants();
}

TEST(DependencyTreeTest, GroupProbabilityShortCircuitsResolvedGroups) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    const auto cg = f.group(100, root, {2});
    ASSERT_TRUE(f.tree.on_group_created(cg));
    cg->resolve(CgOutcome::Completed);
    // Not yet pruned, but the walk must already treat it as certain.
    WvPtr suppressing;
    for (const auto& wv : f.tree.top_k(8, half))
        if (wv->window().id == 1 && !wv->suppressed().empty()) suppressing = wv;
    ASSERT_NE(suppressing, nullptr);
    EXPECT_DOUBLE_EQ(f.tree.survival_probability(suppressing->version_id(), half), 1.0);
}

TEST(DependencyTreeTest, TopKSkipsFinishedVersionsButDescends) {
    TreeFixture f;
    f.tree.open_window(f.win(0, 0, 3));
    f.tree.open_window(f.win(1, 2, 5));
    const auto root = f.tree.top_k(1, half)[0];
    root->mark_finished();
    const auto top = f.tree.top_k(8, half);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0]->window().id, 1u);
}

TEST(DependencyTreeTest, WindowsOutOfOrderRejected) {
    TreeFixture f;
    f.tree.open_window(f.win(1, 4, 7));
    EXPECT_THROW(f.tree.open_window(f.win(0, 0, 3)), std::invalid_argument);
}
