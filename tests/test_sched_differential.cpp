// Randomized differentials for the dependency-graph instance scheduler
// (DESIGN.md §11), plus direct structural tests of the graph itself.
//
// The scheduler replaced step()'s round-robin with a ready-queue over an
// intrusive dependency graph; its correctness contract is unchanged: for
// every query shape, stream, instance count and *schedule* — i.e. however
// step() calls interleave with store appends, whatever the quantum budget —
// the output must stay byte-identical to the sequential engine (§2.3). The
// randomized suite below perturbs exactly those axes. The graph-invariant
// suite drives InstanceScheduler directly: no ready instance ever waits, a
// waiting instance always holds exactly one sentinel edge, retirement frees
// every node, and re-classifying a queued instance pulls it out of the queue.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "model/markov_model.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/runtime.hpp"
#include "spectre/sched_graph.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

namespace {

std::vector<event::Event> random_events(TestEnv& env, std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<event::Event> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const char c = static_cast<char>('A' + rng.uniform_int(0, 4));
        events.push_back(env.ev(c, static_cast<double>(rng.uniform_int(0, 9)),
                                static_cast<event::Timestamp>(i)));
    }
    return events;
}

void expect_same_output(const std::vector<event::ComplexEvent>& expected,
                        const std::vector<event::ComplexEvent>& actual,
                        const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
        EXPECT_EQ(expected[i].constituents, actual[i].constituents) << label << " @" << i;
        EXPECT_EQ(expected[i].payload, actual[i].payload) << label << " @" << i;
    }
}

std::unique_ptr<model::CompletionModel> make_markov(const detect::CompiledQuery& cq) {
    model::MarkovParams params;
    params.refresh_every = 200;
    return std::make_unique<model::MarkovModel>(cq.min_length(), params);
}

// The query-shape axis: five shapes that exercise consumption groups,
// Kleene closure, subset consumption and disjoint (embarrassingly parallel)
// windows — the regimes where scheduling order could plausibly leak into
// the output if the suppression/rollback machinery mis-stepped.
query::Query make_shape(TestEnv& env, int shape) {
    switch (shape % 5) {
        case 0:
            return query::QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .window(query::WindowSpec::sliding_count(20, 5))
                .consume_all()
                .build();
        case 1:
            return query::QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .single("C", env.is('C'))
                .window(query::WindowSpec::sliding_count(24, 6))
                .consume({"B"})
                .build();
        case 2:
            return query::QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .plus("B", env.is('B'))
                .single("C", env.is('C'))
                .window(query::WindowSpec::sliding_count(30, 10))
                .consume_all()
                .build();
        case 3:
            return query::QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .single("B", env.is('B'))
                .window(query::WindowSpec::sliding_count(20, 5))
                .build();  // no consumption
        default:
            return query::QueryBuilder(env.schema)
                .single("A", env.is('A'))
                .set("S", {{"X", env.is('B')}, {"Y", env.is('C')}, {"Z", env.is('D')}})
                .window(query::WindowSpec::sliding_count(25, 5))
                .consume_all()
                .build();
    }
}

// Drives one step()-scheduled run with a seeded schedule perturbation:
// appends arrive in random-sized chunks, a random number of step() calls
// runs between chunks, and the quantum budget itself is drawn per combo.
// Safeguard: a run that exceeds a generous step bound fails loudly instead
// of hanging the suite (the graph's termination argument, §11).
std::vector<event::ComplexEvent> run_stepped(const detect::CompiledQuery& cq,
                                             const std::vector<event::Event>& events,
                                             int instances, std::uint64_t schedule_seed,
                                             const std::string& label) {
    util::Rng rng(schedule_seed);
    event::EventStore store;
    core::RuntimeConfig cfg;
    cfg.splitter.instances = instances;
    cfg.splitter.instance.consistency_check_freq = 8;
    static const std::size_t kBatches[] = {5, 16, 64};
    static const std::size_t kBudgets[] = {7, 16, 64, 1024};
    cfg.batch_events = kBatches[rng.uniform_int(0, 2)];
    cfg.quantum_budget = kBudgets[rng.uniform_int(0, 3)];
    core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));

    std::vector<event::ComplexEvent> out;
    rt.set_result_sink([&out](event::ComplexEvent&& ce) { out.push_back(std::move(ce)); });

    const std::size_t step_bound = 1000 + events.size() * 200;
    std::size_t steps = 0;
    std::size_t fed = 0;
    bool done = false;
    while (!done) {
        if (fed < events.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(static_cast<std::size_t>(rng.uniform_int(0, 17)),
                                      events.size() - fed);
            for (std::size_t i = 0; i < chunk; ++i) store.append(events[fed++]);
            if (fed == events.size()) store.close();
        }
        const int calls = static_cast<int>(rng.uniform_int(fed < events.size() ? 0 : 1, 3));
        for (int c = 0; c < calls && !done; ++c) {
            const auto p = rt.step();
            done = p.done;
            // Quiescence really is a fixed point: with no new appends, an
            // immediate re-step must not produce events out of thin air.
            if (p.quiescent && !done) {
                const auto q = rt.step();
                done = q.done;
                EXPECT_EQ(q.events_processed, 0u) << label << ": quiescent step moved";
            }
            if (++steps >= step_bound) {
                ADD_FAILURE() << label << ": step() did not terminate";
                return out;
            }
        }
    }
    // done implies everything retired; a further step stays done + quiescent.
    const auto p = rt.step();
    EXPECT_TRUE(p.done && p.quiescent) << label;
    return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Randomized differential: 60 (shape, stream, k, schedule) combos, each
// byte-identical to the sequential engine.
// ---------------------------------------------------------------------------

TEST(SchedDifferential, RandomizedStepSchedulesMatchSequential) {
    TestEnv env;
    static const int kInstances[] = {1, 2, 4, 8};
    int combo = 0;
    for (int shape = 0; shape < 5; ++shape) {
        const auto q = make_shape(env, shape);
        const auto cq = detect::CompiledQuery::compile(q);
        for (const int k : kInstances) {
            for (int rep = 0; rep < 3; ++rep, ++combo) {
                const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(combo);
                const auto events =
                    random_events(env, 150 + 50 * static_cast<std::size_t>(rep), seed);
                event::EventStore batch;
                for (const auto& e : events) batch.append(e);
                const auto expected = sequential::SequentialEngine(&cq).run(batch);

                const std::string label = "combo " + std::to_string(combo) + " (shape=" +
                                          std::to_string(shape) + " k=" + std::to_string(k) +
                                          " rep=" + std::to_string(rep) + ")";
                const auto actual = run_stepped(cq, events, k, seed * 7919, label);
                expect_same_output(expected.complex_events, actual, label);
            }
        }
    }
    ASSERT_EQ(combo, 60);  // the 50+ floor the suite promises
}

// ---------------------------------------------------------------------------
// Threaded leg: a producer thread appends into the store while this thread
// drives step() — the exact shape the worker pool's streaming sessions put
// the scheduler in, and the interleaving TSan needs to see.
// ---------------------------------------------------------------------------

TEST(SchedDifferential, ConcurrentProducerWithSteppedConsumer) {
    TestEnv env;
    for (const int k : {2, 4}) {
        const auto q = make_shape(env, 0);
        const auto cq = detect::CompiledQuery::compile(q);
        const auto events = random_events(env, 400, 77 + static_cast<std::uint64_t>(k));
        event::EventStore batch;
        for (const auto& e : events) batch.append(e);
        const auto expected = sequential::SequentialEngine(&cq).run(batch);

        event::EventStore store;
        core::RuntimeConfig cfg;
        cfg.splitter.instances = k;
        cfg.splitter.instance.consistency_check_freq = 8;
        cfg.batch_events = 16;
        cfg.quantum_budget = 32;
        core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
        std::vector<event::ComplexEvent> out;
        rt.set_result_sink(
            [&out](event::ComplexEvent&& ce) { out.push_back(std::move(ce)); });

        std::thread producer([&events, &store] {
            std::size_t i = 0;
            for (const auto& e : events) {
                store.append(e);
                if (++i % 64 == 0) std::this_thread::yield();
            }
            store.close();
        });
        while (!rt.step().done) {
        }
        producer.join();

        expect_same_output(expected.complex_events, out,
                           "concurrent producer k=" + std::to_string(k));
    }
}

// ---------------------------------------------------------------------------
// Graph invariants, driven directly.
// ---------------------------------------------------------------------------

TEST(SchedGraph, ReadyInstanceNeverWaits) {
    core::InstanceScheduler sched(4);
    sched.check_invariants();  // everyone starts waiting on the splitter
    EXPECT_EQ(sched.pop_ready(), -1);

    // A cycle hands 0 and 2 work; they are popped dependency-free, FIFO.
    sched.requeue_after_cycle([](int i) { return i == 0 || i == 2; });
    sched.check_invariants();
    EXPECT_EQ(sched.ready_depth(), 2u);
    EXPECT_EQ(sched.pop_ready(), 0);
    sched.check_invariants();
    EXPECT_EQ(sched.pop_ready(), 2);
    EXPECT_EQ(sched.pop_ready(), -1);

    // Both finish their batch differently: 0 stalls, 2 keeps work.
    sched.mark_stalled(0, 100);
    sched.mark_ready(2);
    sched.check_invariants();
    EXPECT_EQ(sched.pop_ready(), 2);
    sched.mark_waiting_assignment(2);
    sched.check_invariants();

    // Frontier below the awaited seq wakes nothing; past it wakes 0 only.
    sched.wake_frontier(100);
    sched.check_invariants();
    EXPECT_EQ(sched.pop_ready(), -1);
    sched.wake_frontier(101);
    sched.check_invariants();
    EXPECT_EQ(sched.pop_ready(), 0);
    sched.mark_waiting_assignment(0);
    sched.check_invariants();
}

TEST(SchedGraph, RequeueReclassifiesQueuedInstances) {
    // Regression: an instance already *in* the ready queue loses its slot
    // when a cycle decides it has no work — a queued node must never hold a
    // dependency edge.
    core::InstanceScheduler sched(3);
    sched.requeue_after_cycle([](int) { return true; });
    EXPECT_EQ(sched.ready_depth(), 3u);
    sched.requeue_after_cycle([](int i) { return i == 1; });
    sched.check_invariants();
    EXPECT_EQ(sched.ready_depth(), 1u);
    EXPECT_EQ(sched.pop_ready(), 1);
    EXPECT_EQ(sched.pop_ready(), -1);
    sched.mark_ready(1);
    sched.check_invariants();
}

TEST(SchedGraph, StalledInstancesWakeInFifoOrderPastTheirSeqs) {
    core::InstanceScheduler sched(4);
    sched.requeue_after_cycle([](int) { return true; });
    while (sched.pop_ready() >= 0) {
    }
    sched.mark_stalled(3, 10);
    sched.mark_stalled(1, 20);
    sched.mark_stalled(2, 10);
    sched.mark_waiting_assignment(0);
    sched.check_invariants();

    sched.wake_frontier(11);  // releases 3 and 2 (wait_seq 10), not 1
    sched.check_invariants();
    EXPECT_EQ(sched.pop_ready(), 3);
    EXPECT_EQ(sched.pop_ready(), 2);
    EXPECT_EQ(sched.pop_ready(), -1);
    sched.mark_waiting_assignment(3);
    sched.mark_waiting_assignment(2);

    sched.wake_frontier(21);
    EXPECT_EQ(sched.pop_ready(), 1);
    sched.mark_waiting_assignment(1);
    sched.check_invariants();
}

TEST(SchedGraph, RetireAllFreesEveryEdgeAndEmptiesTheQueue) {
    core::InstanceScheduler sched(5);
    sched.requeue_after_cycle([](int i) { return i % 2 == 0; });
    sched.mark_stalled(1, 42);
    EXPECT_GT(sched.ready_depth(), 0u);
    sched.retire_all();
    sched.check_invariants();
    EXPECT_EQ(sched.ready_depth(), 0u);
    EXPECT_EQ(sched.pop_ready(), -1);
    // Retirement is terminal for edges but not for reuse: a later cycle can
    // still requeue (the runtime never does after done, but the graph allows
    // it and the invariants must hold either way).
    sched.requeue_after_cycle([](int) { return true; });
    sched.check_invariants();
    EXPECT_EQ(sched.ready_depth(), 5u);
}

TEST(SchedGraph, ReadyDepthStatsTrackPops) {
    core::InstanceScheduler sched(4);
    sched.requeue_after_cycle([](int) { return true; });
    EXPECT_EQ(sched.pop_ready(), 0);  // depth 4 at pop
    EXPECT_EQ(sched.pop_ready(), 1);  // depth 3
    EXPECT_EQ(sched.pop_ready(), 2);  // depth 2
    EXPECT_EQ(sched.pop_ready(), 3);  // depth 1
    EXPECT_EQ(sched.ready_max(), 4u);
    EXPECT_DOUBLE_EQ(sched.ready_p50(), 2.0);  // median of {4,3,2,1}
}
