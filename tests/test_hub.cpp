// Shared multi-query ingest plane (DESIGN.md §15): one publisher session
// owns a named stream — decoded once into one chunked EventStore — and many
// subscriber sessions run independent queries over it. The acceptance bar is
// the §8 parity invariant restated for the shared plane: every subscriber's
// RESULT stream must be byte-identical to the same query run standalone over
// the same events, regardless of fan-out, engine kind, attach time, or how
// slowly any *other* subscriber reads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "harness/load_gen.hpp"
#include "net/tcp.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"
#include "server_test_util.hpp"

using namespace spectre;
using namespace spectre::testing;

namespace {

const char* subscriber_query(std::size_t i) {
    switch (i % 3) {
        case 0: return kRisingPairQuery;
        case 1: return kRisingTripleQuery;
        default: return kFallingPairQuery;
    }
}

harness::SubscriberClient::Spec sub_spec(const std::string& stream, std::size_t i) {
    harness::SubscriberClient::Spec s;
    s.stream = stream;
    s.query = subscriber_query(i);
    s.instances = (i % 2 == 0) ? 0 : 2;  // alternate sequential / SPECTRE
    return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// The acceptance-criteria test: fan-outs {1, 4, 32}, mixed engine kinds
// (k=0 sequential, k=2 speculative), every subscriber byte-identical to the
// standalone ground truth over the same published events.
// ---------------------------------------------------------------------------

TEST(StreamHub, SubscriberParityAcrossFanoutAndEngines) {
    for (const std::size_t fanout : {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
        server::CepServer srv;
        srv.start();
        const auto wire = wire_events(fanout >= 32 ? 700 : 1200, 17 + fanout);

        harness::PublisherClient pub("127.0.0.1", srv.port(), "nyse");
        ASSERT_TRUE(pub.ok()) << pub.error();
        EXPECT_EQ(pub.capabilities().get("role"), "publish");
        EXPECT_EQ(pub.capabilities().get("stream"), "nyse");

        // Attach everyone before the first DATA frame: their pins hold the
        // history from sequence zero.
        std::vector<std::unique_ptr<harness::SubscriberClient>> subs;
        for (std::size_t i = 0; i < fanout; ++i) {
            subs.push_back(std::make_unique<harness::SubscriberClient>(
                "127.0.0.1", srv.port(), sub_spec("nyse", i)));
            ASSERT_TRUE(subs.back()->ok()) << "sub " << i << ": " << subs.back()->error();
        }

        std::vector<harness::LoadGenOutcome> outcomes(fanout);
        std::vector<std::thread> threads;
        for (std::size_t i = 0; i < fanout; ++i)
            threads.emplace_back([&, i] { outcomes[i] = subs[i]->run(); });

        pub.publish(wire);
        EXPECT_TRUE(pub.finish()) << pub.error();
        for (auto& t : threads) t.join();

        for (std::size_t i = 0; i < fanout; ++i) {
            const std::string label =
                "fanout=" + std::to_string(fanout) + " sub=" + std::to_string(i);
            EXPECT_TRUE(outcomes[i].error.empty()) << label << ": " << outcomes[i].error;
            EXPECT_TRUE(outcomes[i].completed) << label;
            EXPECT_EQ(outcomes[i].server_reported_results, outcomes[i].results.size())
                << label;
            expect_byte_identical(sequential_ground_truth(subscriber_query(i), wire),
                                  outcomes[i].results, label);
        }
        srv.stop();
    }
}

// A subscriber that attaches after the whole stream was published (but before
// the publisher leaves) replays the retained history and matches the same
// ground truth — chunk retention is exact while any attach can still happen.
TEST(StreamHub, LateSubscriberReplaysFullHistory) {
    server::CepServer srv;
    srv.start();
    const auto wire = wire_events(1500, 99);

    harness::PublisherClient pub("127.0.0.1", srv.port(), "replay");
    ASSERT_TRUE(pub.ok()) << pub.error();
    pub.publish(wire);

    harness::SubscriberClient late("127.0.0.1", srv.port(), sub_spec("replay", 1));
    ASSERT_TRUE(late.ok()) << late.error();

    EXPECT_TRUE(pub.finish()) << pub.error();
    const auto out = late.run();
    EXPECT_TRUE(out.error.empty()) << out.error;
    EXPECT_TRUE(out.completed);
    expect_byte_identical(sequential_ground_truth(subscriber_query(1), wire),
                          out.results, "late subscriber");
    srv.stop();
}

// ---------------------------------------------------------------------------
// Isolation: a stalled slow subscriber parks only its own engine task (§9).
// The publisher and every other subscriber finish while it reads nothing;
// once its gate opens it still produces the byte-identical stream.
// ---------------------------------------------------------------------------

TEST(StreamHub, StalledSubscriberBlocksNeitherPublisherNorPeers) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .pool_workers(2)
                                         .egress_buffer_bytes(2048)  // park fast
                                         .quantum_windows(1)
                                         .session_sndbuf(8192)
                                         .build();
    server::CepServer srv(cfg);
    srv.start();
    const auto wire = wire_events(2000, 5);

    harness::PublisherClient pub("127.0.0.1", srv.port(), "hot");
    ASSERT_TRUE(pub.ok()) << pub.error();

    auto gate = std::make_shared<std::atomic<bool>>(false);
    harness::SubscriberClient::Spec slow_spec = sub_spec("hot", 0);
    slow_spec.read_gate = gate;
    slow_spec.rcvbuf = 4096;  // keep results out of auto-tuned socket buffers
    harness::SubscriberClient slow("127.0.0.1", srv.port(), slow_spec);
    ASSERT_TRUE(slow.ok()) << slow.error();

    std::vector<std::unique_ptr<harness::SubscriberClient>> fast;
    for (std::size_t i = 1; i <= 2; ++i) {
        fast.push_back(std::make_unique<harness::SubscriberClient>(
            "127.0.0.1", srv.port(), sub_spec("hot", i)));
        ASSERT_TRUE(fast.back()->ok()) << fast.back()->error();
    }

    std::vector<harness::LoadGenOutcome> fast_out(fast.size());
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < fast.size(); ++i)
        threads.emplace_back([&, i] { fast_out[i] = fast[i]->run(); });

    // The whole stream goes out and the publisher completes while the slow
    // subscriber has not read one RESULT byte.
    pub.publish(wire);
    EXPECT_TRUE(pub.finish()) << pub.error();
    for (auto& t : threads) t.join();
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_TRUE(fast_out[i].completed) << fast_out[i].error;
        expect_byte_identical(sequential_ground_truth(subscriber_query(i + 1), wire),
                              fast_out[i].results, "fast sub " + std::to_string(i));
    }

    gate->store(true, std::memory_order_release);
    const auto slow_out = slow.run();
    EXPECT_TRUE(slow_out.completed) << slow_out.error;
    expect_byte_identical(sequential_ground_truth(subscriber_query(0), wire),
                          slow_out.results, "slow sub");
    srv.stop();
}

// ---------------------------------------------------------------------------
// Failure semantics: a publisher dying without BYE poisons the stream — every
// attached subscriber gets an ERROR naming the cause, never a clean BYE over
// a truncated result set.
// ---------------------------------------------------------------------------

TEST(StreamHub, PublisherDeathFailsAttachedSubscribers) {
    server::CepServer srv;
    srv.start();

    auto pub = std::make_unique<harness::PublisherClient>("127.0.0.1", srv.port(), "doomed");
    ASSERT_TRUE(pub->ok()) << pub->error();
    harness::SubscriberClient sub("127.0.0.1", srv.port(), sub_spec("doomed", 0));
    ASSERT_TRUE(sub.ok()) << sub.error();

    pub->publish(wire_events(300, 3));
    pub.reset();  // hard close, no BYE: the stream can never end cleanly

    const auto out = sub.run();
    EXPECT_FALSE(out.completed);
    EXPECT_NE(out.error.find("publisher disconnected"), std::string::npos) << out.error;
    srv.stop();
    EXPECT_GE(srv.stats().sessions_failed, 1u);
}

// ---------------------------------------------------------------------------
// Handshake rejections: each bad HELLO v2 yields an ERROR before any session
// state leaks — and the server keeps serving afterwards.
// ---------------------------------------------------------------------------

TEST(StreamHub, HandshakeRejectsBadRolesStreamsAndQueries) {
    server::CepServer srv;
    srv.start();

    harness::PublisherClient pub("127.0.0.1", srv.port(), "taken");
    ASSERT_TRUE(pub.ok()) << pub.error();

    {  // duplicate stream name
        harness::PublisherClient dup("127.0.0.1", srv.port(), "taken");
        EXPECT_FALSE(dup.ok());
        EXPECT_NE(dup.error().find("already published"), std::string::npos)
            << dup.error();
    }
    {  // unknown stream
        harness::SubscriberClient s("127.0.0.1", srv.port(), sub_spec("nope", 0));
        EXPECT_FALSE(s.ok());
        EXPECT_NE(s.error().find("unknown stream"), std::string::npos) << s.error();
    }
    {  // subscribers cannot shard/partition — the engine would re-materialize
       // the stream per key, defeating the shared store
        auto spec = sub_spec("taken", 0);
        spec.query = "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, "
                     "R2 AS R2.close > R2.open WITHIN 40 EVENTS FROM EVERY 10 EVENTS "
                     "PARTITION BY SUBJECT CONSUME ALL";
        harness::SubscriberClient s("127.0.0.1", srv.port(), spec);
        EXPECT_FALSE(s.ok());
        EXPECT_NE(s.error().find("PARTITION BY"), std::string::npos) << s.error();
    }
    {  // HELLO-field sharding is rejected for subscribers too (raw frames:
       // the client API deliberately doesn't expose shards on subscribe)
        net::TcpClient conn("127.0.0.1", srv.port(), 0);
        net::Hello2Frame h;
        h.set("role", "subscribe");
        h.set("stream", "taken");
        h.set("query", kRisingPairQuery);
        h.set("shards", "2");
        std::vector<std::uint8_t> buf;
        net::encode_frame(net::SessionFrame{std::move(h)}, buf);
        conn.send_raw(buf.data(), buf.size());
        net::FrameReader reader;
        std::string error;
        std::uint8_t chunk[4096];
        for (bool done = false; !done;) {
            const ssize_t n = net::read_some(conn.fd(), chunk, sizeof(chunk));
            if (n <= 0) break;
            reader.feed(chunk, static_cast<std::size_t>(n));
            while (auto f = reader.poll()) {
                if (auto* e = std::get_if<net::ErrorFrame>(&*f)) {
                    error = e->message;
                    done = true;
                }
            }
        }
        EXPECT_NE(error.find("cannot shard or partition"), std::string::npos) << error;
    }
    {  // malformed query text still names the parse failure
        auto spec = sub_spec("taken", 0);
        spec.query = "PATTERN (";
        harness::SubscriberClient s("127.0.0.1", srv.port(), spec);
        EXPECT_FALSE(s.ok());
        EXPECT_NE(s.error().find("HELLO rejected"), std::string::npos) << s.error();
    }

    // The hub still works: a clean subscribe on the same stream completes.
    const auto wire = wire_events(400, 8);
    harness::SubscriberClient good("127.0.0.1", srv.port(), sub_spec("taken", 2));
    ASSERT_TRUE(good.ok()) << good.error();
    pub.publish(wire);
    EXPECT_TRUE(pub.finish()) << pub.error();
    const auto out = good.run();
    EXPECT_TRUE(out.completed) << out.error;
    expect_byte_identical(sequential_ground_truth(subscriber_query(2), wire),
                          out.results, "post-reject subscriber");
    srv.stop();
}

// A v2 standalone HELLO is the v1 handshake plus a capability echo: same
// engine, byte-identical results. Driven over raw frames because the v2
// standalone still carries its own DATA.
TEST(StreamHub, Hello2StandaloneRoleMatchesGroundTruth) {
    server::CepServer srv;
    srv.start();
    const auto wire = wire_events(600, 21);

    net::TcpClient conn("127.0.0.1", srv.port(), 0);
    net::Hello2Frame hello;
    hello.set("role", "standalone");
    hello.set("query", kRisingPairQuery);
    hello.set("instances", "2");
    std::vector<std::uint8_t> buf;
    net::encode_frame(net::SessionFrame{std::move(hello)}, buf);
    for (const auto& q : wire) net::encode_frame(net::SessionFrame{q}, buf);
    net::encode_frame(net::SessionFrame{net::ByeFrame{}}, buf);
    conn.send_raw(buf.data(), buf.size());

    net::FrameReader reader;
    std::optional<net::Hello2Frame> echo;
    std::vector<event::ComplexEvent> results;
    bool done = false;
    std::uint8_t chunk[16384];
    while (!done) {
        const ssize_t n = net::read_some(conn.fd(), chunk, sizeof(chunk));
        ASSERT_GT(n, 0) << "server closed before BYE";
        reader.feed(chunk, static_cast<std::size_t>(n));
        while (auto f = reader.poll()) {
            if (auto* h2 = std::get_if<net::Hello2Frame>(&*f)) {
                EXPECT_TRUE(results.empty()) << "echo must precede all RESULT bytes";
                echo = std::move(*h2);
            } else if (auto* r = std::get_if<net::ResultFrame>(&*f)) {
                results.push_back(net::from_result_frame(*r));
            } else if (std::get_if<net::ByeFrame>(&*f)) {
                done = true;
            } else {
                FAIL() << "unexpected frame from server";
            }
        }
    }
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->get("proto"), "2");
    EXPECT_EQ(echo->get("role"), "standalone");
    EXPECT_FALSE(echo->get("max_instances").empty());
    expect_byte_identical(sequential_ground_truth(kRisingPairQuery, wire), results,
                          "v2 standalone");
    srv.stop();
}

// ---------------------------------------------------------------------------
// Observability (§12 + §15): stream/subscriber gauges while live; decode
// happens once per stream regardless of fan-out; identical subscriber
// queries share one compiled artifact; drained chunks get reclaimed.
// ---------------------------------------------------------------------------

TEST(StreamHub, SharedPlaneCountersDecodeOnceShareCompilesReclaimChunks) {
    if (!obs::enabled()) GTEST_SKIP() << "metrics disabled via SPECTRE_OBS_OFF";
    server::CepServer srv;
    srv.start();
    // Two EventStore chunks and change (chunk = 4096 events): completion-time
    // pin advancement can free the first two.
    const auto wire = wire_events(9000, 77);
    std::size_t stream_bytes = 0;
    {
        std::vector<std::uint8_t> tmp;
        for (const auto& q : wire) net::encode_frame(net::SessionFrame{q}, tmp);
        stream_bytes = tmp.size();
    }

    harness::PublisherClient pub("127.0.0.1", srv.port(), "metered");
    ASSERT_TRUE(pub.ok()) << pub.error();
    constexpr std::size_t kSubs = 4;
    std::vector<std::unique_ptr<harness::SubscriberClient>> subs;
    for (std::size_t i = 0; i < kSubs; ++i) {
        auto spec = sub_spec("metered", 0);  // all identical: one compile, 3 hits
        subs.push_back(std::make_unique<harness::SubscriberClient>(
            "127.0.0.1", srv.port(), std::move(spec)));
        ASSERT_TRUE(subs.back()->ok()) << subs.back()->error();
    }

    {  // live gauges: one stream, four subscribers attached
        const auto live = srv.registry().snapshot();
        EXPECT_EQ(counter(live, obs::sid::kHubStreams), 1u);
        EXPECT_EQ(counter(live, obs::sid::kHubSubscribers), kSubs);
    }

    std::vector<harness::LoadGenOutcome> outs(kSubs);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kSubs; ++i)
        threads.emplace_back([&, i] { outs[i] = subs[i]->run(); });
    pub.publish(wire);
    EXPECT_TRUE(pub.finish()) << pub.error();
    for (auto& t : threads) t.join();
    const auto expected = sequential_ground_truth(subscriber_query(0), wire);
    for (std::size_t i = 0; i < kSubs; ++i) {
        EXPECT_TRUE(outs[i].completed) << outs[i].error;
        expect_byte_identical(expected, outs[i].results, "sub " + std::to_string(i));
    }
    srv.stop();

    const auto snap = srv.registry().snapshot();
    EXPECT_EQ(counter(snap, obs::sid::kHubSubscribersTotal), kSubs);
    // Decode-once: the server read the stream's wire bytes once (plus frame
    // handshake overhead), not once per subscriber.
    const auto ingest_wire = counter(snap, obs::sid::kIngestWireBytes);
    EXPECT_GE(ingest_wire, stream_bytes);
    EXPECT_LT(ingest_wire, stream_bytes + stream_bytes / 2)
        << "fan-out must not re-decode the stream";
    // Identical queries share one artifact.
    EXPECT_EQ(counter(snap, obs::sid::kCompileCacheMisses), 1u);
    EXPECT_EQ(counter(snap, obs::sid::kCompileCacheHits), kSubs - 1);
    // All pins advanced past the first chunks at completion → reclaimed.
    EXPECT_GE(counter(snap, obs::sid::kHubChunksReclaimed), 1u);
}
