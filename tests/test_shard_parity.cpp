// Shard parity differential suite (DESIGN.md §10).
//
// The invariant every prior PR preserved, extended to partitioned queries:
// the sharded runtime's merged RESULT stream must be byte-identical to the
// unsharded sequential run of the same input — for every shard count, every
// engine kind per lane, every schedule (inline round-robin or a real worker
// pool), and every stream shape including total skew (every key hashing to
// one shard). The oracle is shard::reference_partitioned_run, which on a
// single-key stream is itself asserted byte-identical to a plain
// SequentialEngine::run over the whole input — chaining the partitioned
// semantics to the repo's original ground truth.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "data/nyse_synth.hpp"
#include "data/stock.hpp"
#include "harness/load_gen.hpp"
#include "harness/oracle.hpp"
#include "query/parser.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"
#include "server/engine_pool.hpp"
#include "server_test_util.hpp"
#include "shard/shard_run.hpp"
#include "shard/reshard_controller.hpp"
#include "shard/sharded_engine.hpp"

using namespace spectre;

namespace {

// Partitioned text queries (PARTITION BY sits between the window clause and
// SELECT/CONSUME/EMIT). Windows, matches and consumption are all per key.
const char* kPartitionedQueries[] = {
    "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 12 EVENTS FROM EVERY 4 EVENTS PARTITION BY SUBJECT CONSUME ALL",
    "PATTERN (R1 R2 R3) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
    "R3 AS R3.close > R3.open WITHIN 10 EVENTS FROM EVERY 3 EVENTS "
    "PARTITION BY SUBJECT CONSUME ALL EMIT gain = R3.close - R1.open",
    "PATTERN (F1 F2) DEFINE F1 AS F1.close < F1.open, F2 AS F2.close < F2.open "
    "WITHIN 8 EVENTS FROM EVERY 2 EVENTS PARTITION BY SUBJECT CONSUME (F1 F2)",
    "PATTERN (U1 U2) DEFINE U1 AS U1.close > U1.open, U2 AS U2.close > U2.open "
    "WITHIN 6 EVENTS FROM EVERY 2 EVENTS PARTITION BY SUBJECT "
    "EMIT jump = U2.close - U1.close",
    // Predicate-open window: one window per rising event of the key.
    "PATTERN (A B) DEFINE A AS A.close > A.open, B AS B.close < B.open "
    "WITHIN 9 EVENTS FROM A PARTITION BY SUBJECT CONSUME ALL",
};

std::vector<event::Event> make_stream(const data::StockVocab& vocab, std::uint64_t n,
                                      std::uint64_t seed, std::uint64_t symbols,
                                      double up_prob = 0.55) {
    data::NyseSynthConfig cfg;
    cfg.events = n;
    cfg.symbols = symbols;
    cfg.up_prob = up_prob;
    cfg.seed = seed;
    return data::generate_nyse(vocab, cfg);
}

detect::CompiledQuery compile(const std::string& text, const data::StockVocab& vocab) {
    return detect::CompiledQuery::compile(query::parse_query(text, vocab.schema));
}

void expect_identical(const std::vector<event::ComplexEvent>& expected,
                      const std::vector<event::ComplexEvent>& actual,
                      const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
        EXPECT_EQ(expected[i].constituents, actual[i].constituents) << label << " @" << i;
        EXPECT_EQ(expected[i].payload, actual[i].payload) << label << " @" << i;
        if (expected[i] != actual[i]) return;  // one mismatch tells the story
    }
}

std::vector<event::ComplexEvent> run_pooled(const detect::CompiledQuery& cq,
                                            shard::ShardedConfig cfg,
                                            const std::vector<event::Event>& events,
                                            int workers) {
    server::EnginePool pool(workers);
    pool.start();
    std::vector<event::ComplexEvent> out;
    std::mutex out_mutex;  // merger may run on any worker
    shard::ShardedEngine engine(&cq, cfg, [&](event::ComplexEvent&& ce) {
        const std::lock_guard<std::mutex> lock(out_mutex);
        out.push_back(std::move(ce));
    });
    shard::PooledShardRun run(&engine, &pool, /*id_base=*/1000);
    run.start();
    for (const auto& e : events) run.ingest(e);
    run.close();
    run.wait();
    pool.stop();
    EXPECT_TRUE(engine.finished());
    return out;
}

}  // namespace

// The partitioned oracle degenerates to the plain sequential engine when the
// stream holds a single key: per-key semantics with one key is unpartitioned
// semantics. This pins reference_partitioned_run to the repo's ground truth.
TEST(ShardParity, ReferenceMatchesPlainSequentialOnSingleKeyStream) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    const auto events = make_stream(vocab, 400, 11, /*symbols=*/1);
    for (const auto* text : kPartitionedQueries) {
        const auto cq = compile(text, vocab);
        event::EventStore store;
        for (const auto& e : events) store.append(e);
        store.close();
        const auto plain = sequential::SequentialEngine(&cq).run(store);
        const auto ref = shard::reference_partitioned_run(cq, events);
        expect_identical(plain.complex_events, ref, std::string("query: ") + text);
    }
}

// Randomized differential: query × stream × shard count × engine kind, all
// against the unsharded sequential reference, under the deterministic inline
// schedule. S ∈ {1, 2, 4, 8} on the same input must be byte-identical.
TEST(ShardParity, InlineShardedRunsMatchReferenceForEveryShardCount) {
    std::mt19937_64 rng(20260728);
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    for (int combo = 0; combo < 12; ++combo) {
        const auto* text = kPartitionedQueries[rng() % std::size(kPartitionedQueries)];
        const std::uint64_t n = 150 + rng() % 250;
        const std::uint64_t symbols = 1 + rng() % 24;
        const auto events =
            make_stream(vocab, n, rng(), symbols, 0.4 + 0.1 * static_cast<double>(rng() % 3));
        const auto cq = compile(text, vocab);
        const auto ref = shard::reference_partitioned_run(cq, events);
        for (const std::uint32_t instances : {0u, 1u + static_cast<std::uint32_t>(rng() % 2)}) {
            for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
                shard::ShardedConfig cfg;
                cfg.shards = shards;
                cfg.instances = instances;
                const auto got = shard::run_sharded_inline(
                    cq, cfg, events, /*feed_chunk=*/1 + rng() % 9,
                    /*step_events=*/1 + rng() % 4);
                expect_identical(ref, got,
                                 "combo " + std::to_string(combo) + " S=" +
                                     std::to_string(shards) + " k=" +
                                     std::to_string(instances) + " n=" + std::to_string(n) +
                                     " syms=" + std::to_string(symbols));
            }
        }
    }
}

// The same differential over a real EnginePool: S shard tasks multiplexed on
// 1..4 workers, feeder racing the detection, merge running on whichever
// worker gets there — output must not depend on any of it.
TEST(ShardParity, PooledShardedRunsMatchReference) {
    std::mt19937_64 rng(7);
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    const int worker_counts[] = {1, 2, 4};
    for (int combo = 0; combo < 6; ++combo) {
        const auto* text = kPartitionedQueries[rng() % std::size(kPartitionedQueries)];
        const auto events = make_stream(vocab, 200 + rng() % 200, rng(), 1 + rng() % 16);
        const auto cq = compile(text, vocab);
        const auto ref = shard::reference_partitioned_run(cq, events);
        for (const int workers : worker_counts) {
            shard::ShardedConfig cfg;
            cfg.shards = 1 + static_cast<std::uint32_t>(rng() % 8);
            cfg.instances = static_cast<std::uint32_t>(rng() % 3);
            const auto got = run_pooled(cq, cfg, events, workers);
            expect_identical(ref, got, "combo " + std::to_string(combo) + " workers=" +
                                           std::to_string(workers) + " S=" +
                                           std::to_string(cfg.shards) + " k=" +
                                           std::to_string(cfg.instances));
        }
    }
}

// End-to-end over TCP: sharded sessions (HELLO shard-count / partition-key
// fields, §10) against the multi-session server, concurrent with each other
// and with unsharded sessions, every RESULT stream byte-identical to its
// oracle. One session partitions via the HELLO field instead of query text.
TEST(ShardParity, ShardedServerSessionsMatchOracle) {
    const server::ServerConfig cfg = server::ServerConfigBuilder{}
                                         .pool_workers(4)
                                         .quantum_steps(4)  // shake the scheduler
                                         .build();
    server::CepServer srv(cfg);
    srv.start();

    const char* kPlainQuery =
        "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
        "WITHIN 12 EVENTS FROM EVERY 4 EVENTS CONSUME ALL";

    std::mt19937_64 rng(3);
    std::vector<harness::LoadGenSession> specs(8);
    std::vector<std::string> partition_fields(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto& spec = specs[i];
        if (i == 0) {
            // Partition key supplied by the HELLO field, not the query text.
            spec.query = kPlainQuery;
            spec.partition_by = "SUBJECT";
            partition_fields[i] = "SUBJECT";
        } else {
            spec.query = kPartitionedQueries[rng() % std::size(kPartitionedQueries)];
        }
        spec.instances = static_cast<std::uint32_t>(rng() % 3);
        spec.shards = 1u + static_cast<std::uint32_t>(rng() % 8);
        spec.events = spectre::testing::wire_events(150 + rng() % 200, rng(), 5 + rng() % 20);
    }
    // One unsharded session rides along: the two modes must coexist.
    specs.push_back({});
    specs.back().query = kPlainQuery;
    specs.back().instances = 2;
    specs.back().events = spectre::testing::wire_events(200, 77);

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string label = "session " + std::to_string(i) + " (S=" +
                                  std::to_string(specs[i].shards) + " k=" +
                                  std::to_string(specs[i].instances) + ")";
        ASSERT_TRUE(outcomes[i].error.empty()) << label << ": " << outcomes[i].error;
        EXPECT_TRUE(outcomes[i].completed) << label;
        EXPECT_EQ(outcomes[i].server_reported_results, outcomes[i].results.size()) << label;
        const auto oracle =
            i + 1 == specs.size()
                ? harness::sequential_oracle(specs[i].query, specs[i].events)
                : harness::partitioned_oracle(specs[i].query, specs[i].events,
                                              partition_fields[i]);
        expect_identical(oracle, outcomes[i].results, label);
    }
    srv.stop();
    const auto stats = srv.stats();
    EXPECT_EQ(stats.sessions_completed, specs.size());
    EXPECT_EQ(stats.sessions_failed, 0u);
    EXPECT_EQ(stats.tasks_live, 0u);
    EXPECT_EQ(stats.tasks_added, stats.tasks_finished);
}

// Protocol validation: sharding without a partition key is a HELLO error
// that fails only the offending session.
TEST(ShardParity, ShardsWithoutPartitionKeyRejected) {
    server::CepServer srv{server::ServerConfig{}};
    srv.start();
    harness::LoadGenSession spec;
    spec.query =
        "PATTERN (R1 R2) DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
        "WITHIN 12 EVENTS FROM EVERY 4 EVENTS CONSUME ALL";
    spec.shards = 4;  // no PARTITION BY anywhere
    spec.events = spectre::testing::wire_events(20, 1);
    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run({spec});
    EXPECT_FALSE(outcomes[0].completed);
    EXPECT_FALSE(outcomes[0].error.empty());
    srv.stop();
    EXPECT_EQ(srv.stats().sessions_failed, 1u);
}

// --- elastic partitioning (§13): migration schedules -----------------------
//
// The §10 invariant quantified over one more variable: the merged RESULT
// stream must be byte-identical to the unsharded reference for EVERY
// migration schedule — any interleaving of reshard() waves (grow AND
// shrink), targeted migrate_key() hops, and steal_hottest() calls, injected
// at any stream position. Migration must be invisible in the output.

// Deterministic first: an explicit grow→steal→shrink schedule at fixed
// stream positions, so a regression points at one wave, not a seed.
TEST(ShardParity, ExplicitGrowStealShrinkScheduleIsInvisible) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    const auto events = make_stream(vocab, 600, 42, /*symbols=*/12);
    for (const auto* text : kPartitionedQueries) {
        const auto cq = compile(text, vocab);
        const auto ref = shard::reference_partitioned_run(cq, events);
        shard::ShardedConfig cfg;
        cfg.shards = 2;
        cfg.max_shards = 8;
        std::uint64_t accepted = 0;
        const auto got = shard::run_sharded_inline(
            cq, cfg, events, /*feed_chunk=*/7, /*step_events=*/3,
            [&](shard::ShardedEngine& eng, std::size_t fed) {
                if (fed == 98) accepted += eng.reshard(8);          // grow 2→8
                if (fed == 203) accepted += eng.migrate_key(0, 5);  // targeted hop
                if (fed == 301) accepted += eng.steal_hottest(
                    eng.key_route(0), (eng.key_route(0) + 1) % 8);
                if (fed == 406) accepted += eng.reshard(3);         // shrink 8→3
            });
        expect_identical(ref, got, std::string("query: ") + text);
        EXPECT_GT(accepted, 0u) << text;  // the schedule must not be vacuous
    }
}

// Randomized migration-point differential (the ISSUE's acceptance gate):
// ≥50 random (query, stream, S_before→S_after, migration-seq, steal-schedule)
// combos, each byte-identical to the unsharded reference. Waves land between
// random feed chunks; rejected waves (one already in flight) are the
// protocol working as specified, so acceptance is tracked globally rather
// than per call.
TEST(ShardParity, RandomizedMigrationSchedulesMatchReference) {
    std::mt19937_64 rng(20260808);
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    std::uint64_t keys_moved_total = 0;
    std::uint64_t reshards_total = 0;
    for (int combo = 0; combo < 50; ++combo) {
        const auto* text = kPartitionedQueries[rng() % std::size(kPartitionedQueries)];
        const std::uint64_t n = 120 + rng() % 160;
        const std::uint64_t symbols = 1 + rng() % 24;
        const auto events = make_stream(vocab, n, rng(), symbols,
                                        0.4 + 0.1 * static_cast<double>(rng() % 3));
        const auto cq = compile(text, vocab);
        const auto ref = shard::reference_partitioned_run(cq, events);
        shard::ShardedConfig cfg;
        cfg.shards = 1 + static_cast<std::uint32_t>(rng() % 4);   // S_before
        cfg.max_shards = 8;
        cfg.instances = static_cast<std::uint32_t>(rng() % 3);
        shard::ShardedEngine::MigrationStats stats;
        const auto got = shard::run_sharded_inline(
            cq, cfg, events, /*feed_chunk=*/1 + rng() % 9, /*step_events=*/1 + rng() % 4,
            [&](shard::ShardedEngine& eng, std::size_t) {
                switch (rng() % 8) {  // mostly quiet chunks: waves need room to drain
                    case 0:
                        eng.reshard(1 + static_cast<std::uint32_t>(rng() % 8));
                        break;
                    case 1:
                        eng.migrate_key(static_cast<std::uint32_t>(rng() % 32),
                                        static_cast<std::uint32_t>(rng() % 8));
                        break;
                    case 2:
                        eng.steal_hottest(static_cast<std::uint32_t>(rng() % 8),
                                          static_cast<std::uint32_t>(rng() % 8));
                        break;
                    default:
                        break;
                }
                stats = eng.migration_stats();
            });
        expect_identical(ref, got,
                         "combo " + std::to_string(combo) + " S0=" +
                             std::to_string(cfg.shards) + " k=" +
                             std::to_string(cfg.instances) + " n=" + std::to_string(n) +
                             " syms=" + std::to_string(symbols));
        keys_moved_total += stats.keys_moved;
        reshards_total += stats.reshards;
    }
    // The differential is only evidence if schedules actually migrated lanes.
    EXPECT_GT(keys_moved_total, 100u);
    EXPECT_GT(reshards_total, 20u);
}

// The same schedules with real threads: the feeder injects waves while S
// slot tasks run on a worker pool — handoff deposits, shard-waker wakeups,
// and blocked-head parking all race real detection. TSan leg included.
TEST(ShardParity, PooledMigrationSchedulesMatchReference) {
    std::mt19937_64 rng(9090);
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    std::uint64_t keys_moved_total = 0;
    for (int combo = 0; combo < 8; ++combo) {
        const auto* text = kPartitionedQueries[rng() % std::size(kPartitionedQueries)];
        const auto events = make_stream(vocab, 200 + rng() % 200, rng(), 1 + rng() % 16);
        const auto cq = compile(text, vocab);
        const auto ref = shard::reference_partitioned_run(cq, events);
        shard::ShardedConfig cfg;
        cfg.shards = 1 + static_cast<std::uint32_t>(rng() % 3);
        cfg.max_shards = 6;
        cfg.instances = static_cast<std::uint32_t>(rng() % 3);

        server::EnginePool pool(1 + static_cast<int>(rng() % 4));
        pool.start();
        std::vector<event::ComplexEvent> out;
        std::mutex out_mutex;
        shard::ShardedEngine engine(&cq, cfg, [&](event::ComplexEvent&& ce) {
            const std::lock_guard<std::mutex> lock(out_mutex);
            out.push_back(std::move(ce));
        });
        shard::PooledShardRun run(&engine, &pool, /*id_base=*/5000);
        run.start();
        std::size_t fed = 0;
        for (const auto& e : events) {
            run.ingest(e);
            // Feeder-side waves (the API contract: one mutator thread) racing
            // live shard tasks.
            if (++fed % 17 == 0) {
                switch (rng() % 3) {
                    case 0:
                        engine.reshard(1 + static_cast<std::uint32_t>(rng() % 6));
                        break;
                    case 1:
                        engine.migrate_key(static_cast<std::uint32_t>(rng() % 24),
                                           static_cast<std::uint32_t>(rng() % 6));
                        break;
                    case 2:
                        engine.steal_hottest(static_cast<std::uint32_t>(rng() % 6),
                                             static_cast<std::uint32_t>(rng() % 6));
                        break;
                }
            }
        }
        run.close();
        run.wait();
        pool.stop();
        EXPECT_TRUE(engine.finished());
        keys_moved_total += engine.migration_stats().keys_moved;
        expect_identical(ref, out, "combo " + std::to_string(combo));
    }
    EXPECT_GT(keys_moved_total, 0u);
}

// Dropped-ingest signal (§13 bugfix sweep): events arriving after the input
// closed (the benign worker-abort race) must be reported as dropped, enqueue
// nothing, and leave the pre-close output untouched.
TEST(ShardParity, IngestAfterCloseReportsDroppedAndStaysCorrect) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    const auto events = make_stream(vocab, 300, 5, /*symbols=*/6);
    const auto cq = compile(kPartitionedQueries[1], vocab);
    const auto ref = shard::reference_partitioned_run(cq, events);
    ASSERT_FALSE(ref.empty());

    std::vector<event::ComplexEvent> out;
    shard::ShardedConfig cfg;
    cfg.shards = 4;
    shard::ShardedEngine engine(&cq, cfg, [&](event::ComplexEvent&& ce) {
        out.push_back(std::move(ce));
    });
    for (const auto& e : events) {
        const auto info = engine.ingest(e);
        EXPECT_FALSE(info.dropped);
    }
    engine.close_input();
    // Trailing events racing the close: dropped, not queued, not fatal.
    for (std::size_t i = 0; i < 10; ++i) {
        const auto info = engine.ingest(events[i]);
        EXPECT_TRUE(info.dropped);  // queued reports depth for backpressure, not 0
    }
    while (!engine.finished())
        for (std::uint32_t s = 0; s < engine.shards(); ++s) engine.step_shard(s, 8);
    expect_identical(ref, out, "drop-after-close");
}

// Shard skew: a single-key stream hashes every event to ONE shard — the
// other S-1 shard tasks spin up, find nothing, and must still take part in
// the EOS handshake without stalling the merge. Runs under the TSan label.
TEST(ShardParity, TotalSkewOneHotShardStaysCorrect) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    const auto events = make_stream(vocab, 1500, 99, /*symbols=*/1);
    const auto cq = compile(kPartitionedQueries[0], vocab);
    const auto ref = shard::reference_partitioned_run(cq, events);
    ASSERT_FALSE(ref.empty());
    shard::ShardedConfig cfg;
    cfg.shards = 8;
    const auto got = run_pooled(cq, cfg, events, /*workers=*/4);
    expect_identical(ref, got, "total skew S=8 workers=4");
}

// ---------------------------------------------------------------------------
// ReshardController low-watermark shrink (§13): off by default; when enabled,
// only a *sustained* all-quiet streak proposes halving the active width, and
// any loud window — or a fired decision — restarts the streak.
// ---------------------------------------------------------------------------

TEST(ShardParity, ControllerShrinkRequiresSustainedQuietStreak) {
    if (!obs::enabled()) GTEST_SKIP() << "metrics disabled via SPECTRE_OBS_OFF";
    using Kind = shard::ReshardDecision::Kind;
    obs::Registry reg;
    std::vector<obs::Series> peaks;
    for (int s = 0; s < 4; ++s)
        peaks.push_back(reg.add("test_lane_peak" + std::to_string(s),
                                obs::Kind::PeakGauge));
    const auto scope = reg.make_shard();

    shard::ReshardPolicy policy;
    policy.shrink_max_peak = 10;
    policy.shrink_after_windows = 3;
    shard::ReshardController ctl(scope.get(), peaks, policy);

    const auto window = [&](std::initializer_list<std::uint64_t> vs) {
        std::size_t s = 0;
        for (const auto v : vs) scope->set_peak(peaks[s++], v);
        return ctl.decide(4);
    };

    EXPECT_EQ(window({1, 2, 3, 4}).kind, Kind::None);  // quiet #1
    EXPECT_EQ(window({0, 0, 1, 2}).kind, Kind::None);  // quiet #2
    EXPECT_EQ(window({55, 0, 0, 0}).kind, Kind::None); // loud slot: streak resets
    EXPECT_EQ(window({1, 1, 1, 1}).kind, Kind::None);  // quiet #1 again
    EXPECT_EQ(window({2, 2, 2, 2}).kind, Kind::None);  // quiet #2
    const auto d = window({3, 3, 3, 3});               // quiet #3 → shrink
    EXPECT_EQ(d.kind, Kind::Shrink);
    EXPECT_EQ(d.new_shards, 2u);
    // The streak restarted with the decision: the very next quiet window
    // must not fire again.
    EXPECT_EQ(window({0, 0, 0, 0}).kind, Kind::None);

    // Default policy (shrink_max_peak == 0): dead-quiet forever, no shrink —
    // the pre-§13-shrink behavior is the default.
    shard::ReshardController off(scope.get(), peaks, shard::ReshardPolicy{});
    for (int w = 0; w < 16; ++w) {
        for (auto& p : peaks) scope->set_peak(p, 0);
        EXPECT_EQ(off.decide(4).kind, Kind::None) << "off w=" << w;
    }
}
