#include <gtest/gtest.h>

#include "data/nyse_synth.hpp"
#include "detect/compiled_query.hpp"
#include "queries/paper_queries.hpp"
#include "sequential/seq_engine.hpp"

using namespace spectre;
using namespace spectre::queries;

namespace {

data::StockVocab vocab() {
    return data::StockVocab::create(std::make_shared<event::Schema>());
}

event::EventStore nyse(const data::StockVocab& v, std::uint64_t events, double up_prob,
                       int symbols = 100) {
    data::NyseSynthConfig cfg;
    cfg.events = events;
    cfg.symbols = symbols;
    cfg.up_prob = up_prob;
    event::EventStore store;
    data::generate_nyse(v, cfg, store);
    return store;
}

}  // namespace

TEST(Q1, ShapeAndMinLength) {
    const auto v = vocab();
    const auto q = make_q1(v, Q1Params{.q = 40, .ws = 8000});
    EXPECT_EQ(q.pattern.elements.size(), 41u);
    EXPECT_EQ(q.pattern.min_length(), 41);
    EXPECT_EQ(q.window.kind, query::WindowKind::PredicateOpen);
    EXPECT_EQ(q.window.size, 8000u);
    EXPECT_EQ(q.consumption.kind, query::ConsumptionPolicy::Kind::All);
    EXPECT_EQ(q.max_matches_per_window, 1);
}

TEST(Q1, SmallPatternOnBullMarketAlmostAlwaysCompletes) {
    const auto v = vocab();
    const auto q = make_q1(v, Q1Params{.q = 4, .ws = 200});
    const auto cq = detect::CompiledQuery::compile(q);
    // Paper-like leader density: windows open rarely relative to how much
    // each completed match consumes, so consumption pressure stays low.
    const auto store = nyse(v, 10000, /*up_prob=*/1.0, /*symbols=*/500);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    ASSERT_GT(r.stats.groups_created, 0u);
    // Every quote rises: essentially every opened group completes (only the
    // clamped windows at the stream tail can abandon).
    EXPECT_GT(r.stats.completion_probability(), 0.9);
    // Each complex event has exactly q+1 constituents.
    for (const auto& ce : r.complex_events) EXPECT_EQ(ce.constituents.size(), 5u);
}

TEST(Q1, DenseWindowsCreateConsumptionPressure) {
    // With leaders at 16% of the stream, each completed match consumes far
    // more events (q+1 = 31) than the distance between window openings
    // (~12): the consumption frontier outruns the windows and many groups
    // abandon even though every quote rises.
    const auto v = vocab();
    const auto q = make_q1(v, Q1Params{.q = 30, .ws = 200});
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = nyse(v, 5000, /*up_prob=*/1.0, /*symbols=*/100);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    EXPECT_LT(r.stats.completion_probability(), 0.6);
    EXPECT_GT(r.stats.completion_probability(), 0.01);
}

TEST(Q1, OversizedPatternNeverCompletes) {
    const auto v = vocab();
    const auto q = make_q1(v, Q1Params{.q = 300, .ws = 200});  // q > ws
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = nyse(v, 3000, 0.9);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    EXPECT_EQ(r.complex_events.size(), 0u);
}

TEST(Q1, FallingVariantMatchesBearMarket) {
    const auto v = vocab();
    const auto q = make_q1(v, Q1Params{.q = 4, .ws = 200, .rising = false});
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = nyse(v, 5000, /*up_prob=*/0.0);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    EXPECT_GT(r.complex_events.size(), 0u);
}

TEST(Q1, CompletionProbabilityDropsWithRatio) {
    const auto v = vocab();
    const auto store = nyse(v, 20000, 0.5, /*symbols=*/500);
    double prev = 1.1;
    for (const int q_size : {8, 32, 56}) {
        const auto q = make_q1(v, Q1Params{.q = q_size, .ws = 64});
        const auto cq = detect::CompiledQuery::compile(q);
        const auto r = sequential::SequentialEngine(&cq).run(store);
        const double p = r.stats.completion_probability();
        EXPECT_LT(p, prev) << "q=" << q_size;
        prev = p;
    }
}

TEST(Q2, ShapeThirteenElements) {
    const auto v = vocab();
    const auto q = make_q2(v, Q2Params{});
    EXPECT_EQ(q.pattern.elements.size(), 13u);
    EXPECT_EQ(q.pattern.elements[1].kind, query::ElementKind::Plus);
    EXPECT_EQ(q.pattern.elements[12].name, "M");
    EXPECT_EQ(q.pattern.min_length(), 13);
    EXPECT_THROW(make_q2(v, Q2Params{.lower = 10, .upper = 5}), std::invalid_argument);
}

TEST(Q2, DetectsOscillationAcrossBands) {
    const auto v = vocab();
    // Hand-built oscillating price path: below 95, band, above 105, repeated.
    event::EventStore store;
    const double seq_prices[] = {90, 100, 110, 100, 90, 100, 110, 100, 90,
                                 100, 110, 100, 90};
    event::Timestamp t = 0;
    const auto sym = v.leaders[0];
    for (const double p : seq_prices)
        store.append(data::make_quote(v, t++, sym, p, p, 100));
    const auto q = make_q2(v, Q2Params{.lower = 95, .upper = 105,
                                       .ws = 13, .slide = 13});
    const auto cq = detect::CompiledQuery::compile(q);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    ASSERT_EQ(r.complex_events.size(), 1u);
    EXPECT_EQ(r.complex_events[0].constituents.size(), 13u);
}

TEST(Q3, ShapeAndSetSize) {
    const auto v = vocab();
    const auto q = make_q3(v, Q3Params{.n = 10, .ws = 1000, .slide = 100});
    EXPECT_EQ(q.pattern.elements.size(), 2u);
    EXPECT_EQ(q.pattern.elements[1].members.size(), 10u);
    EXPECT_EQ(q.pattern.min_length(), 11);
}

TEST(Q3, LargeSetBeyondSixtyFourMembers) {
    const auto v = vocab();
    const auto q = make_q3(v, Q3Params{.n = 99, .ws = 1000, .slide = 100});
    EXPECT_EQ(q.pattern.min_length(), 100);
    EXPECT_NO_THROW(detect::CompiledQuery::compile(q));
}

TEST(Q3, MatchesSetInAnyOrder) {
    const auto v = vocab();
    event::EventStore store;
    event::Timestamp t = 0;
    // A = leaders[0], members = leaders[1..3]; scrambled order with noise.
    for (const int idx : {0, 5, 3, 9, 1, 2}) {
        store.append(data::make_quote(v, t++, v.leaders[(std::size_t)idx], 100, 101, 1));
    }
    const auto q = make_q3(v, Q3Params{.n = 3, .ws = 6, .slide = 6});
    const auto cq = detect::CompiledQuery::compile(q);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    ASSERT_EQ(r.complex_events.size(), 1u);
    EXPECT_EQ(r.complex_events[0].constituents, (std::vector<event::Seq>{0, 2, 4, 5}));
}

TEST(QE, FactorPayloadAndConsumption) {
    const auto v = vocab();
    event::EventStore store;
    const auto aapl = v.schema->intern_subject("AAPL");
    const auto msft = v.schema->intern_subject("MSFT");
    // A at t=0 (change +2), B at t=0 (change +4) -> Factor 2; B consumed.
    store.append(data::make_quote(v, 0, aapl, 100, 102, 1));
    store.append(data::make_quote(v, 0, msft, 200, 204, 1));
    const auto q = make_qe(v, QeParams{});
    const auto cq = detect::CompiledQuery::compile(q);
    const auto r = sequential::SequentialEngine(&cq).run(store);
    ASSERT_EQ(r.complex_events.size(), 1u);
    ASSERT_EQ(r.complex_events[0].payload.size(), 1u);
    EXPECT_EQ(r.complex_events[0].payload[0].first, "Factor");
    EXPECT_DOUBLE_EQ(r.complex_events[0].payload[0].second, 2.0);
}

TEST(QE, Fig1SemanticsOnQuoteStream) {
    const auto v = vocab();
    const auto aapl = v.schema->intern_subject("AAPL");
    const auto msft = v.schema->intern_subject("MSFT");
    event::EventStore store;
    store.append(data::make_quote(v, 0, aapl, 100, 101, 1));   // A1
    store.append(data::make_quote(v, 0, msft, 50, 51, 1));     // B1
    store.append(data::make_quote(v, 0, msft, 51, 52, 1));     // B2 (same minute as A1)
    // Consuming B: both Bs pair with A1.
    {
        const auto cq = detect::CompiledQuery::compile(make_qe(v, QeParams{.consume_b = true}));
        const auto r = sequential::SequentialEngine(&cq).run(store);
        EXPECT_EQ(r.complex_events.size(), 2u);
    }
    // Without consumption: same two pairings (single window).
    {
        const auto cq = detect::CompiledQuery::compile(make_qe(v, QeParams{.consume_b = false}));
        const auto r = sequential::SequentialEngine(&cq).run(store);
        EXPECT_EQ(r.complex_events.size(), 2u);
    }
}
