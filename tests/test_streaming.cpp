// Streaming ingestion end-to-end (DESIGN.md §6): when the store is fed live
// *during* the run — through a LiveStream, a TCP connection, or an
// event-by-event poll — every engine must still deliver exactly the
// sequential batch output: same events, same payloads, same window order.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "data/nyse_synth.hpp"
#include "model/markov_model.hpp"
#include "net/tcp.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/runtime.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace spectre;
using spectre::testing::TestEnv;

namespace {

// Random event vector over the letters A..E (same shape as the batch
// equivalence suites in test_spectre_runtime.cpp).
std::vector<event::Event> random_events(TestEnv& env, std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<event::Event> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const char c = static_cast<char>('A' + rng.uniform_int(0, 4));
        events.push_back(env.ev(c, static_cast<double>(rng.uniform_int(0, 9)),
                                static_cast<event::Timestamp>(i)));
    }
    return events;
}

event::EventStore store_from(const std::vector<event::Event>& events) {
    event::EventStore store;
    for (const auto& e : events) store.append(e);
    return store;
}

void expect_same_output(const std::vector<event::ComplexEvent>& expected,
                        const std::vector<event::ComplexEvent>& actual,
                        const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
        EXPECT_EQ(expected[i].constituents, actual[i].constituents) << label << " @" << i;
        EXPECT_EQ(expected[i].payload, actual[i].payload) << label << " @" << i;
    }
}

std::unique_ptr<model::CompletionModel> make_markov(const detect::CompiledQuery& cq) {
    model::MarkovParams params;
    params.refresh_every = 200;
    return std::make_unique<model::MarkovModel>(cq.min_length(), params);
}

// Feeds `events` through a LiveStream into a live SpectreRuntime run and
// checks the output against the sequential batch ground truth. `throttle`
// inserts producer pauses so detection genuinely overtakes ingestion and
// stalls at the frontier.
void check_live_equivalence(const query::Query& q, const std::vector<event::Event>& events,
                            int instances, bool throttle, const std::string& label) {
    const auto cq = detect::CompiledQuery::compile(q);
    const auto batch_store = store_from(events);
    const auto expected = sequential::SequentialEngine(&cq).run(batch_store);

    event::LiveStream live;
    std::thread producer([&events, &live, throttle] {
        std::size_t i = 0;
        for (const auto& e : events) {
            live.push(e);
            if (throttle && (++i % 50 == 0))
                std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        live.close();
    });

    event::EventStore store;
    core::RuntimeConfig cfg;
    cfg.splitter.instances = instances;
    cfg.splitter.instance.consistency_check_freq = 8;
    cfg.batch_events = 16;
    core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
    const auto result = rt.run(live);
    producer.join();

    ASSERT_EQ(store.size(), events.size()) << label;
    EXPECT_TRUE(store.closed()) << label;
    expect_same_output(expected.complex_events, result.output, label);
}

}  // namespace

// ---------------------------------------------------------------------------
// SPECTRE fed live during the run matches the sequential batch output.
// ---------------------------------------------------------------------------

TEST(StreamingSpectre, ConsumeAllOverlappingWindowsLiveFeed) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    for (const std::uint64_t seed : {1u, 2u, 3u})
        check_live_equivalence(q, random_events(env, 300, seed), 4, false,
                               "live seq-consume-all seed=" + std::to_string(seed));
}

TEST(StreamingSpectre, ThrottledProducerForcesFrontierStalls) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(24, 6))
                 .consume_all()
                 .build();
    for (const std::uint64_t seed : {7u, 8u})
        check_live_equivalence(q, random_events(env, 400, seed), 4, true,
                               "throttled seed=" + std::to_string(seed));
}

TEST(StreamingSpectre, KleenePlusLiveFeed) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(30, 10))
                 .consume_all()
                 .build();
    check_live_equivalence(q, random_events(env, 300, 21), 4, false, "live kleene");
}

TEST(StreamingSpectre, PredicateOpenWindowsLiveFeed) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .sticky()
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::predicate_open_count(env.is('A'), 15))
                 .consume({"B"})
                 .build();
    check_live_equivalence(q, random_events(env, 250, 61), 4, true,
                           "live sticky-predicate-open");
}

TEST(StreamingSpectre, SlidingTimeWindowsLiveFeed) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_time(25, 10))
                 .consume_all()
                 .build();
    check_live_equivalence(q, random_events(env, 300, 71), 4, false, "live sliding-time");
}

TEST(StreamingSpectre, InstanceCountSweepLiveFeed) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(20, 5))
                 .consume_all()
                 .build();
    const auto events = random_events(env, 300, 81);
    for (const int k : {1, 2, 8})
        check_live_equivalence(q, events, k, false, "live k=" + std::to_string(k));
}

TEST(StreamingSpectre, EmptyLiveStream) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .window(query::WindowSpec::sliding_count(10, 5))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    event::LiveStream live;
    live.close();
    event::EventStore store;
    core::RuntimeConfig cfg;
    cfg.splitter.instances = 2;
    core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
    EXPECT_TRUE(rt.run(live).output.empty());
    EXPECT_TRUE(store.closed());
}

TEST(StreamingSpectre, StreamingRunRequiresMutableStore) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .window(query::WindowSpec::sliding_count(10, 5))
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const event::EventStore store;  // batch ctor: const store
    core::RuntimeConfig cfg;
    cfg.splitter.instances = 1;
    core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
    event::LiveStream live;
    live.close();
    EXPECT_THROW(rt.run(live), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sequential engine: the streaming path is byte-identical to batch.
// ---------------------------------------------------------------------------

TEST(StreamingSequential, RunStreamMatchesBatchRun) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(18, 6))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    for (const std::uint64_t seed : {201u, 202u, 203u}) {
        const auto events = random_events(env, 350, seed);
        const auto expected = sequential::SequentialEngine(&cq).run(store_from(events));

        event::LiveStream live;
        live.push_all(events);
        live.close();
        event::EventStore store;
        const auto streamed = sequential::SequentialEngine(&cq).run_stream(live, store);

        expect_same_output(expected.complex_events, streamed.complex_events,
                           "seq-stream seed=" + std::to_string(seed));
        EXPECT_EQ(expected.stats.windows, streamed.stats.windows);
        EXPECT_EQ(expected.stats.events_processed, streamed.stats.events_processed);
        EXPECT_EQ(expected.stats.groups_completed, streamed.stats.groups_completed);
        EXPECT_TRUE(store.closed());
        EXPECT_EQ(store.size(), events.size());
    }
}

// ---------------------------------------------------------------------------
// Arrival-driven window assignment: event-by-event polling emits exactly the
// batch assignment (modulo the documented end-of-stream clamp).
// ---------------------------------------------------------------------------

namespace {

void check_assigner_equivalence(const query::WindowSpec& spec,
                                const std::vector<event::Event>& events,
                                const std::string& label) {
    event::EventStore batch;
    for (const auto& e : events) batch.append(e);
    const auto expected = query::assign_windows(batch, spec);

    event::EventStore store;
    query::WindowAssigner assigner(spec);
    std::vector<query::WindowInfo> got;
    for (const auto& e : events) {
        store.append(e);
        assigner.poll(store, store.size(), false, got);
        // Already-emitted windows must never be revised by later arrivals.
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].id, i) << label;
            EXPECT_EQ(got[i].first, expected[i].first) << label << " @" << i;
        }
    }
    store.close();
    assigner.poll(store, store.size(), true, got);
    EXPECT_TRUE(assigner.exhausted()) << label;

    ASSERT_EQ(got.size(), expected.size()) << label;
    const event::Seq max_last = events.empty() ? 0 : events.size() - 1;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, expected[i].first) << label << " @" << i;
        EXPECT_EQ(std::min(got[i].last, max_last), expected[i].last) << label << " @" << i;
        EXPECT_GE(got[i].last, expected[i].last) << label << " @" << i;
    }
}

}  // namespace

TEST(WindowAssignerIncremental, MatchesBatchForAllKinds) {
    TestEnv env;
    const auto events = random_events(env, 200, 303);
    check_assigner_equivalence(query::WindowSpec::sliding_count(20, 5), events,
                               "sliding-count");
    check_assigner_equivalence(query::WindowSpec::sliding_count(10, 15), events,
                               "sliding-count-gaps");
    check_assigner_equivalence(query::WindowSpec::sliding_time(25, 10), events,
                               "sliding-time");
    check_assigner_equivalence(query::WindowSpec::predicate_open_count(env.is('A'), 12),
                               events, "predicate-count");
    check_assigner_equivalence(query::WindowSpec::predicate_open_time(env.is('A'), 30),
                               events, "predicate-time");
}

TEST(WindowAssignerIncremental, EmptyAndClosedStream) {
    event::EventStore store;
    store.close();
    query::WindowAssigner assigner(query::WindowSpec::sliding_count(4, 2));
    std::vector<query::WindowInfo> got;
    EXPECT_EQ(assigner.poll(store, 0, true, got), 0u);
    EXPECT_TRUE(assigner.exhausted());
    EXPECT_TRUE(got.empty());
}

// ---------------------------------------------------------------------------
// TCP ingestion: detect while the client is still sending.
// ---------------------------------------------------------------------------

TEST(StreamingTcp, PipelineMatchesSequential) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig gen;
    gen.events = 3000;
    gen.symbols = 50;
    gen.up_prob = 0.6;
    const auto events = data::generate_nyse(vocab, gen);

    // Ground truth: sequential over the same events.
    event::EventStore batch;
    for (const auto& e : events) batch.append(e);

    // Q1-flavoured query on the quote stream: two consecutive rising quotes.
    const auto rising = [&] {
        return query::binary(query::BinOp::Gt, query::attr(vocab.close_slot),
                             query::attr(vocab.open_slot));
    };
    auto q = query::QueryBuilder(vocab.schema)
                 .single("R1", rising())
                 .single("R2", rising())
                 .window(query::WindowSpec::sliding_count(40, 10))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto expected = sequential::SequentialEngine(&cq).run(batch);

    net::TcpSource source(0);
    std::thread client([&] {
        net::TcpClient c("127.0.0.1", source.port());
        c.send_all(events, vocab);
    });

    event::EventStore store;
    core::RuntimeConfig cfg;
    cfg.splitter.instances = 4;
    core::SpectreRuntime rt(&store, &cq, cfg, make_markov(cq));
    net::TcpStream stream(source, vocab);
    const auto result = rt.run(stream);
    client.join();

    ASSERT_EQ(store.size(), events.size());
    expect_same_output(expected.complex_events, result.output, "tcp-streaming");
}
