#include <gtest/gtest.h>

#include "sequential/seq_engine.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using spectre::testing::TestEnv;
using spectre::testing::constituents;

namespace {

// The paper's running example (Fig. 1): A1 A2 B1 B2 within the first
// 1-minute window opened by A1; B3 only inside the window opened by A2.
// Store seqs: A1=0, A2=1, B1=2, B2=3, B3=4.
event::EventStore fig1_store(TestEnv& env) {
    event::EventStore store;
    store.append(env.ev('A', 2, 0));    // A1
    store.append(env.ev('A', 4, 10));   // A2
    store.append(env.ev('B', 10, 20));  // B1
    store.append(env.ev('B', 20, 30));  // B2
    store.append(env.ev('B', 30, 65));  // B3
    return store;
}

query::Query qe_query(TestEnv& env, bool consume_b) {
    auto b = query::QueryBuilder(env.schema);
    b.single("A", env.is('A'))
        .sticky()
        .single("B", env.is('B'))
        .window(query::WindowSpec::predicate_open_time(env.is('A'), 60))
        .emit("factor", query::binary(query::BinOp::Div, query::bound_attr(1, env.v),
                                      query::bound_attr(0, env.v)));
    if (consume_b) b.consume({"B"});
    return b.build();
}

}  // namespace

TEST(Sequential, Fig1aNoConsumptionProducesFiveComplexEvents) {
    TestEnv env;
    const auto cq = detect::CompiledQuery::compile(qe_query(env, /*consume_b=*/false));
    const auto store = fig1_store(env);
    const auto result = sequential::SequentialEngine(&cq).run(store);
    // Fig. 1(a): A1B1, A1B2, A2B1, A2B2, A2B3.
    EXPECT_EQ(constituents(result.complex_events),
              (std::vector<std::vector<event::Seq>>{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}}));
    EXPECT_EQ(result.stats.windows, 2u);
}

TEST(Sequential, Fig1bSelectedBConsumptionProducesThree) {
    TestEnv env;
    const auto cq = detect::CompiledQuery::compile(qe_query(env, /*consume_b=*/true));
    const auto store = fig1_store(env);
    const auto result = sequential::SequentialEngine(&cq).run(store);
    // Fig. 1(b): A1B1, A1B2, A2B3 — B1/B2 consumed in w1 are invisible in w2.
    EXPECT_EQ(constituents(result.complex_events),
              (std::vector<std::vector<event::Seq>>{{0, 2}, {0, 3}, {1, 4}}));
    EXPECT_EQ(result.stats.events_suppressed, 2u);  // B1, B2 skipped in w2
}

TEST(Sequential, Fig1PayloadFactorComputed) {
    TestEnv env;
    const auto cq = detect::CompiledQuery::compile(qe_query(env, true));
    const auto result = sequential::SequentialEngine(&cq).run(fig1_store(env));
    ASSERT_EQ(result.complex_events.size(), 3u);
    // A1B1: factor = B1.v / A1.v = 10 / 2.
    EXPECT_DOUBLE_EQ(result.complex_events[0].payload[0].second, 5.0);
}

TEST(Sequential, ConsumptionPropagatesAcrossSlidingWindows) {
    TestEnv env;
    // Pattern A B, consume all, windows of 4 sliding by 2: the B consumed in
    // w0 must not complete a match in w1.
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(4, 2))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = env.store_of("AABX");  // w0=[0,3], w1=[2,3]
    const auto result = sequential::SequentialEngine(&cq).run(store);
    ASSERT_EQ(result.complex_events.size(), 1u);
    EXPECT_EQ(result.complex_events[0].constituents, (std::vector<event::Seq>{0, 2}));
    EXPECT_EQ(result.complex_events[0].window_id, 0u);
}

TEST(Sequential, WithoutConsumptionWindowsAreIndependent) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(4, 2))
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = env.store_of("XABX");  // w0=[0,3], w1=[2,3]
    const auto result = sequential::SequentialEngine(&cq).run(store);
    // w0 matches {1,2}; w1 starts at seq 2 and has no A.
    EXPECT_EQ(constituents(result.complex_events),
              (std::vector<std::vector<event::Seq>>{{1, 2}}));
}

TEST(Sequential, GroundTruthCompletionProbability) {
    TestEnv env;
    // Windows of 2 sliding by 2 over "AB AX AB AX": every window starts a
    // match; half of them complete.
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(2, 2))
                 .consume_all()
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = env.store_of("ABAXABAX");
    const auto result = sequential::SequentialEngine(&cq).run(store);
    EXPECT_EQ(result.stats.windows, 4u);
    EXPECT_EQ(result.stats.groups_created, 4u);
    EXPECT_EQ(result.stats.groups_completed, 2u);
    EXPECT_DOUBLE_EQ(result.stats.completion_probability(), 0.5);
    EXPECT_EQ(result.stats.complex_events, 2u);
}

TEST(Sequential, ComplexEventsOrderedByWindow) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(4, 2))
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    const auto store = env.store_of("ABABAB");
    const auto result = sequential::SequentialEngine(&cq).run(store);
    for (std::size_t i = 1; i < result.complex_events.size(); ++i)
        EXPECT_LE(result.complex_events[i - 1].window_id, result.complex_events[i].window_id);
    EXPECT_GE(result.complex_events.size(), 3u);
}

TEST(Sequential, EmptyStoreNoWindowsNoEvents) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .window(query::WindowSpec::sliding_count(4, 2))
                 .build();
    const auto cq = detect::CompiledQuery::compile(q);
    event::EventStore store;
    const auto result = sequential::SequentialEngine(&cq).run(store);
    EXPECT_TRUE(result.complex_events.empty());
    EXPECT_EQ(result.stats.windows, 0u);
}
