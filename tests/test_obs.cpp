// The unified metrics plane (DESIGN.md §12): registry/shard semantics the
// whole server observability stack leans on.
//
//   * aggregation rules per kind — counters/gauges sum, peaks max, histograms
//     sum per cell — across live shards and the retained (retired) block;
//   * monotonicity across retire(): a scope's counters must survive its
//     shard, gauges must not (a dead scope has no "current" value);
//   * late registration: a shard only carries cells for series known at its
//     creation — older shards read zero / no-op for newer series;
//   * the log2 bucket map and the quantile estimate built on it;
//   * both expositions (Prometheus text, flat JSON);
//   * the multi-lane fold helpers (SchedStats::merge, SplitterMetrics::merge)
//     the sharded stats path uses;
//   * a scrape-while-writing smoke (relaxed cells + snapshot mutex — the
//     TSan leg runs this suite).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "spectre/runtime.hpp"
#include "spectre/splitter.hpp"

using namespace spectre;

namespace {

constexpr obs::Series kCtr{obs::sid::kEventsIngested};
constexpr obs::Series kGauge{obs::sid::kEgressBufferedBytes};
constexpr obs::Series kPeak{obs::sid::kEgressPeakBytes};
constexpr obs::Series kHist{obs::sid::kResultLatencyNs};

}  // namespace

TEST(ObsBuckets, Log2Map) {
    EXPECT_EQ(obs::bucket_of(0), 0u);
    EXPECT_EQ(obs::bucket_of(1), 1u);   // [1,2)
    EXPECT_EQ(obs::bucket_of(2), 2u);   // [2,4)
    EXPECT_EQ(obs::bucket_of(3), 2u);
    EXPECT_EQ(obs::bucket_of(4), 3u);   // [4,8)
    EXPECT_EQ(obs::bucket_of(1023), 10u);
    EXPECT_EQ(obs::bucket_of(1024), 11u);
    // Clamped at the top bucket.
    EXPECT_EQ(obs::bucket_of(~std::uint64_t{0}), obs::kHistBuckets - 1);
}

TEST(ObsRegistry, CountersSumAcrossShards) {
    obs::Registry reg;
    const auto a = reg.make_shard();
    const auto b = reg.make_shard();
    a->add(kCtr, 3);
    b->add(kCtr, 4);
    EXPECT_EQ(reg.snapshot().value(kCtr), 7u);
    // Per-shard view sees only its own cells.
    EXPECT_EQ(reg.snapshot_of(*a).value(kCtr), 3u);
}

TEST(ObsRegistry, RetireKeepsCountersDropsGauges) {
    obs::Registry reg;
    const auto a = reg.make_shard();
    a->add(kCtr, 10);
    a->set(kGauge, 512);
    a->set_peak(kPeak, 512);
    EXPECT_EQ(reg.snapshot().value(kGauge), 512u);

    reg.retire(a);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.value(kCtr), 10u) << "counters must be monotone across retire";
    EXPECT_EQ(snap.value(kGauge), 0u) << "a retired scope has no current value";
    EXPECT_EQ(snap.value(kPeak), 512u) << "peaks fold with max";
}

TEST(ObsRegistry, PeakFoldsWithMaxNotSum) {
    obs::Registry reg;
    const auto a = reg.make_shard();
    const auto b = reg.make_shard();
    a->set_peak(kPeak, 100);
    b->set_peak(kPeak, 70);
    EXPECT_EQ(reg.snapshot().value(kPeak), 100u);
    reg.retire(a);
    reg.retire(b);
    EXPECT_EQ(reg.snapshot().value(kPeak), 100u);
    // A later, lower peak cannot shrink the fold.
    const auto c = reg.make_shard();
    c->set_peak(kPeak, 30);
    EXPECT_EQ(reg.snapshot().value(kPeak), 100u);
}

TEST(ObsRegistry, HistogramAggregatesAndFolds) {
    obs::Registry reg;
    const auto a = reg.make_shard();
    const auto b = reg.make_shard();
    a->observe(kHist, 5);
    a->observe(kHist, 100);
    b->observe(kHist, 7);

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.entries[kHist.index].count, 3u);
    EXPECT_EQ(snap.entries[kHist.index].sum, 112u);

    reg.retire(a);
    snap = reg.snapshot();
    EXPECT_EQ(snap.entries[kHist.index].count, 3u) << "observations survive retire";
    EXPECT_EQ(snap.entries[kHist.index].sum, 112u);
}

TEST(ObsRegistry, QuantileUpperBoundsTheBucket) {
    obs::Registry reg;
    const auto s = reg.make_shard();
    for (int i = 0; i < 99; ++i) s->observe(kHist, 3);  // bucket [2,4)
    s->observe(kHist, 1000);                            // bucket [512,1024)
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.quantile(kHist, 0.50), 3u);  // upper bound of [2,4) is 2^2-1
    EXPECT_EQ(snap.quantile(kHist, 0.999), 1023u);
    EXPECT_EQ(snap.quantile(kGauge, 0.50), 0u) << "empty series quantile is 0";
}

TEST(ObsRegistry, LateRegisteredSeriesInvisibleToOlderShards) {
    obs::Registry reg;
    const auto old_shard = reg.make_shard();
    const auto late = reg.add("custom_counter", obs::Kind::Counter);
    old_shard->add(late, 5);  // must be a silent no-op, not a stomp
    EXPECT_EQ(reg.snapshot().value(late), 0u);
    EXPECT_EQ(reg.snapshot().value(kCtr), 0u) << "no neighbor cell was written";

    const auto fresh = reg.make_shard();
    fresh->add(late, 5);
    EXPECT_EQ(reg.snapshot().value(late), 5u);
}

TEST(ObsRegistry, AddIsIdempotentByName) {
    obs::Registry reg;
    const auto a = reg.add("lane_depth_peak{shard=\"0\"}", obs::Kind::PeakGauge);
    const auto b = reg.add("lane_depth_peak{shard=\"0\"}", obs::Kind::PeakGauge);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(reg.series_count(), static_cast<std::size_t>(obs::sid::kCount) + 1);
}

TEST(ObsExposition, PrometheusCarriesTypesBucketsAndLabels) {
    obs::Registry reg;
    const auto lane = reg.add("lane_depth_peak{shard=\"2\"}", obs::Kind::PeakGauge);
    const auto s = reg.make_shard();
    s->add(kCtr, 42);
    s->set_peak(lane, 9);
    s->observe(kHist, 5);

    const std::string text = reg.prometheus();
    EXPECT_NE(text.find("# TYPE spectre_events_ingested counter"), std::string::npos);
    EXPECT_NE(text.find("spectre_events_ingested 42"), std::string::npos);
    // The {label} suffix splits into a real Prometheus label set.
    EXPECT_NE(text.find("spectre_lane_depth_peak{shard=\"2\"} 9"), std::string::npos);
    // Histogram exposition: cumulative buckets, +Inf, _sum, _count.
    EXPECT_NE(text.find("spectre_result_latency_ns_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("spectre_result_latency_ns_sum 5"), std::string::npos);
    EXPECT_NE(text.find("spectre_result_latency_ns_count 1"), std::string::npos);
}

TEST(ObsExposition, JsonIsFlatWithHistogramSummaries) {
    obs::Registry reg;
    const auto s = reg.make_shard();
    s->add(kCtr, 7);
    s->observe(kHist, 3);
    const std::string j = obs::Registry::json(reg.snapshot());
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    EXPECT_NE(j.find("\"events_ingested\":7"), std::string::npos);
    EXPECT_NE(j.find("\"count\":1"), std::string::npos);
    EXPECT_NE(j.find("\"p50\":3"), std::string::npos);
}

TEST(ObsMergeHelpers, SchedStatsMerge) {
    core::SchedStats a, b;
    a.steps = 30;
    a.ready_depth_p50 = 4.0;
    a.ready_depth_max = 10;
    a.batch_events = 100;
    b.steps = 10;
    b.ready_depth_p50 = 8.0;
    b.ready_depth_max = 25;
    b.batch_events = 50;
    a.merge(b);
    EXPECT_EQ(a.steps, 40u);
    EXPECT_EQ(a.batch_events, 150u);
    EXPECT_EQ(a.ready_depth_max, 25u) << "peak takes the max";
    EXPECT_DOUBLE_EQ(a.ready_depth_p50, 5.0) << "step-weighted mean of medians";
}

TEST(ObsMergeHelpers, SplitterMetricsMerge) {
    core::SplitterMetrics a, b;
    a.cycles = 5;
    a.max_tree_versions = 12;
    a.complex_events = 3;
    b.cycles = 7;
    b.max_tree_versions = 9;
    b.complex_events = 4;
    a.merge(b);
    EXPECT_EQ(a.cycles, 12u) << "counts sum";
    EXPECT_EQ(a.max_tree_versions, 12u) << "peaks take the max, not the sum";
    EXPECT_EQ(a.complex_events, 7u);
    // Merging an empty lane is the identity.
    const core::SplitterMetrics before = a;
    a.merge(core::SplitterMetrics{});
    EXPECT_EQ(a.cycles, before.cycles);
    EXPECT_EQ(a.max_tree_versions, before.max_tree_versions);
}

// Scrape-while-writing: writers hammer relaxed cells while a reader snapshots
// and a churn thread retires/creates scopes. Torn-read tolerance means no
// exact mid-flight assertion — the invariants are "no crash/race (TSan)" and
// "final counts exact once writers join".
TEST(ObsConcurrency, ScrapeWhileWritingAndRetiring) {
    obs::Registry reg;
    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 20'000;

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&reg] {
            const auto shard = reg.make_shard();
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                shard->add(kCtr, 1);
                shard->observe(kHist, i & 1023);
                shard->set_peak(kPeak, i);
            }
            reg.retire(shard);
        });

    std::atomic<bool> done{false};
    std::thread scraper([&reg, &done] {
        std::uint64_t last = 0;
        while (!done.load(std::memory_order_acquire)) {
            const auto snap = reg.snapshot();
            const auto now = snap.value(kCtr);
            EXPECT_GE(now, last) << "counter went backwards between scrapes";
            last = now;
            (void)obs::Registry::prometheus(snap);
        }
    });

    for (auto& t : writers) t.join();
    done.store(true, std::memory_order_release);
    scraper.join();

    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.value(kCtr), kWriters * kPerWriter);
    EXPECT_EQ(snap.entries[kHist.index].count, kWriters * kPerWriter);
    EXPECT_EQ(snap.value(kPeak), kPerWriter - 1);
}
