// Randomized differential stress test for the engine worker pool
// (DESIGN.md §9): ~50 random query/stream/k/pool-size combinations, each
// session's RESULT stream received over TCP must be byte-identical to a
// SequentialEngine run offline over the same input. This is the
// reverse-engineering/differential style of middleware verification: the
// sequential engine is the oracle, the pooled server the system under test,
// and randomization walks the configuration space a hand-written suite
// would never cover — pool sizes from 1 to 4 workers, scheduling quanta
// from tiny (maximal interleaving) to large, ingest/egress caps from
// backpressure-always to backpressure-never, and engines from the
// sequential stepper (k = 0) to speculative SPECTRE with k up to 3.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "harness/load_gen.hpp"
#include "server/cep_server.hpp"
#include "server/config.hpp"
#include "server_test_util.hpp"

using namespace spectre;
using namespace spectre::testing;

namespace {

const char* kQueries[] = {
    kRisingPairQuery,
    kRisingTripleQuery,
    kFallingPairQuery,
    kLeaderQuery,
    // Wider sliding window, coarse slide.
    "PATTERN (A B) DEFINE A AS A.close > A.open, B AS B.close < B.open "
    "WITHIN 50 EVENTS FROM EVERY 25 EVENTS CONSUME ALL",
    // Tight window, no consumption (pure detection).
    "PATTERN (U1 U2) DEFINE U1 AS U1.close > U1.open, U2 AS U2.close > U2.open "
    "WITHIN 12 EVENTS FROM EVERY 4 EVENTS "
    "EMIT jump = U2.close - U1.close",
};

struct Combo {
    harness::LoadGenSession spec;
    std::string label;
};

}  // namespace

TEST(PoolDifferential, FiftyRandomSessionsMatchSequentialForEveryPoolSize) {
    std::mt19937_64 rng(20260728);
    const int pool_sizes[] = {1, 2, 3, 4};
    const std::size_t sessions_per_server[] = {12, 13, 12, 13};  // 50 total

    std::size_t combo_index = 0;
    for (std::size_t p = 0; p < 4; ++p) {
        // Shake the scheduler: small quanta maximize session interleaving,
        // small queues/buffers force the backpressure paths; the output must
        // not depend on any of it.
        const server::ServerConfig cfg =
            server::ServerConfigBuilder{}
                .pool_workers(pool_sizes[p])
                .quantum_steps((p % 2 == 0) ? 4 : 32)
                .quantum_windows((p % 2 == 0) ? 1 : 4)
                .batch_events((p % 2 == 0) ? 16 : 64)
                .ingest_queue_events((p % 2 == 0) ? 48 : 1024)
                .egress_buffer_bytes((p % 2 == 0) ? 4096 : 256 * 1024)
                .build();
        server::CepServer srv(cfg);
        srv.start();

        std::vector<Combo> combos(sessions_per_server[p]);
        for (auto& c : combos) {
            const auto query_idx = rng() % (sizeof(kQueries) / sizeof(kQueries[0]));
            const std::uint64_t events = 120 + rng() % 300;
            const std::uint64_t seed = rng();
            const std::uint64_t symbols = 20 + 10 * (rng() % 3);
            const double up_prob = 0.4 + 0.1 * static_cast<double>(rng() % 3);
            c.spec.query = kQueries[query_idx];
            c.spec.instances = static_cast<std::uint32_t>(rng() % 4);  // 0 = sequential
            c.spec.events = wire_events(events, seed, symbols, up_prob);
            c.label = "combo " + std::to_string(combo_index++) + " (pool=" +
                      std::to_string(pool_sizes[p]) + " q=" + std::to_string(query_idx) +
                      " k=" + std::to_string(c.spec.instances) +
                      " n=" + std::to_string(events) + ")";
        }

        std::vector<harness::LoadGenSession> specs;
        specs.reserve(combos.size());
        for (const auto& c : combos) specs.push_back(c.spec);

        harness::LoadGenClient client("127.0.0.1", srv.port());
        const auto outcomes = client.run(specs);

        for (std::size_t i = 0; i < combos.size(); ++i) {
            const auto& out = outcomes[i];
            const auto& label = combos[i].label;
            EXPECT_TRUE(out.error.empty()) << label << ": " << out.error;
            EXPECT_TRUE(out.completed) << label;
            EXPECT_EQ(out.server_reported_results, out.results.size()) << label;
            expect_byte_identical(
                sequential_ground_truth(combos[i].spec.query, combos[i].spec.events),
                out.results, label);
        }

        srv.stop();
        const auto stats = srv.stats();
        EXPECT_EQ(stats.sessions_accepted, sessions_per_server[p]);
        EXPECT_EQ(stats.sessions_completed, sessions_per_server[p]);
        EXPECT_EQ(stats.sessions_failed, 0u);
        EXPECT_EQ(stats.pool_workers, pool_sizes[p]);
        // Every task drained; the pool holds nothing back.
        EXPECT_EQ(stats.tasks_live, 0u);
        EXPECT_EQ(stats.tasks_added, stats.tasks_finished);
        EXPECT_EQ(stats.sessions_live, 0u);
    }
}

// Sessions outnumbering workers many-fold: 24 concurrent sessions on a
// single worker still multiplex (no per-session thread exists to save them)
// and still match the oracle byte for byte.
TEST(PoolDifferential, TwentyFourSessionsOnOneWorker) {
    const server::ServerConfig cfg =
        server::ServerConfigBuilder{}.pool_workers(1).quantum_steps(8).build();
    server::CepServer srv(cfg);
    srv.start();

    std::mt19937_64 rng(7);
    std::vector<harness::LoadGenSession> specs(24);
    for (auto& spec : specs) {
        spec.query = kQueries[rng() % (sizeof(kQueries) / sizeof(kQueries[0]))];
        spec.instances = static_cast<std::uint32_t>(rng() % 3);
        spec.events = wire_events(100 + rng() % 150, rng());
    }

    harness::LoadGenClient client("127.0.0.1", srv.port());
    const auto outcomes = client.run(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string label = "session " + std::to_string(i);
        EXPECT_TRUE(outcomes[i].completed) << label << ": " << outcomes[i].error;
        expect_byte_identical(sequential_ground_truth(specs[i].query, specs[i].events),
                              outcomes[i].results, label);
    }
    srv.stop();
    EXPECT_EQ(srv.stats().sessions_completed, 24u);
    EXPECT_EQ(srv.stats().tasks_live, 0u);
}
