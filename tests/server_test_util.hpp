// Shared helpers for the multi-session server suites (test_server,
// test_pool_differential, test_pool_stress): wire-encoded synthetic inputs,
// the offline sequential ground truth, and the byte-identity assertion the
// parity invariant (DESIGN.md §8/§9) is stated in.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/nyse_synth.hpp"
#include "harness/load_gen.hpp"
#include "harness/oracle.hpp"
#include "net/session.hpp"
#include "obs/metrics.hpp"

namespace spectre::testing {

// Aggregated value of one built-in §12 series in a registry snapshot (the
// sid:: ids double as Series indices).
inline std::uint64_t counter(const obs::Snapshot& snap, std::uint32_t sid) {
    return snap.value(obs::Series{sid});
}

// Builds the common session spec without positional aggregate init (the
// struct keeps growing — HELLO sharding fields arrived with DESIGN.md §10).
inline harness::LoadGenSession make_session(std::string query, std::uint32_t instances,
                                            std::vector<net::WireQuote> events,
                                            std::size_t wait_result_after = SIZE_MAX) {
    harness::LoadGenSession s;
    s.query = std::move(query);
    s.instances = instances;
    s.events = std::move(events);
    s.wait_result_after = wait_result_after;
    return s;
}

// Wire-encodes a synthetic NYSE day (the client's view of its input).
inline std::vector<net::WireQuote> wire_events(std::uint64_t n, std::uint64_t seed,
                                               std::uint64_t symbols = 40,
                                               double up_prob = 0.6) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    data::NyseSynthConfig cfg;
    cfg.events = n;
    cfg.symbols = symbols;
    cfg.up_prob = up_prob;
    cfg.seed = seed;
    std::vector<net::WireQuote> wire;
    for (const auto& e : data::generate_nyse(vocab, cfg)) wire.push_back(net::to_wire(e, vocab));
    return wire;
}

// Ground truth: the shared sequential oracle (harness/oracle.hpp) — the
// same definition the bench acceptance gate uses.
inline std::vector<event::ComplexEvent> sequential_ground_truth(
    const std::string& query_text, const std::vector<net::WireQuote>& wire) {
    return harness::sequential_oracle(query_text, wire);
}

inline void expect_byte_identical(const std::vector<event::ComplexEvent>& expected,
                                  const std::vector<event::ComplexEvent>& actual,
                                  const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
        EXPECT_EQ(expected[i].constituents, actual[i].constituents) << label << " @" << i;
        EXPECT_EQ(expected[i].payload, actual[i].payload) << label << " @" << i;
    }
}

inline constexpr const char* kRisingPairQuery =
    "PATTERN (R1 R2) "
    "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open "
    "WITHIN 40 EVENTS FROM EVERY 10 EVENTS "
    "CONSUME ALL";

inline constexpr const char* kRisingTripleQuery =
    "PATTERN (R1 R2 R3) "
    "DEFINE R1 AS R1.close > R1.open, R2 AS R2.close > R2.open, "
    "       R3 AS R3.close > R3.open "
    "WITHIN 30 EVENTS FROM EVERY 6 EVENTS "
    "CONSUME ALL "
    "EMIT gain = R3.close - R1.open";

inline constexpr const char* kFallingPairQuery =
    "PATTERN (F1 F2) "
    "DEFINE F1 AS F1.close < F1.open, F2 AS F2.close < F2.open "
    "WITHIN 24 EVENTS FROM EVERY 8 EVENTS "
    "CONSUME (F1 F2)";

inline constexpr const char* kLeaderQuery =
    "PATTERN (MLE RE1 RE2) "
    "DEFINE MLE AS SYMBOL IN ('AAPL','IBM','MSFT') AND MLE.close > MLE.open, "
    "       RE1 AS RE1.close > RE1.open, RE2 AS RE2.close > RE2.open "
    "WITHIN 60 EVENTS FROM MLE "
    "CONSUME ALL";

}  // namespace spectre::testing
