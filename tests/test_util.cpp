#include <gtest/gtest.h>

#include <thread>

#include "util/assert.hpp"
#include "util/intern.hpp"
#include "util/matrix.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace su = spectre::util;

TEST(Intern, AssignsDenseIdsAndRoundTrips) {
    su::InternTable t;
    const auto a = t.intern("alpha");
    const auto b = t.intern("beta");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(t.intern("alpha"), a);
    EXPECT_EQ(t.name(a), "alpha");
    EXPECT_EQ(t.name(b), "beta");
    EXPECT_EQ(t.size(), 2u);
}

TEST(Intern, LookupMissReturnsInvalid) {
    su::InternTable t;
    EXPECT_EQ(t.lookup("nope"), su::kInvalidIntern);
    t.intern("yes");
    EXPECT_EQ(t.lookup("yes"), 0u);
}

TEST(Intern, NameOutOfRangeThrows) {
    su::InternTable t;
    EXPECT_THROW(t.name(0), std::invalid_argument);
}

TEST(Stats, PercentileMatchesHandComputedValues) {
    std::vector<double> s{4, 1, 3, 2, 5};
    EXPECT_DOUBLE_EQ(su::percentile(s, 0), 1.0);
    EXPECT_DOUBLE_EQ(su::percentile(s, 50), 3.0);
    EXPECT_DOUBLE_EQ(su::percentile(s, 100), 5.0);
    EXPECT_DOUBLE_EQ(su::percentile(s, 25), 2.0);
    EXPECT_DOUBLE_EQ(su::percentile(s, 75), 4.0);
}

TEST(Stats, PercentileInterpolatesBetweenRanks) {
    std::vector<double> s{0, 10};
    EXPECT_DOUBLE_EQ(su::percentile(s, 50), 5.0);
    EXPECT_DOUBLE_EQ(su::percentile(s, 25), 2.5);
}

TEST(Stats, PercentileRejectsBadInput) {
    EXPECT_THROW(su::percentile({}, 50), std::invalid_argument);
    EXPECT_THROW(su::percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, CandlestickIsFiveNumberSummary) {
    std::vector<double> s;
    for (int i = 1; i <= 101; ++i) s.push_back(i);
    const auto c = su::candlestick(s);
    EXPECT_DOUBLE_EQ(c.min, 1);
    EXPECT_DOUBLE_EQ(c.p25, 26);
    EXPECT_DOUBLE_EQ(c.median, 51);
    EXPECT_DOUBLE_EQ(c.p75, 76);
    EXPECT_DOUBLE_EQ(c.max, 101);
}

TEST(Stats, RunningStatsWelford) {
    su::RunningStats r;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(x);
    EXPECT_EQ(r.count(), 8u);
    EXPECT_DOUBLE_EQ(r.mean(), 5.0);
    EXPECT_DOUBLE_EQ(r.variance(), 4.0);
    EXPECT_DOUBLE_EQ(r.stddev(), 2.0);
}

TEST(Stats, RunningStatsEmptyIsZero) {
    su::RunningStats r;
    EXPECT_EQ(r.count(), 0u);
    EXPECT_DOUBLE_EQ(r.mean(), 0.0);
    EXPECT_DOUBLE_EQ(r.variance(), 0.0);
}

TEST(Stats, EwmaSeedsWithFirstValueThenSmooths) {
    su::EwmaScalar e(0.5);
    EXPECT_TRUE(e.empty());
    e.add(10.0);
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
    e.add(20.0);
    EXPECT_DOUBLE_EQ(e.value(), 15.0);
    e.add(15.0);
    EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(Stats, EwmaRejectsBadAlpha) { EXPECT_THROW(su::EwmaScalar(1.5), std::invalid_argument); }

TEST(Matrix, IdentityMultiplyIsNoop) {
    su::Matrix m(2, 2);
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(1, 0) = 3;
    m(1, 1) = 4;
    const auto i = su::Matrix::identity(2);
    EXPECT_EQ(m.multiply(i), m);
    EXPECT_EQ(i.multiply(m), m);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
    su::Matrix a(2, 3), b(3, 2);
    int k = 1;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) a(r, c) = k++;
    k = 1;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c) b(r, c) = k++;
    const auto p = a.multiply(b);
    EXPECT_DOUBLE_EQ(p(0, 0), 22);
    EXPECT_DOUBLE_EQ(p(0, 1), 28);
    EXPECT_DOUBLE_EQ(p(1, 0), 49);
    EXPECT_DOUBLE_EQ(p(1, 1), 64);
}

TEST(Matrix, DimensionMismatchThrows) {
    su::Matrix a(2, 3), b(2, 3);
    EXPECT_THROW(a.multiply(b), std::invalid_argument);
    EXPECT_THROW(a.left_multiply(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, LeftAndRightVectorMultiply) {
    su::Matrix m(2, 2);
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(1, 0) = 3;
    m(1, 1) = 4;
    const auto lv = m.left_multiply({1.0, 1.0});
    EXPECT_DOUBLE_EQ(lv[0], 4);
    EXPECT_DOUBLE_EQ(lv[1], 6);
    const auto rv = m.right_multiply({1.0, 1.0});
    EXPECT_DOUBLE_EQ(rv[0], 3);
    EXPECT_DOUBLE_EQ(rv[1], 7);
}

TEST(Matrix, NormalizeRowsMakesStochasticWithFallback) {
    su::Matrix m(2, 2);
    m(0, 0) = 2;
    m(0, 1) = 6;
    // row 1 all zeros -> fallback column
    m.normalize_rows(1);
    EXPECT_TRUE(m.is_row_stochastic());
    EXPECT_DOUBLE_EQ(m(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
}

TEST(Matrix, BlendIsElementwiseAffine) {
    su::Matrix a(1, 2), b(1, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    b(0, 0) = 3;
    b(0, 1) = 4;
    const auto c = a.blend(0.25, b, 0.75);
    EXPECT_DOUBLE_EQ(c(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(c(0, 1), 3.5);
}

TEST(MpscQueue, DrainReturnsInPushOrderAndEmpties) {
    su::MpscQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.size(), 3u);
    const auto items = q.drain();
    EXPECT_EQ(items, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, ConcurrentProducersLoseNothing) {
    su::MpscQueue<int> q;
    constexpr int kPerThread = 2000;
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&q, t] {
            for (int i = 0; i < kPerThread; ++i) q.push(t * kPerThread + i);
        });
    std::vector<int> got;
    while (got.size() < kPerThread * kThreads) {
        for (int x : q.drain()) got.push_back(x);
    }
    for (auto& t : threads) t.join();
    std::sort(got.begin(), got.end());
    for (int i = 0; i < kPerThread * kThreads; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Rng, SameSeedSameSequence) {
    su::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitDecorrelatesChildren) {
    su::Rng parent(1);
    auto c1 = parent.split();
    auto c2 = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.uniform_int(0, 1000) == c2.uniform_int(0, 1000)) ++same;
    EXPECT_LT(same, 10);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
    su::Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(0, 3);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 3);
        lo |= v == 0;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Assert, RequireAndCheckThrowDistinctTypes) {
    EXPECT_THROW(SPECTRE_REQUIRE(false, "msg"), std::invalid_argument);
    EXPECT_THROW(SPECTRE_CHECK(false, "msg"), std::logic_error);
    EXPECT_NO_THROW(SPECTRE_REQUIRE(true, ""));
}
