#include <gtest/gtest.h>

#include "detect/detector.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using namespace spectre::detect;
using spectre::testing::TestEnv;

namespace {

struct Run {
    Feedback all;  // accumulated over the whole window
    std::vector<event::ComplexEvent> ces;
};

// Feeds every event of `store` into one window covering the whole store.
Run run_window(const CompiledQuery& cq, const event::EventStore& store) {
    Detector det(&cq);
    query::WindowInfo w{0, 0, store.size() - 1};
    det.begin_window(w);
    Run r;
    Feedback fb;
    for (event::Seq i = 0; i < store.size(); ++i) {
        fb.clear();
        det.on_event(store.at(i), fb);
        for (auto& c : fb.created) r.all.created.push_back(c);
        for (auto& b : fb.bound) r.all.bound.push_back(b);
        for (auto& c : fb.completed) {
            r.ces.push_back(c.complex_event);
            r.all.completed.push_back(c);
        }
        for (auto& a : fb.abandoned) r.all.abandoned.push_back(a);
        for (auto& t : fb.transitions) r.all.transitions.push_back(t);
    }
    fb.clear();
    det.end_window(fb);
    for (auto& a : fb.abandoned) r.all.abandoned.push_back(a);
    return r;
}

}  // namespace

TEST(Detector, SimpleSequenceCompletes) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .consume_all()
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto store = env.store_of("ABC");
    const auto r = run_window(cq, store);
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 1, 2}));
    ASSERT_EQ(r.all.completed.size(), 1u);
    EXPECT_EQ(r.all.completed[0].consumed, (std::vector<event::Seq>{0, 1, 2}));
}

TEST(Detector, SkipTillNextMatchIgnoresNoise) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AXXYB"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 4}));
}

TEST(Detector, WindowEndAbandonsOpenMatch) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .consume_all()
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AXX"));
    EXPECT_TRUE(r.ces.empty());
    ASSERT_EQ(r.all.abandoned.size(), 1u);
    EXPECT_EQ(r.all.abandoned[0].reason, AbandonReason::WindowEnd);
    EXPECT_EQ(r.all.created.size(), 1u);
}

TEST(Detector, GuardAbandonsPartialMatch) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .guard(env.is('C'))  // no C between A and B
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("ACB"));
    EXPECT_TRUE(r.ces.empty());
    ASSERT_EQ(r.all.abandoned.size(), 1u);
    EXPECT_EQ(r.all.abandoned[0].reason, AbandonReason::Guard);
}

TEST(Detector, GuardOnlyWhileElementIsCurrent) {
    TestEnv env;
    // C only forbidden between A and B; a C before A is irrelevant.
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .guard(env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("CAB"));
    ASSERT_EQ(r.ces.size(), 1u);
}

TEST(Detector, PlusAbsorbsRunAndAdvancesOnNextElement) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("ABBBC"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 1, 2, 3, 4}));
}

TEST(Detector, PlusRequiresAtLeastOne) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AC"));
    EXPECT_TRUE(r.ces.empty());
}

TEST(Detector, TrailingPlusCompletesOnFirstAbsorption) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("ABB"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 1}));
}

TEST(Detector, SetMatchesMembersInAnyOrder) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .set("S", {{"X", env.is('X')}, {"Y", env.is('Y')}, {"Z", env.is('Z')}})
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AZQXY"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 1, 3, 4}));
}

TEST(Detector, SetMemberMatchedOnlyOnce) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .set("S", {{"X", env.is('X')}, {"Y", env.is('Y')}})
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    // Two X events cannot satisfy both members.
    const auto r = run_window(cq, env.store_of("AXX"));
    EXPECT_TRUE(r.ces.empty());
}

TEST(Detector, MaxMatchesOneStartsSingleMatch) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AABB"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 2}));
    EXPECT_EQ(r.all.created.size(), 1u);
}

TEST(Detector, SelectEachStartsMatchPerQualifyingEvent) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .select(query::SelectionPolicy::Each)
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AAB"));
    // Without consumption both matches complete with the same B.
    ASSERT_EQ(r.ces.size(), 2u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 2}));
    EXPECT_EQ(r.ces[1].constituents, (std::vector<event::Seq>{1, 2}));
}

TEST(Detector, IntraWindowConsumptionInvalidatesPeerMatches) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .select(query::SelectionPolicy::Each)
                 .consume_all()
                 .build();
    const auto cq = CompiledQuery::compile(q);
    // Both matches (started at seq 0 and 1) bind the shared B at seq 2; the
    // older match completes at C and consumes it, invalidating the younger.
    const auto r = run_window(cq, env.store_of("AABC"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 2, 3}));
    bool consumed_elsewhere = false;
    for (const auto& a : r.all.abandoned)
        consumed_elsewhere |= a.reason == AbandonReason::ConsumedElsewhere;
    EXPECT_TRUE(consumed_elsewhere);
}

TEST(Detector, ContendedCompletionEventGoesToOlderMatch) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .select(query::SelectionPolicy::Each)
                 .consume_all()
                 .build();
    const auto cq = CompiledQuery::compile(q);
    // Both matches wait for B; the older consumes it, the younger never
    // completes and is abandoned at window end.
    const auto r = run_window(cq, env.store_of("AAB"));
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 2}));
    ASSERT_EQ(r.all.abandoned.size(), 1u);
    EXPECT_EQ(r.all.abandoned[0].reason, AbandonReason::WindowEnd);
}

TEST(Detector, ConsumedEventInvisibleToLaterMatchesInWindow) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .select(query::SelectionPolicy::Each)
                 .consume({"B"})
                 .build();
    const auto cq = CompiledQuery::compile(q);
    // A1 takes B1; A2 (started before completion) then needs the second B.
    const auto r = run_window(cq, env.store_of("AABB"));
    ASSERT_EQ(r.ces.size(), 2u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 2}));
    EXPECT_EQ(r.ces[1].constituents, (std::vector<event::Seq>{1, 3}));
}

TEST(Detector, SubsetConsumptionOnlyMarksNamedElements) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .consume({"B"})
                 .build();
    const auto cq = CompiledQuery::compile(q);
    EXPECT_FALSE(cq.consumes(0, -1));
    EXPECT_TRUE(cq.consumes(1, -1));
    const auto r = run_window(cq, env.store_of("AB"));
    ASSERT_EQ(r.all.completed.size(), 1u);
    EXPECT_EQ(r.all.completed[0].consumed, (std::vector<event::Seq>{1}));
}

TEST(Detector, StickyPrefixSpawnsSuccessorMatches) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .sticky()
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("ABBB"));
    ASSERT_EQ(r.ces.size(), 3u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 1}));
    EXPECT_EQ(r.ces[1].constituents, (std::vector<event::Seq>{0, 2}));
    EXPECT_EQ(r.ces[2].constituents, (std::vector<event::Seq>{0, 3}));
}

TEST(Detector, StickySuccessorNotSpawnedWhenPrefixConsumed) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .sticky()
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .consume_all()
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("ABB"));
    // A consumed with the first match; no successor, second B unmatched.
    ASSERT_EQ(r.ces.size(), 1u);
}

TEST(Detector, PayloadEvaluatedOverBoundEvents) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .emit("ratio", query::binary(query::BinOp::Div, query::bound_attr(1, env.v),
                                              query::bound_attr(0, env.v)))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    event::EventStore store;
    store.append(env.ev('A', 4, 0));
    store.append(env.ev('B', 10, 1));
    const auto r = run_window(cq, store);
    ASSERT_EQ(r.ces.size(), 1u);
    ASSERT_EQ(r.ces[0].payload.size(), 1u);
    EXPECT_EQ(r.ces[0].payload[0].first, "ratio");
    EXPECT_DOUBLE_EQ(r.ces[0].payload[0].second, 2.5);
}

TEST(Detector, CrossElementPredicateConstrainsBinding) {
    TestEnv env;
    // B must exceed the bound A's value.
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", query::binary(query::BinOp::And, env.is('B'),
                                            query::binary(query::BinOp::Gt, query::attr(env.v),
                                                          query::bound_attr(0, env.v))))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    event::EventStore store;
    store.append(env.ev('A', 5, 0));
    store.append(env.ev('B', 3, 1));   // too small
    store.append(env.ev('B', 9, 2));   // qualifies
    const auto r = run_window(cq, store);
    ASSERT_EQ(r.ces.size(), 1u);
    EXPECT_EQ(r.ces[0].constituents, (std::vector<event::Seq>{0, 2}));
}

TEST(Detector, DeltaTransitionsReportedPerEvent) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto r = run_window(cq, env.store_of("AXBC"));
    // Creation: 3 -> 2; X: 2 -> 2; B: 2 -> 1; C: 1 -> 0.
    std::vector<std::pair<int, int>> got;
    for (const auto& t : r.all.transitions) got.emplace_back(t.from, t.to);
    EXPECT_EQ(got, (std::vector<std::pair<int, int>>{{3, 2}, {2, 2}, {2, 1}, {1, 0}}));
}

TEST(Detector, MinDeltaTracksClosestMatch) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .single("C", env.is('C'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    Detector det(&cq);
    det.begin_window({0, 0, 9});
    EXPECT_EQ(det.min_delta(), -1);
    Feedback fb;
    det.on_event(env.ev('A', 0, 0), fb);
    EXPECT_EQ(det.min_delta(), 2);
}

TEST(Detector, EventOutsideWindowRejected) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .window(query::WindowSpec::sliding_count(2, 2))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    Detector det(&cq);
    det.begin_window({0, 0, 1});
    Feedback fb;
    auto e = env.ev('A', 0, 5);
    e.seq = 5;
    EXPECT_THROW(det.on_event(e, fb), std::invalid_argument);
}

TEST(Detector, BeginWindowResetsStateForRollback) {
    TestEnv env;
    auto q = query::QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .single("B", env.is('B'))
                 .window(query::WindowSpec::sliding_count(10, 10))
                 .build();
    const auto cq = CompiledQuery::compile(q);
    const auto store = env.store_of("AB");
    Detector det(&cq);
    Feedback fb;
    det.begin_window({0, 0, 1});
    det.on_event(store.at(0), fb);
    EXPECT_EQ(det.active_matches(), 1u);
    det.begin_window({0, 0, 1});  // rollback: reprocess from scratch
    EXPECT_EQ(det.active_matches(), 0u);
    fb.clear();
    det.on_event(store.at(0), fb);
    det.on_event(store.at(1), fb);
    EXPECT_EQ(fb.completed.size(), 1u);
}
