#include <gtest/gtest.h>

#include "query/parser.hpp"
#include "query/query.hpp"
#include "test_helpers.hpp"

using namespace spectre;
using namespace spectre::query;
using spectre::testing::TestEnv;

namespace {

EvalContext ctx_of(const event::Event& e) {
    EvalContext c;
    c.current = &e;
    return c;
}

}  // namespace

TEST(Predicate, ArithmeticAndComparison) {
    TestEnv env;
    const auto e = env.ev('A', 10, 0);
    // (v * 2 + 5) > 24  ->  25 > 24
    auto expr = binary(BinOp::Gt,
                       binary(BinOp::Add, binary(BinOp::Mul, attr(env.v), constant(2)),
                              constant(5)),
                       constant(24));
    EXPECT_TRUE(eval_bool(expr, ctx_of(e)));
    auto expr2 = binary(BinOp::Le, attr(env.v), constant(9.5));
    EXPECT_FALSE(eval_bool(expr2, ctx_of(e)));
}

TEST(Predicate, LogicalOpsShortCircuitOverUnboundRefs) {
    TestEnv env;
    const auto e = env.ev('A', 1, 0);
    // bound_attr(0,...) is unbound in this context.
    auto unbound = binary(BinOp::Gt, bound_attr(0, env.v), constant(0));
    EXPECT_FALSE(eval_bool(unbound, ctx_of(e)));
    auto ored = binary(BinOp::Or, constant(1), unbound);
    EXPECT_TRUE(eval_bool(ored, ctx_of(e)));
    auto anded = binary(BinOp::And, constant(0), unbound);
    EXPECT_FALSE(eval_bool(anded, ctx_of(e)));
}

TEST(Predicate, BoundAttrReadsBoundEvent) {
    TestEnv env;
    const auto cur = env.ev('B', 5, 1);
    const auto first = env.ev('A', 3, 0);
    const event::Event* bound[] = {&first};
    EvalContext c;
    c.current = &cur;
    c.bound = bound;
    // cur.v > elem0.v -> 5 > 3
    auto expr = binary(BinOp::Gt, attr(env.v), bound_attr(0, env.v));
    EXPECT_TRUE(eval_bool(expr, c));
}

TEST(Predicate, TypeAndSubjectTests) {
    TestEnv env;
    auto e = env.ev('A', 0, 0);
    e.subject = env.schema->intern_subject("IBM");
    EXPECT_TRUE(eval_bool(type_is(env.type('A')), ctx_of(e)));
    EXPECT_FALSE(eval_bool(type_is(env.type('B')), ctx_of(e)));
    const auto ibm = env.schema->intern_subject("IBM");
    const auto hp = env.schema->intern_subject("HP");
    EXPECT_TRUE(eval_bool(subject_in({hp, ibm}), ctx_of(e)));
    EXPECT_FALSE(eval_bool(subject_in({hp}), ctx_of(e)));
}

TEST(Predicate, UnaryNegationAndNot) {
    TestEnv env;
    const auto e = env.ev('A', 2, 0);
    auto neg = unary(UnOp::Neg, attr(env.v));
    bool ok = true;
    EXPECT_DOUBLE_EQ(eval(*neg, ctx_of(e), ok), -2.0);
    auto notv = unary(UnOp::Not, constant(0));
    EXPECT_TRUE(eval_bool(notv, ctx_of(e)));
}

TEST(Predicate, ToStringRoundTripsStructure) {
    TestEnv env;
    auto expr = binary(BinOp::And, binary(BinOp::Gt, attr(env.v), constant(1)),
                       type_is(env.type('A')));
    const auto s = to_string(*expr, *env.schema);
    EXPECT_NE(s.find("v > 1"), std::string::npos);
    EXPECT_NE(s.find("TYPE = 'A'"), std::string::npos);
}

TEST(Pattern, MinLengthCountsSetMembersAndPlusOnce) {
    TestEnv env;
    Pattern p;
    Element a;
    a.name = "A";
    a.kind = ElementKind::Single;
    a.pred = env.is('A');
    Element b;
    b.name = "B";
    b.kind = ElementKind::Plus;
    b.pred = env.is('B');
    Element s;
    s.name = "S";
    s.kind = ElementKind::Set;
    s.members = {{"X", env.is('X')}, {"Y", env.is('Y')}};
    p.elements = {a, b, s};
    EXPECT_EQ(p.min_length(), 4);
    p.validate();
}

TEST(Pattern, BindingSlotsAreDenseInDeclarationOrder) {
    TestEnv env;
    Pattern p;
    Element a;
    a.name = "A";
    a.pred = env.is('A');
    Element s;
    s.name = "S";
    s.kind = ElementKind::Set;
    s.members = {{"X", env.is('X')}, {"Y", env.is('Y')}};
    Element c;
    c.name = "C";
    c.pred = env.is('C');
    p.elements = {a, s, c};
    EXPECT_EQ(p.binding_count(), 5);
    EXPECT_EQ(p.binding_slot("A"), 0);
    EXPECT_EQ(p.binding_slot("S"), 1);
    EXPECT_EQ(p.binding_slot("X"), 2);
    EXPECT_EQ(p.binding_slot("Y"), 3);
    EXPECT_EQ(p.binding_slot("C"), 4);
    EXPECT_EQ(p.binding_slot("nope"), -1);
    EXPECT_EQ(p.element_slot(2), 4);
    EXPECT_EQ(p.member_slot(1, 1), 3);
}

TEST(Pattern, ValidateRejectsStructuralErrors) {
    TestEnv env;
    Pattern empty;
    EXPECT_THROW(empty.validate(), std::invalid_argument);

    Pattern dup;
    Element a;
    a.name = "A";
    a.pred = env.is('A');
    dup.elements = {a, a};
    EXPECT_THROW(dup.validate(), std::invalid_argument);

    Pattern nopred;
    Element x;
    x.name = "X";
    nopred.elements = {x};
    EXPECT_THROW(nopred.validate(), std::invalid_argument);
}

TEST(Pattern, StickyMustBeSinglePrefix) {
    TestEnv env;
    Pattern p;
    Element a;
    a.name = "A";
    a.pred = env.is('A');
    a.sticky = true;
    Element b;
    b.name = "B";
    b.pred = env.is('B');
    p.elements = {a, b};
    p.validate();  // sticky prefix ok

    Pattern bad;
    Element b2 = b;
    b2.sticky = true;
    bad.elements = {b, b2};  // duplicate names aside, sticky after non-sticky
    bad.elements[1].name = "C";
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    Pattern all_sticky;
    all_sticky.elements = {a};
    EXPECT_THROW(all_sticky.validate(), std::invalid_argument);
}

TEST(Windows, SlidingCountProducesClampedOverlappingWindows) {
    TestEnv env;
    auto store = env.store_of("AAAAAAAAAA");  // 10 events
    const auto wins = assign_windows(store, WindowSpec::sliding_count(4, 2));
    ASSERT_EQ(wins.size(), 5u);
    EXPECT_EQ(wins[0].first, 0u);
    EXPECT_EQ(wins[0].last, 3u);
    EXPECT_EQ(wins[1].first, 2u);
    EXPECT_EQ(wins[1].last, 5u);
    EXPECT_EQ(wins[4].first, 8u);
    EXPECT_EQ(wins[4].last, 9u);  // clamped
    EXPECT_TRUE(wins[0].overlaps(wins[1]));
    EXPECT_FALSE(wins[0].overlaps(wins[2]));
    for (std::size_t i = 0; i < wins.size(); ++i) EXPECT_EQ(wins[i].id, i);
}

TEST(Windows, NonOverlappingWhenSlideExceedsSize) {
    TestEnv env;
    auto store = env.store_of("AAAAAAAA");
    const auto wins = assign_windows(store, WindowSpec::sliding_count(2, 4));
    ASSERT_EQ(wins.size(), 2u);
    EXPECT_FALSE(wins[0].overlaps(wins[1]));
}

TEST(Windows, PredicateOpenOpensAtEachMatchingEvent) {
    TestEnv env;
    auto store = env.store_of("ABBABB");
    const auto wins =
        assign_windows(store, WindowSpec::predicate_open_count(env.is('A'), 3));
    ASSERT_EQ(wins.size(), 2u);
    EXPECT_EQ(wins[0].first, 0u);
    EXPECT_EQ(wins[0].last, 2u);
    EXPECT_EQ(wins[1].first, 3u);
    EXPECT_EQ(wins[1].last, 5u);
}

TEST(Windows, PredicateOpenTimeExtent) {
    TestEnv env;
    event::EventStore store;
    store.append(env.ev('A', 0, 0));
    store.append(env.ev('B', 0, 10));
    store.append(env.ev('B', 0, 59));
    store.append(env.ev('B', 0, 60));  // outside [0, 60)
    const auto wins =
        assign_windows(store, WindowSpec::predicate_open_time(env.is('A'), 60));
    ASSERT_EQ(wins.size(), 1u);
    EXPECT_EQ(wins[0].first, 0u);
    EXPECT_EQ(wins[0].last, 2u);
}

TEST(Windows, SlidingTimeWindows) {
    TestEnv env;
    event::EventStore store;
    for (int t : {0, 5, 10, 15, 20, 25}) store.append(env.ev('A', 0, t));
    const auto wins = assign_windows(store, WindowSpec::sliding_time(10, 10));
    ASSERT_EQ(wins.size(), 3u);
    EXPECT_EQ(wins[0].first, 0u);
    EXPECT_EQ(wins[0].last, 1u);
    EXPECT_EQ(wins[1].first, 2u);
    EXPECT_EQ(wins[1].last, 3u);
    EXPECT_EQ(wins[2].first, 4u);
    EXPECT_EQ(wins[2].last, 5u);
}

TEST(Windows, SpecValidationRejectsNonsense) {
    EXPECT_THROW(WindowSpec::sliding_count(0, 1), std::invalid_argument);
    EXPECT_THROW(WindowSpec::sliding_count(1, 0), std::invalid_argument);
    EXPECT_THROW(WindowSpec::predicate_open_count(nullptr, 5), std::invalid_argument);
    EXPECT_THROW(WindowSpec::sliding_time(0, 1), std::invalid_argument);
}

TEST(Windows, EmptyStoreYieldsNoWindows) {
    event::EventStore store;
    EXPECT_TRUE(assign_windows(store, WindowSpec::sliding_count(4, 2)).empty());
}

TEST(Builder, BuildsValidatedQuery) {
    TestEnv env;
    auto q = QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .plus("B", env.is('B'))
                 .window(WindowSpec::sliding_count(10, 5))
                 .consume_all()
                 .emit("sum", binary(BinOp::Add, bound_attr(0, env.v), bound_attr(1, env.v)))
                 .build();
    EXPECT_EQ(q.pattern.elements.size(), 2u);
    EXPECT_EQ(q.consumption.kind, ConsumptionPolicy::Kind::All);
    EXPECT_EQ(q.max_matches_per_window, 1);
}

TEST(Builder, SelectEachUnboundsMatches) {
    TestEnv env;
    auto q = QueryBuilder(env.schema)
                 .single("A", env.is('A'))
                 .window(WindowSpec::sliding_count(10, 5))
                 .select(SelectionPolicy::Each)
                 .build();
    EXPECT_EQ(q.max_matches_per_window, 0);
}

TEST(Builder, MissingWindowThrows) {
    TestEnv env;
    QueryBuilder b(env.schema);
    b.single("A", env.is('A'));
    EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, ConsumeUnknownElementThrows) {
    TestEnv env;
    QueryBuilder b(env.schema);
    b.single("A", env.is('A')).window(WindowSpec::sliding_count(10, 5)).consume({"Z"});
    EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Policies, ToStringRendersAllKinds) {
    EXPECT_EQ(to_string(SelectionPolicy::First), "FIRST");
    EXPECT_EQ(to_string(ConsumptionPolicy::none()), "CONSUME NONE");
    EXPECT_EQ(to_string(ConsumptionPolicy::all()), "CONSUME ALL");
    EXPECT_EQ(to_string(ConsumptionPolicy::subset({"A", "B"})), "CONSUME (A B)");
}
