// Shared fixtures for the unit tests: a tiny schema with single-letter event
// types and one numeric attribute "v", plus compact stream builders.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "detect/compiled_query.hpp"
#include "event/stream.hpp"
#include "query/query.hpp"

namespace spectre::testing {

struct TestEnv {
    std::shared_ptr<event::Schema> schema = std::make_shared<event::Schema>();
    event::AttrSlot v = schema->intern_attr("v");

    event::TypeId type(char c) { return schema->intern_type(std::string(1, c)); }

    event::Event ev(char type_char, double value, event::Timestamp ts) {
        event::Event e;
        e.ts = ts;
        e.type = type(type_char);
        e.set_attr(v, value);
        return e;
    }

    // "ABAC" -> events of those types at ts 0,1,2,... with v = 0,1,2,...
    event::EventStore store_of(const std::string& types) {
        event::EventStore s;
        for (std::size_t i = 0; i < types.size(); ++i)
            s.append(ev(types[i], static_cast<double>(i), static_cast<event::Timestamp>(i)));
        return s;
    }

    query::Expr is(char c) { return query::type_is(type(c)); }
};

// Extracts just the constituent seq lists for compact comparisons.
inline std::vector<std::vector<event::Seq>> constituents(
    const std::vector<event::ComplexEvent>& ces) {
    std::vector<std::vector<event::Seq>> out;
    out.reserve(ces.size());
    for (const auto& ce : ces) out.push_back(ce.constituents);
    return out;
}

}  // namespace spectre::testing
