// Generic (string-keyed, boxed) event representation and predicate
// interpreter — the "automatically translated state machine" layer of the
// T-REX-style baseline (§4.2.3).
//
// The paper attributes much of SPECTRE's per-event advantage over T-REX to
// the UDF-compiled fast path: SPECTRE's detectors compare interned integers
// and fixed slots, while a general-purpose engine resolves names at run time
// and interprets the query. This module deliberately reproduces that generic
// cost model: every event is reified into a map of attribute names to boxed
// values, and predicates are polymorphic node trees evaluated by virtual
// dispatch.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "event/event.hpp"
#include "query/pattern.hpp"
#include "query/predicate.hpp"

namespace spectre::trex {

struct GenericEvent {
    event::Seq seq = 0;
    event::Timestamp ts = 0;
    std::string type;
    std::string symbol;
    std::map<std::string, double> attrs;
};

// Reifies an interned event into the generic representation (name lookups,
// string copies, node allocations — the whole generic tax).
GenericEvent reify(const event::Event& e, const event::Schema& schema);

// Bindings of pattern element names to previously matched events.
using GenericBindings = std::map<std::string, const GenericEvent*>;

class GenericNode {
public:
    virtual ~GenericNode() = default;
    // Returns the numeric value; `ok` turns false if a referenced binding is
    // absent (predicate cannot hold yet).
    virtual double eval(const GenericEvent& e, const GenericBindings& b, bool& ok) const = 0;
};

using GenericExpr = std::unique_ptr<GenericNode>;

// Translates a compiled (slot-based) expression back into a name-based
// interpreted tree, using `schema` to recover names and `self` as the name
// the current element's self-references resolve to.
GenericExpr translate(const query::ExprNode& expr, const event::Schema& schema,
                      const query::Pattern& pattern);

bool eval_bool(const GenericExpr& e, const GenericEvent& ev, const GenericBindings& b);

}  // namespace spectre::trex
