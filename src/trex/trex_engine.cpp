#include "trex/trex_engine.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace spectre::trex {

TrexEngine::TrexEngine(const detect::CompiledQuery* cq) : cq_(cq) {
    SPECTRE_REQUIRE(cq != nullptr, "TrexEngine needs a compiled query");
    const auto& q = cq->query();
    const auto& pattern = q.pattern;
    for (const auto& el : pattern.elements)
        SPECTRE_REQUIRE(!el.sticky, "TrexEngine does not support sticky elements");

    element_preds_.resize(pattern.elements.size());
    member_preds_.resize(pattern.elements.size());
    guards_.resize(pattern.elements.size());
    for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
        const auto& el = pattern.elements[i];
        if (el.pred) element_preds_[i] = translate(*el.pred, *q.schema, pattern);
        if (el.guard) guards_[i] = translate(*el.guard, *q.schema, pattern);
        for (const auto& m : el.members)
            member_preds_[i].push_back(translate(*m.pred, *q.schema, pattern));
    }
    for (const auto& def : q.payload)
        payload_exprs_.push_back(translate(*def.expr, *q.schema, pattern));
}

namespace {

// One in-flight automaton run (partial match), fully generic: heap-allocated
// copies of bound events, name-keyed binding map.
struct Run {
    std::size_t elem = 0;
    bool plus_entered = false;
    std::vector<bool> member_matched;
    std::vector<std::pair<event::Seq, std::pair<std::size_t, int>>> bound;  // seq,(elem,member)
    std::vector<std::unique_ptr<GenericEvent>> held;  // owned copies
    GenericBindings bindings;
    bool dead = false;
};

}  // namespace

TrexResult TrexEngine::run(const event::EventStore& store) const {
    TrexResult result;
    const auto& q = cq_->query();
    const auto& pattern = q.pattern;
    const auto windows = query::assign_windows(store, q.window);
    result.stats.windows = windows.size();

    std::unordered_set<event::Seq> consumed;  // across windows

    const auto element_done = [&](const Run& r) {
        if (r.elem >= pattern.elements.size()) return true;
        return r.elem == pattern.elements.size() - 1 &&
               pattern.elements[r.elem].kind == query::ElementKind::Plus && r.plus_entered;
    };

    for (const auto& w : windows) {
        std::vector<Run> runs;
        std::unordered_set<event::Seq> local_consumed;
        int started = 0;

        for (event::Seq pos = w.first; pos <= w.last; ++pos) {
            if (consumed.count(pos) || local_consumed.count(pos)) continue;
            const GenericEvent ge = reify(store.at(pos), *q.schema);
            ++result.stats.events_processed;

            std::vector<event::Seq> newly_consumed;
            const auto is_newly = [&](event::Seq s) {
                return std::find(newly_consumed.begin(), newly_consumed.end(), s) !=
                       newly_consumed.end();
            };

            // Try to advance one run by one event; returns true if bound.
            const auto try_enter = [&](Run& r, std::size_t elem) -> bool {
                const auto& el = pattern.elements[elem];
                const auto bind = [&](int member) {
                    auto copy = std::make_unique<GenericEvent>(ge);
                    const std::string& name =
                        member < 0 ? el.name
                                   : el.members[static_cast<std::size_t>(member)].name;
                    if (!r.bindings.count(name)) r.bindings[name] = copy.get();
                    if (member >= 0 && !r.bindings.count(el.name))
                        r.bindings[el.name] = copy.get();
                    r.held.push_back(std::move(copy));
                    r.bound.push_back({pos, {elem, member}});
                };
                switch (el.kind) {
                    case query::ElementKind::Single:
                        if (!eval_bool(element_preds_[elem], ge, r.bindings)) return false;
                        r.elem = elem + 1;
                        r.plus_entered = false;
                        r.member_matched.clear();
                        bind(-1);
                        return true;
                    case query::ElementKind::Plus:
                        if (!eval_bool(element_preds_[elem], ge, r.bindings)) return false;
                        r.elem = elem;
                        r.plus_entered = true;
                        bind(-1);
                        return true;
                    case query::ElementKind::Set: {
                        const auto& members = member_preds_[elem];
                        if (elem != r.elem) r.member_matched.clear();
                        r.member_matched.resize(members.size(), false);
                        for (std::size_t j = 0; j < members.size(); ++j) {
                            if (r.member_matched[j]) continue;
                            if (!eval_bool(members[j], ge, r.bindings)) continue;
                            r.elem = elem;
                            r.member_matched[j] = true;
                            bind(static_cast<int>(j));
                            if (std::all_of(r.member_matched.begin(), r.member_matched.end(),
                                            [](bool m) { return m; })) {
                                r.elem = elem + 1;
                                r.member_matched.clear();
                                r.plus_entered = false;
                            }
                            return true;
                        }
                        return false;
                    }
                }
                return false;
            };

            const auto complete = [&](Run& r) {
                event::ComplexEvent ce;
                ce.window_id = w.id;
                for (const auto& [seq, loc] : r.bound) {
                    (void)loc;
                    ce.constituents.push_back(seq);
                }
                std::sort(ce.constituents.begin(), ce.constituents.end());
                for (std::size_t pi = 0; pi < payload_exprs_.size(); ++pi) {
                    bool ok = true;
                    GenericEvent dummy;
                    const double v = payload_exprs_[pi]->eval(dummy, r.bindings, ok);
                    ce.payload.emplace_back(q.payload[pi].name, ok ? v : 0.0);
                }
                for (const auto& [seq, loc] : r.bound) {
                    if (cq_->consumes(loc.first, loc.second)) {
                        consumed.insert(seq);
                        local_consumed.insert(seq);
                        newly_consumed.push_back(seq);
                    }
                }
                result.complex_events.push_back(std::move(ce));
                ++result.stats.complex_events;
                r.dead = true;
            };

            for (auto& r : runs) {
                if (r.dead) continue;
                if (!newly_consumed.empty()) {
                    const bool hit = std::any_of(
                        r.bound.begin(), r.bound.end(),
                        [&](const auto& be) { return is_newly(be.first); });
                    if (hit) {
                        r.dead = true;
                        continue;
                    }
                    if (is_newly(pos)) continue;
                }
                const auto& cur = pattern.elements[r.elem];
                if (guards_[r.elem] && eval_bool(guards_[r.elem], ge, r.bindings)) {
                    r.dead = true;
                    continue;
                }
                if (cur.kind == query::ElementKind::Plus && r.plus_entered &&
                    r.elem + 1 < pattern.elements.size()) {
                    if (try_enter(r, r.elem + 1)) {
                        if (element_done(r)) complete(r);
                        continue;
                    }
                }
                if (try_enter(r, r.elem)) {
                    if (element_done(r)) complete(r);
                }
            }
            std::erase_if(runs, [](const Run& r) { return r.dead; });

            // Start a new run (selection policy permitting).
            const int limit = q.max_matches_per_window;
            if ((limit == 0 || started < limit) && !local_consumed.count(pos) &&
                !is_newly(pos)) {
                Run trial;
                if (try_enter(trial, 0)) {
                    ++started;
                    if (element_done(trial)) {
                        complete(trial);
                    } else {
                        runs.push_back(std::move(trial));
                    }
                }
            }
        }
    }
    return result;
}

}  // namespace spectre::trex
