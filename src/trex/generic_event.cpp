#include "trex/generic_event.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::trex {

GenericEvent reify(const event::Event& e, const event::Schema& schema) {
    GenericEvent g;
    g.seq = e.seq;
    g.ts = e.ts;
    if (e.type != util::kInvalidIntern) g.type = schema.type_name(e.type);
    if (e.subject != util::kInvalidIntern) g.symbol = schema.subject_name(e.subject);
    for (std::size_t s = 0; s < schema.attr_count(); ++s)
        g.attrs.emplace(schema.attr_name(s), e.attrs[s]);
    return g;
}

namespace {

class ConstNode final : public GenericNode {
public:
    explicit ConstNode(double v) : v_(v) {}
    double eval(const GenericEvent&, const GenericBindings&, bool&) const override {
        return v_;
    }

private:
    double v_;
};

class AttrNode final : public GenericNode {
public:
    explicit AttrNode(std::string name) : name_(std::move(name)) {}
    double eval(const GenericEvent& e, const GenericBindings&, bool& ok) const override {
        const auto it = e.attrs.find(name_);
        if (it == e.attrs.end()) {
            ok = false;
            return 0.0;
        }
        return it->second;
    }

private:
    std::string name_;
};

class BoundAttrNode final : public GenericNode {
public:
    BoundAttrNode(std::string binding, std::string attr)
        : binding_(std::move(binding)), attr_(std::move(attr)) {}
    double eval(const GenericEvent&, const GenericBindings& b, bool& ok) const override {
        const auto it = b.find(binding_);
        if (it == b.end() || it->second == nullptr) {
            ok = false;
            return 0.0;
        }
        const auto a = it->second->attrs.find(attr_);
        if (a == it->second->attrs.end()) {
            ok = false;
            return 0.0;
        }
        return a->second;
    }

private:
    std::string binding_;
    std::string attr_;
};

class SymbolInNode final : public GenericNode {
public:
    explicit SymbolInNode(std::vector<std::string> symbols) : symbols_(std::move(symbols)) {
        std::sort(symbols_.begin(), symbols_.end());
    }
    double eval(const GenericEvent& e, const GenericBindings&, bool&) const override {
        return std::binary_search(symbols_.begin(), symbols_.end(), e.symbol) ? 1.0 : 0.0;
    }

private:
    std::vector<std::string> symbols_;
};

class TypeIsNode final : public GenericNode {
public:
    explicit TypeIsNode(std::string type) : type_(std::move(type)) {}
    double eval(const GenericEvent& e, const GenericBindings&, bool&) const override {
        return e.type == type_ ? 1.0 : 0.0;
    }

private:
    std::string type_;
};

class UnaryNode final : public GenericNode {
public:
    UnaryNode(query::UnOp op, GenericExpr operand) : op_(op), operand_(std::move(operand)) {}
    double eval(const GenericEvent& e, const GenericBindings& b, bool& ok) const override {
        const double v = operand_->eval(e, b, ok);
        return op_ == query::UnOp::Neg ? -v : (v == 0.0 ? 1.0 : 0.0);
    }

private:
    query::UnOp op_;
    GenericExpr operand_;
};

class BinaryNode final : public GenericNode {
public:
    BinaryNode(query::BinOp op, GenericExpr lhs, GenericExpr rhs)
        : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
    double eval(const GenericEvent& e, const GenericBindings& b, bool& ok) const override {
        using query::BinOp;
        if (op_ == BinOp::And) {
            bool lok = true;
            const bool l = lhs_->eval(e, b, lok) != 0.0 && lok;
            if (!l) return 0.0;
            bool rok = true;
            const bool r = rhs_->eval(e, b, rok) != 0.0 && rok;
            return r ? 1.0 : 0.0;
        }
        if (op_ == BinOp::Or) {
            bool lok = true;
            const bool l = lhs_->eval(e, b, lok) != 0.0 && lok;
            if (l) return 1.0;
            bool rok = true;
            return (rhs_->eval(e, b, rok) != 0.0 && rok) ? 1.0 : 0.0;
        }
        const double l = lhs_->eval(e, b, ok);
        const double r = rhs_->eval(e, b, ok);
        switch (op_) {
            case BinOp::Add: return l + r;
            case BinOp::Sub: return l - r;
            case BinOp::Mul: return l * r;
            case BinOp::Div: return l / r;
            case BinOp::Lt: return l < r ? 1.0 : 0.0;
            case BinOp::Le: return l <= r ? 1.0 : 0.0;
            case BinOp::Gt: return l > r ? 1.0 : 0.0;
            case BinOp::Ge: return l >= r ? 1.0 : 0.0;
            case BinOp::Eq: return l == r ? 1.0 : 0.0;
            case BinOp::Ne: return l != r ? 1.0 : 0.0;
            default: break;
        }
        SPECTRE_CHECK(false, "unhandled generic binary operator");
    }

private:
    query::BinOp op_;
    GenericExpr lhs_, rhs_;
};

// Recovers the binding name a slot belongs to.
std::string binding_name_of_slot(const query::Pattern& pattern, int slot) {
    int s = 0;
    for (const auto& el : pattern.elements) {
        if (s == slot) return el.name;
        ++s;
        for (const auto& m : el.members) {
            if (s == slot) return m.name;
            ++s;
        }
    }
    SPECTRE_CHECK(false, "binding slot out of range");
}

}  // namespace

GenericExpr translate(const query::ExprNode& expr, const event::Schema& schema,
                      const query::Pattern& pattern) {
    using Kind = query::ExprNode::Kind;
    switch (expr.kind) {
        case Kind::Const:
            return std::make_unique<ConstNode>(expr.value);
        case Kind::Attr:
            return std::make_unique<AttrNode>(schema.attr_name(expr.slot));
        case Kind::BoundAttr:
            return std::make_unique<BoundAttrNode>(
                binding_name_of_slot(pattern, expr.element), schema.attr_name(expr.slot));
        case Kind::SubjectIn: {
            std::vector<std::string> names;
            names.reserve(expr.subjects.size());
            for (const auto id : expr.subjects) names.push_back(schema.subject_name(id));
            return std::make_unique<SymbolInNode>(std::move(names));
        }
        case Kind::TypeIs:
            return std::make_unique<TypeIsNode>(schema.type_name(expr.type));
        case Kind::Unary:
            return std::make_unique<UnaryNode>(expr.uop, translate(*expr.lhs, schema, pattern));
        case Kind::Binary:
            return std::make_unique<BinaryNode>(expr.bop, translate(*expr.lhs, schema, pattern),
                                                translate(*expr.rhs, schema, pattern));
    }
    SPECTRE_CHECK(false, "unhandled expression kind");
}

bool eval_bool(const GenericExpr& e, const GenericEvent& ev, const GenericBindings& b) {
    SPECTRE_REQUIRE(e != nullptr, "eval_bool on null generic expression");
    bool ok = true;
    const double v = e->eval(ev, b, ok);
    return ok && v != 0.0;
}

}  // namespace spectre::trex
