// TrexEngine: single-threaded general-purpose baseline engine (§4.2.3).
//
// Like T-REX, it translates the query into an interpreted automaton instead
// of running user-defined fast-path code, and it processes everything on one
// thread ("T-REX does not support event consumptions in parallel
// processing"). Semantics are identical to the sequential reference engine —
// window-serial processing with consumption — which the tests assert; only
// the execution model is the generic one: per-event reification into
// string-keyed maps and virtual-dispatch predicate trees.
//
// Supported pattern features: Single / Plus / Set elements, negation guards,
// FIRST / EACH selection, all consumption policies. (Sticky prefixes are a
// SPECTRE-side extension and are rejected here.)
#pragma once

#include <vector>

#include "detect/compiled_query.hpp"
#include "trex/generic_event.hpp"

namespace spectre::trex {

struct TrexStats {
    std::uint64_t windows = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t complex_events = 0;
};

struct TrexResult {
    std::vector<event::ComplexEvent> complex_events;  // window order
    TrexStats stats;
};

class TrexEngine {
public:
    explicit TrexEngine(const detect::CompiledQuery* cq);

    TrexResult run(const event::EventStore& store) const;

private:
    struct Automaton;

    const detect::CompiledQuery* cq_;
    // One translated predicate per element (and per set member), plus guards.
    std::vector<GenericExpr> element_preds_;
    std::vector<std::vector<GenericExpr>> member_preds_;
    std::vector<GenericExpr> guards_;
    std::vector<GenericExpr> payload_exprs_;
};

}  // namespace spectre::trex
