// StreamHub: the registry of named published streams (DESIGN.md §15).
//
// One publisher session owns the decoded event stream under a name; any
// number of subscriber sessions attach to that name and run independent
// queries over the SAME chunked EventStore — one decode, one copy of the
// stream bytes, N read frontiers. The hub is the rendezvous point:
//
//   * publish(name)    — claims the name, creates the shared StreamEntry
//                        (store + vocab + chunk pins). Fails on duplicates.
//   * find(name)       — resolves a subscriber's HELLO to the entry.
//   * subscribe/unsubscribe — maintains the entry's subscriber list so the
//                        publisher's ingest path can wake parked engines.
//   * publisher_gone() — the publisher died or finished. If the stream was
//                        never closed, the entry is poisoned (failed) and the
//                        current subscribers are handed back to the caller to
//                        be failed; a *closed* stream stays findable while
//                        any subscriber is still attached (late subscribers
//                        replay it), and is dropped once the last detaches.
//
// Ownership: entries are shared_ptr — the hub's map, the publisher session
// and every subscriber session hold references, so the store outlives
// whichever side disconnects first. The map slot itself is erased once the
// publisher is gone AND no subscriber remains (the name becomes reusable;
// sessions still holding the old entry are unaffected).
//
// Threading: the hub is reactor-thread-only, like the session map that feeds
// it. Cross-thread traffic goes through the entry's store (single-writer /
// multi-reader) and pins (internally locked), never through the hub.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/stock.hpp"
#include "event/chunk_pins.hpp"
#include "event/stream.hpp"
#include "obs/metrics.hpp"

namespace spectre::server {

class ServerSession;

struct StreamEntry {
    std::string name;
    data::StockVocab vocab;     // per-stream schema interning
    event::EventStore store;    // the one shared decoded stream
    event::ChunkPins pins{&store};
    std::uint64_t publisher_id = 0;
    bool publisher_live = true;
    bool failed = false;        // publisher died before closing the stream
    std::string fail_reason;
    std::vector<ServerSession*> subscribers;  // live attached sessions
};

class StreamHub {
public:
    using EntryPtr = std::shared_ptr<StreamEntry>;

    // Observability scope for the hub gauges/counters (may stay null).
    void bind_obs(obs::Shard* shard) noexcept { shard_ = shard; }

    // Claims `name` for publisher session `publisher_id`; returns null when
    // the name is already published (live or still drained by subscribers).
    EntryPtr publish(const std::string& name, std::uint64_t publisher_id);

    // Resolves a stream name; null when unknown.
    EntryPtr find(const std::string& name) const;

    void subscribe(const EntryPtr& entry, ServerSession* session);
    void unsubscribe(const EntryPtr& entry, ServerSession* session);

    // Marks the publisher as gone. If the store was never closed the entry is
    // poisoned and the subscribers that must be failed are returned (the
    // caller owns delivering the error — the hub never calls into sessions).
    // A cleanly closed stream keeps its entry until the last subscriber
    // detaches.
    std::vector<ServerSession*> publisher_gone(const EntryPtr& entry);

    std::size_t stream_count() const noexcept { return streams_.size(); }

private:
    void maybe_erase(const EntryPtr& entry);

    std::map<std::string, EntryPtr> streams_;
    obs::Shard* shard_ = nullptr;
};

}  // namespace spectre::server
