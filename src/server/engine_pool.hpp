// EnginePool: fixed pool of N worker threads multiplexing many sessions'
// engine work (DESIGN.md §9).
//
// PR 2's server spawned one engine thread per session, capping concurrent
// sessions at the thread budget. The pool decouples sessions from OS
// threads: each session registers one cooperatively-scheduled EngineTask,
// and a worker runs one bounded *quantum* of a task at a time — a task that
// is waiting for input or for egress credit parks itself (returns Parked)
// and the worker picks up another session. Thousands of sessions multiplex
// over N threads; a slow client suspends only its own task, never a worker.
//
// Scheduling contract (no lost wakeups):
//   * A task is in exactly one state: Parked, Queued, Running, or
//     RunningNotified. notify() on a Parked task queues it; on a Running
//     task it latches RunningNotified, and the worker re-queues the task
//     after the quantum even if the quantum itself returned Parked — so a
//     producer that publishes work *then* calls notify() never strands a
//     task that checked for work just before the publish.
//   * One task never runs on two workers at once (state machine above), and
//     the pool mutex orders consecutive quanta of the same task across
//     workers — a task's engine state needs no locking of its own.
//   * After a quantum returns Done the pool forgets the task before invoking
//     `on_done`, so the callback may destroy the task object.
//
// stop() joins the workers without draining parked tasks (server shutdown
// destroys the sessions that own them); a worker finishes at most the
// quantum it is in, which is bounded by construction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace spectre::server {

// One session's cooperatively-scheduled engine work.
class EngineTask {
public:
    virtual ~EngineTask() = default;

    enum class Quantum {
        MoreWork,  // ran the full quantum, more to do — requeue (round-robin)
        Parked,    // waiting for input / egress credit — run again on notify()
        Done,      // final: the pool forgets the task
    };

    // Run one bounded quantum of engine work. Never blocks.
    virtual Quantum run_quantum() = 0;
};

struct PoolStats {
    int workers = 0;
    std::uint64_t quanta = 0;          // quanta executed
    std::uint64_t tasks_added = 0;
    std::uint64_t tasks_finished = 0;  // quanta that returned Done
    std::size_t tasks_live = 0;        // registered: parked + queued + running
    std::size_t tasks_queued = 0;
    std::size_t tasks_running = 0;
};

class EnginePool {
public:
    explicit EnginePool(int workers);
    ~EnginePool();  // stop()

    EnginePool(const EnginePool&) = delete;
    EnginePool& operator=(const EnginePool&) = delete;

    // Spawns the worker threads. Call once.
    void start();

    // Joins every worker. Parked/queued tasks are forgotten, not drained —
    // callers own the task objects and destroy them afterwards. Idempotent.
    void stop();

    // Registers `task` under `id` and schedules its first quantum. `on_done`
    // is invoked from a worker thread after the task's final quantum, once
    // the pool has forgotten the task (the callback may destroy it).
    void add(std::uint64_t id, EngineTask* task, std::function<void(std::uint64_t)> on_done);

    // Schedules a parked task's next quantum. No-op for unknown (finished)
    // ids; safe from any thread, including from inside a quantum.
    void notify(std::uint64_t id);

    PoolStats stats() const;

    // Metrics plane (DESIGN.md §12): call before start(). Each worker gets
    // its own shard (queue-wait + quantum-duration histograms, quanta
    // counter); task add/finish counters land on a pool-scope shard. The
    // registry must outlive the pool's stop().
    void bind_obs(obs::Registry* registry);

private:
    enum class TaskState { Parked, Queued, Running, RunningNotified };
    struct Entry {
        EngineTask* task = nullptr;
        TaskState state = TaskState::Parked;
        std::function<void(std::uint64_t)> on_done;
        // When the task last became runnable (0 = obs off): queue-wait base.
        std::uint64_t ready_ns = 0;
    };

    void worker_loop();

    const int workers_count_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<std::uint64_t, Entry> tasks_;
    std::deque<std::uint64_t> run_queue_;
    std::vector<std::thread> workers_;
    bool started_ = false;
    bool stopping_ = false;
    obs::Registry* obs_registry_ = nullptr;
    obs::ShardPtr pool_shard_;
    std::uint64_t quanta_ = 0;
    std::uint64_t added_ = 0;
    std::uint64_t finished_ = 0;
    std::size_t running_ = 0;
};

}  // namespace spectre::server
