#include "server/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "model/markov_model.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/runtime.hpp"

namespace spectre::server {

ServerSession::ServerSession(std::uint64_t id, int fd, SessionLimits limits,
                             ServerCounters* counters,
                             std::function<void(std::uint64_t)> on_engine_done)
    : id_(id), fd_(fd), limits_(limits), counters_(counters),
      on_engine_done_(std::move(on_engine_done)) {}

ServerSession::~ServerSession() {
    if (engine_.joinable()) engine_.join();
    ::close(fd_);
}

void ServerSession::join_engine() {
    if (engine_.joinable()) engine_.join();
}

SessionStatus ServerSession::on_readable() {
    std::uint8_t chunk[16384];
    for (;;) {
        ssize_t n;
        try {
            n = net::read_some(fd_, chunk, sizeof(chunk));
        } catch (const std::exception& e) {
            // Peer reset / transport error: the client is gone, so there is
            // nobody to send ERROR to.
            return fail(std::string("read failed: ") + e.what(), /*send_error=*/false);
        }
        if (n < 0) return SessionStatus::Open;  // EAGAIN — drained for now
        if (n == 0) return on_end_of_input();
        reader_.feed(chunk, static_cast<std::size_t>(n));
        for (;;) {
            std::optional<net::SessionFrame> frame;
            try {
                frame = reader_.poll();
            } catch (const std::exception& e) {
                // Corrupt frame: framing is lost, the session is
                // unrecoverable — but only this session (ERROR + disconnect).
                return fail(std::string("corrupt frame: ") + e.what(), /*send_error=*/true);
            }
            if (!frame) break;
            const auto status = dispatch(std::move(*frame));
            if (status != SessionStatus::Open) return status;
        }
    }
}

SessionStatus ServerSession::dispatch(net::SessionFrame&& frame) {
    switch (state_) {
        case State::AwaitHello:
            if (auto* hello = std::get_if<net::HelloFrame>(&frame))
                return on_hello(std::move(*hello));
            return fail("protocol error: expected HELLO", /*send_error=*/true);
        case State::Streaming:
            if (const auto* quote = std::get_if<net::WireQuote>(&frame)) {
                live_.push(net::from_wire(*quote, vocab_));
                counters_->events_ingested.fetch_add(1, std::memory_order_relaxed);
                return SessionStatus::Open;
            }
            if (std::get_if<net::ByeFrame>(&frame)) {
                close_ingestion();
                state_ = State::Draining;
                return SessionStatus::Open;  // keep watching: detect client death
            }
            return fail("protocol error: unexpected frame while streaming",
                        /*send_error=*/true);
        case State::Draining:
            return fail("protocol error: frame after BYE", /*send_error=*/true);
        case State::Failed:
            return SessionStatus::Finished;
    }
    return SessionStatus::Finished;  // unreachable
}

SessionStatus ServerSession::on_hello(net::HelloFrame&& hello) {
    if (hello.instances > static_cast<std::uint32_t>(limits_.max_instances))
        return fail("HELLO rejected: instances exceed server limit",
                    /*send_error=*/true);
    try {
        vocab_ = data::StockVocab::create(std::make_shared<event::Schema>());
        auto query = query::parse_query(hello.query, vocab_.schema);
        cq_ = std::make_unique<detect::CompiledQuery>(
            detect::CompiledQuery::compile(std::move(query)));
    } catch (const std::exception& e) {
        return fail(std::string("HELLO rejected: ") + e.what(), /*send_error=*/true);
    }
    instances_ = hello.instances;
    state_ = State::Streaming;
    engine_started_ = true;
    engine_ = std::thread([this] { engine_main(); });
    return SessionStatus::Open;
}

SessionStatus ServerSession::on_end_of_input() {
    switch (state_) {
        case State::AwaitHello:
            // Client left before subscribing; nothing ran, nothing to tear down.
            return SessionStatus::Finished;
        case State::Streaming:
            if (reader_.mid_frame())
                // Death mid-frame: the truncated final event must surface as
                // a stream error, not be silently dropped.
                return fail("connection closed mid-frame (truncated event)",
                            /*send_error=*/true);
            // Clean EOF at a frame boundary is an implicit BYE — clients may
            // simply shutdown(SHUT_WR) and keep reading results.
            close_ingestion();
            state_ = State::Draining;
            return SessionStatus::Finished;
        case State::Draining:
        case State::Failed:
            return SessionStatus::Finished;
    }
    return SessionStatus::Finished;  // unreachable
}

SessionStatus ServerSession::fail(const std::string& message, bool send_error) {
    if (state_ == State::Failed) return SessionStatus::Finished;
    // A session whose engine already delivered its BYE is complete; a
    // protocol hiccup afterwards must not also count it failed.
    if (!completed_.load(std::memory_order_acquire))
        counters_->sessions_failed.fetch_add(1, std::memory_order_relaxed);
    if (send_error && !send_dead_.load(std::memory_order_acquire)) {
        // try_lock, not lock: the engine thread may hold the mutex parked in
        // a blocked send to a non-reading client — the reactor must never
        // wait on that. If contended, the client loses the ERROR frame but
        // still sees the disconnect.
        std::unique_lock<std::mutex> lock(send_mutex_, std::try_to_lock);
        if (lock.owns_lock())
            send_frame_best_effort(net::SessionFrame{net::ErrorFrame{message}});
    }
    send_dead_.store(true, std::memory_order_release);
    close_ingestion();
    // Unblocks an engine thread parked in send_all_bytes and tells the
    // client the conversation is over.
    ::shutdown(fd_, SHUT_RDWR);
    state_ = State::Failed;
    return SessionStatus::Finished;
}

bool ServerSession::send_frame(const net::SessionFrame& frame) {
    const std::lock_guard<std::mutex> lock(send_mutex_);
    return send_frame_locked(frame);
}

bool ServerSession::send_frame_locked(const net::SessionFrame& frame) {
    if (send_dead_.load(std::memory_order_acquire)) return false;
    std::vector<std::uint8_t> bytes;
    try {
        net::encode_frame(frame, bytes);
        if (net::send_all_bytes(fd_, bytes.data(), bytes.size())) return true;
    } catch (const std::exception&) {
        // Transport error past EPIPE/ECONNRESET — treat identically: the
        // peer is unreachable, stop sending.
    }
    send_dead_.store(true, std::memory_order_release);
    return false;
}

void ServerSession::send_frame_best_effort(const net::SessionFrame& frame) {
    // One pass over the bytes with no writability wait: the caller is the
    // reactor, which must never park in poll() on a client whose socket
    // buffer is full (send_all_bytes would). A short write poisons the send
    // path — framing to this client is lost — which is fine here: the only
    // best-effort frame is a pre-disconnect ERROR.
    if (send_dead_.load(std::memory_order_acquire)) return;
    std::vector<std::uint8_t> bytes;
    net::encode_frame(frame, bytes);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (w > 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR) continue;
        send_dead_.store(true, std::memory_order_release);
        return;
    }
}

void ServerSession::close_ingestion() {
    if (ingestion_closed_) return;
    ingestion_closed_ = true;
    if (engine_started_) live_.close();
}

void ServerSession::abort() {
    send_dead_.store(true, std::memory_order_release);
    close_ingestion();
    ::shutdown(fd_, SHUT_RDWR);
}

void ServerSession::engine_main() {
    try {
        event::ResultSink sink = [this](event::ComplexEvent&& ce) {
            if (send_frame(net::SessionFrame{net::to_result_frame(ce)}))
                counters_->results_emitted.fetch_add(1, std::memory_order_relaxed);
            results_sent_.fetch_add(1, std::memory_order_relaxed);
        };
        if (instances_ == 0) {
            // k = 0 subscribes the sequential reference engine — the ground
            // truth the parallel runtime must match byte-for-byte.
            sequential::SequentialEngine engine(cq_.get());
            engine.run_stream(live_, store_, sink);
        } else {
            core::RuntimeConfig cfg;
            cfg.splitter.instances = static_cast<int>(instances_);
            cfg.batch_events = limits_.batch_events;
            core::SpectreRuntime runtime(
                &store_, cq_.get(), cfg,
                std::make_unique<model::MarkovModel>(cq_->min_length(),
                                                     model::MarkovParams{}));
            runtime.set_result_sink(std::move(sink));
            runtime.run(live_);
        }
        if (send_frame(net::SessionFrame{
                net::ByeFrame{results_sent_.load(std::memory_order_relaxed)}})) {
            completed_.store(true, std::memory_order_release);
            counters_->sessions_completed.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (const std::exception& e) {
        // Engine failure (e.g. a pathological query blowing an internal
        // limit) fails this session only.
        send_frame(net::SessionFrame{net::ErrorFrame{std::string("engine error: ") + e.what()}});
        counters_->sessions_failed.fetch_add(1, std::memory_order_relaxed);
    }
    on_engine_done_(id_);
}

}  // namespace spectre::server
