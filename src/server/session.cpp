#include "server/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

#include "model/markov_model.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"

namespace spectre::server {

namespace {

// Degenerate knobs would wedge the scheduling loops (a < 2 ingest cap makes
// the resume low-watermark zero — reads never resume; a zero quantum makes a
// drain report pending work while processing nothing). Clamp, don't reject:
// a session must never fail over a tuning value.
SessionLimits sanitized(SessionLimits limits) {
    limits.batch_events = std::max<std::size_t>(limits.batch_events, 1);
    limits.quantum_steps = std::max<std::size_t>(limits.quantum_steps, 1);
    limits.quantum_windows = std::max<std::size_t>(limits.quantum_windows, 1);
    limits.ingest_queue_events = std::max<std::size_t>(limits.ingest_queue_events, 2);
    limits.egress_buffer_bytes = std::max<std::size_t>(limits.egress_buffer_bytes, 1);
    return limits;
}

}  // namespace

ServerSession::ServerSession(std::uint64_t id, int fd, SessionLimits limits,
                             ServerCounters* counters, SessionHooks hooks)
    : id_(id), fd_(fd), limits_(sanitized(limits)), counters_(counters),
      hooks_(std::move(hooks)) {}

ServerSession::~ServerSession() {
    // Callers guarantee no worker is inside run_quantum (the task finished,
    // or the pool was stopped first).
    {
        const std::lock_guard<std::mutex> lock(egress_mutex_);
        account_egress(egress_.size() - egress_head_, 0);
    }
    ::close(fd_);
}

// --- reactor side: ingest --------------------------------------------------

SessionStatus ServerSession::on_readable() {
    std::uint8_t chunk[16384];
    for (;;) {
        // Frames already buffered first: a ResumeRead re-entry must not wait
        // for new bytes to dispatch what was decoded before the pause.
        for (;;) {
            std::optional<net::SessionFrame> frame;
            try {
                frame = reader_.poll();
            } catch (const std::exception& e) {
                // Corrupt frame: framing is lost, the session is
                // unrecoverable — but only this session (ERROR + disconnect).
                return fail(std::string("corrupt frame: ") + e.what(), /*send_error=*/true);
            }
            if (!frame) break;
            const auto status = dispatch(std::move(*frame));
            if (status != SessionStatus::Open) return status;
        }
        ssize_t n;
        try {
            n = net::read_some(fd_, chunk, sizeof(chunk));
        } catch (const std::exception& e) {
            // Peer reset / transport error: the client is gone, so there is
            // nobody to send ERROR to.
            return fail(std::string("read failed: ") + e.what(), /*send_error=*/false);
        }
        if (n < 0) return SessionStatus::Open;  // EAGAIN — drained for now
        if (n == 0) return on_end_of_input();
        reader_.feed(chunk, static_cast<std::size_t>(n));
    }
}

SessionStatus ServerSession::dispatch(net::SessionFrame&& frame) {
    switch (state_) {
        case State::AwaitHello:
            if (auto* hello = std::get_if<net::HelloFrame>(&frame))
                return on_hello(std::move(*hello));
            return fail("protocol error: expected HELLO", /*send_error=*/true);
        case State::Streaming:
            if (const auto* quote = std::get_if<net::WireQuote>(&frame)) {
                // Symbol interning stays on the reactor thread (§8): the
                // engine only ever sees interned ids.
                if (sharded_) {
                    // §10: the reactor routes straight into the shard queues
                    // (the router must see arrivals in global order, and this
                    // is the only thread that does). A worker-side abort may
                    // close the input before the reactor learns the session
                    // failed — those trailing events are dropped, not fatal.
                    if (sharded_->input_closed()) return SessionStatus::Open;
                    const auto info = sharded_->ingest(net::from_wire(*quote, vocab_));
                    counters_->events_ingested.fetch_add(1, std::memory_order_relaxed);
                    if (shard_parked_input_[info.shard].exchange(
                            false, std::memory_order_acq_rel))
                        hooks_.notify_task(shard_task_id(id_, info.shard));
                    if (info.queued >= limits_.ingest_queue_events) {
                        counters_->ingest_pauses.fetch_add(1, std::memory_order_relaxed);
                        return SessionStatus::Paused;
                    }
                    return SessionStatus::Open;
                }
                const bool room = ingest_push(net::from_wire(*quote, vocab_));
                counters_->events_ingested.fetch_add(1, std::memory_order_relaxed);
                if (!room) {
                    // High watermark hit: stop reading this socket — TCP
                    // pushes back on the client while the task catches up.
                    counters_->ingest_pauses.fetch_add(1, std::memory_order_relaxed);
                    return SessionStatus::Paused;
                }
                return SessionStatus::Open;
            }
            if (std::get_if<net::ByeFrame>(&frame)) {
                close_ingestion();
                state_ = State::Draining;
                return SessionStatus::Open;  // keep watching: detect client death
            }
            return fail("protocol error: unexpected frame while streaming",
                        /*send_error=*/true);
        case State::Draining:
            return fail("protocol error: frame after BYE", /*send_error=*/true);
        case State::Failed:
            return SessionStatus::Finished;
    }
    return SessionStatus::Finished;  // unreachable
}

SessionStatus ServerSession::on_hello(net::HelloFrame&& hello) {
    if (hello.instances > static_cast<std::uint32_t>(limits_.max_instances))
        return fail("HELLO rejected: instances exceed server limit",
                    /*send_error=*/true);
    if (hello.shards > static_cast<std::uint32_t>(limits_.max_shards))
        return fail("HELLO rejected: shards exceed server limit", /*send_error=*/true);
    try {
        vocab_ = data::StockVocab::create(std::make_shared<event::Schema>());
        auto query = query::parse_query(hello.query, vocab_.schema);
        // HELLO's partition key (§10) overrides/supplies the query text's
        // PARTITION BY; sharding without any partition key is meaningless.
        if (!hello.partition_by.empty())
            query.partition = query::resolve_partition_key(hello.partition_by,
                                                           *vocab_.schema);
        if (hello.shards > 1 && !query.partition.active())
            throw std::invalid_argument("shards > 1 needs a partition key");
        cq_ = std::make_unique<detect::CompiledQuery>(
            detect::CompiledQuery::compile(std::move(query)));
    } catch (const std::exception& e) {
        return fail(std::string("HELLO rejected: ") + e.what(), /*send_error=*/true);
    }
    instances_ = hello.instances;

    event::ResultSink sink = [this](event::ComplexEvent&& ce) {
        results_sent_.fetch_add(1, std::memory_order_relaxed);
        if (egress_append(net::SessionFrame{net::to_result_frame(ce)}))
            counters_->results_emitted.fetch_add(1, std::memory_order_relaxed);
    };
    if (cq_->query().partition.active()) {
        // Partitioned query (§10): per-key lanes behind a ShardedEngine, one
        // cooperatively-scheduled pool task per shard. The session scales
        // across the pool's workers without owning a single thread.
        shard::ShardedConfig cfg;
        cfg.shards = std::max<std::uint32_t>(hello.shards, 1);
        cfg.instances = instances_;
        cfg.batch_events = limits_.batch_events;
        sharded_ = std::make_unique<shard::ShardedEngine>(cq_.get(), cfg,
                                                          std::move(sink));
        tasks_expected_ = cfg.shards;
        shard_parked_input_ = std::make_unique<std::atomic<bool>[]>(cfg.shards);
        shard_parked_egress_ = std::make_unique<std::atomic<bool>[]>(cfg.shards);
        for (std::uint32_t s = 0; s < cfg.shards; ++s) {
            shard_parked_input_[s].store(false, std::memory_order_relaxed);
            shard_parked_egress_[s].store(false, std::memory_order_relaxed);
            auto task = std::make_unique<ShardSubTask>();
            task->session = this;
            task->shard = s;
            shard_tasks_.push_back(std::move(task));
        }
        state_ = State::Streaming;
        task_registered_ = true;
        for (std::uint32_t s = 0; s < cfg.shards; ++s)
            hooks_.register_task(shard_task_id(id_, s), shard_tasks_[s].get());
        return SessionStatus::Open;
    }
    if (instances_ == 0) {
        // k = 0 subscribes the sequential reference engine — the ground
        // truth the parallel runtime must match byte-for-byte.
        stepper_ = std::make_unique<sequential::SeqStepper>(cq_.get(), &store_,
                                                            std::move(sink));
    } else {
        core::RuntimeConfig cfg;
        cfg.splitter.instances = static_cast<int>(instances_);
        cfg.batch_events = limits_.batch_events;
        // Fairness on the shared pool (DESIGN.md §11): one step advances at
        // most one ingest batch worth of window positions, so a speculative
        // session's quantum stays comparable to a sequential one's.
        cfg.quantum_budget = limits_.batch_events;
        runtime_ = std::make_unique<core::SpectreRuntime>(
            &store_, cq_.get(), cfg,
            std::make_unique<model::MarkovModel>(cq_->min_length(),
                                                 model::MarkovParams{}));
        runtime_->set_result_sink(std::move(sink));
    }
    state_ = State::Streaming;
    task_registered_ = true;
    tasks_expected_ = 1;
    hooks_.register_task(id_, this);  // schedules the first quantum
    return SessionStatus::Open;
}

SessionStatus ServerSession::on_end_of_input() {
    switch (state_) {
        case State::AwaitHello:
            // Client left before subscribing; nothing ran, nothing to tear down.
            return SessionStatus::Finished;
        case State::Streaming:
            if (reader_.mid_frame())
                // Death mid-frame: the truncated final event must surface as
                // a stream error, not be silently dropped.
                return fail("connection closed mid-frame (truncated event)",
                            /*send_error=*/true);
            // Clean EOF at a frame boundary is an implicit BYE — clients may
            // simply shutdown(SHUT_WR) and keep reading results.
            close_ingestion();
            state_ = State::Draining;
            return SessionStatus::Finished;
        case State::Draining:
        case State::Failed:
            return SessionStatus::Finished;
    }
    return SessionStatus::Finished;  // unreachable
}

SessionStatus ServerSession::fail(const std::string& message, bool send_error) {
    if (state_ == State::Failed) return SessionStatus::Finished;
    count_failed_once();
    if (send_error) {
        // Best effort: buffer the ERROR frame and take one non-blocking
        // flush pass. A client that is not reading loses it but still sees
        // the disconnect.
        egress_append(net::SessionFrame{net::ErrorFrame{message}});
        egress_try_flush();
    }
    // One teardown sequence for both failure and shutdown (poison, close
    // ingestion, abort + wake the task, shut the socket down).
    abort();
    state_ = State::Failed;
    input_done_ = true;
    return SessionStatus::Finished;
}

void ServerSession::close_ingestion() {
    {
        const std::lock_guard<std::mutex> lock(ingest_mutex_);
        if (ingest_closed_) return;
        ingest_closed_ = true;
    }
    if (sharded_) {
        // §10: publish end-of-stream, then wake every parked shard for its
        // EOS drain (a task parking concurrently re-checks shard_idle, which
        // reads the closed flag — no lost wakeup either way).
        sharded_->close_input();
        for (std::uint32_t s = 0; s < tasks_expected_; ++s)
            if (shard_parked_input_[s].exchange(false, std::memory_order_acq_rel))
                hooks_.notify_task(shard_task_id(id_, s));
        return;
    }
    if (parked_on_input_.exchange(false, std::memory_order_acq_rel))
        hooks_.notify_task(id_);
}

void ServerSession::abort() {
    egress_poison();
    close_ingestion();
    abort_requested_.store(true, std::memory_order_release);
    ::shutdown(fd_, SHUT_RDWR);
    if (task_registered_) {
        if (sharded_)
            for (std::uint32_t s = 0; s < tasks_expected_; ++s)
                hooks_.notify_task(shard_task_id(id_, s));
        else
            hooks_.notify_task(id_);
    }
}

void ServerSession::count_failed_once() {
    // A session whose engine already claimed the completed outcome must not
    // also count failed, and reactor-side vs worker-side failure paths must
    // not double-count — the single outcome latch settles both races.
    if (!outcome_counted_.exchange(true, std::memory_order_acq_rel))
        counters_->sessions_failed.fetch_add(1, std::memory_order_relaxed);
}

// --- ingest queue -----------------------------------------------------------

bool ServerSession::ingest_push(event::Event e) {
    std::size_t size;
    {
        const std::lock_guard<std::mutex> lock(ingest_mutex_);
        ingest_.push_back(std::move(e));
        size = ingest_.size();
    }
    if (parked_on_input_.exchange(false, std::memory_order_acq_rel))
        hooks_.notify_task(id_);
    return size < limits_.ingest_queue_events;
}

std::size_t ServerSession::pull_ingest() {
    // Worker-only scratch; clear() keeps capacity across the (hot) steps.
    pull_scratch_.clear();
    bool close_store = false;
    bool resume = false;
    {
        const std::lock_guard<std::mutex> lock(ingest_mutex_);
        const std::size_t n = std::min(ingest_.size(), limits_.batch_events);
        pull_scratch_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            pull_scratch_.push_back(std::move(ingest_.front()));
            ingest_.pop_front();
        }
        close_store = ingest_closed_ && ingest_.empty();
        resume = ingest_.size() < limits_.ingest_queue_events / 2;
    }
    for (auto& e : pull_scratch_) store_.append(std::move(e));
    if (close_store && !store_.closed()) store_.close();
    // Below the low watermark: hand the reactor its read interest back
    // (exactly once per pause — the exchange is the dedup).
    if (resume && read_paused_.exchange(false, std::memory_order_acq_rel))
        hooks_.post(id_, SessionCmd::ResumeRead);
    return pull_scratch_.size();
}

bool ServerSession::ingest_empty_and_open() {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    return ingest_.empty() && !ingest_closed_;
}

bool ServerSession::ingest_above_low() const {
    if (sharded_) return sharded_->queued_total() >= limits_.ingest_queue_events / 2;
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    return ingest_.size() >= limits_.ingest_queue_events / 2;
}

// --- egress buffer ----------------------------------------------------------

void ServerSession::account_egress(std::size_t before, std::size_t after) {
    if (after > before) {
        const std::size_t now =
            counters_->egress_buffered_bytes.fetch_add(after - before,
                                                       std::memory_order_relaxed) +
            (after - before);
        std::size_t peak = counters_->egress_peak_bytes.load(std::memory_order_relaxed);
        while (now > peak &&
               !counters_->egress_peak_bytes.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
    } else if (before > after) {
        counters_->egress_buffered_bytes.fetch_sub(before - after,
                                                   std::memory_order_relaxed);
    }
}

bool ServerSession::egress_append(const net::SessionFrame& frame) {
    if (egress_dead_.load(std::memory_order_acquire)) return false;
    std::vector<std::uint8_t> bytes;
    net::encode_frame(frame, bytes);
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    if (egress_dead_.load(std::memory_order_relaxed)) return false;
    const std::size_t before = egress_.size() - egress_head_;
    egress_.insert(egress_.end(), bytes.begin(), bytes.end());
    account_egress(before, before + bytes.size());
    return true;
}

bool ServerSession::egress_try_flush() {
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    if (egress_dead_.load(std::memory_order_relaxed)) return false;
    const std::size_t before = egress_.size() - egress_head_;
    while (egress_head_ < egress_.size()) {
        const ssize_t w = ::send(fd_, egress_.data() + egress_head_,
                                 egress_.size() - egress_head_,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (w > 0) {
            egress_head_ += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR) continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // Transport error (EPIPE, ECONNRESET, …): the peer is unreachable —
        // poison the path, drop what it will never read, and abort the
        // engine so the task stops burning pool quanta computing results
        // nobody can receive. The fail_counted latch coordinates with the
        // reactor's fail() so the session is counted failed exactly once
        // (and never after its BYE was buffered).
        account_egress(before, 0);
        egress_.clear();
        egress_head_ = 0;
        egress_dead_.store(true, std::memory_order_release);
        abort_requested_.store(true, std::memory_order_release);
        count_failed_once();
        return false;
    }
    if (egress_head_ == egress_.size()) {
        egress_.clear();
        egress_head_ = 0;
    } else if (egress_head_ >= 64 * 1024) {
        egress_.erase(egress_.begin(),
                      egress_.begin() + static_cast<std::ptrdiff_t>(egress_head_));
        egress_head_ = 0;
    }
    account_egress(before, egress_.size() - egress_head_);
    return true;
}

void ServerSession::egress_poison() {
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    account_egress(egress_.size() - egress_head_, 0);
    egress_.clear();
    egress_head_ = 0;
    egress_dead_.store(true, std::memory_order_release);
}

bool ServerSession::egress_has_credit() const {
    if (egress_dead_.load(std::memory_order_acquire)) return true;  // sink discards
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    return egress_.size() - egress_head_ <= limits_.egress_buffer_bytes;
}

bool ServerSession::egress_idle() const {
    if (egress_dead_.load(std::memory_order_acquire)) return true;
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    return egress_head_ == egress_.size();
}

bool ServerSession::egress_pending() const {
    if (egress_dead_.load(std::memory_order_acquire)) return false;
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    return egress_head_ != egress_.size();
}

bool ServerSession::flush_egress() {
    const bool ok = egress_try_flush();
    if (!ok) {
        // The write side died. If the session is still nominally healthy,
        // fail it (poisons, aborts the task); a Failed session just reports.
        if (state_ != State::Failed) fail("result write failed", /*send_error=*/false);
        return false;
    }
    if (egress_has_credit()) {
        if (sharded_) {
            for (std::uint32_t s = 0; s < tasks_expected_; ++s)
                if (shard_parked_egress_[s].exchange(false, std::memory_order_acq_rel))
                    hooks_.notify_task(shard_task_id(id_, s));
        } else if (parked_on_egress_.exchange(false, std::memory_order_acq_rel)) {
            hooks_.notify_task(id_);
        }
    }
    return true;
}

void ServerSession::request_watch_write() {
    if (!egress_pending()) return;
    if (!watch_write_requested_.exchange(true, std::memory_order_acq_rel))
        hooks_.post(id_, SessionCmd::WatchWrite);
}

// --- pool worker side -------------------------------------------------------

EngineTask::Quantum ServerSession::run_quantum() {
    if (abort_requested_.load(std::memory_order_acquire)) {
        // Dropped mid-flight (failure or server stop): abandon the engine.
        // Cooperative stepping makes this trivial — no thread is inside it.
        return Quantum::Done;
    }
    try {
        for (std::size_t s = 0; s < limits_.quantum_steps; ++s) {
            if (abort_requested_.load(std::memory_order_acquire)) return Quantum::Done;
            // Egress credit gate (§9): a slow result reader parks this
            // session, never a worker.
            if (!egress_has_credit()) {
                egress_try_flush();  // the socket may have drained meanwhile
                if (!egress_has_credit()) {
                    parked_on_egress_.store(true, std::memory_order_release);
                    if (egress_has_credit()) {  // flushed concurrently — race lost
                        parked_on_egress_.store(false, std::memory_order_relaxed);
                    } else {
                        counters_->parks_egress.fetch_add(1, std::memory_order_relaxed);
                        request_watch_write();
                        return Quantum::Parked;
                    }
                }
            }
            const std::size_t pulled = pull_ingest();
            bool done = false;
            bool quiescent = false;  // no further progress at this frontier
            if (stepper_) {
                const bool more = stepper_->drain(limits_.quantum_windows);
                done = stepper_->finished();
                quiescent = !more;
            } else {
                const auto p = runtime_->step();
                done = p.done;
                // step() reports quiescence explicitly: the scheduling loop
                // reached a fixed point for the current frontier. With fresh
                // appends the windows may not be discovered yet, so only an
                // empty pull counts toward parking.
                quiescent = pulled == 0 && p.quiescent;
            }
            if (done) return finish_engine();
            if (quiescent) {
                // Park on input starvation. Publish intent first, then
                // re-check: a reactor push between the check and the park
                // flips the flag and re-queues us (no lost wakeup).
                parked_on_input_.store(true, std::memory_order_release);
                if (ingest_empty_and_open()) {
                    counters_->parks_input.fetch_add(1, std::memory_order_relaxed);
                    egress_try_flush();
                    request_watch_write();
                    return Quantum::Parked;
                }
                parked_on_input_.store(false, std::memory_order_relaxed);
            }
        }
    } catch (const std::exception& e) {
        // Engine failure (e.g. a pathological query blowing an internal
        // limit) fails this session only.
        return engine_failed(e.what());
    }
    // Quantum exhausted with work left: yield the worker, rejoin the queue.
    egress_try_flush();
    request_watch_write();
    return Quantum::MoreWork;
}

void ServerSession::flush_sched_stats() {
    // Worker-side only: finish_engine/engine_failed run on the pool worker
    // that owns the final quantum, so reading the runtime is race-free.
    if (!runtime_ || sched_flushed_.exchange(true, std::memory_order_acq_rel)) return;
    const core::SchedStats s = runtime_->sched_stats();
    counters_->sched_sessions.fetch_add(1, std::memory_order_relaxed);
    counters_->sched_steps.fetch_add(s.steps, std::memory_order_relaxed);
    counters_->sched_cycles.fetch_add(s.cycles, std::memory_order_relaxed);
    counters_->sched_cycles_skipped.fetch_add(s.cycles_skipped, std::memory_order_relaxed);
    counters_->sched_batches.fetch_add(s.batches, std::memory_order_relaxed);
    counters_->sched_batch_events.fetch_add(s.batch_events, std::memory_order_relaxed);
    counters_->sched_instances_retired.fetch_add(s.instances_retired,
                                                 std::memory_order_relaxed);
    counters_->sched_instances_cancelled.fetch_add(s.instances_cancelled,
                                                   std::memory_order_relaxed);
    counters_->sched_wasted_events.fetch_add(s.speculation_wasted_events,
                                             std::memory_order_relaxed);
    counters_->sched_ready_p50_milli.fetch_add(
        static_cast<std::uint64_t>(s.ready_depth_p50 * 1000.0),
        std::memory_order_relaxed);
    auto& mx = counters_->sched_ready_depth_max;
    std::uint64_t cur = mx.load(std::memory_order_relaxed);
    while (s.ready_depth_max > cur &&
           !mx.compare_exchange_weak(cur, s.ready_depth_max, std::memory_order_relaxed)) {
    }
}

EngineTask::Quantum ServerSession::finish_engine() {
    flush_sched_stats();
    if (egress_append(net::SessionFrame{
            net::ByeFrame{results_sent_.load(std::memory_order_relaxed)}}) &&
        !outcome_counted_.exchange(true, std::memory_order_acq_rel)) {
        counters_->sessions_completed.fetch_add(1, std::memory_order_relaxed);
    }
    egress_try_flush();
    request_watch_write();
    return Quantum::Done;
}

// --- sharded session (§10) --------------------------------------------------

void ServerSession::maybe_resume_read_sharded() {
    if (sharded_->queued_total() < limits_.ingest_queue_events / 2 &&
        read_paused_.exchange(false, std::memory_order_acq_rel))
        hooks_.post(id_, SessionCmd::ResumeRead);
}

EngineTask::Quantum ServerSession::run_shard_quantum(std::uint32_t shard) {
    if (abort_requested_.load(std::memory_order_acquire)) return Quantum::Done;
    try {
        for (std::size_t s = 0; s < limits_.quantum_steps; ++s) {
            if (abort_requested_.load(std::memory_order_acquire)) return Quantum::Done;
            // Egress credit gate (§9): the buffer is shared by all shard
            // tasks — a slow result reader parks each of them as it arrives
            // here, never a worker.
            if (!egress_has_credit()) {
                egress_try_flush();
                if (!egress_has_credit()) {
                    shard_parked_egress_[shard].store(true, std::memory_order_release);
                    if (egress_has_credit()) {  // flushed concurrently — race lost
                        shard_parked_egress_[shard].store(false, std::memory_order_relaxed);
                    } else {
                        counters_->parks_egress.fetch_add(1, std::memory_order_relaxed);
                        request_watch_write();
                        return Quantum::Parked;
                    }
                }
            }
            const auto res = sharded_->step_shard(shard, limits_.batch_events);
            maybe_resume_read_sharded();
            if (res.all_finished) {
                // Whole-session completion observed: exactly one shard task
                // sends the BYE (every result is already in the egress
                // buffer — the merge that set all_finished emitted them).
                if (!bye_sent_.exchange(true, std::memory_order_acq_rel))
                    return finish_engine();
                egress_try_flush();
                request_watch_write();
                return Quantum::Done;
            }
            if (res.shard_finished) {
                // This shard is drained; peers still run (and will merge any
                // results this shard buffered).
                egress_try_flush();
                request_watch_write();
                return Quantum::Done;
            }
            if (res.idle) {
                // Park on input starvation, publish-then-recheck (§9).
                shard_parked_input_[shard].store(true, std::memory_order_release);
                if (sharded_->shard_idle(shard)) {
                    counters_->parks_input.fetch_add(1, std::memory_order_relaxed);
                    egress_try_flush();
                    request_watch_write();
                    return Quantum::Parked;
                }
                shard_parked_input_[shard].store(false, std::memory_order_relaxed);
            }
        }
    } catch (const std::exception& e) {
        return engine_failed(e.what());
    }
    egress_try_flush();
    request_watch_write();
    return Quantum::MoreWork;
}

EngineTask::Quantum ServerSession::engine_failed(const std::string& what) {
    flush_sched_stats();
    count_failed_once();
    egress_append(net::SessionFrame{net::ErrorFrame{std::string("engine error: ") + what}});
    egress_try_flush();
    // Tear the session down like every other failure path: without this a
    // client that keeps streaming would fill the ingest queue, pause the
    // reader, and linger as a zombie — no task exists anymore to resume it.
    abort();
    return Quantum::Done;
}

}  // namespace spectre::server
