#include "server/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "model/markov_model.hpp"
#include "query/parser.hpp"

namespace spectre::server {

namespace {

// Degenerate knobs would wedge the scheduling loops (a < 2 ingest cap makes
// the resume low-watermark zero — reads never resume; a zero quantum makes a
// drain report pending work while processing nothing). Clamp, don't reject:
// a session must never fail over a tuning value.
SessionLimits sanitized(SessionLimits limits) {
    limits.batch_events = std::max<std::size_t>(limits.batch_events, 1);
    limits.quantum_steps = std::max<std::size_t>(limits.quantum_steps, 1);
    limits.quantum_windows = std::max<std::size_t>(limits.quantum_windows, 1);
    limits.ingest_queue_events = std::max<std::size_t>(limits.ingest_queue_events, 2);
    limits.egress_buffer_bytes = std::max<std::size_t>(limits.egress_buffer_bytes, 1);
    return limits;
}

}  // namespace

ServerSession::ServerSession(std::uint64_t id, int fd, SessionLimits limits,
                             obs::Registry* registry, obs::ShardPtr shard,
                             SessionHooks hooks, StreamHub* hub,
                             detect::CompileCache* cache)
    : id_(id), fd_(fd), limits_(sanitized(limits)), registry_(registry),
      shard_(std::move(shard)), hooks_(std::move(hooks)), hub_(hub), cache_(cache),
      sendv_([fd](const struct iovec* iov, int iovcnt) -> ssize_t {
          struct msghdr msg {};
          msg.msg_iov = const_cast<struct iovec*>(iov);
          msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
          return ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
      }) {}

ServerSession::~ServerSession() {
    // Callers guarantee no worker is inside run_quantum (the task finished,
    // or the pool was stopped first).
    // Quiet hub detach (§15): drops the pin / marks the publisher gone. The
    // returned fail list is ignored — this path is server-stop teardown
    // (destroy_session detaches explicitly first and handles the list).
    hub_detach();
    {
        const std::lock_guard<std::mutex> lock(egress_mutex_);
        account_egress(0);
        egress_.clear();
    }
    // Last chance to publish engine stats (§12): covers sharded failure
    // paths and server-stop teardown, where no worker-side flush point was
    // safe. Then retire the shard — counters fold into the registry's
    // retained block, so server totals stay monotone across session churn.
    flush_sched_stats();
    registry_->retire(shard_);
    ::close(fd_);
}

// --- reactor side: ingest (§14 scatter path) --------------------------------

SessionStatus ServerSession::on_readable(net::IoBackend& io) {
    for (;;) {
        // Frames already staged first: a ResumeRead re-entry must not wait
        // for new bytes to dispatch what was decoded before the pause.
        while (!reader_.empty()) {
            std::optional<net::SessionFrame> frame;
            try {
                frame = reader_.poll();
            } catch (const std::exception& e) {
                // Corrupt frame: framing is lost, the session is
                // unrecoverable — but only this session (ERROR + disconnect).
                return fail(std::string("corrupt frame: ") + e.what(), /*send_error=*/true);
            }
            if (!frame) break;  // mid-frame tail — need more bytes
            shard_->add(obs::Series{obs::sid::kIngestFramesStaged}, 1);
            const auto status = dispatch(std::move(*frame));
            if (status != SessionStatus::Open) return status;
        }
        net::IoBackend::ReadView view;
        const auto rs = io.read(fd_, view);
        if (rs == net::IoBackend::ReadStatus::Again)
            return SessionStatus::Open;  // drained for now
        if (rs == net::IoBackend::ReadStatus::Eof) return on_end_of_input();
        if (rs == net::IoBackend::ReadStatus::Error)
            // Peer reset / transport error: the client is gone, so there is
            // nobody to send ERROR to.
            return fail(std::string("read failed: ") + std::strerror(io.read_error()),
                        /*send_error=*/false);
        shard_->add(obs::Series{obs::sid::kIngestReads}, 1);
        shard_->add(obs::Series{obs::sid::kIngestWireBytes}, view.size);
        const auto status = consume_view(view.data, view.size);
        if (status != SessionStatus::Open) return status;
    }
}

void ServerSession::stage_tail(const std::uint8_t* data, std::size_t size,
                               std::size_t& pos) {
    if (pos >= size) return;
    reader_.feed(data + pos, size - pos);
    shard_->add(obs::Series{obs::sid::kIngestCopiedBytes}, size - pos);
    pos = size;
}

SessionStatus ServerSession::consume_view(const std::uint8_t* data, std::size_t size) {
    // Bounded staging feed: a lone control frame must not drag the rest of
    // the view through the copy path — feed one chunk, poll it, and return
    // to the scatter fast path as soon as the reader drains.
    constexpr std::size_t kStageChunk = 4096;
    std::size_t pos = 0;
    std::size_t appended = 0;     // unsharded scatter slots pending publish
    std::uint64_t scattered = 0;  // DATA frames decoded in place (§12)
    const auto flush_counters = [this, &scattered] {
        if (scattered == 0) return;
        shard_->add(obs::Series{obs::sid::kIngestFramesScatter}, scattered);
        scattered = 0;
    };
    while (pos < size) {
        // Subscribers never carry DATA — route everything through the staged
        // decode so a stray DATA frame surfaces as a protocol error below.
        if (state_ == State::Streaming && role_ != SessionRole::Subscriber &&
            reader_.empty()) {
            net::DataFrameView dv;
            net::ScatterStatus st;
            try {
                st = net::scatter_data(data, size, pos, dv);
            } catch (const std::exception& e) {
                publish_ingest(appended);
                flush_counters();
                return fail(std::string("corrupt frame: ") + e.what(), /*send_error=*/true);
            }
            if (st == net::ScatterStatus::Data) {
                ++scattered;
                // The symbol view points into the backend's buffer — intern
                // it now; nothing of the view outlives this iteration.
                event::Event ev = data::make_quote(
                    vocab_, dv.ts, vocab_.schema->intern_subject(dv.symbol_view()),
                    dv.open, dv.close, dv.volume);
                SessionStatus status;
                if (sharded_) {
                    status = ingest_sharded(std::move(ev));
                } else {
                    status = ingest_store(std::move(ev));
                    ++appended;
                }
                if (status != SessionStatus::Open) {
                    // Pausing mid-view: the unread tail must survive until
                    // ResumeRead — stage it (the one place the bulk path
                    // still copies, and only under backpressure).
                    stage_tail(data, size, pos);
                    publish_ingest(appended);
                    flush_counters();
                    return status;
                }
                continue;
            }
            if (st == net::ScatterStatus::NeedMore) {
                stage_tail(data, size, pos);
                break;
            }
            // Control frame — decode it on the staged path below.
        }
        // Feed only what the staged frame needs: with a partial tail,
        // tail_need() names the exact completion bytes, so the reader drains
        // right at the frame boundary and the loop returns to scatter — a
        // split frame costs one staged frame, never the rest of the view. A
        // fresh control frame starts from its tag byte and converges the
        // same way; kStageChunk is only the can't-tell fallback.
        std::size_t chunk = reader_.empty() ? 1 : reader_.tail_need();
        if (chunk == 0) chunk = kStageChunk;
        chunk = std::min(size - pos, chunk);
        reader_.feed(data + pos, chunk);
        shard_->add(obs::Series{obs::sid::kIngestCopiedBytes}, chunk);
        pos += chunk;
        for (;;) {
            std::optional<net::SessionFrame> frame;
            try {
                frame = reader_.poll();
            } catch (const std::exception& e) {
                publish_ingest(appended);
                flush_counters();
                return fail(std::string("corrupt frame: ") + e.what(), /*send_error=*/true);
            }
            if (!frame) break;  // partial — feed the next chunk
            shard_->add(obs::Series{obs::sid::kIngestFramesStaged}, 1);
            // Control frames may close the store (BYE) or snapshot counters
            // (STATS): publish the scatter slots first so they observe them.
            publish_ingest(appended);
            const auto status = dispatch(std::move(*frame));
            if (status != SessionStatus::Open) {
                flush_counters();
                if (status == SessionStatus::Paused) stage_tail(data, size, pos);
                return status;
            }
            if (reader_.empty()) break;  // back to the scatter fast path
        }
    }
    publish_ingest(appended);
    flush_counters();
    return SessionStatus::Open;
}

SessionStatus ServerSession::dispatch(net::SessionFrame&& frame) {
    switch (state_) {
        case State::AwaitHello:
            if (auto* hello = std::get_if<net::HelloFrame>(&frame))
                return on_hello(std::move(*hello));
            if (auto* hello2 = std::get_if<net::Hello2Frame>(&frame))
                return on_hello2(std::move(*hello2));
            // A pure monitoring client may query server-wide stats without
            // ever subscribing a query (§12).
            if (std::get_if<net::StatsFrame>(&frame)) return on_stats();
            return fail("protocol error: expected HELLO", /*send_error=*/true);
        case State::Streaming:
            if (const auto* quote = std::get_if<net::WireQuote>(&frame)) {
                if (role_ == SessionRole::Subscriber)
                    return fail("protocol error: DATA on a subscriber session",
                                /*send_error=*/true);
                // Staged-path DATA (rare: a frame split across reads, or one
                // riding behind a control frame). Symbol interning stays on
                // the reactor thread (§8) either way: the engine only ever
                // sees interned ids. Accounting matches the scatter path.
                if (sharded_) return ingest_sharded(net::from_wire(*quote, vocab_));
                const auto status = ingest_store(net::from_wire(*quote, vocab_));
                std::size_t one = 1;
                publish_ingest(one);
                return status;
            }
            if (std::get_if<net::StatsFrame>(&frame)) return on_stats();
            if (std::get_if<net::ByeFrame>(&frame)) {
                if (role_ == SessionRole::Subscriber) {
                    // Early unsubscribe: the client no longer wants results.
                    // Latch the BYE (the engine's finish path must not send a
                    // second one), reply with what was sent, abandon the task.
                    if (!bye_sent_.exchange(true, std::memory_order_acq_rel)) {
                        if (egress_append(net::SessionFrame{net::ByeFrame{
                                results_sent_.load(std::memory_order_relaxed)}}) &&
                            !outcome_counted_.exchange(true, std::memory_order_acq_rel))
                            shard_->add(obs::Series{obs::sid::kSessionsCompleted}, 1);
                    }
                    abort_requested_.store(true, std::memory_order_release);
                    hooks_.notify_task(id_);
                    egress_try_flush();
                    state_ = State::Draining;
                    return SessionStatus::Open;  // keep watching: detect client death
                }
                close_ingestion(/*close_store=*/true);
                if (role_ == SessionRole::Publisher) {
                    // No engine task exists: the stream is closed for every
                    // subscriber; acknowledge the publisher with BYE{0} now.
                    egress_append(net::SessionFrame{net::ByeFrame{0}});
                    egress_try_flush();
                }
                state_ = State::Draining;
                return SessionStatus::Open;  // keep watching: detect client death
            }
            return fail("protocol error: unexpected frame while streaming",
                        /*send_error=*/true);
        case State::Draining:
            return fail("protocol error: frame after BYE", /*send_error=*/true);
        case State::Failed:
            return SessionStatus::Finished;
    }
    return SessionStatus::Finished;  // unreachable
}

SessionStatus ServerSession::ingest_store(event::Event&& ev) {
    // §14 scatter append: fill the store's next slot in place; the frontier
    // is published in batches by publish_ingest (the caller owns the cadence).
    event::EventStore& st = ingest_target();
    event::Event& slot = st.append_slot();
    ev.seq = slot.seq;
    slot = std::move(ev);
    if (role_ == SessionRole::Publisher) {
        // A published stream is unpaced (§15 honest limit): there is no
        // single `accepted_` to pace against — each subscriber reads at its
        // own frontier, and a lagging one must never stall the publisher or
        // its siblings. The store capacity bound (SPECTRE_REQUIRE in
        // append_slot) is the hard stop.
        return SessionStatus::Open;
    }
    stamp_arrival();
    const std::uint64_t in_flight = st.size() + st.pending_appends() -
                                    accepted_.load(std::memory_order_relaxed);
    if (in_flight >= limits_.ingest_queue_events) {
        // High watermark hit: stop reading this socket — TCP pushes back on
        // the client while the task catches up.
        shard_->add(obs::Series{obs::sid::kIngestPauses}, 1);
        return SessionStatus::Paused;
    }
    return SessionStatus::Open;
}

SessionStatus ServerSession::ingest_sharded(event::Event&& ev) {
    // §10: the reactor routes straight into the shard queues (the router
    // must see arrivals in global order, and this is the only thread that
    // does). A worker-side abort may close the input before the reactor
    // learns the session failed — the engine reports those trailing events
    // as dropped, and the session must not account for them: no arrival
    // stamp, no counters, no wakeup (the shard id of a dropped event is
    // meaningless).
    const auto info = sharded_->ingest(std::move(ev));
    if (info.dropped) return SessionStatus::Open;
    stamp_arrival();
    shard_->add(obs::Series{obs::sid::kEventsIngested}, 1);
    if (obs::enabled()) {
        shard_->observe(obs::Series{obs::sid::kLaneDepth}, info.queued);
        if (info.shard < lane_series_.size())
            shard_->set_peak(lane_series_[info.shard].depth_peak, info.queued);
        sample_lane_skew();
    }
    // §13: adaptivity decisions run on the reactor (= the feeder thread), so
    // route-table edits are synchronous with routing — no lock spans the
    // decision.
    if (controller_ && --reshard_countdown_ == 0) {
        reshard_countdown_ = limits_.reshard.decide_every_events;
        apply_reshard_decision();
    }
    if (shard_parked_input_[info.shard].exchange(false, std::memory_order_acq_rel))
        hooks_.notify_task(shard_task_id(id_, info.shard));
    if (info.queued >= limits_.ingest_queue_events) {
        shard_->add(obs::Series{obs::sid::kIngestPauses}, 1);
        return SessionStatus::Paused;
    }
    return SessionStatus::Open;
}

void ServerSession::publish_ingest(std::size_t& appended) {
    if (appended == 0) return;
    ingest_target().publish_appends();
    shard_->add(obs::Series{obs::sid::kEventsIngested}, appended);
    appended = 0;
    if (role_ == SessionRole::Publisher) {
        // §15 fan-out: one frontier publish wakes every parked subscriber
        // engine. Each wake passes the §9 barrier on that subscriber's own
        // ingest mutex (see notify_shared_ingest) — per-subscriber, because
        // each parks independently at its own read frontier.
        for (ServerSession* sub : hub_entry_->subscribers) sub->notify_shared_ingest();
        return;
    }
    // §9 handshake barrier: the task publishes parked_on_input_ and then
    // re-checks the frontier under this mutex; we publish the frontier and
    // then exchange the flag, also passing through the mutex. The critical
    // sections are totally ordered, so either the task's re-check sees the
    // new frontier (it doesn't park) or our exchange sees the parked flag
    // (we wake it) — a plain store-load pair would guarantee neither.
    { const std::lock_guard<std::mutex> lock(ingest_mutex_); }
    if (parked_on_input_.exchange(false, std::memory_order_acq_rel))
        hooks_.notify_task(id_);
}

void ServerSession::notify_shared_ingest() {
    // §9 barrier on THIS subscriber's mutex: the publisher published the
    // shared frontier before calling here; passing through the mutex orders
    // that publish against this task's park re-check (publish_ingest's
    // argument, verbatim — the producer is just another session now).
    { const std::lock_guard<std::mutex> lock(ingest_mutex_); }
    if (parked_on_input_.exchange(false, std::memory_order_acq_rel))
        hooks_.notify_task(id_);
}

SessionStatus ServerSession::on_hello(net::HelloFrame&& hello,
                                      const net::Hello2Frame* echo) {
    if (hello.instances > static_cast<std::uint32_t>(limits_.max_instances))
        return fail("HELLO rejected: instances exceed server limit",
                    /*send_error=*/true);
    if (hello.shards > static_cast<std::uint32_t>(limits_.max_shards))
        return fail("HELLO rejected: shards exceed server limit", /*send_error=*/true);
    try {
        vocab_ = data::StockVocab::create(std::make_shared<event::Schema>());
        auto query = query::parse_query(hello.query, vocab_.schema);
        // HELLO's partition key (§10) overrides/supplies the query text's
        // PARTITION BY; sharding without any partition key is meaningless.
        if (!hello.partition_by.empty())
            query.partition = query::resolve_partition_key(hello.partition_by,
                                                           *vocab_.schema);
        if (hello.shards > 1 && !query.partition.active())
            throw std::invalid_argument("shards > 1 needs a partition key");
        cq_ = std::make_shared<const detect::CompiledQuery>(
            detect::CompiledQuery::compile(std::move(query)));
    } catch (const std::exception& e) {
        return fail(std::string("HELLO rejected: ") + e.what(), /*send_error=*/true);
    }
    instances_ = hello.instances;

    event::ResultSink sink = [this](event::ComplexEvent&& ce) {
        const auto prev = results_sent_.fetch_add(1, std::memory_order_relaxed);
        observe_result_latency(ce, prev);
        if (egress_append(net::SessionFrame{net::to_result_frame(ce)}))
            shard_->add(obs::Series{obs::sid::kResultsEmitted}, 1);
    };
    if (cq_->query().partition.active()) {
        // Partitioned query (§10): per-key lanes behind a ShardedEngine, one
        // cooperatively-scheduled pool task per shard. The session scales
        // across the pool's workers without owning a single thread.
        shard::ShardedConfig cfg;
        cfg.shards = std::max<std::uint32_t>(hello.shards, 1);
        cfg.instances = instances_;
        cfg.batch_events = limits_.batch_events;
        // Elastic partitioning (§13): with an active policy the engine gets
        // slot capacity up to the server's shard cap so the controller can
        // grow the active width mid-stream; off, capacity == shards (the
        // static pre-§13 layout, no extra state).
        const bool elastic = limits_.reshard.decide_every_events > 0;
        if (elastic)
            cfg.max_shards = static_cast<std::uint32_t>(limits_.max_shards);
        sharded_ = std::make_unique<shard::ShardedEngine>(cq_.get(), cfg,
                                                          std::move(sink));
        if (obs::enabled()) sharded_->bind_obs(shard_.get());
        const std::uint32_t slots = sharded_->shards();  // capacity, >= cfg.shards
        tasks_expected_.store(cfg.shards, std::memory_order_relaxed);
        // Per-slot state is allocated at full capacity up front: growth must
        // never reallocate arrays that worker threads are reading.
        shard_parked_input_ = std::make_unique<std::atomic<bool>[]>(slots);
        shard_parked_egress_ = std::make_unique<std::atomic<bool>[]>(slots);
        shard_egress_stall_ = std::make_unique<std::uint64_t[]>(slots);
        // Per-shard-index lane series (§12): the server pre-registered these
        // names before any session shard existed, so add() only resolves ids.
        lane_series_.reserve(slots);
        for (std::uint32_t s = 0; s < slots; ++s) {
            const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
            LaneSeries ls;
            ls.depth_peak = registry_->add("lane_depth_peak" + label, obs::Kind::PeakGauge);
            ls.steps = registry_->add("lane_sched_steps" + label, obs::Kind::Counter);
            ls.batch_events =
                registry_->add("lane_sched_batch_events" + label, obs::Kind::Counter);
            ls.wasted =
                registry_->add("lane_sched_wasted_events" + label, obs::Kind::Counter);
            lane_series_.push_back(ls);
        }
        for (std::uint32_t s = 0; s < slots; ++s) {
            shard_parked_input_[s].store(false, std::memory_order_relaxed);
            shard_parked_egress_[s].store(false, std::memory_order_relaxed);
            shard_egress_stall_[s] = 0;
            auto task = std::make_unique<ShardSubTask>();
            task->session = this;
            task->shard = s;
            shard_tasks_.push_back(std::move(task));
        }
        // Lane handoffs are deposited by source shard tasks on worker
        // threads; the waker follows the §9 exchange-before-notify protocol.
        // Set before any task can run. A waker for a slot whose task is not
        // registered yet is a harmless no-op notify; the task's first
        // scheduled quantum installs the mailbox.
        sharded_->set_shard_waker([this](std::uint32_t s) {
            if (shard_parked_input_[s].exchange(false, std::memory_order_acq_rel))
                hooks_.notify_task(shard_task_id(id_, s));
        });
        if (elastic && slots > 1 && obs::enabled()) {
            std::vector<obs::Series> peaks;
            peaks.reserve(slots);
            for (const auto& ls : lane_series_) peaks.push_back(ls.depth_peak);
            controller_ = std::make_unique<shard::ReshardController>(
                shard_.get(), std::move(peaks), limits_.reshard);
            reshard_countdown_ = limits_.reshard.decide_every_events;
        }
        state_ = State::Streaming;
        // The capability echo (if this was a v2 HELLO) must be buffered
        // before the first task can run — RESULT bytes follow it.
        if (echo) egress_append(net::SessionFrame{*echo});
        task_registered_ = true;
        for (std::uint32_t s = 0; s < cfg.shards; ++s)
            hooks_.register_task(shard_task_id(id_, s), shard_tasks_[s].get());
        return SessionStatus::Open;
    }
    if (instances_ == 0) {
        // k = 0 subscribes the sequential reference engine — the ground
        // truth the parallel runtime must match byte-for-byte.
        stepper_ = std::make_unique<sequential::SeqStepper>(cq_.get(), &store_,
                                                            std::move(sink));
    } else {
        core::RuntimeConfig cfg;
        cfg.splitter.instances = static_cast<int>(instances_);
        cfg.batch_events = limits_.batch_events;
        // Fairness on the shared pool (DESIGN.md §11): one step advances at
        // most one ingest batch worth of window positions, so a speculative
        // session's quantum stays comparable to a sequential one's.
        cfg.quantum_budget = limits_.batch_events;
        runtime_ = std::make_unique<core::SpectreRuntime>(
            &store_, cq_.get(), cfg,
            std::make_unique<model::MarkovModel>(cq_->min_length(),
                                                 model::MarkovParams{}));
        runtime_->set_result_sink(std::move(sink));
        if (obs::enabled()) runtime_->bind_obs(shard_.get());
    }
    state_ = State::Streaming;
    if (echo) egress_append(net::SessionFrame{*echo});
    task_registered_ = true;
    tasks_expected_.store(1, std::memory_order_relaxed);
    hooks_.register_task(id_, this);  // schedules the first quantum
    return SessionStatus::Open;
}

// --- HELLO v2 (§15) ---------------------------------------------------------

namespace {

// Numeric HELLO v2 values are strict decimal u32 — anything else rejects the
// handshake (unknown KEYS are ignored; malformed VALUES for known keys are
// errors, per the append-only versioning rule in DESIGN.md §15).
bool parse_u32(std::string_view s, std::uint32_t& out) {
    if (s.empty() || s.size() > 10) return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (v > std::numeric_limits<std::uint32_t>::max()) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

}  // namespace

void ServerSession::send_hello2_echo(std::string_view role, const std::string& stream) {
    net::Hello2Frame echo;
    echo.set("proto", "2");
    echo.set("role", std::string(role));
    if (!stream.empty()) echo.set("stream", stream);
    echo.set("max_instances", std::to_string(limits_.max_instances));
    echo.set("max_shards", std::to_string(limits_.max_shards));
    egress_append(net::SessionFrame{std::move(echo)});
    egress_try_flush();
}

SessionStatus ServerSession::on_hello2(net::Hello2Frame&& hello) {
    const std::string_view role = hello.has("role") ? hello.get("role") : "standalone";
    const std::string stream(hello.get("stream"));
    if (role == "publish") return on_hello2_publish(hello, stream);
    if (role == "subscribe") return on_hello2_subscribe(std::move(hello), stream);
    if (role != "standalone")
        return fail("HELLO rejected: unknown role '" + std::string(role) + "'",
                    /*send_error=*/true);
    // Compat shim: a v2 standalone HELLO is the v1 handshake with an echo —
    // same keys, same engine selection, byte-identical RESULT stream.
    net::HelloFrame v1;
    v1.query = std::string(hello.get("query"));
    v1.partition_by = std::string(hello.get("partition_by"));
    std::uint32_t instances = 0;
    std::uint32_t shards = 0;
    if (hello.has("instances") && !parse_u32(hello.get("instances"), instances))
        return fail("HELLO rejected: bad instances value", /*send_error=*/true);
    if (hello.has("shards") && !parse_u32(hello.get("shards"), shards))
        return fail("HELLO rejected: bad shards value", /*send_error=*/true);
    v1.instances = instances;
    v1.shards = shards;
    net::Hello2Frame echo;
    echo.set("proto", "2");
    echo.set("role", "standalone");
    echo.set("max_instances", std::to_string(limits_.max_instances));
    echo.set("max_shards", std::to_string(limits_.max_shards));
    return on_hello(std::move(v1), &echo);
}

SessionStatus ServerSession::on_hello2_publish(const net::Hello2Frame& hello,
                                               const std::string& stream) {
    if (!hub_)
        return fail("HELLO rejected: this server has no stream hub", /*send_error=*/true);
    if (stream.empty())
        return fail("HELLO rejected: publish needs stream=<name>", /*send_error=*/true);
    if (hello.has("query"))
        return fail("HELLO rejected: publisher sessions carry no query",
                    /*send_error=*/true);
    auto entry = hub_->publish(stream, id_);
    if (!entry)
        return fail("HELLO rejected: stream '" + stream + "' already published",
                    /*send_error=*/true);
    role_ = SessionRole::Publisher;
    hub_entry_ = std::move(entry);
    // The stream's vocab interns DATA symbols on this reactor thread (§8's
    // interning rule is unchanged — one thread, now shared by N readers that
    // only ever see interned ids).
    vocab_ = hub_entry_->vocab;
    state_ = State::Streaming;
    send_hello2_echo("publish", stream);
    // No engine, no task: the reaper gates on input_done + egress drained.
    return SessionStatus::Open;
}

SessionStatus ServerSession::on_hello2_subscribe(net::Hello2Frame&& hello,
                                                 const std::string& stream) {
    if (!hub_)
        return fail("HELLO rejected: this server has no stream hub", /*send_error=*/true);
    if (stream.empty())
        return fail("HELLO rejected: subscribe needs stream=<name>", /*send_error=*/true);
    std::uint32_t instances = 0;
    if (hello.has("instances") && !parse_u32(hello.get("instances"), instances))
        return fail("HELLO rejected: bad instances value", /*send_error=*/true);
    if (instances > static_cast<std::uint32_t>(limits_.max_instances))
        return fail("HELLO rejected: instances exceed server limit", /*send_error=*/true);
    std::uint32_t shards = 0;
    if (hello.has("shards") && !parse_u32(hello.get("shards"), shards))
        return fail("HELLO rejected: bad shards value", /*send_error=*/true);
    if (shards > 0 || hello.has("partition_by"))
        // §15 honest limit: partitioned/sharded engines re-materialize the
        // stream into per-key lanes — that defeats the shared-store point.
        // Run those as standalone sessions instead.
        return fail("HELLO rejected: subscriber sessions cannot shard or partition",
                    /*send_error=*/true);
    auto entry = hub_->find(stream);
    if (!entry)
        return fail("HELLO rejected: unknown stream '" + stream + "'",
                    /*send_error=*/true);
    if (entry->failed)
        return fail("HELLO rejected: " + entry->fail_reason, /*send_error=*/true);
    const auto cursor = entry->pins.attach();
    if (cursor == event::ChunkPins::kInvalidCursor)
        return fail("HELLO rejected: stream '" + stream + "' history already reclaimed",
                    /*send_error=*/true);
    // Parse against the STREAM's schema: the query's interned slots/types
    // must resolve against the vocab the publisher's events were interned
    // with. Reactor thread, so interning query atoms is §8-safe.
    vocab_ = entry->vocab;
    try {
        auto query = query::parse_query(std::string(hello.get("query")), vocab_.schema);
        if (query.partition.active())
            throw std::invalid_argument(
                "subscriber queries cannot use PARTITION BY (standalone sessions can)");
        if (cache_) {
            const auto before = cache_->stats();
            cq_ = cache_->get(std::move(query));
            const auto after = cache_->stats();
            shard_->add(obs::Series{obs::sid::kCompileCacheHits}, after.hits - before.hits);
            shard_->add(obs::Series{obs::sid::kCompileCacheMisses},
                        after.misses - before.misses);
        } else {
            cq_ = std::make_shared<const detect::CompiledQuery>(
                detect::CompiledQuery::compile(std::move(query)));
        }
    } catch (const std::exception& e) {
        entry->pins.detach(cursor);
        return fail(std::string("HELLO rejected: ") + e.what(), /*send_error=*/true);
    }
    role_ = SessionRole::Subscriber;
    hub_entry_ = entry;
    pin_cursor_ = cursor;
    instances_ = instances;
    hub_->subscribe(entry, this);

    event::ResultSink sink = [this](event::ComplexEvent&& ce) {
        const auto prev = results_sent_.fetch_add(1, std::memory_order_relaxed);
        observe_result_latency(ce, prev);
        if (egress_append(net::SessionFrame{net::to_result_frame(ce)}))
            shard_->add(obs::Series{obs::sid::kResultsEmitted}, 1);
    };
    if (instances_ == 0) {
        stepper_ = std::make_unique<sequential::SeqStepper>(cq_.get(), &hub_entry_->store,
                                                            std::move(sink));
    } else {
        core::RuntimeConfig cfg;
        cfg.splitter.instances = static_cast<int>(instances_);
        cfg.batch_events = limits_.batch_events;
        cfg.quantum_budget = limits_.batch_events;
        runtime_ = std::make_unique<core::SpectreRuntime>(
            &hub_entry_->store, cq_.get(), cfg,
            std::make_unique<model::MarkovModel>(cq_->min_length(),
                                                 model::MarkovParams{}));
        runtime_->set_result_sink(std::move(sink));
        if (obs::enabled()) runtime_->bind_obs(shard_.get());
    }
    state_ = State::Streaming;
    send_hello2_echo("subscribe", stream);
    task_registered_ = true;
    tasks_expected_.store(1, std::memory_order_relaxed);
    hooks_.register_task(id_, this);  // schedules the first quantum
    return SessionStatus::Open;
}

SessionStatus ServerSession::on_stats() {
    // §12: one flat JSON object per scope — the server-wide aggregate over
    // every live shard plus the retained block, and this session's own shard
    // (live counters and latency histograms). The reply rides the ordinary
    // egress stream: a stats reply behind a full buffer waits like a RESULT.
    std::string body = "{\"server\":";
    body += obs::Registry::json(registry_->snapshot());
    body += ",\"session\":";
    body += obs::Registry::json(registry_->snapshot_of(*shard_));
    body += '}';
    egress_append(net::SessionFrame{net::StatsFrame{std::move(body)}});
    egress_try_flush();
    return SessionStatus::Open;
}

SessionStatus ServerSession::on_end_of_input() {
    switch (state_) {
        case State::AwaitHello:
            // Client left before subscribing; nothing ran, nothing to tear down.
            return SessionStatus::Finished;
        case State::Streaming:
            if (reader_.mid_frame())
                // Death mid-frame: the truncated final event must surface as
                // a stream error, not be silently dropped. Scatter keeps
                // this observable: a partial DATA tail is always staged.
                return fail("connection closed mid-frame (truncated event)",
                            /*send_error=*/true);
            // Clean EOF at a frame boundary is an implicit BYE — clients may
            // simply shutdown(SHUT_WR) and keep reading results.
            if (role_ == SessionRole::Subscriber) {
                // The subscriber's input side was only ever the HELLO; its
                // engine keeps running until the published stream ends.
                state_ = State::Draining;
                return SessionStatus::Finished;
            }
            if (role_ == SessionRole::Publisher)
                // NOT an implicit BYE: N subscribers cannot tell a truncated
                // stream from a complete one, so only an explicit BYE closes
                // a published stream cleanly. The hub detach sees the store
                // un-closed and fails every attached subscriber.
                return fail("publisher disconnected without BYE", /*send_error=*/false);
            close_ingestion(/*close_store=*/true);
            state_ = State::Draining;
            return SessionStatus::Finished;
        case State::Draining:
        case State::Failed:
            return SessionStatus::Finished;
    }
    return SessionStatus::Finished;  // unreachable
}

SessionStatus ServerSession::fail(const std::string& message, bool send_error) {
    if (state_ == State::Failed) return SessionStatus::Finished;
    count_failed_once();
    if (send_error) {
        // Best effort: buffer the ERROR frame and take one non-blocking
        // flush pass. A client that is not reading loses it but still sees
        // the disconnect.
        egress_append(net::SessionFrame{net::ErrorFrame{message}});
        egress_try_flush();
    }
    // One teardown sequence for both failure and shutdown (poison, close
    // ingestion, abort + wake the task, shut the socket down).
    abort();
    state_ = State::Failed;
    input_done_ = true;
    return SessionStatus::Finished;
}

void ServerSession::close_ingestion(bool close_store) {
    {
        const std::lock_guard<std::mutex> lock(ingest_mutex_);
        if (ingest_closed_) return;
        ingest_closed_ = true;
    }
    if (sharded_) {
        // §10: publish end-of-stream, then wake every parked shard for its
        // EOS drain (a task parking concurrently re-checks shard_idle, which
        // reads the closed flag — no lost wakeup either way).
        sharded_->close_input();
        const auto span = tasks_expected_.load(std::memory_order_acquire);
        for (std::uint32_t s = 0; s < span; ++s)
            if (shard_parked_input_[s].exchange(false, std::memory_order_acq_rel))
                hooks_.notify_task(shard_task_id(id_, s));
        return;
    }
    if (close_store) {
        // Reactor dispatch paths only (BYE / clean EOF): the sole appender
        // closes its own store — the stepper's completion check needs the
        // final length. Abort paths leave it open (header contract).
        event::EventStore& st = ingest_target();
        st.publish_appends();
        st.close();
        if (role_ == SessionRole::Publisher) {
            // End-of-stream fan-out (§15): every subscriber engine must
            // observe closed() to finish. Each wake passes that subscriber's
            // §9 barrier — a concurrently-parking task re-checks closed()
            // under its own mutex, so the wakeup is never lost.
            for (ServerSession* sub : hub_entry_->subscribers)
                sub->notify_shared_ingest();
            return;
        }
    }
    if (parked_on_input_.exchange(false, std::memory_order_acq_rel))
        hooks_.notify_task(id_);
}

void ServerSession::abort() {
    egress_poison();
    close_ingestion(/*close_store=*/false);
    abort_requested_.store(true, std::memory_order_release);
    ::shutdown(fd_, SHUT_RDWR);
    if (task_registered_) {
        if (sharded_) {
            const auto span = tasks_expected_.load(std::memory_order_acquire);
            for (std::uint32_t s = 0; s < span; ++s)
                hooks_.notify_task(shard_task_id(id_, s));
        }
        else
            hooks_.notify_task(id_);
    }
}

// --- shared ingest plane (§15) ----------------------------------------------

std::vector<ServerSession*> ServerSession::hub_detach() {
    std::vector<ServerSession*> to_fail;
    if (!hub_entry_) return to_fail;
    // Move the entry out first: the detach must be idempotent (destroy paths
    // and the destructor both call it), and ingest_target() must fall back to
    // the private store the moment the session leaves the plane.
    StreamHub::EntryPtr entry = std::move(hub_entry_);
    hub_entry_.reset();
    if (role_ == SessionRole::Subscriber) {
        const std::size_t freed = entry->pins.detach(pin_cursor_);
        if (freed > 0) shard_->add(obs::Series{obs::sid::kHubChunksReclaimed}, freed);
        if (hub_) hub_->unsubscribe(entry, this);
    } else if (role_ == SessionRole::Publisher) {
        if (hub_) to_fail = hub_->publisher_gone(entry);
        // The failure reason lives on the entry; each subscriber still holds
        // its own reference, so fail_publisher_gone can read it after we drop
        // ours here.
    }
    return to_fail;
}

void ServerSession::fail_publisher_gone() {
    const std::string reason = hub_entry_ && hub_entry_->failed
                                   ? hub_entry_->fail_reason
                                   : std::string("published stream lost");
    fail(reason, /*send_error=*/true);
}

void ServerSession::count_failed_once() {
    // A session whose engine already claimed the completed outcome must not
    // also count failed, and reactor-side vs worker-side failure paths must
    // not double-count — the single outcome latch settles both races.
    if (!outcome_counted_.exchange(true, std::memory_order_acq_rel))
        shard_->add(obs::Series{obs::sid::kSessionsFailed}, 1);
}

// --- arrival clock (§12) ----------------------------------------------------

void ServerSession::stamp_arrival() {
    const std::uint64_t now = obs::now_ns();
    if (now == 0) return;  // obs disabled
    const std::lock_guard<std::mutex> lock(arrival_mutex_);
    if (first_data_ns_ == 0) first_data_ns_ = now;
    arrival_ns_.push_back(now);
    if (arrival_ns_.size() > kArrivalCap) {
        arrival_ns_.pop_front();
        ++arrival_base_;
    }
}

void ServerSession::observe_result_latency(const event::ComplexEvent& ce,
                                           std::uint64_t prev_results) {
    const std::uint64_t now = obs::now_ns();
    if (now == 0 || ce.constituents.empty()) return;
    std::uint64_t t0 = 0;
    std::uint64_t first = 0;
    {
        const std::lock_guard<std::mutex> lock(arrival_mutex_);
        // The last constituent is the window's max seq (constituents are
        // ascending), i.e. the arrival that made this result completable.
        const std::uint64_t seq = ce.constituents.back();
        if (seq >= arrival_base_ && seq - arrival_base_ < arrival_ns_.size())
            t0 = arrival_ns_[seq - arrival_base_];
        first = first_data_ns_;
    }
    if (t0 != 0 && now >= t0)
        shard_->observe(obs::Series{obs::sid::kResultLatencyNs}, now - t0);
    if (prev_results == 0 && first != 0 && now >= first)
        shard_->observe(obs::Series{obs::sid::kFirstResultLatencyNs}, now - first);
}

void ServerSession::sample_lane_skew() {
    if (skew_countdown_ > 0) {
        --skew_countdown_;
        return;
    }
    skew_countdown_ = kSkewSampleEvery - 1;
    std::size_t mn = ~std::size_t{0};
    std::size_t mx = 0;
    const auto span = tasks_expected_.load(std::memory_order_relaxed);
    for (std::uint32_t s = 0; s < span; ++s) {
        const std::size_t d = sharded_->shard_queue_depth(s);
        mn = std::min(mn, d);
        mx = std::max(mx, d);
    }
    if (mx >= mn) shard_->observe(obs::Series{obs::sid::kLaneSkew}, mx - mn);
}

void ServerSession::note_stall_end(std::uint64_t& stamp) {
    if (stamp == 0) return;
    const std::uint64_t now = obs::now_ns();
    if (now > stamp)
        shard_->observe(obs::Series{obs::sid::kEgressStallNs}, now - stamp);
    stamp = 0;
}

// --- ingest pacing (§14) ----------------------------------------------------

std::size_t ServerSession::accept_ingest() {
    const std::uint64_t frontier = ingest_target().size();
    const std::uint64_t accepted = accepted_.load(std::memory_order_relaxed);
    const std::uint64_t n =
        std::min<std::uint64_t>(frontier - accepted, limits_.batch_events);
    if (n > 0) accepted_.store(accepted + n, std::memory_order_release);
    // Below the low watermark: hand the reactor its read interest back
    // (exactly once per pause — the exchange is the dedup).
    if (frontier - (accepted + n) < limits_.ingest_queue_events / 2 &&
        read_paused_.exchange(false, std::memory_order_acq_rel))
        hooks_.post(id_, SessionCmd::ResumeRead);
    return static_cast<std::size_t>(n);
}

bool ServerSession::ingest_empty_and_open() {
    const event::EventStore& st = ingest_target();
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    // A subscriber's ingest_closed_ never flips — the publisher ends its
    // stream by closing the shared store instead, so the closed() check is
    // what lets a subscriber refuse to park once end-of-stream is published
    // (the close path passes this same mutex via notify_shared_ingest).
    return st.size() == accepted_.load(std::memory_order_relaxed) && !ingest_closed_ &&
           !st.closed();
}

bool ServerSession::ingest_above_low() const {
    if (sharded_) return sharded_->queued_total() >= limits_.ingest_queue_events / 2;
    return ingest_target().size() - accepted_.load(std::memory_order_acquire) >=
           limits_.ingest_queue_events / 2;
}

// --- egress ring (§14) ------------------------------------------------------

void ServerSession::account_egress(std::size_t now_bytes) {
    // Gauge: this session's current backlog (the server sums the gauges of
    // live sessions). Peak: this session's high-water mark (the server takes
    // the max over sessions — folded on retire, so it survives the session).
    shard_->set(obs::Series{obs::sid::kEgressBufferedBytes}, now_bytes);
    shard_->set_peak(obs::Series{obs::sid::kEgressPeakBytes}, now_bytes);
}

bool ServerSession::egress_append(const net::SessionFrame& frame) {
    if (egress_dead_.load(std::memory_order_acquire)) return false;
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    if (egress_dead_.load(std::memory_order_relaxed)) return false;
    // §14: encode_frame writes directly into the ring's tail block — frame
    // bytes are produced exactly once, already in wire order.
    egress_.append(frame);
    account_egress(egress_.bytes());
    return true;
}

bool ServerSession::egress_try_flush() {
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    if (egress_dead_.load(std::memory_order_relaxed)) return false;
    if (!egress_.empty()) {
        const auto r = egress_.flush([this](const struct iovec* iov, int iovcnt) {
            shard_->add(obs::Series{obs::sid::kEgressWritevs}, 1);
            return sendv_(iov, iovcnt);
        });
        if (r.sent > 0)
            shard_->add(obs::Series{obs::sid::kEgressBytesSent}, r.sent);
        if (r.status == net::EgressRing::FlushStatus::Error) {
            // Transport error (EPIPE, ECONNRESET, …): the peer is
            // unreachable — poison the path, drop what it will never read,
            // and abort the engine so the task stops burning pool quanta
            // computing results nobody can receive. The outcome latch
            // coordinates with the reactor's fail() so the session is
            // counted failed exactly once (and never after its BYE).
            account_egress(0);
            egress_.clear();
            egress_dead_.store(true, std::memory_order_release);
            abort_requested_.store(true, std::memory_order_release);
            count_failed_once();
            return false;
        }
    }
    account_egress(egress_.bytes());
    return true;
}

void ServerSession::egress_poison() {
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    account_egress(0);
    egress_.clear();
    egress_dead_.store(true, std::memory_order_release);
}

bool ServerSession::egress_has_credit() const {
    if (egress_dead_.load(std::memory_order_acquire)) return true;  // sink discards
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    return egress_.bytes() <= limits_.egress_buffer_bytes;
}

bool ServerSession::egress_idle() const {
    if (egress_dead_.load(std::memory_order_acquire)) return true;
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    return egress_.empty();
}

bool ServerSession::egress_pending() const {
    if (egress_dead_.load(std::memory_order_acquire)) return false;
    const std::lock_guard<std::mutex> lock(egress_mutex_);
    return !egress_.empty();
}

bool ServerSession::flush_egress() {
    const bool ok = egress_try_flush();
    if (!ok) {
        // The write side died. If the session is still nominally healthy,
        // fail it (poisons, aborts the task); a Failed session just reports.
        if (state_ != State::Failed) fail("result write failed", /*send_error=*/false);
        return false;
    }
    if (egress_has_credit()) {
        if (sharded_) {
            const auto span = tasks_expected_.load(std::memory_order_acquire);
            for (std::uint32_t s = 0; s < span; ++s)
                if (shard_parked_egress_[s].exchange(false, std::memory_order_acq_rel))
                    hooks_.notify_task(shard_task_id(id_, s));
        } else if (parked_on_egress_.exchange(false, std::memory_order_acq_rel)) {
            hooks_.notify_task(id_);
        }
    }
    return true;
}

void ServerSession::request_watch_write() {
    if (!egress_pending()) return;
    if (!watch_write_requested_.exchange(true, std::memory_order_acq_rel))
        hooks_.post(id_, SessionCmd::WatchWrite);
}

// --- pool worker side -------------------------------------------------------

EngineTask::Quantum ServerSession::run_quantum() {
    if (abort_requested_.load(std::memory_order_acquire)) {
        // Dropped mid-flight (failure or server stop): abandon the engine.
        // Cooperative stepping makes this trivial — no thread is inside it.
        return Quantum::Done;
    }
    try {
        note_stall_end(egress_stall_ns_);
        for (std::size_t s = 0; s < limits_.quantum_steps; ++s) {
            if (abort_requested_.load(std::memory_order_acquire)) return Quantum::Done;
            // Egress credit gate (§9): a slow result reader parks this
            // session, never a worker.
            if (!egress_has_credit()) {
                egress_try_flush();  // the socket may have drained meanwhile
                if (!egress_has_credit()) {
                    parked_on_egress_.store(true, std::memory_order_release);
                    if (egress_has_credit()) {  // flushed concurrently — race lost
                        parked_on_egress_.store(false, std::memory_order_relaxed);
                    } else {
                        shard_->add(obs::Series{obs::sid::kParksEgress}, 1);
                        egress_stall_ns_ = obs::now_ns();
                        request_watch_write();
                        return Quantum::Parked;
                    }
                }
            }
            const std::size_t pulled = accept_ingest();
            bool done = false;
            bool quiescent = false;  // no further progress at this frontier
            if (stepper_) {
                const bool more = stepper_->drain(limits_.quantum_windows);
                done = stepper_->finished();
                quiescent = !more;
            } else {
                const auto p = runtime_->step();
                done = p.done;
                // step() reports quiescence explicitly: the scheduling loop
                // reached a fixed point for the current frontier. With fresh
                // appends the windows may not be discovered yet, so only an
                // empty accept counts toward parking.
                quiescent = pulled == 0 && p.quiescent;
            }
            if (done) return finish_engine();
            if (quiescent) {
                // Park on input starvation. Publish intent first, then
                // re-check under the ingest mutex: a reactor publish between
                // the check and the park flips the flag and re-queues us
                // (no lost wakeup — see publish_ingest).
                parked_on_input_.store(true, std::memory_order_release);
                if (ingest_empty_and_open()) {
                    shard_->add(obs::Series{obs::sid::kParksInput}, 1);
                    egress_try_flush();
                    request_watch_write();
                    return Quantum::Parked;
                }
                parked_on_input_.store(false, std::memory_order_relaxed);
            }
        }
    } catch (const std::exception& e) {
        // Engine failure (e.g. a pathological query blowing an internal
        // limit) fails this session only.
        return engine_failed(e.what());
    }
    // Quantum exhausted with work left: yield the worker, rejoin the queue.
    egress_try_flush();
    request_watch_write();
    return Quantum::MoreWork;
}

void ServerSession::flush_sched_stats() {
    // Safe call sites only (header contract): the worker owning the final
    // quantum, the BYE-winning shard task after all_finished, or the
    // destructor — never while a sibling shard task may be stepping a lane.
    if ((!runtime_ && !sharded_) ||
        sched_flushed_.exchange(true, std::memory_order_acq_rel))
        return;
    core::SchedStats s;
    core::SplitterMetrics m;
    if (runtime_) {
        s = runtime_->sched_stats();
        m = runtime_->splitter_metrics();
    } else {
        // Sharded session (§10/§12): merge every shard's speculative lanes —
        // these per-lane stats used to be dropped on the floor — and publish
        // the per-shard-index breakdown on the bounded lane series.
        s = sharded_->sched_stats();
        m = sharded_->splitter_metrics();
        const auto span = tasks_expected_.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < span && i < lane_series_.size(); ++i) {
            const core::SchedStats ss = sharded_->shard_sched_stats(i);
            shard_->add(lane_series_[i].steps, ss.steps);
            shard_->add(lane_series_[i].batch_events, ss.batch_events);
            shard_->add(lane_series_[i].wasted, ss.speculation_wasted_events);
        }
        // Elastic partitioning (§13): publish the migration ledger. Safe
        // here for the same reason the per-shard stats are: the stream is
        // closed, no wave can still be in flight.
        const auto mig = sharded_->migration_stats();
        shard_->add(obs::Series{obs::sid::kLaneMigrations}, mig.keys_moved);
        shard_->add(obs::Series{obs::sid::kReshards}, mig.reshards);
    }
    shard_->add(obs::Series{obs::sid::kSchedSessions}, 1);
    shard_->add(obs::Series{obs::sid::kSchedSteps}, s.steps);
    shard_->add(obs::Series{obs::sid::kSchedCycles}, s.cycles);
    shard_->add(obs::Series{obs::sid::kSchedCyclesSkipped}, s.cycles_skipped);
    shard_->add(obs::Series{obs::sid::kSchedBatches}, s.batches);
    shard_->add(obs::Series{obs::sid::kSchedBatchEvents}, s.batch_events);
    shard_->add(obs::Series{obs::sid::kSchedInstancesRetired}, s.instances_retired);
    shard_->add(obs::Series{obs::sid::kSchedInstancesCancelled}, s.instances_cancelled);
    shard_->add(obs::Series{obs::sid::kSchedWastedEvents}, s.speculation_wasted_events);
    shard_->add(obs::Series{obs::sid::kSchedReadyP50Milli},
                static_cast<std::uint64_t>(s.ready_depth_p50 * 1000.0));
    shard_->set_peak(obs::Series{obs::sid::kSchedReadyDepthMax}, s.ready_depth_max);
    shard_->add(obs::Series{obs::sid::kSplitterCycles}, m.cycles);
    shard_->add(obs::Series{obs::sid::kWindowsOpened}, m.windows_opened);
    shard_->add(obs::Series{obs::sid::kWindowsRetired}, m.windows_retired);
    shard_->add(obs::Series{obs::sid::kGroupsCreated}, m.groups_created);
    shard_->add(obs::Series{obs::sid::kGroupsCompleted}, m.groups_completed);
    shard_->add(obs::Series{obs::sid::kGroupsAbandoned}, m.groups_abandoned);
    shard_->add(obs::Series{obs::sid::kRollbacks}, m.rollbacks);
    shard_->add(obs::Series{obs::sid::kLateValidations}, m.late_validations);
    shard_->set_peak(obs::Series{obs::sid::kMaxTreeVersions}, m.max_tree_versions);
    shard_->add(obs::Series{obs::sid::kVersionsDropped}, m.versions_dropped);
    shard_->add(obs::Series{obs::sid::kCopiesCloned}, m.copies_cloned);
    shard_->add(obs::Series{obs::sid::kCopiesFresh}, m.copies_fresh);
    shard_->add(obs::Series{obs::sid::kUpdatesApplied}, m.updates_applied);
    shard_->add(obs::Series{obs::sid::kStatsSamples}, m.stats_samples);
    shard_->add(obs::Series{obs::sid::kComplexEvents}, m.complex_events);
}

EngineTask::Quantum ServerSession::finish_engine() {
    flush_sched_stats();
    if (role_ == SessionRole::Subscriber && hub_entry_) {
        // Engine done: this reader will never address the stream again —
        // raise its pin to the frontier so chunks the last laggard was
        // holding can be reclaimed (§15). Completion-time granularity is an
        // honest limit: the engines don't expose a mid-stream low watermark,
        // so the memory win is one shared store vs N copies, not early
        // chunk turnover within a run.
        const std::size_t freed =
            hub_entry_->pins.advance(pin_cursor_, hub_entry_->store.size());
        if (freed > 0) shard_->add(obs::Series{obs::sid::kHubChunksReclaimed}, freed);
    }
    if (egress_append(net::SessionFrame{
            net::ByeFrame{results_sent_.load(std::memory_order_relaxed)}}) &&
        !outcome_counted_.exchange(true, std::memory_order_acq_rel)) {
        shard_->add(obs::Series{obs::sid::kSessionsCompleted}, 1);
    }
    egress_try_flush();
    request_watch_write();
    return Quantum::Done;
}

// --- sharded session (§10) --------------------------------------------------

void ServerSession::maybe_resume_read_sharded() {
    if (sharded_->queued_total() < limits_.ingest_queue_events / 2 &&
        read_paused_.exchange(false, std::memory_order_acq_rel))
        hooks_.post(id_, SessionCmd::ResumeRead);
}

void ServerSession::apply_reshard_decision() {
    const auto d = controller_->decide(sharded_->active_shards());
    switch (d.kind) {
        case shard::ReshardDecision::Kind::None:
            return;
        case shard::ReshardDecision::Kind::Steal:
            // One hot key hops to the coldest slot; the engine refuses the
            // wave if one is already in flight or the stream closed.
            sharded_->steal_hottest(d.hot, d.cold);
            return;
        case shard::ReshardDecision::Kind::Grow: {
            const auto target =
                std::min<std::uint32_t>(d.new_shards, sharded_->shards());
            if (!sharded_->reshard(target)) return;
            // Register tasks for the newly active slots. Order matters: the
            // engine already published the grown task span, and any handoff
            // waker for an unregistered task is a no-op, so registering now
            // (which schedules the first quantum) closes the gap.
            const auto span = sharded_->task_span();
            for (std::uint32_t s = tasks_expected_.load(std::memory_order_relaxed);
                 s < span; ++s)
                hooks_.register_task(shard_task_id(id_, s), shard_tasks_[s].get());
            tasks_expected_.store(span, std::memory_order_release);
            return;
        }
        case shard::ReshardDecision::Kind::Shrink:
            // Routing-only change (§13): new keys hash over the narrower
            // width; the slots above it keep their tasks and drain whatever
            // they already queued (task_span stays monotone — tasks_expected_
            // is untouched, the drained slots just finish and park for good).
            sharded_->reshard(d.new_shards);
            return;
    }
}

EngineTask::Quantum ServerSession::run_shard_quantum(std::uint32_t shard) {
    if (abort_requested_.load(std::memory_order_acquire)) return Quantum::Done;
    try {
        note_stall_end(shard_egress_stall_[shard]);
        for (std::size_t s = 0; s < limits_.quantum_steps; ++s) {
            if (abort_requested_.load(std::memory_order_acquire)) return Quantum::Done;
            // Egress credit gate (§9): the buffer is shared by all shard
            // tasks — a slow result reader parks each of them as it arrives
            // here, never a worker.
            if (!egress_has_credit()) {
                egress_try_flush();
                if (!egress_has_credit()) {
                    shard_parked_egress_[shard].store(true, std::memory_order_release);
                    if (egress_has_credit()) {  // flushed concurrently — race lost
                        shard_parked_egress_[shard].store(false, std::memory_order_relaxed);
                    } else {
                        shard_->add(obs::Series{obs::sid::kParksEgress}, 1);
                        shard_egress_stall_[shard] = obs::now_ns();
                        request_watch_write();
                        return Quantum::Parked;
                    }
                }
            }
            const auto res = sharded_->step_shard(shard, limits_.batch_events);
            maybe_resume_read_sharded();
            if (res.all_finished) {
                // Whole-session completion observed: exactly one shard task
                // sends the BYE (every result is already in the egress
                // buffer — the merge that set all_finished emitted them).
                if (!bye_sent_.exchange(true, std::memory_order_acq_rel))
                    return finish_engine();
                egress_try_flush();
                request_watch_write();
                return Quantum::Done;
            }
            if (res.shard_finished) {
                // This shard is drained; peers still run (and will merge any
                // results this shard buffered).
                egress_try_flush();
                request_watch_write();
                return Quantum::Done;
            }
            if (res.idle) {
                // Park on input starvation, publish-then-recheck (§9).
                shard_parked_input_[shard].store(true, std::memory_order_release);
                if (sharded_->shard_parkable(shard)) {
                    shard_->add(obs::Series{obs::sid::kParksInput}, 1);
                    egress_try_flush();
                    request_watch_write();
                    return Quantum::Parked;
                }
                shard_parked_input_[shard].store(false, std::memory_order_relaxed);
            }
        }
    } catch (const std::exception& e) {
        return engine_failed(e.what());
    }
    egress_try_flush();
    request_watch_write();
    return Quantum::MoreWork;
}

EngineTask::Quantum ServerSession::engine_failed(const std::string& what) {
    // Sharded: sibling shard tasks may still be stepping their lanes, so the
    // stats flush waits for the destructor (when every task is done).
    if (!sharded_) flush_sched_stats();
    count_failed_once();
    egress_append(net::SessionFrame{net::ErrorFrame{std::string("engine error: ") + what}});
    egress_try_flush();
    // Tear the session down like every other failure path: without this a
    // client that keeps streaming would fill the ingest queue, pause the
    // reader, and linger as a zombie — no task exists anymore to resume it.
    abort();
    return Quantum::Done;
}

}  // namespace spectre::server
