#include "server/engine_pool.hpp"

#include "util/assert.hpp"

namespace spectre::server {

EnginePool::EnginePool(int workers) : workers_count_(workers) {
    SPECTRE_REQUIRE(workers >= 1, "EnginePool needs at least one worker");
}

EnginePool::~EnginePool() { stop(); }

void EnginePool::bind_obs(obs::Registry* registry) {
    SPECTRE_REQUIRE(!started_, "EnginePool::bind_obs after start");
    obs_registry_ = registry;
    pool_shard_ = registry ? registry->make_shard() : nullptr;
}

void EnginePool::start() {
    SPECTRE_REQUIRE(!started_, "EnginePool::start called twice");
    started_ = true;
    workers_.reserve(static_cast<std::size_t>(workers_count_));
    for (int i = 0; i < workers_count_; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

void EnginePool::stop() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.clear();
    run_queue_.clear();
}

void EnginePool::add(std::uint64_t id, EngineTask* task,
                     std::function<void(std::uint64_t)> on_done) {
    SPECTRE_REQUIRE(task != nullptr, "EnginePool::add needs a task");
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto [it, inserted] =
            tasks_.emplace(id, Entry{task, TaskState::Queued, std::move(on_done),
                                     pool_shard_ ? obs::now_ns() : 0});
        SPECTRE_REQUIRE(inserted, "EnginePool::add: duplicate task id");
        (void)it;
        run_queue_.push_back(id);
        ++added_;
        if (pool_shard_) pool_shard_->add(obs::Series{obs::sid::kPoolTasksAdded}, 1);
    }
    cv_.notify_one();
}

void EnginePool::notify(std::uint64_t id) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = tasks_.find(id);
        if (it == tasks_.end()) return;  // already finished
        switch (it->second.state) {
            case TaskState::Parked:
                it->second.state = TaskState::Queued;
                it->second.ready_ns = pool_shard_ ? obs::now_ns() : 0;
                run_queue_.push_back(id);
                break;
            case TaskState::Running:
                // Re-run after the in-flight quantum: the producer may have
                // published work the quantum's checks already missed.
                it->second.state = TaskState::RunningNotified;
                return;
            case TaskState::Queued:
            case TaskState::RunningNotified:
                return;  // a run is already pending
        }
    }
    cv_.notify_one();
}

void EnginePool::worker_loop() {
    // Per-worker metrics scope (§12): this worker's histograms contend with
    // nobody; retired (folded into the registry's retained block) on exit so
    // pool counters stay monotone across restarts.
    obs::ShardPtr wshard = obs_registry_ ? obs_registry_->make_shard() : nullptr;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [this] { return stopping_ || !run_queue_.empty(); });
        if (stopping_) break;
        const std::uint64_t id = run_queue_.front();
        run_queue_.pop_front();
        const auto it = tasks_.find(id);
        SPECTRE_CHECK(it != tasks_.end() && it->second.state == TaskState::Queued,
                      "run queue holds a non-queued task");
        it->second.state = TaskState::Running;
        EngineTask* task = it->second.task;
        const std::uint64_t ready_ns = it->second.ready_ns;
        ++running_;

        lock.unlock();
        const std::uint64_t t0 = wshard ? obs::now_ns() : 0;
        if (t0 != 0 && ready_ns != 0)
            wshard->observe(obs::Series{obs::sid::kPoolQueueWaitNs}, t0 - ready_ns);
        const auto outcome = task->run_quantum();
        if (wshard) {
            if (t0 != 0)
                wshard->observe(obs::Series{obs::sid::kQuantumNs}, obs::now_ns() - t0);
            wshard->add(obs::Series{obs::sid::kPoolQuanta}, 1);
        }
        lock.lock();

        ++quanta_;
        --running_;
        const auto post = tasks_.find(id);
        SPECTRE_CHECK(post != tasks_.end(), "task vanished mid-quantum");
        if (outcome == EngineTask::Quantum::Done) {
            auto on_done = std::move(post->second.on_done);
            tasks_.erase(post);
            ++finished_;
            if (wshard) wshard->add(obs::Series{obs::sid::kPoolTasksFinished}, 1);
            lock.unlock();
            if (on_done) on_done(id);
            lock.lock();
            continue;
        }
        if (outcome == EngineTask::Quantum::MoreWork ||
            post->second.state == TaskState::RunningNotified) {
            // Round-robin fairness: back of the queue, behind other sessions.
            post->second.state = TaskState::Queued;
            post->second.ready_ns = wshard ? obs::now_ns() : 0;
            run_queue_.push_back(id);
            cv_.notify_one();
        } else {
            post->second.state = TaskState::Parked;
        }
    }
    lock.unlock();
    if (wshard && obs_registry_) obs_registry_->retire(wshard);
}

PoolStats EnginePool::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    PoolStats s;
    s.workers = workers_count_;
    s.quanta = quanta_;
    s.tasks_added = added_;
    s.tasks_finished = finished_;
    s.tasks_live = tasks_.size();
    s.tasks_queued = run_queue_.size();
    s.tasks_running = running_;
    return s;
}

}  // namespace spectre::server
