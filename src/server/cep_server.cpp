#include "server/cep_server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/tcp.hpp"
#include "util/assert.hpp"

namespace spectre::server {

namespace {

constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kAdminListenTag = 2;

// Admin request bytes tolerated before the connection is dropped (a scrape
// request is one line plus a few headers).
constexpr std::size_t kMaxAdminRequest = 16 * 1024;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) fail("fcntl");
}

}  // namespace

CepServer::CepServer(ServerConfig config)
    : config_(config), pool_(config.pool_workers) {
    // Per-shard-index lane series (§12) must be registered before any
    // session's shard exists — a shard only carries cells for series known
    // at its creation. Bounded by the shard limit, not by session churn.
    const int lane_max = std::min(config_.session.max_shards, 16);
    for (int s = 0; s < lane_max; ++s) {
        const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
        registry_.add("lane_depth_peak" + label, obs::Kind::PeakGauge,
                      "peak queued events on this shard index");
        registry_.add("lane_sched_steps" + label, obs::Kind::Counter,
                      "scheduler steps on this shard index's lanes");
        registry_.add("lane_sched_batch_events" + label, obs::Kind::Counter,
                      "window positions advanced on this shard index's lanes");
        registry_.add("lane_sched_wasted_events" + label, obs::Kind::Counter,
                      "dead-speculation work on this shard index's lanes");
    }
    server_shard_ = registry_.make_shard();
    hub_.bind_obs(server_shard_.get());
    pool_.bind_obs(&registry_);

    listen_fd_ = net::listen_loopback(config_.port, config_.backlog, port_);
    set_nonblocking(listen_fd_);
    admin_listen_fd_ =
        net::listen_loopback(config_.admin_port, config_.backlog, admin_port_);
    set_nonblocking(admin_listen_fd_);

    // The I/O engine (§14): epoll by default; Uring probes at runtime and
    // falls back, so construction never fails over the backend choice.
    io_ = net::make_io_backend(config_.io_backend);
    if (!io_->add(listen_fd_, kListenTag, net::IoBackend::kRead))
        fail("IoBackend add(listen)");
    if (!io_->add(admin_listen_fd_, kAdminListenTag, net::IoBackend::kRead))
        fail("IoBackend add(admin listen)");
}

CepServer::~CepServer() {
    stop();
    for (auto& [id, conn] : admin_conns_) ::close(conn.fd);
    admin_conns_.clear();
    io_.reset();  // before the fds it may still reference
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
}

void CepServer::start() {
    SPECTRE_REQUIRE(!started_, "CepServer::start called twice");
    started_ = true;
    pool_.start();
    reactor_ = std::thread([this] { reactor_loop(); });
}

void CepServer::stop() {
    if (!started_ || stopped_) return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
    wake();
    reactor_.join();
    // Reactor is gone; pool workers may still be running quanta. Abort every
    // session first: poisons egress (a parked-on-egress task's wait resolves
    // to "nothing left to send"), closes ingestion, and notifies the task so
    // a parked one runs once more, sees the abort and finishes. Quanta are
    // bounded, so the pool join below is prompt; tasks that never get a
    // worker before the join are simply forgotten with the pool and
    // destroyed with their sessions — no thread is parked inside them.
    for (auto& [id, session] : sessions_) session->abort();
    pool_.stop();
    sessions_.clear();  // destructors retire each session's metrics shard
    server_shard_->set(obs::Series{obs::sid::kSessionsLive}, 0);
}

ServerStats CepServer::stats() const {
    // One source of truth (§12): every migrated counter comes out of the
    // registry snapshot; only the pool's instantaneous task-state fields
    // (exact under its mutex) are read from the pool directly.
    const obs::Snapshot snap = registry_.snapshot();
    const auto v = [&snap](std::uint32_t idx) { return snap.value(obs::Series{idx}); };
    ServerStats s;
    s.sessions_accepted = v(obs::sid::kSessionsAccepted);
    s.sessions_completed = v(obs::sid::kSessionsCompleted);
    s.sessions_failed = v(obs::sid::kSessionsFailed);
    s.events_ingested = v(obs::sid::kEventsIngested);
    s.results_emitted = v(obs::sid::kResultsEmitted);
    s.sessions_live = v(obs::sid::kSessionsLive);
    const auto pool = pool_.stats();
    s.pool_workers = pool.workers;
    s.quanta_executed = pool.quanta;
    s.tasks_added = pool.tasks_added;
    s.tasks_finished = pool.tasks_finished;
    s.tasks_live = pool.tasks_live;
    s.tasks_queued = pool.tasks_queued;
    s.tasks_running = pool.tasks_running;
    s.parks_input = v(obs::sid::kParksInput);
    s.parks_egress = v(obs::sid::kParksEgress);
    s.ingest_pauses = v(obs::sid::kIngestPauses);
    s.egress_buffered_bytes = v(obs::sid::kEgressBufferedBytes);
    s.egress_peak_bytes = v(obs::sid::kEgressPeakBytes);
    s.sched_sessions = v(obs::sid::kSchedSessions);
    s.sched_steps = v(obs::sid::kSchedSteps);
    s.sched_cycles = v(obs::sid::kSchedCycles);
    s.sched_cycles_skipped = v(obs::sid::kSchedCyclesSkipped);
    s.sched_batches = v(obs::sid::kSchedBatches);
    s.sched_batch_events = v(obs::sid::kSchedBatchEvents);
    s.sched_ready_depth_max = v(obs::sid::kSchedReadyDepthMax);
    if (s.sched_sessions > 0)
        s.sched_ready_depth_p50 =
            static_cast<double>(v(obs::sid::kSchedReadyP50Milli)) /
            (1000.0 * static_cast<double>(s.sched_sessions));
    s.sched_instances_retired = v(obs::sid::kSchedInstancesRetired);
    s.sched_instances_cancelled = v(obs::sid::kSchedInstancesCancelled);
    s.sched_wasted_events = v(obs::sid::kSchedWastedEvents);
    return s;
}

void CepServer::wake() { io_->wake(); }

void CepServer::post_cmd(std::uint64_t id, SessionCmd cmd) {
    {
        const std::lock_guard<std::mutex> lock(cmd_mutex_);
        cmds_.emplace_back(id, cmd);
    }
    wake();
}

void CepServer::reactor_loop() {
    std::array<net::IoEvent, 64> events;
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = io_->wait(events.data(), static_cast<int>(events.size()));
        if (n < 0) break;  // backend unusable — shutting down
        for (int i = 0; i < n; ++i) {
            const net::IoEvent& ev = events[static_cast<std::size_t>(i)];
            if (ev.tag == net::IoBackend::kWakeTag)
                drain_wake_and_commands();
            else if (ev.tag == kListenTag)
                accept_clients();
            else if (ev.tag == kAdminListenTag)
                accept_admin_clients();
            else if (admin_conns_.count(ev.tag))
                handle_admin_event(ev.tag, ev);
            else
                handle_session_event(ev.tag, ev);
        }
    }
}

void CepServer::accept_clients() {
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            // Transient accept failures (ECONNABORTED, EMFILE, …) must not
            // kill the reactor; the client simply doesn't get a session.
            return;
        }
        if (config_.session_sndbuf > 0 &&
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.session_sndbuf,
                         sizeof(config_.session_sndbuf)) < 0) {
            // The configured buffer bound is a correctness premise for the
            // caller (backpressure engages at the cap, not in auto-tuned
            // kernel buffers); refuse the connection rather than run
            // silently unbounded.
            ::close(fd);
            continue;
        }
        const auto id = next_session_id_++;
        SessionHooks hooks;
        hooks.post = [this](std::uint64_t sid, SessionCmd cmd) { post_cmd(sid, cmd); };
        hooks.register_task = [this](std::uint64_t sid, EngineTask* task) {
            pool_.add(sid, task, [this](std::uint64_t done_id) {
                post_cmd(done_id, SessionCmd::TaskDone);
            });
        };
        hooks.notify_task = [this](std::uint64_t sid) { pool_.notify(sid); };
        auto session = std::make_unique<ServerSession>(
            id, fd, config_.session, &registry_, registry_.make_shard(),
            std::move(hooks), &hub_, &compile_cache_);
        // kStream binds the fd to the backend's buffered ingest path (§14):
        // uring arms multishot recv into its provided buffer ring here.
        if (!io_->add(fd, id, net::IoBackend::kRead | net::IoBackend::kStream)) {
            // Registration failed — drop the connection, keep the server.
            continue;  // session destructor closes fd (and retires the shard)
        }
        session->set_armed_mask(net::IoBackend::kRead);
        server_shard_->add(obs::Series{obs::sid::kSessionsAccepted}, 1);
        server_shard_->add(obs::Series{obs::sid::kSessionsLive}, 1);
        sessions_.emplace(id, std::move(session));
    }
}

// --- admin scrape endpoint (§12) --------------------------------------------

void CepServer::accept_admin_clients() {
    for (;;) {
        const int fd = ::accept4(admin_listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // EAGAIN or a transient failure — nothing to accept
        }
        const auto id = next_session_id_++;
        if (!io_->add(fd, id, net::IoBackend::kRead)) {
            ::close(fd);
            continue;
        }
        AdminConn conn;
        conn.fd = fd;
        admin_conns_.emplace(id, std::move(conn));
    }
}

void CepServer::close_admin(std::uint64_t id) {
    const auto it = admin_conns_.find(id);
    if (it == admin_conns_.end()) return;
    io_->del(it->second.fd);
    ::close(it->second.fd);
    admin_conns_.erase(it);
}

void CepServer::handle_admin_event(std::uint64_t id, const net::IoEvent& event) {
    const auto it = admin_conns_.find(id);
    if (it == admin_conns_.end()) return;
    AdminConn& conn = it->second;
    if ((event.readable || event.err_hup) && conn.out.empty()) {
        bool eof = false;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n <= 0) {
                eof = true;  // EOF or hard error: no more request bytes coming
                break;
            }
            conn.in.append(chunk, static_cast<std::size_t>(n));
            if (conn.in.size() > kMaxAdminRequest) {
                close_admin(id);
                return;
            }
            if (conn.in.find("\r\n\r\n") != std::string::npos) break;
        }
        const bool complete = conn.in.find("\r\n\r\n") != std::string::npos;
        if (!complete) {
            // A bare scrape may write "GET / HTTP/1.0\r\n\r\n" then half-close,
            // or skip headers entirely; treat EOF-with-bytes as a request.
            // EOF with nothing received (or headers still in flight) ends here.
            if (!eof) return;
            if (conn.in.empty()) {
                close_admin(id);
                return;
            }
        }
        // Method gate: only GET serves a scrape. A POST, a TLS ClientHello,
        // or plain garbage followed by EOF used to fall through here and
        // collect a 200 — now anything that doesn't start with "GET " gets a
        // 400 and the close. (A bare "GET /\r\n\r\n" half-close still works.)
        if (conn.in.rfind("GET ", 0) != 0) {
            conn.out = "HTTP/1.0 400 Bad Request\r\n"
                       "Content-Length: 0\r\n"
                       "Connection: close\r\n\r\n";
        } else {
            // A live snapshot: aggregates every session/worker shard while
            // they keep writing — no worker stops, no session pauses (§12).
            const std::string body = registry_.prometheus();
            conn.out = "HTTP/1.0 200 OK\r\n"
                       "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                       "Content-Length: " + std::to_string(body.size()) + "\r\n"
                       "Connection: close\r\n\r\n";
            conn.out += body;
        }
        io_->mod(conn.fd, id, net::IoBackend::kWrite);
    }
    if (conn.out.empty()) return;
    // Flush the response; close when done (Connection: close semantics).
    while (conn.off < conn.out.size()) {
        const ssize_t w = ::send(conn.fd, conn.out.data() + conn.off,
                                 conn.out.size() - conn.off,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (w > 0) {
            conn.off += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR) continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;  // write armed
        close_admin(id);
        return;
    }
    close_admin(id);
}

void CepServer::handle_session_event(std::uint64_t id, const net::IoEvent& event) {
    if (event.writable) handle_writable(id);
    if (event.readable || event.err_hup) handle_readable(id);
    // A hung-up fd with a live engine would re-report ERR/HUP every wait
    // (level-triggered) — detach it; completion still arrives via TaskDone.
    if (event.err_hup) {
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) return;
        ServerSession& s = *it->second;
        if (!s.egress_pending()) {
            io_->del(s.fd());
            s.set_armed_mask(0);
        }
    }
}

void CepServer::handle_readable(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // reaped earlier this batch
    ServerSession& s = *it->second;
    if (s.input_done()) return;
    // on_readable drains the backend until Again (scatter-decoding DATA
    // frames straight into the session's store, §14).
    for (;;) switch (s.on_readable(*io_)) {
        case SessionStatus::Open:
            update_interest(s);
            return;
        case SessionStatus::Paused:
            // Ingest high watermark: stop reading; the task posts ResumeRead
            // once it drains below the low watermark (§9 backpressure).
            // Publish the pause, then re-check the queue level: the task may
            // have drained past the watermark (and missed the flag) between
            // the append that tripped the limit and now — pausing then would
            // strand a session the task has already parked.
            s.set_read_paused(true);
            if (!s.ingest_above_low()) {
                s.set_read_paused(false);
                continue;  // keep reading — the task raced ahead
            }
            update_interest(s);
            return;
        case SessionStatus::Finished:
            s.set_input_done();
            // Input side is over (clean EOF, BYE'd out, or failed). Egress
            // may still be running; the session stays until its task is done
            // and its buffer drained.
            if (!s.task_registered()) {
                // Task-less sessions (AwaitHello rejects, §15 publishers) may
                // still owe buffered egress — a publisher's BYE reply, a
                // reject's ERROR that didn't flush in one send. Failed
                // sessions poisoned their egress (idle), so they still die
                // here immediately; otherwise maybe_reap finishes the job
                // once the buffer drains.
                if (s.egress_idle()) {
                    destroy_session(it);
                    return;
                }
                update_interest(s);
                return;
            }
            maybe_reap(id);
            return;
    }
}

void CepServer::handle_writable(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ServerSession& s = *it->second;
    // flush_egress poisons + fails the session on a transport error and
    // notifies a task parked on egress credit once room is available.
    s.flush_egress();
    maybe_reap(id);
}

void CepServer::drain_wake_and_commands() {
    std::vector<std::pair<std::uint64_t, SessionCmd>> cmds;
    {
        const std::lock_guard<std::mutex> lock(cmd_mutex_);
        cmds.swap(cmds_);
    }
    for (const auto& [id, cmd] : cmds) {
        // TaskDone commands carry a *task* id; a sharded session owns one
        // task per shard, all mapping back to its session id (§10).
        const auto sid = session_of_task(id);
        const auto it = sessions_.find(sid);
        if (it == sessions_.end()) continue;  // already reaped
        ServerSession& s = *it->second;
        switch (cmd) {
            case SessionCmd::ResumeRead:
                if (!s.input_done()) {
                    update_interest(s);
                    // Frames decoded before the pause may still be buffered;
                    // dispatch them now — no new bytes will push them out.
                    handle_readable(sid);
                }
                break;
            case SessionCmd::WatchWrite:
                s.ack_watch_write();
                // Opportunistic flush first — often drains without polling.
                s.flush_egress();
                maybe_reap(sid);
                break;
            case SessionCmd::TaskDone:
                // Posted after the pool forgot the task and the final
                // quantum returned — only once every task of the session is
                // done is destruction safe.
                s.note_task_done();
                maybe_reap(sid);
                break;
        }
    }
}

void CepServer::maybe_reap(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ServerSession& s = *it->second;
    // With a task: done means every task reported TaskDone. Without one (§15
    // publishers, rejected handshakes): done means the input side ended —
    // never true while a healthy session still awaits its HELLO.
    const bool done = s.task_registered() ? s.task_done() : s.input_done();
    if (done && s.egress_idle()) {
        destroy_session(it);
        return;
    }
    update_interest(s);
}

void CepServer::destroy_session(SessionMap::iterator it) {
    // §15: leaving the hub may orphan subscribers (publisher died before
    // closing its stream) — fail each one after the erase, so a subscriber
    // reaped inside the loop can't invalidate our iterator.
    const std::vector<ServerSession*> to_fail = it->second->hub_detach();
    io_->del(it->second->fd());  // may already be detached — harmless
    server_shard_->sub(obs::Series{obs::sid::kSessionsLive}, 1);
    sessions_.erase(it);
    for (ServerSession* sub : to_fail) {
        const std::uint64_t sid = sub->id();
        sub->fail_publisher_gone();  // sets input_done; task exits via abort
        maybe_reap(sid);
    }
}

void CepServer::update_interest(ServerSession& s) {
    std::uint32_t mask = 0;
    if (!s.input_done() && !s.read_paused()) mask |= net::IoBackend::kRead;
    if (s.egress_pending()) mask |= net::IoBackend::kWrite;
    if (mask == s.armed_mask()) return;
    // mod may fail with ENOENT after an ERR/HUP detach; that fd is done
    // delivering events, so the stale mask is harmless.
    if (io_->mod(s.fd(), s.id(), mask)) s.set_armed_mask(mask);
}

}  // namespace spectre::server
