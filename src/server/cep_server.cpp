#include "server/cep_server.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/tcp.hpp"
#include "util/assert.hpp"

namespace spectre::server {

namespace {

constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) fail("fcntl");
}

}  // namespace

CepServer::CepServer(ServerConfig config)
    : config_(config), pool_(config.pool_workers) {
    listen_fd_ = net::listen_loopback(config_.port, config_.backlog, port_);
    set_nonblocking(listen_fd_);

    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) fail("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) fail("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) fail("epoll_ctl(listen)");
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) fail("epoll_ctl(wake)");
}

CepServer::~CepServer() {
    stop();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

void CepServer::start() {
    SPECTRE_REQUIRE(!started_, "CepServer::start called twice");
    started_ = true;
    pool_.start();
    reactor_ = std::thread([this] { reactor_loop(); });
}

void CepServer::stop() {
    if (!started_ || stopped_) return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
    wake();
    reactor_.join();
    // Reactor is gone; pool workers may still be running quanta. Abort every
    // session first: poisons egress (a parked-on-egress task's wait resolves
    // to "nothing left to send"), closes ingestion, and notifies the task so
    // a parked one runs once more, sees the abort and finishes. Quanta are
    // bounded, so the pool join below is prompt; tasks that never get a
    // worker before the join are simply forgotten with the pool and
    // destroyed with their sessions — no thread is parked inside them.
    for (auto& [id, session] : sessions_) session->abort();
    pool_.stop();
    counters_.sessions_live.store(0, std::memory_order_relaxed);
    sessions_.clear();
}

ServerStats CepServer::stats() const {
    ServerStats s;
    s.sessions_accepted = counters_.sessions_accepted.load(std::memory_order_relaxed);
    s.sessions_completed = counters_.sessions_completed.load(std::memory_order_relaxed);
    s.sessions_failed = counters_.sessions_failed.load(std::memory_order_relaxed);
    s.events_ingested = counters_.events_ingested.load(std::memory_order_relaxed);
    s.results_emitted = counters_.results_emitted.load(std::memory_order_relaxed);
    s.sessions_live = counters_.sessions_live.load(std::memory_order_relaxed);
    const auto pool = pool_.stats();
    s.pool_workers = pool.workers;
    s.quanta_executed = pool.quanta;
    s.tasks_added = pool.tasks_added;
    s.tasks_finished = pool.tasks_finished;
    s.tasks_live = pool.tasks_live;
    s.tasks_queued = pool.tasks_queued;
    s.tasks_running = pool.tasks_running;
    s.parks_input = counters_.parks_input.load(std::memory_order_relaxed);
    s.parks_egress = counters_.parks_egress.load(std::memory_order_relaxed);
    s.ingest_pauses = counters_.ingest_pauses.load(std::memory_order_relaxed);
    s.egress_buffered_bytes =
        counters_.egress_buffered_bytes.load(std::memory_order_relaxed);
    s.egress_peak_bytes = counters_.egress_peak_bytes.load(std::memory_order_relaxed);
    s.sched_sessions = counters_.sched_sessions.load(std::memory_order_relaxed);
    s.sched_steps = counters_.sched_steps.load(std::memory_order_relaxed);
    s.sched_cycles = counters_.sched_cycles.load(std::memory_order_relaxed);
    s.sched_cycles_skipped = counters_.sched_cycles_skipped.load(std::memory_order_relaxed);
    s.sched_batches = counters_.sched_batches.load(std::memory_order_relaxed);
    s.sched_batch_events = counters_.sched_batch_events.load(std::memory_order_relaxed);
    s.sched_ready_depth_max =
        counters_.sched_ready_depth_max.load(std::memory_order_relaxed);
    if (s.sched_sessions > 0)
        s.sched_ready_depth_p50 =
            static_cast<double>(
                counters_.sched_ready_p50_milli.load(std::memory_order_relaxed)) /
            (1000.0 * static_cast<double>(s.sched_sessions));
    s.sched_instances_retired =
        counters_.sched_instances_retired.load(std::memory_order_relaxed);
    s.sched_instances_cancelled =
        counters_.sched_instances_cancelled.load(std::memory_order_relaxed);
    s.sched_wasted_events = counters_.sched_wasted_events.load(std::memory_order_relaxed);
    return s;
}

void CepServer::wake() {
    const std::uint64_t one = 1;
    // Best-effort: the eventfd is only ever full when the reactor already has
    // a pending wakeup, which is all we need.
    [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void CepServer::post_cmd(std::uint64_t id, SessionCmd cmd) {
    {
        const std::lock_guard<std::mutex> lock(cmd_mutex_);
        cmds_.emplace_back(id, cmd);
    }
    wake();
}

void CepServer::reactor_loop() {
    std::array<epoll_event, 64> events;
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), -1);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;  // epoll fd gone — shutting down
        }
        for (int i = 0; i < n; ++i) {
            const auto tag = events[i].data.u64;
            if (tag == kListenTag)
                accept_clients();
            else if (tag == kWakeTag)
                drain_wake_and_commands();
            else
                handle_session_event(tag, events[i].events);
        }
    }
}

void CepServer::accept_clients() {
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            // Transient accept failures (ECONNABORTED, EMFILE, …) must not
            // kill the reactor; the client simply doesn't get a session.
            return;
        }
        if (config_.session_sndbuf > 0 &&
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.session_sndbuf,
                         sizeof(config_.session_sndbuf)) < 0) {
            // The configured buffer bound is a correctness premise for the
            // caller (backpressure engages at the cap, not in auto-tuned
            // kernel buffers); refuse the connection rather than run
            // silently unbounded.
            ::close(fd);
            continue;
        }
        const auto id = next_session_id_++;
        SessionHooks hooks;
        hooks.post = [this](std::uint64_t sid, SessionCmd cmd) { post_cmd(sid, cmd); };
        hooks.register_task = [this](std::uint64_t sid, EngineTask* task) {
            pool_.add(sid, task, [this](std::uint64_t done_id) {
                post_cmd(done_id, SessionCmd::TaskDone);
            });
        };
        hooks.notify_task = [this](std::uint64_t sid) { pool_.notify(sid); };
        auto session = std::make_unique<ServerSession>(id, fd, config_.session,
                                                       &counters_, std::move(hooks));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
            // Registration failed — drop the connection, keep the server.
            continue;  // session destructor closes fd
        }
        session->set_armed_mask(EPOLLIN);
        counters_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
        counters_.sessions_live.fetch_add(1, std::memory_order_relaxed);
        sessions_.emplace(id, std::move(session));
    }
}

void CepServer::handle_session_event(std::uint64_t id, std::uint32_t events) {
    if (events & EPOLLOUT) handle_writable(id);
    if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) handle_readable(id);
    // A hung-up fd with a live engine would re-report ERR/HUP every wait
    // (level-triggered) — detach it; completion still arrives via TaskDone.
    if (events & (EPOLLERR | EPOLLHUP)) {
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) return;
        ServerSession& s = *it->second;
        if (!s.egress_pending()) {
            epoll_event ev{};
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s.fd(), &ev);
            s.set_armed_mask(0);
        }
    }
}

void CepServer::handle_readable(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // reaped earlier this batch
    ServerSession& s = *it->second;
    if (s.input_done()) return;
    for (;;) switch (s.on_readable()) {
        case SessionStatus::Open:
            update_interest(s);
            return;
        case SessionStatus::Paused:
            // Ingest high watermark: stop reading; the task posts ResumeRead
            // once it drains below the low watermark (§9 backpressure).
            // Publish the pause, then re-check the queue level: the task may
            // have drained past the watermark (and missed the flag) between
            // the push that tripped the limit and now — pausing then would
            // strand a session the task has already parked.
            s.set_read_paused(true);
            if (!s.ingest_above_low()) {
                s.set_read_paused(false);
                continue;  // keep reading — the task raced ahead
            }
            update_interest(s);
            return;
        case SessionStatus::Finished:
            s.set_input_done();
            // Input side is over (clean EOF, BYE'd out, or failed). Egress
            // may still be running; the session stays until its task is done
            // and its buffer drained.
            if (!s.task_registered()) {
                destroy_session(it);
                return;
            }
            maybe_reap(id);
            return;
    }
}

void CepServer::handle_writable(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ServerSession& s = *it->second;
    // flush_egress poisons + fails the session on a transport error and
    // notifies a task parked on egress credit once room is available.
    s.flush_egress();
    maybe_reap(id);
}

void CepServer::drain_wake_and_commands() {
    std::uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
    std::vector<std::pair<std::uint64_t, SessionCmd>> cmds;
    {
        const std::lock_guard<std::mutex> lock(cmd_mutex_);
        cmds.swap(cmds_);
    }
    for (const auto& [id, cmd] : cmds) {
        // TaskDone commands carry a *task* id; a sharded session owns one
        // task per shard, all mapping back to its session id (§10).
        const auto sid = session_of_task(id);
        const auto it = sessions_.find(sid);
        if (it == sessions_.end()) continue;  // already reaped
        ServerSession& s = *it->second;
        switch (cmd) {
            case SessionCmd::ResumeRead:
                if (!s.input_done()) {
                    update_interest(s);
                    // Frames decoded before the pause may still be buffered;
                    // dispatch them now — no new bytes will push them out.
                    handle_readable(sid);
                }
                break;
            case SessionCmd::WatchWrite:
                s.ack_watch_write();
                // Opportunistic flush first — often drains without epoll.
                s.flush_egress();
                maybe_reap(sid);
                break;
            case SessionCmd::TaskDone:
                // Posted after the pool forgot the task and the final
                // quantum returned — only once every task of the session is
                // done is destruction safe.
                s.note_task_done();
                maybe_reap(sid);
                break;
        }
    }
}

void CepServer::maybe_reap(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ServerSession& s = *it->second;
    if (s.task_registered() && s.task_done() && s.egress_idle()) {
        destroy_session(it);
        return;
    }
    update_interest(s);
}

void CepServer::destroy_session(SessionMap::iterator it) {
    epoll_event ev{};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd(), &ev);  // may ENOENT
    counters_.sessions_live.fetch_sub(1, std::memory_order_relaxed);
    sessions_.erase(it);
}

void CepServer::update_interest(ServerSession& s) {
    std::uint32_t mask = 0;
    if (!s.input_done() && !s.read_paused()) mask |= EPOLLIN;
    if (s.egress_pending()) mask |= EPOLLOUT;
    if (mask == s.armed_mask()) return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = s.id();
    // MOD may fail with ENOENT after an ERR/HUP detach; that fd is done
    // delivering events, so the stale mask is harmless.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, s.fd(), &ev) == 0)
        s.set_armed_mask(mask);
}

}  // namespace spectre::server
