#include "server/cep_server.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/tcp.hpp"
#include "util/assert.hpp"

namespace spectre::server {

namespace {

constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) fail("fcntl");
}

}  // namespace

CepServer::CepServer(ServerConfig config) : config_(config) {
    listen_fd_ = net::listen_loopback(config_.port, config_.backlog, port_);
    set_nonblocking(listen_fd_);

    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) fail("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) fail("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) fail("epoll_ctl(listen)");
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) fail("epoll_ctl(wake)");
}

CepServer::~CepServer() {
    stop();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

void CepServer::start() {
    SPECTRE_REQUIRE(!started_, "CepServer::start called twice");
    started_ = true;
    reactor_ = std::thread([this] { reactor_loop(); });
}

void CepServer::stop() {
    if (!started_ || stopped_) return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
    wake();
    reactor_.join();
    // Reactor is gone: sessions are single-threaded again except for their
    // engine threads. Poison every send path first (so no engine can park on
    // a dead client), then join.
    for (auto& [id, session] : sessions_) session->abort();
    for (auto& [id, session] : sessions_) session->join_engine();
    sessions_.clear();
}

ServerStats CepServer::stats() const {
    ServerStats s;
    s.sessions_accepted = counters_.sessions_accepted.load(std::memory_order_relaxed);
    s.sessions_completed = counters_.sessions_completed.load(std::memory_order_relaxed);
    s.sessions_failed = counters_.sessions_failed.load(std::memory_order_relaxed);
    s.events_ingested = counters_.events_ingested.load(std::memory_order_relaxed);
    s.results_emitted = counters_.results_emitted.load(std::memory_order_relaxed);
    return s;
}

void CepServer::wake() {
    const std::uint64_t one = 1;
    // Best-effort: the eventfd is only ever full when the reactor already has
    // a pending wakeup, which is all we need.
    [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void CepServer::reactor_loop() {
    std::array<epoll_event, 64> events;
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), -1);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;  // epoll fd gone — shutting down
        }
        for (int i = 0; i < n; ++i) {
            const auto tag = events[i].data.u64;
            if (tag == kListenTag)
                accept_clients();
            else if (tag == kWakeTag)
                drain_wake_and_reap();
            else
                handle_session_event(tag);
        }
    }
}

void CepServer::accept_clients() {
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            // Transient accept failures (ECONNABORTED, EMFILE, …) must not
            // kill the reactor; the client simply doesn't get a session.
            return;
        }
        const auto id = next_session_id_++;
        auto session = std::make_unique<ServerSession>(
            id, fd, config_.session, &counters_, [this](std::uint64_t done_id) {
                {
                    const std::lock_guard<std::mutex> lock(done_mutex_);
                    done_.push_back(done_id);
                }
                wake();
            });
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
            // Registration failed — drop the connection, keep the server.
            continue;  // session destructor closes fd
        }
        counters_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
        sessions_.emplace(id, std::move(session));
    }
}

void CepServer::handle_session_event(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // already reaped this batch
    ServerSession& session = *it->second;
    if (session.on_readable() == SessionStatus::Open) return;
    // Input side is over (clean EOF, BYE'd out, or failed): stop watching the
    // fd. Egress may still be running; the session object stays until its
    // engine reports done.
    struct epoll_event ev {};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, session.fd(), &ev);
    if (!session.engine_started()) sessions_.erase(it);
}

void CepServer::drain_wake_and_reap() {
    std::uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
    std::vector<std::uint64_t> done;
    {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        done.swap(done_);
    }
    for (const auto id : done) reap(id);
}

void CepServer::reap(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    struct epoll_event ev {};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd(), &ev);  // may ENOENT
    it->second->join_engine();
    sessions_.erase(it);
}

}  // namespace spectre::server
