// Server-side session: one connected client of the multi-session CEP server
// (DESIGN.md §8).
//
// A session owns everything one client subscribes: the schema its query text
// is parsed against, the compiled query, a private EventStore + LiveStream
// ingestion pair, and the engine thread detecting over them. The reactor
// thread (server/cep_server.hpp) feeds raw socket bytes in; the session's
// state machine decodes typed frames (net/session.hpp) and drives:
//
//   AwaitHello --HELLO--> Streaming --BYE / clean EOF--> Draining
//        \                    \                             engine finishes,
//         \--anything else     \--corrupt frame/protocol    sends BYE, done
//             = Failed             error = Failed (ERROR frame, disconnect)
//
// Failure isolation: every per-session error — corrupt frame, bad query,
// protocol violation, death mid-frame — fails only this session; the reactor
// loop never sees an exception (§8 session lifecycle).
//
// Threading: the reactor thread runs on_readable()/abort(); the engine
// thread emits RESULT frames through the shared send path. Sends are
// serialized by a mutex; the per-session schema is written only by the
// reactor (symbol interning in from_wire) and never read by the engine during
// detection — predicates are compiled to interned ids up front (DESIGN.md §2).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "data/stock.hpp"
#include "detect/compiled_query.hpp"
#include "event/stream.hpp"
#include "net/session.hpp"

namespace spectre::server {

// Server-wide counters, shared by all sessions (atomics: engine threads
// increment results while the reactor increments ingestion).
struct ServerCounters {
    std::atomic<std::uint64_t> sessions_accepted{0};
    std::atomic<std::uint64_t> sessions_completed{0};
    std::atomic<std::uint64_t> sessions_failed{0};
    std::atomic<std::uint64_t> events_ingested{0};
    std::atomic<std::uint64_t> results_emitted{0};
};

struct SessionLimits {
    int max_instances = 8;        // cap on HELLO's k
    std::size_t batch_events = 64;  // SpectreRuntime batch granularity
};

// What the reactor should do with the connection after feeding it input.
enum class SessionStatus {
    Open,      // keep watching the fd for input
    Finished,  // stop watching; egress (if an engine runs) continues
};

class ServerSession {
public:
    // Takes ownership of `fd` (non-blocking). `on_engine_done` is invoked
    // from the engine thread as its last action, with this session's id —
    // the server uses it to schedule the join/reap on the reactor thread.
    ServerSession(std::uint64_t id, int fd, SessionLimits limits, ServerCounters* counters,
                  std::function<void(std::uint64_t)> on_engine_done);
    // Joins the engine thread (callers normally joined already via
    // join_engine) and closes the fd.
    ~ServerSession();

    ServerSession(const ServerSession&) = delete;
    ServerSession& operator=(const ServerSession&) = delete;

    std::uint64_t id() const noexcept { return id_; }
    int fd() const noexcept { return fd_; }

    // Reactor: the fd is readable. Drains it (non-blocking), decodes and
    // dispatches frames. Never throws — any failure fails this session only.
    SessionStatus on_readable();

    // True once HELLO started an engine thread; a finished session without an
    // engine can be destroyed immediately, one with an engine is reaped after
    // on_engine_done fires.
    bool engine_started() const noexcept { return engine_started_; }

    // Server shutdown: stop ingestion, unblock and poison the send path.
    // Safe to call from the server thread at any point; idempotent.
    void abort();

    void join_engine();

private:
    enum class State { AwaitHello, Streaming, Draining, Failed };

    SessionStatus dispatch(net::SessionFrame&& frame);
    SessionStatus on_hello(net::HelloFrame&& hello);
    SessionStatus on_end_of_input();
    // Fails the session: optionally sends an ERROR frame, closes ingestion,
    // shuts the socket down (which also unblocks an engine-side send).
    SessionStatus fail(const std::string& message, bool send_error);
    bool send_frame(const net::SessionFrame& frame);
    bool send_frame_locked(const net::SessionFrame& frame);
    // Reactor-side single-attempt send: never waits for writability (the
    // reactor must not block on one client's full socket buffer).
    void send_frame_best_effort(const net::SessionFrame& frame);
    void close_ingestion();
    void engine_main();

    const std::uint64_t id_;
    const int fd_;
    const SessionLimits limits_;
    ServerCounters* counters_;
    std::function<void(std::uint64_t)> on_engine_done_;

    State state_ = State::AwaitHello;
    net::FrameReader reader_;

    // Send path, shared by reactor (ERROR) and engine thread (RESULT/BYE).
    // The poison flag is atomic so the reactor can kill the path without
    // taking the mutex (the engine may hold it parked in a blocked send —
    // shutdown() on the fd is what unblocks it).
    std::mutex send_mutex_;
    std::atomic<bool> send_dead_{false};

    // Set on HELLO.
    data::StockVocab vocab_;
    std::unique_ptr<detect::CompiledQuery> cq_;
    std::uint32_t instances_ = 0;

    event::EventStore store_;
    event::LiveStream live_;
    bool ingestion_closed_ = false;  // reactor-side latch (live_.close() once)

    bool engine_started_ = false;
    std::thread engine_;
    std::atomic<std::uint64_t> results_sent_{0};
    // Latched by the engine thread once its BYE was delivered; fail() reads
    // it so a post-completion protocol hiccup never double-counts the
    // session as both completed and failed.
    std::atomic<bool> completed_{false};
};

}  // namespace spectre::server
