// Server-side session: one connected client of the multi-session CEP server
// (DESIGN.md §8), scheduled on the shared engine worker pool (§9).
//
// A session owns everything one client subscribes: the schema its query text
// is parsed against, the compiled query, a private EventStore, and a
// cooperatively-scheduled engine task (SpectreRuntime stepped inline with
// HELLO's k operator instances, or the sequential SeqStepper when k = 0).
// The reactor thread (server/cep_server.hpp) feeds raw socket bytes in; the
// session's state machine decodes typed frames (net/session.hpp) and drives:
//
//   AwaitHello --HELLO--> Streaming --BYE / clean EOF--> Draining
//        \                    \                             engine finishes,
//         \--anything else     \--corrupt frame/protocol    sends BYE, done
//             = Failed             error = Failed (ERROR frame, disconnect)
//
// Failure isolation: every per-session error — corrupt frame, bad query,
// protocol violation, death mid-frame — fails only this session; the reactor
// loop never sees an exception (§8 session lifecycle).
//
// Threading (§9/§14): the reactor runs on_readable()/flush_egress()/abort();
// one pool worker at a time runs run_quantum() (serialized by the pool's
// task state machine — the engine state needs no locks). The two sides meet:
//
//   * Ingest (§14 scatter path): the reactor decodes DATA frames straight out
//     of the backend's read view into the session's EventStore — one copy off
//     the socket, no intermediate event queue. Backpressure is a pacing
//     counter: the worker advances `accepted_` by at most a batch per step;
//     when the frontier runs ahead of it by the high watermark the reactor
//     pauses the *reader*, never a thread. Control frames and partial frame
//     tails still stage through the FrameReader (the copied-byte path, which
//     the §12 counters keep visibly rare).
//   * Egress: the task appends encoded RESULT/BYE frames into an EgressRing
//     when it has credit; both sides flush non-blockingly with one vectored
//     send per burst; an over-cap ring parks the *task*, never a worker.
//
// Nothing in this file blocks on a socket, and no per-session thread exists.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/stock.hpp"
#include "detect/compile_cache.hpp"
#include "detect/compiled_query.hpp"
#include "event/chunk_pins.hpp"
#include "event/stream.hpp"
#include "net/egress_ring.hpp"
#include "net/io_backend.hpp"
#include "net/session.hpp"
#include "obs/metrics.hpp"
#include "sequential/seq_engine.hpp"
#include "server/engine_pool.hpp"
#include "server/stream_hub.hpp"
#include "shard/reshard_controller.hpp"
#include "shard/sharded_engine.hpp"
#include "spectre/runtime.hpp"

namespace spectre::server {

// Pool task ids (§10): a session owns one engine task per shard (one total
// when unsharded). The session id lives in the low 48 bits, the shard index
// in the high 16 — commands posted with a task id map back to their session.
inline constexpr std::uint64_t kTaskSessionMask = (std::uint64_t{1} << 48) - 1;
inline std::uint64_t shard_task_id(std::uint64_t session, std::uint32_t shard) {
    return session | (std::uint64_t{shard} << 48);
}
inline std::uint64_t session_of_task(std::uint64_t task_id) {
    return task_id & kTaskSessionMask;
}

// Server-wide counters live on the metrics plane (obs::Registry, DESIGN.md
// §12): each session owns one obs::Shard whose cells both sides update
// (the reactor writes ingest-side series, the session's current pool worker
// writes engine-side series); the server aggregates every shard at scrape
// time. The old ServerCounters struct of shared atomics is gone — its
// fields map 1:1 onto the sid:: builtin schema.

struct SessionLimits {
    int max_instances = 8;          // cap on HELLO's k
    int max_shards = 16;            // cap on HELLO's shard count (§10)
    std::size_t batch_events = 64;  // engine batch + per-step ingest pacing
    // Pool scheduling quantum (§9): engine steps per run_quantum() — the
    // slice after which a runnable session yields its worker.
    std::size_t quantum_steps = 32;
    // Sequential-engine windows per step; bounds the egress burst one credit
    // check can miss (SPECTRE's burst is bounded by the splitter lookahead).
    std::size_t quantum_windows = 4;
    // Ingest high watermark: once the store frontier runs this many events
    // ahead of the task's accepted counter the reactor stops reading the
    // session's socket (TCP backpressure to the client); reading resumes
    // below half of it.
    std::size_t ingest_queue_events = 1024;
    // Egress credit: while more than this many bytes are buffered for a slow
    // result reader, the engine task parks (§9 backpressure).
    std::size_t egress_buffer_bytes = 256 * 1024;
    // Elastic partitioning (§13): when decide_every_events > 0, every
    // sharded session gets slot capacity up to max_shards and a
    // ReshardController driving steal/grow migrations off the live lane
    // metrics. Default off — static hashing, the pre-§13 behavior.
    shard::ReshardPolicy reshard{};
};

// What a session is to the shared ingest plane (DESIGN.md §15). HELLO v1 and
// a v2 `role=standalone` both yield Standalone — the pre-§15 private-stream
// session. `role=publish` owns a named StreamHub entry and carries only DATA;
// `role=subscribe` attaches a query to a published stream and carries none.
enum class SessionRole : std::uint8_t { Standalone, Publisher, Subscriber };

// What the reactor should do with the connection after feeding it input.
enum class SessionStatus {
    Open,      // keep watching the fd for input
    Paused,    // ingest ran ahead — stop reading until the task accepts it
    Finished,  // stop watching; egress (if an engine runs) continues
};

// Commands a session posts to the reactor from a pool worker (applied on the
// reactor thread, which owns the backend's interest sets).
enum class SessionCmd : std::uint8_t {
    ResumeRead,  // ingest drained below the low watermark
    WatchWrite,  // egress bytes pending — arm write interest
    TaskDone,    // engine task finished — reap once egress drains
};

// How the session reaches the server: post a command + wake the reactor
// (any thread), register the engine task on the pool (reactor thread, at
// HELLO), schedule a parked task (any thread).
struct SessionHooks {
    std::function<void(std::uint64_t, SessionCmd)> post;
    std::function<void(std::uint64_t, EngineTask*)> register_task;
    std::function<void(std::uint64_t)> notify_task;
};

class ServerSession final : public EngineTask {
public:
    // Takes ownership of `fd` (non-blocking). `registry`/`shard` are the
    // session's metrics scope (§12): `shard` must have been created from
    // `registry` and the registry must outlive the session — the destructor
    // retires the shard (folding its counters into the retained block).
    // `hub`/`cache` wire the session into the shared ingest plane (§15); null
    // disables HELLO v2 publish/subscribe roles (standalone still works).
    ServerSession(std::uint64_t id, int fd, SessionLimits limits, obs::Registry* registry,
                  obs::ShardPtr shard, SessionHooks hooks, StreamHub* hub = nullptr,
                  detect::CompileCache* cache = nullptr);
    ~ServerSession() override;  // closes the fd (callers stop the pool first)

    ServerSession(const ServerSession&) = delete;
    ServerSession& operator=(const ServerSession&) = delete;

    std::uint64_t id() const noexcept { return id_; }
    int fd() const noexcept { return fd_; }

    // --- reactor side --------------------------------------------------------

    // The fd is readable (or a ResumeRead re-entry): polls frames already
    // staged, then drains the backend's read views for this fd (§14 scatter
    // decode), dispatching every frame. Never throws — any failure fails
    // this session only.
    SessionStatus on_readable(net::IoBackend& io);

    // The fd is writable: flush buffered egress bytes. Returns true when the
    // flush made credit available or emptied the buffer (the reactor then
    // notifies a task parked on egress). A transport error poisons egress.
    bool flush_egress();

    // True once HELLO registered engine task(s); a finished session without a
    // task can be destroyed immediately, one with tasks is reaped after every
    // task's TaskDone command arrives.
    bool task_registered() const noexcept { return task_registered_; }
    // Reactor bookkeeping: one task's TaskDone command arrived (a sharded
    // session owns one task per shard, §10). Reaping is gated on all of them
    // — never on worker-side state — so a session is only destroyed after
    // the pool has forgotten every task and each final quantum has fully
    // returned (the TaskDone posts happen-after both).
    void note_task_done() noexcept { ++tasks_done_; }
    bool task_done() const noexcept {
        const auto expected = tasks_expected_.load(std::memory_order_relaxed);
        return expected > 0 && tasks_done_ >= expected;
    }
    // Reap gate: nothing left to send (or nobody to send it to).
    bool egress_idle() const;
    // Bytes currently buffered for this client (reactor interest mask).
    bool egress_pending() const;

    // Resume-read gate, owned by the reactor: true while the reactor has
    // stopped reading this fd (set on Paused, cleared when ResumeRead is
    // applied). The task uses it to post ResumeRead exactly once.
    void set_read_paused(bool paused) noexcept {
        read_paused_.store(paused, std::memory_order_release);
    }
    bool read_paused() const noexcept {
        return read_paused_.load(std::memory_order_acquire);
    }
    // Pause double-check (§9, reactor side): after publishing read_paused,
    // the reactor verifies ingest still sits at or above the low watermark —
    // the task may have accepted past it (and missed the flag) in between.
    // Below the watermark the reactor unpauses and keeps reading instead.
    bool ingest_above_low() const;

    // Reactor bookkeeping: input side finished (EOF / BYE'd out / failed).
    bool input_done() const noexcept { return input_done_; }
    void set_input_done() noexcept { input_done_ = true; }
    // Backend interest currently armed for this fd (IoBackend mask bits).
    std::uint32_t armed_mask() const noexcept { return armed_mask_; }
    void set_armed_mask(std::uint32_t mask) noexcept { armed_mask_ = mask; }
    // The reactor handled this session's WatchWrite command; the task may
    // post another when new egress bytes appear.
    void ack_watch_write() noexcept {
        watch_write_requested_.store(false, std::memory_order_release);
    }

    // Server shutdown: poison egress, close ingestion, shut the socket down,
    // and ask the task to abandon its engine on its next quantum. Safe from
    // the server thread at any point; idempotent.
    void abort();

    // --- shared ingest plane (§15, reactor thread) ---------------------------

    SessionRole role() const noexcept { return role_; }
    // Detaches from the stream hub (idempotent). A subscriber drops its chunk
    // pin and leaves the entry's wake list; a publisher marks the stream gone
    // and returns the subscribers the caller must fail (mid-stream death) —
    // the destructor also detaches but ignores that list (server-stop
    // teardown destroys everyone anyway).
    std::vector<ServerSession*> hub_detach();
    // Reactor-side error injection for those returned subscribers: fails the
    // session with the hub entry's recorded reason (ERROR frame + teardown).
    void fail_publisher_gone();

    // Test seam: replaces the vectored-send function the egress ring flushes
    // through (default: sendmsg on the session fd). Call before any egress.
    void set_sendv_for_test(net::EgressRing::SendvFn fn) { sendv_ = std::move(fn); }

    // --- pool worker side ----------------------------------------------------

    // One bounded engine quantum (EngineTask). Accepts ingest, steps the
    // engine, emits results into the egress ring; parks on input starvation
    // or missing egress credit (§9). Unsharded sessions only — sharded ones
    // schedule one ShardSubTask per shard instead (§10).
    Quantum run_quantum() override;

private:
    enum class State { AwaitHello, Streaming, Draining, Failed };

    // One shard's cooperatively-scheduled slice of a sharded session (§10):
    // same parking/backpressure protocol as run_quantum, scoped to shard `s`.
    struct ShardSubTask final : EngineTask {
        ServerSession* session = nullptr;
        std::uint32_t shard = 0;
        Quantum run_quantum() override { return session->run_shard_quantum(shard); }
    };

    SessionStatus dispatch(net::SessionFrame&& frame);
    // `echo` (v2 compat shim): buffered as the capability reply right before
    // the engine task registers, so it precedes every RESULT byte. Null for
    // a v1 HELLO — v1 clients get no echo.
    SessionStatus on_hello(net::HelloFrame&& hello, const net::Hello2Frame* echo = nullptr);
    // HELLO v2 (§15): role-dispatched handshake. `role=standalone` maps onto
    // on_hello; publish/subscribe attach the session to the stream hub.
    SessionStatus on_hello2(net::Hello2Frame&& hello);
    SessionStatus on_hello2_publish(const net::Hello2Frame& hello, const std::string& stream);
    SessionStatus on_hello2_subscribe(net::Hello2Frame&& hello, const std::string& stream);
    // Buffers the server capability echo for an accepted v2 HELLO.
    void send_hello2_echo(std::string_view role, const std::string& stream);
    // STATS request (§12): buffers a StatsFrame reply carrying the server-wide
    // registry aggregate plus this session's own shard, as one JSON object.
    SessionStatus on_stats();
    SessionStatus on_end_of_input();
    // Fails the session: optionally buffers an ERROR frame (flushed
    // best-effort), poisons egress, closes ingestion, shuts the socket down
    // and wakes the task so it can abandon its engine.
    SessionStatus fail(const std::string& message, bool send_error);
    // `close_store` only from reactor dispatch paths (BYE / clean EOF): the
    // reactor is the sole appender, so no append can race the close. Abort
    // paths (worker-side engine failure, server stop) never close the store
    // — their task exits via abort_requested_, not engine completion.
    void close_ingestion(bool close_store);
    // sessions_failed exactly once per session, and never after its BYE.
    void count_failed_once();

    // Scatter ingest (§14, reactor thread).
    // Walks one backend read view: DATA frames decode in place into the
    // store (unsharded) or a stack event routed to the sharded engine;
    // control frames and partial tails stage through reader_.
    SessionStatus consume_view(const std::uint8_t* data, std::size_t size);
    // Stages view bytes [pos, size) into reader_, counting the copy (§12).
    void stage_tail(const std::uint8_t* data, std::size_t size, std::size_t& pos);
    // Appends one decoded quote into the store as an unpublished slot.
    // Returns Paused once in-flight (frontier + pending - accepted) hits the
    // high watermark.
    SessionStatus ingest_store(event::Event&& ev);
    // Routes one decoded quote into the sharded engine's lanes (§10), with
    // the per-lane accounting, reshard pacing (§13) and park/wake protocol.
    SessionStatus ingest_sharded(event::Event&& ev);
    // Release-publishes `appended` scatter slots and wakes a parked task.
    // The empty ingest_mutex_ section is the §9 handshake barrier: it orders
    // this publish against the task's publish-park-then-recheck (both sides
    // pass through the mutex, so either the task sees the new frontier or
    // this thread sees the parked flag — never neither).
    void publish_ingest(std::size_t& appended);
    bool ingest_empty_and_open();  // park predicate (frontier == accepted)
    // The store this session appends to / steps over: the hub entry's shared
    // store for publisher and subscriber roles, the private store_ otherwise.
    event::EventStore& ingest_target() noexcept {
        return hub_entry_ ? hub_entry_->store : store_;
    }
    const event::EventStore& ingest_target() const noexcept {
        return hub_entry_ ? hub_entry_->store : store_;
    }
    // A publisher appended to the shared store: pass the §9 wakeup barrier
    // for THIS subscriber (each subscriber parks on its own ingest_mutex_).
    void notify_shared_ingest();

    // Worker side: advances accepted_ by at most batch_events toward the
    // frontier (ingest pacing); posts ResumeRead once in-flight drops below
    // the low watermark. Returns slots accepted this call.
    std::size_t accept_ingest();

    // Egress ring (task → reactor/socket).
    bool egress_append(const net::SessionFrame& frame);  // false when poisoned
    // Non-blocking vectored flush of buffered bytes into the socket; returns
    // false on a transport error (egress poisoned). Either side may call it.
    bool egress_try_flush();
    void egress_poison();
    bool egress_has_credit() const;
    // Publishes the session's current egress backlog (gauge + peak) after a
    // buffer mutation; callers hold egress_mutex_.
    void account_egress(std::size_t now_bytes);

    // Result-latency clock (§12): the reactor stamps each DATA arrival by
    // global seq; the worker-side result sink maps a complex event's last
    // constituent back to its stamp. No-ops when obs is disabled.
    void stamp_arrival();
    void observe_result_latency(const event::ComplexEvent& ce,
                                std::uint64_t prev_results);
    // Max-min queued events over the session's shard lanes, sampled every
    // kSkewSampleEvery-th ingest (reactor side, sharded sessions only).
    void sample_lane_skew();
    // Observes kEgressStallNs if the previous quantum parked on egress
    // credit; the stamp is task-private (`shard` indexes the sharded array).
    void note_stall_end(std::uint64_t& stamp);

    // run_quantum helpers.
    Quantum finish_engine();         // BYE, counters, Done
    Quantum engine_failed(const std::string& what);
    void request_watch_write();
    // Publishes this session's SchedStats + SplitterMetrics into its metrics
    // shard, once. Safe call sites: the worker owning the final quantum
    // (unsharded), the BYE-winning shard task after all_finished (sharded),
    // or the destructor (no worker can be inside run_quantum by then) —
    // sharded failure paths defer to the destructor because sibling shard
    // tasks may still be stepping their lanes.
    void flush_sched_stats();

    // Sharded path (§10).
    Quantum run_shard_quantum(std::uint32_t shard);
    void maybe_resume_read_sharded();
    // Elastic partitioning (§13, reactor thread — the reactor IS the
    // feeder): ask the controller for a decision over the last window and
    // apply it (steal a lane, or grow the active width and register the new
    // slots' tasks on the pool).
    void apply_reshard_decision();

    const std::uint64_t id_;
    const int fd_;
    const SessionLimits limits_;
    obs::Registry* registry_;
    obs::ShardPtr shard_;  // this session's metrics scope (§12)
    SessionHooks hooks_;

    State state_ = State::AwaitHello;
    net::FrameReader reader_;
    // Reactor-thread-only bookkeeping (no locks needed) — except
    // tasks_expected_, which worker-side teardown loops also read while the
    // reactor may be growing it (§13), hence the atomic.
    bool input_done_ = false;
    std::atomic<std::uint32_t> tasks_expected_{0};  // 1, or the live shard-task count (§10/§13)
    std::uint32_t tasks_done_ = 0;
    std::uint32_t armed_mask_ = 0;

    // Set on HELLO. cq_ is shared: subscriber sessions may hold the same
    // compiled artifact as their siblings via the server's CompileCache (§15)
    // — it is immutable after construction, so sharing is free.
    data::StockVocab vocab_;
    std::shared_ptr<const detect::CompiledQuery> cq_;
    std::uint32_t instances_ = 0;
    bool task_registered_ = false;

    // Shared ingest plane (§15). hub_entry_ is held for the session's whole
    // life — the shared store must outlive the engine stepping it.
    StreamHub* hub_;
    detect::CompileCache* cache_;
    SessionRole role_ = SessionRole::Standalone;
    StreamHub::EntryPtr hub_entry_;
    event::ChunkPins::Cursor pin_cursor_ = event::ChunkPins::kInvalidCursor;

    // Engine: exactly one of the three after HELLO. Unsharded sessions step
    // stepper_/runtime_ from run_quantum; a partitioned query gets a
    // ShardedEngine driven by tasks_expected_ ShardSubTasks (§10).
    event::EventStore store_;
    std::unique_ptr<sequential::SeqStepper> stepper_;
    std::unique_ptr<core::SpectreRuntime> runtime_;
    std::unique_ptr<shard::ShardedEngine> sharded_;
    std::vector<std::unique_ptr<ShardSubTask>> shard_tasks_;
    // Per-shard park/wake flags (§9 protocol, one lane per shard task).
    std::unique_ptr<std::atomic<bool>[]> shard_parked_input_;
    std::unique_ptr<std::atomic<bool>[]> shard_parked_egress_;
    // Per-shard-index lane series (§12, bounded by max_shards): resolved at
    // HELLO against names the server pre-registered, e.g.
    // lane_depth_peak{shard="3"}. Written by the reactor (depth peak) and by
    // flush_sched_stats (per-shard scheduler counts).
    struct LaneSeries {
        obs::Series depth_peak, steps, batch_events, wasted;
    };
    std::vector<LaneSeries> lane_series_;
    // Elastic partitioning (§13): reactor-owned migration policy over the
    // windowed lane_depth_peak series; null when the policy is off or the
    // session is unsharded.
    std::unique_ptr<shard::ReshardController> controller_;
    std::size_t reshard_countdown_ = 0;  // reactor-only decision pacing
    // Exactly one shard task sends the session's BYE (the one whose merge
    // observed completion first).
    std::atomic<bool> bye_sent_{false};

    // Ingest pacing (§14, unsharded): the reactor appends straight into
    // store_ (frontier = store_.size()); the worker advances accepted_ by at
    // most a batch per step. in-flight = frontier - accepted_ is the queue
    // depth the watermarks bound. ingest_mutex_ orders the park handshake
    // (see publish_ingest) and guards ingest_closed_.
    mutable std::mutex ingest_mutex_;
    bool ingest_closed_ = false;
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<bool> read_paused_{false};

    // Egress ring (§14): encoded frames waiting for the socket, flushed with
    // vectored sends. sendv_ defaults to sendmsg on fd_; injectable by tests.
    mutable std::mutex egress_mutex_;
    net::EgressRing egress_;
    net::EgressRing::SendvFn sendv_;
    std::atomic<bool> egress_dead_{false};

    // Park/wake handshake (§9): the task publishes why it parked; producers
    // (reactor) exchange the flag before notifying, so a wakeup is never
    // lost and never duplicated.
    std::atomic<bool> parked_on_input_{false};
    std::atomic<bool> parked_on_egress_{false};
    std::atomic<bool> watch_write_requested_{false};

    // Arrival clock ring (§12): reactor pushes one CLOCK_MONOTONIC stamp per
    // DATA event (index = global seq - arrival_base_); the result sink looks
    // stamps up under the same lock. Bounded: entries evicted past the cap
    // simply miss their observation, they never block ingest. Empty when obs
    // is disabled.
    static constexpr std::size_t kArrivalCap = std::size_t{1} << 16;
    static constexpr std::size_t kSkewSampleEvery = 64;
    mutable std::mutex arrival_mutex_;
    std::deque<std::uint64_t> arrival_ns_;
    std::uint64_t arrival_base_ = 0;   // seq of arrival_ns_.front()
    std::uint64_t first_data_ns_ = 0;  // first DATA arrival stamp
    std::size_t skew_countdown_ = 0;   // reactor-only sampling counter

    // Egress-credit stall stamps (§12), task-private: set when a quantum
    // parks on credit, observed (stall duration) at that task's next quantum.
    std::uint64_t egress_stall_ns_ = 0;                    // unsharded task
    std::unique_ptr<std::uint64_t[]> shard_egress_stall_;  // one per shard task

    std::atomic<bool> abort_requested_{false};
    // Single-winner outcome latch: a session with an engine is counted
    // exactly once, as either completed (BYE buffered) or failed — whichever
    // exchanges the latch first. Closes the race between the worker
    // finishing and the reactor failing the same session concurrently.
    std::atomic<bool> outcome_counted_{false};
    std::atomic<bool> sched_flushed_{false};
    std::atomic<std::uint64_t> results_sent_{0};
};

}  // namespace spectre::server
