// CepServer: the multi-session CEP server (DESIGN.md §8, §9).
//
// The paper deploys SPECTRE as middleware behind a TCP ingest (paper §4.1);
// this subsystem generalizes the repo's one-connection pipeline to many
// concurrent clients, each with its own query, policies and engine — the
// middleware shape of the ROADMAP's north star.
//
// Architecture (one box per thread):
//
//    ┌ reactor ───────────────────────────────┐   ┌ engine pool ───────────┐
//    │ IoBackend (epoll or io_uring, §14):    │   │ N workers multiplexing │
//    │ listen fd, wake, every session fd.     │──▶│ every session's engine │
//    │ Accepts clients, reads bytes, decodes  │   │ task in bounded quanta │
//    │ typed frames, drives each session's    │◀──│ (§9); a waiting task   │
//    │ state machine, flushes egress on       │   │ parks, not a worker.   │
//    │ writable, reaps done sessions.         │   └────────────────────────┘
//    └────────────────────────────────────────┘
//
// The reactor never blocks on a session: fds are non-blocking, corrupt input
// fails only the offending session (ERROR frame + disconnect), and pool
// workers talk back through a command queue drained via the wake eventfd
// (ResumeRead after an ingest pause, WatchWrite for pending egress, TaskDone
// for reaping). Sessions are decoupled from OS threads: thousands of
// sessions share the pool's N workers, ingest is bounded per session (a full
// queue pauses that socket's reads — TCP backpressure), and egress is
// bounded per session (an over-cap buffer parks that session's task until
// write readiness drains it). The per-session ordering guarantee — RESULT stream
// byte-identical to a sequential run of that session's input — is inherited
// from the engines' retirement order (§8) and is independent of pool size.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/io_backend.hpp"
#include "obs/metrics.hpp"
#include "server/engine_pool.hpp"
#include "server/session.hpp"

namespace spectre::server {

struct ServerConfig {
    std::uint16_t port = 0;  // 127.0.0.1:port; 0 = ephemeral
    // Admin/scrape port (DESIGN.md §12): a second loopback listener hosted
    // by the same reactor serving the Prometheus text exposition of the
    // metrics registry over minimal HTTP. 0 = ephemeral (see admin_port()).
    std::uint16_t admin_port = 0;
    int backlog = 64;
    // Engine worker pool size (§9): sessions multiplex over this many
    // threads regardless of how many clients connect.
    int pool_workers = 4;
    // SO_SNDBUF for accepted session fds; 0 keeps the kernel default
    // (auto-tuned). Tests shrink it so egress backpressure engages at the
    // configured cap instead of hiding inside megabytes of socket buffer.
    int session_sndbuf = 0;
    // Reactor I/O engine (§14). Uring falls back to epoll when the kernel
    // (or sandbox) refuses io_uring; SPECTRE_IO_BACKEND=epoll|uring overrides.
    net::IoBackendKind io_backend = net::IoBackendKind::Epoll;
    SessionLimits session{};
};

// Snapshot of the server-wide counters.
struct ServerStats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t sessions_completed = 0;  // engine finished, BYE buffered for delivery
    std::uint64_t sessions_failed = 0;     // corrupt frame / bad query / died mid-frame
    std::uint64_t events_ingested = 0;
    std::uint64_t results_emitted = 0;     // RESULT frames buffered for delivery
    std::size_t sessions_live = 0;         // currently connected / draining

    // Engine pool (§9).
    int pool_workers = 0;
    std::uint64_t quanta_executed = 0;
    std::uint64_t tasks_added = 0;
    std::uint64_t tasks_finished = 0;
    std::size_t tasks_live = 0;    // parked + queued + running
    std::size_t tasks_queued = 0;
    std::size_t tasks_running = 0;

    // Backpressure (§9).
    std::uint64_t parks_input = 0;       // task parked awaiting ingest
    std::uint64_t parks_egress = 0;      // task parked awaiting egress credit
    std::uint64_t ingest_pauses = 0;     // reactor paused a socket's reads
    std::size_t egress_buffered_bytes = 0;  // currently buffered, all sessions
    std::size_t egress_peak_bytes = 0;      // high-water mark of the above

    // Ready-instance scheduler (§11), aggregated over every finished or
    // failed speculative (unsharded) session.
    std::uint64_t sched_sessions = 0;          // sessions that reported stats
    std::uint64_t sched_steps = 0;             // step() calls
    std::uint64_t sched_cycles = 0;            // splitter cycles the gate ran
    std::uint64_t sched_cycles_skipped = 0;    // steps with no cycle at all
    std::uint64_t sched_batches = 0;           // instance batches scheduled
    std::uint64_t sched_batch_events = 0;      // window positions advanced
    std::uint64_t sched_ready_depth_max = 0;   // peak ready depth, any session
    double sched_ready_depth_p50 = 0.0;        // mean of per-session medians
    std::uint64_t sched_instances_retired = 0;    // versions finished
    std::uint64_t sched_instances_cancelled = 0;  // dead speculation found
    std::uint64_t sched_wasted_events = 0;        // work on dropped versions
};

class CepServer {
public:
    explicit CepServer(ServerConfig config = {});
    ~CepServer();  // stop()

    CepServer(const CepServer&) = delete;
    CepServer& operator=(const CepServer&) = delete;

    // Bound ports (valid after construction — the listen sockets are set up
    // eagerly so callers can connect as soon as start() returns).
    std::uint16_t port() const noexcept { return port_; }
    // Metrics scrape endpoint (§12): GET on this loopback port returns the
    // Prometheus text exposition of a live snapshot — no worker stops.
    std::uint16_t admin_port() const noexcept { return admin_port_; }

    // The metrics plane (§12). Live for the server's lifetime; benches and
    // tests may snapshot it directly instead of going through a socket.
    obs::Registry& registry() noexcept { return registry_; }

    // The I/O engine actually driving the reactor ("epoll" or "io_uring") —
    // a Uring request that fell back reports "epoll" here.
    const char* io_backend_name() const noexcept { return io_->name(); }

    // Spawns the reactor thread and the engine pool. Call once.
    void start();

    // Shutdown protocol (§9): join the reactor, abort every live session
    // (poisons egress, closes ingestion, wakes parked tasks so they abandon
    // their engines), join the pool workers, destroy the sessions. A session
    // parked on a slow reader or on input never blocks stop(). Idempotent.
    void stop();

    ServerStats stats() const;

private:
    using SessionMap = std::unordered_map<std::uint64_t, std::unique_ptr<ServerSession>>;

    // One admin (scrape) connection: minimal HTTP/1.0 — read until the blank
    // line, reply with one fresh prometheus() snapshot, close when drained.
    struct AdminConn {
        int fd = -1;
        std::string in;       // request bytes until the header terminator
        std::string out;      // response; empty until the request completes
        std::size_t off = 0;  // flushed prefix of `out`
    };

    void reactor_loop();
    void accept_clients();
    void accept_admin_clients();
    void handle_admin_event(std::uint64_t id, const net::IoEvent& ev);
    void close_admin(std::uint64_t id);
    void handle_session_event(std::uint64_t id, const net::IoEvent& ev);
    void handle_readable(std::uint64_t id);
    void handle_writable(std::uint64_t id);
    void drain_wake_and_commands();
    void maybe_reap(std::uint64_t id);
    void destroy_session(SessionMap::iterator it);
    void update_interest(ServerSession& session);
    void post_cmd(std::uint64_t id, SessionCmd cmd);
    void wake();

    ServerConfig config_;
    int listen_fd_ = -1;
    int admin_listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::uint16_t admin_port_ = 0;

    // The reactor's I/O engine (§14). Owns the readiness primitive, the wake
    // channel and the ingest read buffers; the reactor thread is the only
    // caller of everything except wake().
    std::unique_ptr<net::IoBackend> io_;

    // Declared before the pool and the sessions: both hold shards of (and
    // pointers into) the registry, so it must be destroyed last. The server
    // scope's own shard carries the reactor-side series (accepts, live).
    obs::Registry registry_;
    obs::ShardPtr server_shard_;

    // Shared ingest plane (§15). Declared before sessions_: session
    // destructors detach from the hub, so it must outlive them. The compile
    // cache holds only immutable artifacts; sessions share them by shared_ptr.
    StreamHub hub_;
    detect::CompileCache compile_cache_;

    EnginePool pool_;
    std::thread reactor_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool stopped_ = false;

    // Sessions are owned and touched by the reactor thread only (and by
    // stop() after reactor and pool have been joined).
    SessionMap sessions_;
    // Admin (scrape) connections share the tag space with sessions.
    std::unordered_map<std::uint64_t, AdminConn> admin_conns_;
    std::uint64_t next_session_id_ = 3;  // 0 = listen, 1 = wake, 2 = admin listen

    // Pool workers post commands here; the reactor drains on wake.
    std::mutex cmd_mutex_;
    std::vector<std::pair<std::uint64_t, SessionCmd>> cmds_;
};

}  // namespace spectre::server
