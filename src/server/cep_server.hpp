// CepServer: the multi-session CEP server (DESIGN.md §8).
//
// The paper deploys SPECTRE as middleware behind a TCP ingest (paper §4.1);
// this subsystem generalizes the repo's one-connection pipeline to many
// concurrent clients, each with its own query, policies and engine — the
// middleware shape of the ROADMAP's north star.
//
// Architecture (one box per thread):
//
//    ┌ reactor ───────────────────────────────┐   ┌ session engines ───────┐
//    │ epoll: listen fd, wake eventfd, every  │   │ one thread per session │
//    │ session fd. Accepts clients, reads     │──▶│ (plus its k operator-  │
//    │ bytes, decodes typed frames, drives    │   │ instance workers and   │
//    │ each session's state machine, reaps    │◀──│ feeder), emits RESULT  │
//    │ finished sessions.                     │   │ frames via ResultSink. │
//    └────────────────────────────────────────┘   └────────────────────────┘
//
// The reactor never blocks on a session: fds are non-blocking, corrupt input
// fails only the offending session (ERROR frame + disconnect), and engine
// completion is signaled back through the wake eventfd so joins happen on the
// reactor thread. Result egress runs concurrently with ingestion — the
// ordering guarantee (per-session RESULT stream byte-identical to a
// sequential run of that session's input) is inherited from the engines'
// retirement order (§8).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/session.hpp"

namespace spectre::server {

struct ServerConfig {
    std::uint16_t port = 0;  // 127.0.0.1:port; 0 = ephemeral
    int backlog = 64;
    SessionLimits session{};
};

// Snapshot of the server-wide counters.
struct ServerStats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t sessions_completed = 0;  // engine finished, BYE delivered
    std::uint64_t sessions_failed = 0;     // corrupt frame / bad query / died mid-frame
    std::uint64_t events_ingested = 0;
    std::uint64_t results_emitted = 0;     // RESULT frames delivered
};

class CepServer {
public:
    explicit CepServer(ServerConfig config = {});
    ~CepServer();  // stop()

    CepServer(const CepServer&) = delete;
    CepServer& operator=(const CepServer&) = delete;

    // Bound port (valid after construction — the listen socket is set up
    // eagerly so callers can connect as soon as start() returns).
    std::uint16_t port() const noexcept { return port_; }

    // Spawns the reactor thread. Call once.
    void start();

    // Aborts live sessions, joins every engine and the reactor. Idempotent.
    void stop();

    ServerStats stats() const;

private:
    void reactor_loop();
    void accept_clients();
    void handle_session_event(std::uint64_t id);
    void drain_wake_and_reap();
    void reap(std::uint64_t id);
    void wake();

    ServerConfig config_;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    std::uint16_t port_ = 0;

    std::thread reactor_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool stopped_ = false;

    // Sessions are owned and touched by the reactor thread only (and by
    // stop() after the reactor has been joined).
    std::unordered_map<std::uint64_t, std::unique_ptr<ServerSession>> sessions_;
    std::uint64_t next_session_id_ = 2;  // 0 = listen tag, 1 = wake tag

    // Engine threads report completion here; the reactor drains it.
    std::mutex done_mutex_;
    std::vector<std::uint64_t> done_;

    ServerCounters counters_;
};

}  // namespace spectre::server
