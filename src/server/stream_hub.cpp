#include "server/stream_hub.hpp"

#include <algorithm>

#include "event/event.hpp"

namespace spectre::server {

StreamHub::EntryPtr StreamHub::publish(const std::string& name,
                                       std::uint64_t publisher_id) {
    if (streams_.contains(name)) return nullptr;
    auto entry = std::make_shared<StreamEntry>();
    entry->name = name;
    entry->vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    entry->publisher_id = publisher_id;
    streams_.emplace(name, entry);
    if (shard_) shard_->add(obs::Series{obs::sid::kHubStreams}, 1);
    return entry;
}

StreamHub::EntryPtr StreamHub::find(const std::string& name) const {
    const auto it = streams_.find(name);
    return it == streams_.end() ? nullptr : it->second;
}

void StreamHub::subscribe(const EntryPtr& entry, ServerSession* session) {
    entry->subscribers.push_back(session);
    if (shard_) {
        shard_->add(obs::Series{obs::sid::kHubSubscribers}, 1);
        shard_->add(obs::Series{obs::sid::kHubSubscribersTotal}, 1);
    }
}

void StreamHub::unsubscribe(const EntryPtr& entry, ServerSession* session) {
    auto& subs = entry->subscribers;
    const auto it = std::find(subs.begin(), subs.end(), session);
    if (it == subs.end()) return;
    subs.erase(it);
    if (shard_) shard_->sub(obs::Series{obs::sid::kHubSubscribers}, 1);
    maybe_erase(entry);
}

std::vector<ServerSession*> StreamHub::publisher_gone(const EntryPtr& entry) {
    entry->publisher_live = false;
    std::vector<ServerSession*> to_fail;
    if (!entry->store.closed()) {
        // The stream ends mid-flight: no subscriber can ever reach a clean
        // end-of-stream, so they must all be failed — and any future
        // subscriber too (failed latch).
        entry->failed = true;
        entry->fail_reason =
            "publisher disconnected before closing stream '" + entry->name + "'";
        to_fail = entry->subscribers;
    }
    maybe_erase(entry);
    return to_fail;
}

void StreamHub::maybe_erase(const EntryPtr& entry) {
    if (entry->publisher_live || !entry->subscribers.empty()) return;
    const auto it = streams_.find(entry->name);
    if (it == streams_.end() || it->second != entry) return;
    streams_.erase(it);
    if (shard_) shard_->sub(obs::Series{obs::sid::kHubStreams}, 1);
}

}  // namespace spectre::server
