// Builder-style configuration surface for the CEP server (DESIGN.md §15's
// API-redesign sweep). The raw structs — ServerConfig, SessionLimits, and
// shard::ReshardPolicy nested inside it — stay plain aggregates so existing
// code keeps compiling, but new code should come through ServerConfigBuilder:
// one fluent chain covering every knob, with build() validating the combined
// result once instead of each call site re-learning which field combinations
// are nonsense (a quantum of zero steps, an ingest watermark of zero, a
// reshard grow target below the starting width, ...).
//
// How the layers map at runtime:
//   ServerConfig            → reactor + pool shape (ports, backlog, workers,
//                             socket buffers, io backend).
//   SessionLimits           → per-session engine shape; ServerSession turns
//                             batch_events into core::RuntimeConfig
//                             .batch_events and quantum_windows into
//                             .quantum_budget for the SPECTRE runtime, so one
//                             builder chain reaches all three config structs.
//   SessionLimits.reshard   → §13 elastic partitioning policy (default off).
#pragma once

#include <stdexcept>
#include <string>

#include "server/cep_server.hpp"

namespace spectre::server {

class ServerConfigBuilder {
public:
    // --- reactor / pool (ServerConfig) -----------------------------------
    ServerConfigBuilder& port(std::uint16_t p) {
        cfg_.port = p;
        return *this;
    }
    ServerConfigBuilder& admin_port(std::uint16_t p) {
        cfg_.admin_port = p;
        return *this;
    }
    ServerConfigBuilder& backlog(int n) {
        cfg_.backlog = n;
        return *this;
    }
    ServerConfigBuilder& pool_workers(int n) {
        cfg_.pool_workers = n;
        return *this;
    }
    ServerConfigBuilder& session_sndbuf(int bytes) {
        cfg_.session_sndbuf = bytes;
        return *this;
    }
    ServerConfigBuilder& io_backend(net::IoBackendKind k) {
        cfg_.io_backend = k;
        return *this;
    }

    // --- per-session engine shape (SessionLimits) ------------------------
    ServerConfigBuilder& max_instances(int n) {
        cfg_.session.max_instances = n;
        return *this;
    }
    ServerConfigBuilder& max_shards(int n) {
        cfg_.session.max_shards = n;
        return *this;
    }
    ServerConfigBuilder& batch_events(std::size_t n) {
        cfg_.session.batch_events = n;
        return *this;
    }
    ServerConfigBuilder& quantum_steps(std::size_t n) {
        cfg_.session.quantum_steps = n;
        return *this;
    }
    ServerConfigBuilder& quantum_windows(std::size_t n) {
        cfg_.session.quantum_windows = n;
        return *this;
    }
    ServerConfigBuilder& ingest_queue_events(std::size_t n) {
        cfg_.session.ingest_queue_events = n;
        return *this;
    }
    ServerConfigBuilder& egress_buffer_bytes(std::size_t n) {
        cfg_.session.egress_buffer_bytes = n;
        return *this;
    }

    // --- §13 elastic partitioning (SessionLimits.reshard) ----------------
    ServerConfigBuilder& reshard_every_events(std::size_t n) {
        cfg_.session.reshard.decide_every_events = n;
        return *this;
    }
    ServerConfigBuilder& reshard_steal(std::uint64_t min_peak, double ratio) {
        cfg_.session.reshard.steal_min_peak = min_peak;
        cfg_.session.reshard.steal_skew_ratio = ratio;
        return *this;
    }
    ServerConfigBuilder& reshard_grow(std::uint32_t shards_to,
                                      std::uint64_t min_peak) {
        cfg_.session.reshard.grow_shards_to = shards_to;
        cfg_.session.reshard.grow_min_peak = min_peak;
        return *this;
    }
    ServerConfigBuilder& reshard_shrink(std::uint64_t max_peak,
                                        std::uint32_t after_windows) {
        cfg_.session.reshard.shrink_max_peak = max_peak;
        cfg_.session.reshard.shrink_after_windows = after_windows;
        return *this;
    }

    // Validate the combined result. Throws std::invalid_argument naming the
    // offending knob — configuration mistakes should fail at construction,
    // not as a wedged server or a silently static shard layout.
    ServerConfig build() const {
        const SessionLimits& s = cfg_.session;
        require(cfg_.backlog > 0, "backlog must be positive");
        require(cfg_.pool_workers > 0, "pool_workers must be positive");
        require(cfg_.session_sndbuf >= 0, "session_sndbuf must be >= 0");
        require(s.max_instances > 0, "max_instances must be positive");
        require(s.max_shards > 0, "max_shards must be positive");
        require(s.batch_events > 0, "batch_events must be positive");
        require(s.quantum_steps > 0, "quantum_steps must be positive");
        require(s.quantum_windows > 0, "quantum_windows must be positive");
        require(s.ingest_queue_events > 0,
                "ingest_queue_events must be positive");
        require(s.egress_buffer_bytes > 0,
                "egress_buffer_bytes must be positive");
        const shard::ReshardPolicy& r = s.reshard;
        if (r.decide_every_events > 0) {
            require(r.steal_skew_ratio >= 1.0,
                    "reshard steal_skew_ratio must be >= 1.0");
            require(r.grow_shards_to == 0 ||
                        r.grow_shards_to <=
                            static_cast<std::uint32_t>(s.max_shards),
                    "reshard grow_shards_to exceeds max_shards");
            require(r.shrink_max_peak == 0 || r.shrink_after_windows > 0,
                    "reshard shrink_after_windows must be positive when "
                    "shrinking is enabled");
        }
        return cfg_;
    }

private:
    static void require(bool ok, const char* what) {
        if (!ok) throw std::invalid_argument(std::string("ServerConfig: ") + what);
    }

    ServerConfig cfg_{};
};

}  // namespace spectre::server
