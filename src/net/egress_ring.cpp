#include "net/egress_ring.hpp"

#include <cerrno>

namespace spectre::net {

namespace {
constexpr std::size_t kMaxFreeBlocks = 4;
}

std::vector<std::uint8_t>& EgressRing::tail_for_append() {
    // A block accepts frames until it reaches the target size; one frame may
    // run past it (frames are never split across blocks), which just makes
    // that block's final size a little larger.
    if (blocks_.empty() || blocks_.back().data.size() >= block_bytes_) {
        Block b;
        if (!free_.empty()) {
            b.data = std::move(free_.back());
            free_.pop_back();
            b.data.clear();
        } else {
            b.data.reserve(block_bytes_);
        }
        blocks_.push_back(std::move(b));
    }
    return blocks_.back().data;
}

void EgressRing::append(const SessionFrame& f) {
    auto& tail = tail_for_append();
    const std::size_t before = tail.size();
    encode_frame(f, tail);
    bytes_ += tail.size() - before;
}

void EgressRing::clear() {
    for (auto& b : blocks_)
        if (free_.size() < kMaxFreeBlocks) free_.push_back(std::move(b.data));
    blocks_.clear();
    bytes_ = 0;
}

int EgressRing::gather(struct iovec* iov, int cap) const {
    int n = 0;
    for (const Block& b : blocks_) {
        if (n >= cap) break;
        const std::size_t avail = b.data.size() - b.head;
        if (avail == 0) continue;  // only possible for the front block
        iov[n].iov_base = const_cast<std::uint8_t*>(b.data.data() + b.head);
        iov[n].iov_len = avail;
        ++n;
    }
    return n;
}

void EgressRing::consume(std::size_t n) {
    bytes_ -= n;
    while (n > 0) {
        Block& b = blocks_.front();
        const std::size_t avail = b.data.size() - b.head;
        if (n < avail) {
            b.head += n;
            return;
        }
        n -= avail;
        if (free_.size() < kMaxFreeBlocks) free_.push_back(std::move(b.data));
        blocks_.pop_front();
    }
}

EgressRing::FlushResult EgressRing::flush(const SendvFn& sendv) {
    FlushResult result;
    while (bytes_ > 0) {
        struct iovec iov[kMaxIov];
        const int cnt = gather(iov, kMaxIov);
        const ssize_t n = sendv(iov, cnt);
        if (n > 0) {
            consume(static_cast<std::size_t>(n));
            result.sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            result.status = FlushStatus::Blocked;
            return result;
        }
        result.status = FlushStatus::Error;
        result.error = n < 0 ? errno : EIO;
        return result;
    }
    result.status = FlushStatus::Drained;
    return result;
}

}  // namespace spectre::net
