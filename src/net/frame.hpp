// Wire framing for quote events.
//
// The paper's deployment feeds SPECTRE from "a client program that reads
// events from a source file and sends them to SPECTRE over a TCP connection"
// (§4.1). This module defines the byte format both ends speak: a fixed
// little-endian header per event (timestamp, prices, volume, symbol length)
// followed by the symbol name. Length-prefixed strings keep the protocol
// self-describing; encode/decode are pure functions so they are unit-testable
// without sockets.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "data/stock.hpp"

namespace spectre::net {

// A decoded wire event (schema-independent; symbols travel by name).
struct WireQuote {
    std::int64_t ts = 0;
    double open = 0, close = 0, volume = 0;
    std::string symbol;

    bool operator==(const WireQuote&) const = default;
};

// Appends the encoding of `q` to `out`.
void encode(const WireQuote& q, std::vector<std::uint8_t>& out);

// Attempts to decode one event starting at `offset`. On success returns the
// event and advances `offset` past it; returns nullopt if the buffer holds an
// incomplete frame (read more). Throws std::runtime_error on a corrupt frame
// (symbol length exceeding kMaxSymbolLength).
std::optional<WireQuote> decode(const std::vector<std::uint8_t>& buffer, std::size_t& offset);

inline constexpr std::size_t kMaxSymbolLength = 64;

// Fixed-size prefix of an encoded WireQuote: ts + open + close + volume +
// symbol length (the symbol bytes follow). Shared by decode() and the §14
// scatter path, which parses the same layout from a raw pointer.
inline constexpr std::size_t kWireQuoteHeaderBytes = 8 + 8 + 8 + 8 + 4;

// Conversions to/from the engine representation.
WireQuote to_wire(const event::Event& e, const data::StockVocab& vocab);
event::Event from_wire(const WireQuote& q, const data::StockVocab& vocab);

// Little-endian wire primitives, shared with the session control protocol
// (net/session.hpp) so every frame type speaks the same byte order. `get`
// assumes the caller bounds-checked `off + sizeof(T) <= buf.size()`.
namespace detail {

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
    // Serialize little-endian regardless of host order.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xff));
}

inline void put_double(std::vector<std::uint8_t>& out, double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    put(out, bits);
}

template <typename T>
T get(const std::vector<std::uint8_t>& buf, std::size_t& off) {
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bits |= static_cast<std::uint64_t>(buf[off + i]) << (8 * i);
    off += sizeof(T);
    T value;
    std::memcpy(&value, &bits, sizeof(T));
    return value;
}

inline double get_double(const std::vector<std::uint8_t>& buf, std::size_t& off) {
    const auto bits = get<std::uint64_t>(buf, off);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

// Raw-pointer variants for the scatter-decode path (DESIGN.md §14), which
// parses frames in place from a backend-owned read view rather than from a
// staged vector. The caller bounds-checks `p + sizeof(T)`.
template <typename T>
T get_raw(const std::uint8_t* p) {
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    T value;
    std::memcpy(&value, &bits, sizeof(T));
    return value;
}

inline double get_double_raw(const std::uint8_t* p) {
    const auto bits = get_raw<std::uint64_t>(p);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

}  // namespace detail

}  // namespace spectre::net
