// Wire framing for quote events.
//
// The paper's deployment feeds SPECTRE from "a client program that reads
// events from a source file and sends them to SPECTRE over a TCP connection"
// (§4.1). This module defines the byte format both ends speak: a fixed
// little-endian header per event (timestamp, prices, volume, symbol length)
// followed by the symbol name. Length-prefixed strings keep the protocol
// self-describing; encode/decode are pure functions so they are unit-testable
// without sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/stock.hpp"

namespace spectre::net {

// A decoded wire event (schema-independent; symbols travel by name).
struct WireQuote {
    std::int64_t ts = 0;
    double open = 0, close = 0, volume = 0;
    std::string symbol;

    bool operator==(const WireQuote&) const = default;
};

// Appends the encoding of `q` to `out`.
void encode(const WireQuote& q, std::vector<std::uint8_t>& out);

// Attempts to decode one event starting at `offset`. On success returns the
// event and advances `offset` past it; returns nullopt if the buffer holds an
// incomplete frame (read more). Throws std::runtime_error on a corrupt frame
// (symbol length exceeding kMaxSymbolLength).
std::optional<WireQuote> decode(const std::vector<std::uint8_t>& buffer, std::size_t& offset);

inline constexpr std::size_t kMaxSymbolLength = 64;

// Conversions to/from the engine representation.
WireQuote to_wire(const event::Event& e, const data::StockVocab& vocab);
event::Event from_wire(const WireQuote& q, const data::StockVocab& vocab);

}  // namespace spectre::net
