// IoBackend: the reactor's I/O engine behind an interface (DESIGN.md §14).
//
// CepServer's event loop used to be epoll calls inline; extracting them lets
// the same reactor run over two data planes:
//
//   EpollBackend — the default and the reference. Readiness via level-
//     triggered epoll; read() is one recv() into a backend-owned 64 KiB
//     buffer (right-sized so a single wakeup drains a burst, the pre-§14
//     loop issued 16 KiB recvs); writev() is one non-blocking sendmsg().
//   UringBackend — io_uring over raw syscalls (the container has the kernel
//     UAPI header but no liburing): multishot IORING_OP_RECV with a provided
//     buffer ring for session fds, oneshot poll for listen/wake/admin fds
//     and write interest. read() pops completed buffers without a syscall.
//     Feature-detected at configure time (SPECTRE_HAVE_IO_URING) and probed
//     at runtime — make_io_backend(Uring) falls back to epoll when the
//     kernel (or a seccomp sandbox) refuses io_uring_setup.
//
// The contract both implement (and CepServer/ServerSession assume):
//   * Level-triggered semantics: while interest includes kRead/kWrite and
//     the fd is ready, wait() keeps reporting it. Backends built on oneshot
//     primitives (uring poll) re-arm internally.
//   * read(fd) returns a view of bytes the CALLER must fully consume before
//     the next read() on the same fd — the storage is recycled then. Views
//     are backend-owned; nothing is allocated per call.
//   * writev() is synchronous and non-blocking on both backends (egress
//     credit accounting needs the byte count now, not a completion later);
//     batching comes from the iovec, not from submission queues.
//   * wake() is callable from any thread; wait() then reports one event
//     with tag kWakeTag (the backend owns and drains the eventfd).
//   * One reactor thread: every method except wake() must be called from
//     the thread that calls wait().
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <memory>

namespace spectre::net {

struct IoEvent {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool err_hup = false;
};

class IoBackend {
public:
    // Interest mask bits for add()/mod().
    static constexpr std::uint32_t kRead = 1u << 0;
    static constexpr std::uint32_t kWrite = 1u << 1;
    // Registration hint: this fd streams bulk data through read() — backends
    // may bind it to their buffered receive path (uring: multishot recv with
    // a provided buffer ring). Without it the fd is plain readiness-polled
    // and the caller does its own recv/accept (listen sockets, admin conns).
    static constexpr std::uint32_t kStream = 1u << 2;

    // Reserved tag wait() reports after a wake() (never a caller fd's tag).
    static constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};

    virtual ~IoBackend() = default;

    virtual const char* name() const noexcept = 0;

    // Registers `fd` under `tag`. Returns false on failure (caller drops the
    // connection; the reactor must survive).
    virtual bool add(int fd, std::uint64_t tag, std::uint32_t interest) = 0;
    // Updates the interest mask (kStream is fixed at add()). May fail after
    // the peer hung up — harmless, the fd delivers nothing further.
    virtual bool mod(int fd, std::uint64_t tag, std::uint32_t interest) = 0;
    virtual void del(int fd) = 0;

    // Blocks until at least one event (or a wake). Returns events written to
    // `out` (≤ cap), 0 on EINTR. Negative means the backend is unusable.
    virtual int wait(IoEvent* out, int cap) = 0;

    // Any-thread: make wait() return with a kWakeTag event.
    virtual void wake() = 0;

    enum class ReadStatus { Data, Again, Eof, Error };
    struct ReadView {
        const std::uint8_t* data = nullptr;
        std::size_t size = 0;
    };
    // Next burst of bytes from a kStream fd. Data: `view` is valid until the
    // next read() on this fd. Again: nothing buffered/readable now. Error:
    // transport error (errno-equivalent in read_error()).
    virtual ReadStatus read(int fd, ReadView& view) = 0;
    // errno of the last ReadStatus::Error from read() on this backend.
    virtual int read_error() const noexcept = 0;

    // Non-blocking vectored write (MSG_NOSIGNAL | MSG_DONTWAIT semantics):
    // bytes written, or -1 with errno (EAGAIN/EPIPE/...). Synchronous on
    // both backends by contract (see header comment).
    virtual ssize_t writev(int fd, const struct iovec* iov, int iovcnt);
};

enum class IoBackendKind { Epoll, Uring };

std::unique_ptr<IoBackend> make_epoll_backend();
// nullptr when compiled out or the runtime probe fails (kernel/sandbox).
std::unique_ptr<IoBackend> make_uring_backend();
// True when make_uring_backend() would succeed (probe result is cached).
bool uring_supported() noexcept;

// Kind requested + env override SPECTRE_IO_BACKEND=epoll|uring; Uring falls
// back to epoll when unsupported. Never returns nullptr.
std::unique_ptr<IoBackend> make_io_backend(IoBackendKind kind);

}  // namespace spectre::net
