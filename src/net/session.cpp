#include "net/session.hpp"

#include <stdexcept>

namespace spectre::net {

using detail::get;
using detail::get_double;
using detail::put;
using detail::put_double;

namespace {

void put_string(std::vector<std::uint8_t>& out, const std::string& s, std::size_t max,
                const char* what) {
    if (s.size() > max) throw std::runtime_error(std::string("encode: ") + what + " too long");
    put(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked string read: returns nullopt on an incomplete buffer, throws
// on a length beyond `max` (framing is corrupt, not merely incomplete).
std::optional<std::string> get_string(const std::vector<std::uint8_t>& buf, std::size_t& off,
                                      std::size_t max, const char* what) {
    if (buf.size() - off < sizeof(std::uint32_t)) return std::nullopt;
    std::size_t probe = off;
    const auto len = get<std::uint32_t>(buf, probe);
    if (len > max) throw std::runtime_error(std::string("corrupt frame: ") + what + " too long");
    if (buf.size() - probe < len) return std::nullopt;
    std::string s(buf.begin() + static_cast<std::ptrdiff_t>(probe),
                  buf.begin() + static_cast<std::ptrdiff_t>(probe + len));
    off = probe + len;
    return s;
}

bool have(const std::vector<std::uint8_t>& buf, std::size_t off, std::size_t n) {
    return buf.size() - off >= n;
}

}  // namespace

void encode_frame(const SessionFrame& f, std::vector<std::uint8_t>& out) {
    if (const auto* hello = std::get_if<HelloFrame>(&f)) {
        out.push_back(static_cast<std::uint8_t>(FrameType::Hello));
        put_string(out, hello->query, kMaxQueryLength, "query");
        put(out, hello->instances);
        put(out, hello->shards);
        put_string(out, hello->partition_by, kMaxPartitionKeyLength, "partition key");
    } else if (const auto* data = std::get_if<WireQuote>(&f)) {
        out.push_back(static_cast<std::uint8_t>(FrameType::Data));
        encode(*data, out);
    } else if (const auto* result = std::get_if<ResultFrame>(&f)) {
        out.push_back(static_cast<std::uint8_t>(FrameType::Result));
        put(out, result->window_id);
        put(out, static_cast<std::uint32_t>(result->constituents.size()));
        for (const auto seq : result->constituents) put(out, seq);
        put(out, static_cast<std::uint32_t>(result->payload.size()));
        for (const auto& [name, value] : result->payload) {
            put_string(out, name, kMaxPayloadNameLength, "payload name");
            put_double(out, value);
        }
    } else if (const auto* bye = std::get_if<ByeFrame>(&f)) {
        out.push_back(static_cast<std::uint8_t>(FrameType::Bye));
        put(out, bye->results);
    } else if (const auto* stats = std::get_if<StatsFrame>(&f)) {
        out.push_back(static_cast<std::uint8_t>(FrameType::Stats));
        put_string(out, stats->json, kMaxStatsLength, "stats body");
    } else if (const auto* hello2 = std::get_if<Hello2Frame>(&f)) {
        if (hello2->kv.size() > kMaxHelloPairs)
            throw std::runtime_error("encode: too many HELLO keys");
        out.push_back(static_cast<std::uint8_t>(FrameType::Hello2));
        put(out, static_cast<std::uint32_t>(hello2->kv.size()));
        for (const auto& [key, value] : hello2->kv) {
            put_string(out, key, kMaxHelloKeyLength, "HELLO key");
            // Values are bounded by the largest thing that rides one (the
            // query text); every defined key is far smaller.
            put_string(out, value, kMaxQueryLength, "HELLO value");
        }
    } else {
        const auto& error = std::get<ErrorFrame>(f);
        out.push_back(static_cast<std::uint8_t>(FrameType::Error));
        put_string(out, error.message, kMaxErrorLength, "error message");
    }
}

std::optional<SessionFrame> decode_frame(const std::vector<std::uint8_t>& buffer,
                                         std::size_t& offset) {
    if (!have(buffer, offset, 1)) return std::nullopt;
    const auto tag = buffer[offset];
    std::size_t off = offset + 1;
    switch (static_cast<FrameType>(tag)) {
        case FrameType::Hello: {
            HelloFrame hello;
            auto query = get_string(buffer, off, kMaxQueryLength, "query");
            if (!query) return std::nullopt;
            hello.query = std::move(*query);
            if (!have(buffer, off, 2 * sizeof(std::uint32_t))) return std::nullopt;
            hello.instances = get<std::uint32_t>(buffer, off);
            hello.shards = get<std::uint32_t>(buffer, off);
            auto partition = get_string(buffer, off, kMaxPartitionKeyLength, "partition key");
            if (!partition) return std::nullopt;
            hello.partition_by = std::move(*partition);
            offset = off;
            return SessionFrame{std::move(hello)};
        }
        case FrameType::Data: {
            auto quote = decode(buffer, off);
            if (!quote) return std::nullopt;
            offset = off;
            return SessionFrame{std::move(*quote)};
        }
        case FrameType::Result: {
            ResultFrame result;
            if (!have(buffer, off, 8 + 4)) return std::nullopt;
            result.window_id = get<std::uint64_t>(buffer, off);
            const auto n_constituents = get<std::uint32_t>(buffer, off);
            if (n_constituents > kMaxResultConstituents)
                throw std::runtime_error("corrupt frame: too many constituents");
            if (!have(buffer, off, std::size_t{n_constituents} * 8)) return std::nullopt;
            result.constituents.reserve(n_constituents);
            for (std::uint32_t i = 0; i < n_constituents; ++i)
                result.constituents.push_back(get<std::uint64_t>(buffer, off));
            if (!have(buffer, off, 4)) return std::nullopt;
            const auto n_payload = get<std::uint32_t>(buffer, off);
            if (n_payload > kMaxResultPayload)
                throw std::runtime_error("corrupt frame: payload too large");
            result.payload.reserve(n_payload);
            for (std::uint32_t i = 0; i < n_payload; ++i) {
                auto name = get_string(buffer, off, kMaxPayloadNameLength, "payload name");
                if (!name) return std::nullopt;
                if (!have(buffer, off, 8)) return std::nullopt;
                result.payload.emplace_back(std::move(*name), get_double(buffer, off));
            }
            offset = off;
            return SessionFrame{std::move(result)};
        }
        case FrameType::Bye: {
            if (!have(buffer, off, 8)) return std::nullopt;
            ByeFrame bye;
            bye.results = get<std::uint64_t>(buffer, off);
            offset = off;
            return SessionFrame{bye};
        }
        case FrameType::Error: {
            auto message = get_string(buffer, off, kMaxErrorLength, "error message");
            if (!message) return std::nullopt;
            offset = off;
            return SessionFrame{ErrorFrame{std::move(*message)}};
        }
        case FrameType::Stats: {
            auto json = get_string(buffer, off, kMaxStatsLength, "stats body");
            if (!json) return std::nullopt;
            offset = off;
            return SessionFrame{StatsFrame{std::move(*json)}};
        }
        case FrameType::Hello2: {
            if (!have(buffer, off, sizeof(std::uint32_t))) return std::nullopt;
            const auto pairs = get<std::uint32_t>(buffer, off);
            if (pairs > kMaxHelloPairs)
                throw std::runtime_error("corrupt frame: too many HELLO keys");
            Hello2Frame hello2;
            hello2.kv.reserve(pairs);
            for (std::uint32_t i = 0; i < pairs; ++i) {
                auto key = get_string(buffer, off, kMaxHelloKeyLength, "HELLO key");
                if (!key) return std::nullopt;
                auto value = get_string(buffer, off, kMaxQueryLength, "HELLO value");
                if (!value) return std::nullopt;
                hello2.kv.emplace_back(std::move(*key), std::move(*value));
            }
            offset = off;
            return SessionFrame{std::move(hello2)};
        }
    }
    throw std::runtime_error("corrupt frame: unknown frame type " + std::to_string(tag));
}

ResultFrame to_result_frame(const event::ComplexEvent& ce) {
    return ResultFrame{ce.window_id, ce.constituents, ce.payload};
}

event::ComplexEvent from_result_frame(const ResultFrame& r) {
    event::ComplexEvent ce;
    ce.window_id = r.window_id;
    ce.constituents = r.constituents;
    ce.payload = r.payload;
    return ce;
}

ScatterStatus scatter_data(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                           DataFrameView& dv) {
    if (data[pos] != static_cast<std::uint8_t>(FrameType::Data)) return ScatterStatus::Control;
    if (size - pos < 1 + kWireQuoteHeaderBytes) return ScatterStatus::NeedMore;
    const std::uint8_t* p = data + pos + 1;
    const auto len = detail::get_raw<std::uint32_t>(p + 32);
    if (len > kMaxSymbolLength) throw std::runtime_error("corrupt frame: symbol too long");
    if (size - pos < 1 + kWireQuoteHeaderBytes + len) return ScatterStatus::NeedMore;
    dv.ts = static_cast<std::int64_t>(detail::get_raw<std::uint64_t>(p));
    dv.open = detail::get_double_raw(p + 8);
    dv.close = detail::get_double_raw(p + 16);
    dv.volume = detail::get_double_raw(p + 24);
    dv.symbol = reinterpret_cast<const char*>(p + kWireQuoteHeaderBytes);
    dv.symbol_len = len;
    pos += 1 + kWireQuoteHeaderBytes + len;
    return ScatterStatus::Data;
}

std::size_t FrameReader::tail_need() const {
    const std::size_t avail = buffer_.size() - offset_;
    if (avail == 0) return 0;
    // Mirrors decode_frame's field walk, tracking sizes only. Returns the
    // bytes missing for the next decode step — a lower bound the caller can
    // feed exactly and recompute; it reaches the frame end in O(fields)
    // iterations, never dragging unrelated bytes through the staging copy.
    const auto want = [avail](std::size_t o, std::size_t n) -> std::size_t {
        return avail < o + n ? o + n - avail : 0;
    };
    const auto u32 = [this](std::size_t o) -> std::uint32_t {
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(buffer_[offset_ + o + i]) << (8 * i);
        return v;
    };
    // Length-prefixed string at body offset `o`: advances `o` past it, or
    // returns the missing byte count. Oversized lengths are poll()'s problem
    // (it throws corrupt-frame as soon as the length field is readable).
    const auto string_need = [&](std::size_t& o) -> std::size_t {
        if (const auto n = want(o, 4)) return n;
        const std::size_t len = u32(o);
        o += 4;
        if (const auto n = want(o, len)) return n;
        o += len;
        return 0;
    };
    std::size_t need = 0;
    std::size_t o = 1;  // past the tag byte
    switch (static_cast<FrameType>(buffer_[offset_])) {
        case FrameType::Hello:
            if ((need = string_need(o))) return need;  // query
            if ((need = want(o, 8))) return need;      // instances + shards
            o += 8;
            return string_need(o);  // partition key
        case FrameType::Data: {
            if ((need = want(o, kWireQuoteHeaderBytes))) return need;
            return want(o + kWireQuoteHeaderBytes, u32(o + 32));
        }
        case FrameType::Result: {
            if ((need = want(o, 12))) return need;  // window id + #constituents
            const std::size_t nc = u32(o + 8);
            o += 12;
            if ((need = want(o, nc * 8 + 4))) return need;
            o += nc * 8;
            const std::uint32_t np = u32(o);
            o += 4;
            for (std::uint32_t i = 0; i < np; ++i) {
                if ((need = string_need(o))) return need;
                if ((need = want(o, 8))) return need;
                o += 8;
            }
            return 0;
        }
        case FrameType::Bye:
            return want(o, 8);
        case FrameType::Error:
        case FrameType::Stats:
            return string_need(o);
        case FrameType::Hello2: {
            if ((need = want(o, 4))) return need;  // pair count
            const std::uint32_t pairs = u32(o);
            o += 4;
            for (std::uint32_t i = 0; i < pairs; ++i) {
                if ((need = string_need(o))) return need;  // key
                if ((need = string_need(o))) return need;  // value
            }
            return 0;
        }
    }
    return 1;  // unknown tag: stage it and let poll() throw
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
    // Compact consumed bytes occasionally so the buffer stays small.
    if (offset_ > 1 << 16) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
        offset_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<SessionFrame> FrameReader::poll() { return decode_frame(buffer_, offset_); }

}  // namespace spectre::net
