// UringBackend: io_uring data plane behind the IoBackend interface
// (DESIGN.md §14), written against the raw kernel UAPI — the container has
// <linux/io_uring.h> but no liburing, so ring setup/mmap/submission are done
// by hand with __atomic builtins for the ring barriers.
//
// Layout of the plane:
//   * kStream fds (session connections) run a multishot IORING_OP_RECV with
//     IOSQE_BUFFER_SELECT over one provided-buffer ring (group 0): the
//     kernel copies socket bytes straight into backend-owned slab buffers
//     and posts one CQE per burst; read() pops completed segments without a
//     syscall and recycles each buffer once the caller moves to the next.
//   * Everything else (listen, admin, write interest, the wake eventfd) is
//     oneshot IORING_OP_POLL_ADD. Oneshot polls + multishot terminations are
//     reconciled against the *desired* interest at the top of every wait(),
//     which is what makes the backend look level-triggered to CepServer:
//     interest persists ⇒ the op is re-armed before the reactor blocks.
//   * Pausing a stream read (mod() without kRead) submits ASYNC_CANCEL — a
//     paused session must stop consuming shared slab buffers, not merely be
//     ignored; already-completed segments stay queued and a resume "kicks"
//     the fd so wait() reports it readable without new kernel traffic.
//
// Feature gating: compiled when CMake found the UAPI header
// (SPECTRE_HAVE_IO_URING); at runtime uring_supported() probes one throwaway
// ring including IORING_REGISTER_PBUF_RING, so a kernel or seccomp policy
// that refuses io_uring makes make_uring_backend() return nullptr and the
// factory falls back to epoll.
#include "net/io_backend.hpp"

#if defined(__linux__) && defined(SPECTRE_HAVE_IO_URING)

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

namespace spectre::net {

namespace {

int sys_io_uring_setup(unsigned entries, struct io_uring_params* p) {
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
    return static_cast<int>(
        ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr_args) {
    return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// user_data encoding: low byte = op kind, rest = fd.
enum Ud : std::uint64_t { kUdRecv = 1, kUdPollRead = 2, kUdPollWrite = 3, kUdWake = 4, kUdCancel = 5 };

std::uint64_t ud_make(Ud kind, int fd) {
    return static_cast<std::uint64_t>(kind) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 8);
}

class UringBackend final : public IoBackend {
public:
    // Provided-buffer slab: 64 × 32 KiB = 2 MiB. Bounded regardless of the
    // session count — a paused session is cancelled off the shared pool, so
    // slow consumers cannot pin the slab (see header comment).
    static constexpr unsigned kBufCount = 64;  // power of two (ring entries)
    static constexpr std::size_t kBufBytes = 32 * 1024;
    static constexpr unsigned kSqEntries = 512;
    static constexpr unsigned kCqEntries = 4096;
    static constexpr std::uint16_t kBufGroup = 0;

    static std::unique_ptr<UringBackend> create() {
        auto backend = std::unique_ptr<UringBackend>(new UringBackend());
        if (!backend->init()) return nullptr;
        return backend;
    }

    ~UringBackend() override {
        if (buf_ring_ != MAP_FAILED && buf_ring_ != nullptr) {
            if (ring_fd_ >= 0) {
                struct io_uring_buf_reg reg {};
                reg.bgid = kBufGroup;
                sys_io_uring_register(ring_fd_, IORING_UNREGISTER_PBUF_RING, &reg, 1);
            }
            ::munmap(buf_ring_, buf_ring_bytes_);
        }
        if (sqes_ != nullptr && sqes_ != MAP_FAILED) ::munmap(sqes_, sqes_bytes_);
        if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != MAP_FAILED && cq_ring_ptr_ != sq_ring_ptr_)
            ::munmap(cq_ring_ptr_, cq_ring_bytes_);
        if (sq_ring_ptr_ != nullptr && sq_ring_ptr_ != MAP_FAILED)
            ::munmap(sq_ring_ptr_, sq_ring_bytes_);
        if (ring_fd_ >= 0) ::close(ring_fd_);
        if (wake_fd_ >= 0) ::close(wake_fd_);
    }

    const char* name() const noexcept override { return "io_uring"; }

    bool add(int fd, std::uint64_t tag, std::uint32_t interest) override {
        auto [it, inserted] = fds_.try_emplace(fd);
        if (!inserted) return false;
        FdState& st = it->second;
        st.tag = tag;
        st.interest = interest;
        st.stream = (interest & kStream) != 0;
        mark_dirty(fd, st);
        return true;
    }

    bool mod(int fd, std::uint64_t tag, std::uint32_t interest) override {
        auto it = fds_.find(fd);
        if (it == fds_.end()) return false;
        FdState& st = it->second;
        st.tag = tag;
        const bool read_resumed = (interest & kRead) && !(st.interest & kRead);
        st.interest = (interest & (kRead | kWrite)) | (st.stream ? kStream : 0u);
        mark_dirty(fd, st);
        // Resuming reads with segments already buffered: no CQE will arrive
        // for them, so queue a synthetic readable event ("kick").
        if (read_resumed && st.stream && (!st.segs.empty() || st.eof || st.err != 0))
            mark_evented(fd, st);
        return true;
    }

    void del(int fd) override {
        auto it = fds_.find(fd);
        if (it == fds_.end()) return;
        FdState& st = it->second;
        if (st.recv_armed && !st.cancel_pending) submit_cancel(ud_make(kUdRecv, fd), fd);
        if (st.rpoll_armed) submit_cancel(ud_make(kUdPollRead, fd), fd);
        if (st.wpoll_armed) submit_cancel(ud_make(kUdPollWrite, fd), fd);
        if (st.cur_bid >= 0) recycle_buffer(static_cast<std::uint16_t>(st.cur_bid));
        for (const Seg& s : st.segs) recycle_buffer(s.bid);
        fds_.erase(it);
        // Stale entries in evented_ are skipped at emit time (lookup miss).
    }

    int wait(IoEvent* out, int cap) override {
        if (cap <= 0) return 0;
        for (;;) {
            reconcile();
            process_completions();
            if (!evented_.empty() || wake_signalled_) {
                flush_submissions();  // re-arms must reach the kernel first
                return emit(out, cap);
            }
            // Block. Pending submissions ride the same enter(); on failure
            // they stay accounted and are retried on the next pass.
            const int rc =
                sys_io_uring_enter(ring_fd_, pending_submit_, 1, IORING_ENTER_GETEVENTS);
            if (rc < 0) {
                if (errno == EINTR) return 0;
                if (errno == EBUSY) {  // CQ overflow backlog: drain and retry
                    process_completions();
                    continue;
                }
                return -1;
            }
            pending_submit_ -= std::min(static_cast<unsigned>(rc), pending_submit_);
        }
    }

    void wake() override {
        const std::uint64_t one = 1;
        [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
    }

    ReadStatus read(int fd, ReadView& view) override {
        auto it = fds_.find(fd);
        if (it == fds_.end()) return ReadStatus::Again;
        FdState& st = it->second;
        if (st.cur_bid >= 0) {
            recycle_buffer(static_cast<std::uint16_t>(st.cur_bid));
            st.cur_bid = -1;
        }
        if (!st.segs.empty()) {
            const Seg seg = st.segs.front();
            st.segs.pop_front();
            st.cur_bid = seg.bid;
            view = ReadView{slab_.data() + std::size_t{seg.bid} * kBufBytes, seg.len};
            return ReadStatus::Data;
        }
        if (st.err != 0) {
            read_errno_ = st.err;
            return ReadStatus::Error;
        }
        if (st.eof) return ReadStatus::Eof;
        return ReadStatus::Again;
    }

    int read_error() const noexcept override { return read_errno_; }

private:
    struct Seg {
        std::uint16_t bid;
        std::uint32_t len;
    };

    struct FdState {
        std::uint64_t tag = 0;
        std::uint32_t interest = 0;
        bool stream = false;
        bool recv_armed = false;
        bool cancel_pending = false;
        bool rpoll_armed = false;
        bool wpoll_armed = false;
        bool dirty = false;
        bool evented = false;
        bool eof = false;
        int err = 0;
        int cur_bid = -1;  // buffer handed to the caller via read()
        bool pend_readable = false, pend_writable = false, pend_err_hup = false;
        std::deque<Seg> segs;
    };

    UringBackend() = default;

    bool init() {
        wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (wake_fd_ < 0) return false;

        struct io_uring_params params {};
        params.flags = IORING_SETUP_CQSIZE;
        params.cq_entries = kCqEntries;
        ring_fd_ = sys_io_uring_setup(kSqEntries, &params);
        if (ring_fd_ < 0) return false;
        if (!(params.features & IORING_FEAT_NODROP)) return false;  // too old

        sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
        cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
        if (params.features & IORING_FEAT_SINGLE_MMAP) {
            sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
        }
        sq_ring_ptr_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                              MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
        if (sq_ring_ptr_ == MAP_FAILED) return false;
        if (params.features & IORING_FEAT_SINGLE_MMAP) {
            cq_ring_ptr_ = sq_ring_ptr_;
        } else {
            cq_ring_ptr_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                                  MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
            if (cq_ring_ptr_ == MAP_FAILED) return false;
        }
        sqes_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
        sqes_ = static_cast<struct io_uring_sqe*>(::mmap(nullptr, sqes_bytes_,
                                                         PROT_READ | PROT_WRITE,
                                                         MAP_SHARED | MAP_POPULATE, ring_fd_,
                                                         IORING_OFF_SQES));
        if (sqes_ == MAP_FAILED) return false;

        auto* sq_base = static_cast<std::uint8_t*>(sq_ring_ptr_);
        sq_head_ = reinterpret_cast<std::uint32_t*>(sq_base + params.sq_off.head);
        sq_tail_ = reinterpret_cast<std::uint32_t*>(sq_base + params.sq_off.tail);
        sq_mask_ = *reinterpret_cast<std::uint32_t*>(sq_base + params.sq_off.ring_mask);
        sq_array_ = reinterpret_cast<std::uint32_t*>(sq_base + params.sq_off.array);
        sq_entries_ = params.sq_entries;
        // Identity-map the indirection array once; slot i holds sqe i.
        for (std::uint32_t i = 0; i < sq_entries_; ++i) sq_array_[i] = i;
        local_sq_tail_ = *sq_tail_;

        auto* cq_base = static_cast<std::uint8_t*>(cq_ring_ptr_);
        cq_head_ = reinterpret_cast<std::uint32_t*>(cq_base + params.cq_off.head);
        cq_tail_ = reinterpret_cast<std::uint32_t*>(cq_base + params.cq_off.tail);
        cq_mask_ = *reinterpret_cast<std::uint32_t*>(cq_base + params.cq_off.ring_mask);
        cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq_base + params.cq_off.cqes);

        // Provided-buffer ring + slab.
        buf_ring_bytes_ = kBufCount * sizeof(struct io_uring_buf);
        buf_ring_ = ::mmap(nullptr, buf_ring_bytes_, PROT_READ | PROT_WRITE,
                           MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
        if (buf_ring_ == MAP_FAILED) return false;
        std::memset(buf_ring_, 0, buf_ring_bytes_);
        struct io_uring_buf_reg reg {};
        reg.ring_addr = reinterpret_cast<std::uint64_t>(buf_ring_);
        reg.ring_entries = kBufCount;
        reg.bgid = kBufGroup;
        if (sys_io_uring_register(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0)
            return false;
        slab_.resize(std::size_t{kBufCount} * kBufBytes);
        for (std::uint16_t bid = 0; bid < kBufCount; ++bid) publish_buffer(bid);
        return true;
    }

    // --- provided buffer ring ----------------------------------------------

    struct io_uring_buf* buf_slot(std::uint32_t idx) noexcept {
        return reinterpret_cast<struct io_uring_buf*>(buf_ring_) + (idx & (kBufCount - 1));
    }

    void publish_buffer(std::uint16_t bid) {
        struct io_uring_buf* slot = buf_slot(buf_ring_tail_);
        slot->addr = reinterpret_cast<std::uint64_t>(slab_.data() + std::size_t{bid} * kBufBytes);
        slot->len = kBufBytes;
        slot->bid = bid;
        // Never write slot->resv: entry 0's resv field overlays the ring tail.
        ++buf_ring_tail_;
        auto* ring = reinterpret_cast<struct io_uring_buf_ring*>(buf_ring_);
        __atomic_store_n(&ring->tail, static_cast<std::uint16_t>(buf_ring_tail_),
                         __ATOMIC_RELEASE);
    }

    void recycle_buffer(std::uint16_t bid) {
        publish_buffer(bid);
        --outstanding_bufs_;
        if (buf_starved_) {
            // Multishot recvs that died with ENOBUFS can be re-armed now.
            buf_starved_ = false;
            for (auto& [fd, st] : fds_)
                if (st.stream && (st.interest & kRead) && !st.recv_armed) mark_dirty(fd, st);
        }
    }

    // --- submission --------------------------------------------------------

    struct io_uring_sqe* get_sqe() {
        if (local_sq_tail_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) >= sq_entries_)
            flush_submissions();
        struct io_uring_sqe* sqe = &sqes_[local_sq_tail_ & sq_mask_];
        std::memset(sqe, 0, sizeof(*sqe));
        ++local_sq_tail_;
        __atomic_store_n(sq_tail_, local_sq_tail_, __ATOMIC_RELEASE);
        ++pending_submit_;
        return sqe;
    }

    void flush_submissions() {
        while (pending_submit_ > 0) {
            const int rc = sys_io_uring_enter(ring_fd_, pending_submit_, 0, 0);
            if (rc >= 0) {
                pending_submit_ -= static_cast<unsigned>(rc) < pending_submit_
                                       ? static_cast<unsigned>(rc)
                                       : pending_submit_;
                if (rc == 0) break;  // defensive: avoid spinning
                continue;
            }
            if (errno == EINTR) continue;
            if (errno == EBUSY) {  // CQ overflow: make room, then retry
                process_completions();
                continue;
            }
            pending_submit_ = 0;  // unsubmittable; ops are lost, fds will stall
            break;
        }
    }

    void submit_recv_multishot(int fd) {
        struct io_uring_sqe* sqe = get_sqe();
        sqe->opcode = IORING_OP_RECV;
        sqe->fd = fd;
        sqe->ioprio = IORING_RECV_MULTISHOT;
        sqe->flags = IOSQE_BUFFER_SELECT;
        sqe->buf_group = kBufGroup;
        sqe->user_data = ud_make(kUdRecv, fd);
    }

    void submit_poll(int fd, Ud kind, std::uint32_t poll_mask) {
        struct io_uring_sqe* sqe = get_sqe();
        sqe->opcode = IORING_OP_POLL_ADD;
        sqe->fd = fd;
        sqe->poll32_events = poll_mask;  // little-endian host: no word swap
        sqe->user_data = ud_make(kind, fd);
    }

    void submit_cancel(std::uint64_t target_ud, int fd) {
        struct io_uring_sqe* sqe = get_sqe();
        sqe->opcode = IORING_OP_ASYNC_CANCEL;
        sqe->fd = -1;
        sqe->addr = target_ud;
        sqe->user_data = ud_make(kUdCancel, fd);
    }

    // --- interest reconciliation (the level-trigger emulation) -------------

    void mark_dirty(int fd, FdState& st) {
        if (st.dirty) return;
        st.dirty = true;
        dirty_.push_back(fd);
    }

    void mark_evented(int fd, FdState& st) {
        if (st.evented) return;
        st.evented = true;
        evented_.push_back(fd);
    }

    void reconcile() {
        if (!wake_armed_) {
            submit_poll(wake_fd_, kUdWake, POLLIN);
            wake_armed_ = true;
        }
        for (std::size_t i = 0; i < dirty_.size(); ++i) {  // may grow via flush→process
            const int fd = dirty_[i];
            auto it = fds_.find(fd);
            if (it == fds_.end()) continue;
            FdState& st = it->second;
            st.dirty = false;
            if (st.stream) {
                const bool want = (st.interest & kRead) && !st.eof && st.err == 0;
                if (want && !st.recv_armed && !st.cancel_pending) {
                    if (outstanding_bufs_ >= kBufCount) {
                        buf_starved_ = true;  // re-marked dirty on recycle
                    } else {
                        submit_recv_multishot(fd);
                        st.recv_armed = true;
                    }
                } else if (!want && st.recv_armed && !st.cancel_pending) {
                    submit_cancel(ud_make(kUdRecv, fd), fd);
                    st.cancel_pending = true;
                }
            } else if ((st.interest & kRead) && !st.rpoll_armed) {
                submit_poll(fd, kUdPollRead, POLLIN);
                st.rpoll_armed = true;
            }
            if ((st.interest & kWrite) && !st.wpoll_armed) {
                submit_poll(fd, kUdPollWrite, POLLOUT);
                st.wpoll_armed = true;
            }
        }
        dirty_.clear();
    }

    // --- completion processing ---------------------------------------------

    void process_completions() {
        std::uint32_t head = *cq_head_;
        const std::uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
        while (head != tail) {
            const struct io_uring_cqe* cqe = &cqes_[head & cq_mask_];
            handle_cqe(cqe);
            ++head;
        }
        __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    }

    void handle_cqe(const struct io_uring_cqe* cqe) {
        const auto kind = static_cast<Ud>(cqe->user_data & 0xff);
        const int fd = static_cast<int>(cqe->user_data >> 8);
        if (kind == kUdWake) {
            wake_armed_ = false;
            std::uint64_t token = 0;
            while (::read(wake_fd_, &token, sizeof(token)) > 0) {
            }
            if (cqe->res > 0) wake_signalled_ = true;
            return;
        }
        if (kind == kUdCancel) {
            // A cancel that found nothing (-ENOENT) means the target op
            // already reached a terminal CQE; clear the latch so reconcile
            // can re-arm.
            if (cqe->res < 0) {
                auto it = fds_.find(fd);
                if (it != fds_.end()) {
                    it->second.cancel_pending = false;
                    mark_dirty(fd, it->second);
                }
            }
            return;
        }
        auto it = fds_.find(fd);
        if (kind == kUdRecv) {
            const bool has_buf = (cqe->flags & IORING_CQE_F_BUFFER) != 0;
            const auto bid =
                static_cast<std::uint16_t>(cqe->flags >> IORING_CQE_BUFFER_SHIFT);
            if (has_buf) ++outstanding_bufs_;
            if (it == fds_.end()) {  // fd was del()'d with this CQE in flight
                if (has_buf) recycle_buffer(bid);
                return;
            }
            FdState& st = it->second;
            if (cqe->res > 0 && has_buf) {
                st.segs.push_back(Seg{bid, static_cast<std::uint32_t>(cqe->res)});
                if (st.interest & kRead) mark_evented(fd, st);
            } else if (has_buf) {
                recycle_buffer(bid);  // zero-length or error CQE with a buffer
            }
            if (cqe->res == 0) {
                st.eof = true;
                if (st.interest & kRead) mark_evented(fd, st);
            } else if (cqe->res < 0) {
                if (cqe->res == -ENOBUFS) {
                    buf_starved_ = true;
                } else if (cqe->res != -ECANCELED) {
                    st.err = -cqe->res;
                    if (st.interest & kRead) mark_evented(fd, st);
                }
            }
            if (!(cqe->flags & IORING_CQE_F_MORE)) {
                st.recv_armed = false;
                st.cancel_pending = false;
                mark_dirty(fd, st);  // re-armed iff interest persists
            }
            return;
        }
        // Oneshot polls (kUdPollRead / kUdPollWrite).
        if (it == fds_.end()) return;
        FdState& st = it->second;
        if (kind == kUdPollRead) st.rpoll_armed = false;
        if (kind == kUdPollWrite) st.wpoll_armed = false;
        mark_dirty(fd, st);  // level-trigger: re-arm while interest persists
        if (cqe->res <= 0) return;  // cancelled or error-free spurious wake
        const auto revents = static_cast<std::uint32_t>(cqe->res);
        if (revents & POLLIN) st.pend_readable = true;
        if (revents & POLLOUT) st.pend_writable = true;
        if (revents & (POLLERR | POLLHUP)) st.pend_err_hup = true;
        mark_evented(fd, st);
    }

    int emit(IoEvent* out, int cap) {
        int produced = 0;
        if (wake_signalled_ && produced < cap) {
            wake_signalled_ = false;
            out[produced++] = IoEvent{kWakeTag, false, false, false};
        }
        std::size_t taken = 0;
        while (taken < evented_.size() && produced < cap) {
            const int fd = evented_[taken++];
            auto it = fds_.find(fd);
            if (it == fds_.end()) continue;
            FdState& st = it->second;
            st.evented = false;
            IoEvent e;
            e.tag = st.tag;
            const bool stream_readable =
                st.stream && (st.interest & kRead) &&
                (!st.segs.empty() || st.cur_bid >= 0 || st.eof || st.err != 0);
            e.readable = st.pend_readable || stream_readable;
            e.writable = st.pend_writable;
            e.err_hup = st.pend_err_hup;
            st.pend_readable = st.pend_writable = st.pend_err_hup = false;
            if (e.readable || e.writable || e.err_hup) out[produced++] = e;
        }
        evented_.erase(evented_.begin(),
                       evented_.begin() + static_cast<std::ptrdiff_t>(taken));
        return produced;
    }

    int ring_fd_ = -1;
    int wake_fd_ = -1;
    int read_errno_ = 0;

    void* sq_ring_ptr_ = nullptr;
    void* cq_ring_ptr_ = nullptr;
    std::size_t sq_ring_bytes_ = 0, cq_ring_bytes_ = 0;
    struct io_uring_sqe* sqes_ = nullptr;
    std::size_t sqes_bytes_ = 0;

    std::uint32_t* sq_head_ = nullptr;
    std::uint32_t* sq_tail_ = nullptr;
    std::uint32_t* sq_array_ = nullptr;
    std::uint32_t sq_mask_ = 0, sq_entries_ = 0;
    std::uint32_t local_sq_tail_ = 0;
    unsigned pending_submit_ = 0;

    std::uint32_t* cq_head_ = nullptr;
    std::uint32_t* cq_tail_ = nullptr;
    std::uint32_t cq_mask_ = 0;
    struct io_uring_cqe* cqes_ = nullptr;

    void* buf_ring_ = nullptr;
    std::size_t buf_ring_bytes_ = 0;
    std::vector<std::uint8_t> slab_;
    std::uint32_t buf_ring_tail_ = 0;
    unsigned outstanding_bufs_ = 0;
    bool buf_starved_ = false;

    bool wake_armed_ = false;
    bool wake_signalled_ = false;

    std::unordered_map<int, FdState> fds_;
    std::vector<int> dirty_;
    std::vector<int> evented_;
};

}  // namespace

std::unique_ptr<IoBackend> make_uring_backend() {
    if (!uring_supported()) return nullptr;
    return UringBackend::create();
}

bool uring_supported() noexcept {
    // Probe once: full ring construction including the pbuf-ring registration
    // (a kernel can have io_uring but lack IORING_REGISTER_PBUF_RING, and a
    // seccomp sandbox can refuse the setup syscall outright).
    static const bool supported = [] {
        try {
            return UringBackend::create() != nullptr;
        } catch (...) {
            return false;
        }
    }();
    return supported;
}

}  // namespace spectre::net

#else  // !SPECTRE_HAVE_IO_URING

namespace spectre::net {

std::unique_ptr<IoBackend> make_uring_backend() { return nullptr; }
bool uring_supported() noexcept { return false; }

}  // namespace spectre::net

#endif
