// EpollBackend: the default/reference IoBackend (DESIGN.md §14).
//
// A thin shim over the level-triggered epoll loop CepServer used to inline:
// add/mod/del are epoll_ctl, wait() is epoll_wait, read() is one recv() into
// a backend-owned 64 KiB buffer. The buffer is sized so one wakeup usually
// drains a whole burst (the pre-§14 loop recv'd 16 KiB at a time); callers
// loop read() until Again, so syscalls-per-event is recv count, not wakeup
// count. The wake eventfd lives inside the backend — it owns registration
// and draining, and reports the reserved kWakeTag.
#include "net/io_backend.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace spectre::net {

namespace {

class EpollBackend final : public IoBackend {
public:
    static constexpr std::size_t kReadBufferBytes = 64 * 1024;

    EpollBackend() : buffer_(kReadBufferBytes) {
        epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
        SPECTRE_REQUIRE(epoll_fd_ >= 0, "epoll_create1 failed");
        wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        SPECTRE_REQUIRE(wake_fd_ >= 0, "eventfd failed");
        struct epoll_event ev {};
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeTag;
        SPECTRE_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                        "epoll_ctl(wake) failed");
    }

    ~EpollBackend() override {
        ::close(wake_fd_);
        ::close(epoll_fd_);
    }

    const char* name() const noexcept override { return "epoll"; }

    bool add(int fd, std::uint64_t tag, std::uint32_t interest) override {
        struct epoll_event ev {};
        ev.events = translate(interest);
        ev.data.u64 = tag;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    }

    bool mod(int fd, std::uint64_t tag, std::uint32_t interest) override {
        struct epoll_event ev {};
        ev.events = translate(interest);
        ev.data.u64 = tag;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
    }

    void del(int fd) override {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    }

    int wait(IoEvent* out, int cap) override {
        if (static_cast<int>(scratch_.size()) < cap) scratch_.resize(static_cast<std::size_t>(cap));
        const int n = ::epoll_wait(epoll_fd_, scratch_.data(), cap, -1);
        if (n < 0) return errno == EINTR ? 0 : -1;
        int produced = 0;
        for (int i = 0; i < n; ++i) {
            const auto& ev = scratch_[static_cast<std::size_t>(i)];
            if (ev.data.u64 == kWakeTag) {
                std::uint64_t token = 0;
                while (::read(wake_fd_, &token, sizeof(token)) > 0) {
                }
                out[produced++] = IoEvent{kWakeTag, false, false, false};
                continue;
            }
            IoEvent e;
            e.tag = ev.data.u64;
            e.readable = (ev.events & EPOLLIN) != 0;
            e.writable = (ev.events & EPOLLOUT) != 0;
            e.err_hup = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
            out[produced++] = e;
        }
        return produced;
    }

    void wake() override {
        const std::uint64_t one = 1;
        [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
    }

    ReadStatus read(int fd, ReadView& view) override {
        for (;;) {
            const ssize_t n = ::recv(fd, buffer_.data(), buffer_.size(), 0);
            if (n > 0) {
                view = ReadView{buffer_.data(), static_cast<std::size_t>(n)};
                return ReadStatus::Data;
            }
            if (n == 0) return ReadStatus::Eof;
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::Again;
            read_errno_ = errno;
            return ReadStatus::Error;
        }
    }

    int read_error() const noexcept override { return read_errno_; }

private:
    static std::uint32_t translate(std::uint32_t interest) noexcept {
        std::uint32_t events = 0;
        if (interest & kRead) events |= EPOLLIN;
        if (interest & kWrite) events |= EPOLLOUT;
        return events;  // kStream is a read()-path hint; epoll ignores it
    }

    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    int read_errno_ = 0;
    std::vector<std::uint8_t> buffer_;
    std::vector<struct epoll_event> scratch_;
};

}  // namespace

std::unique_ptr<IoBackend> make_epoll_backend() {
    return std::make_unique<EpollBackend>();
}

}  // namespace spectre::net
