#include "net/io_backend.hpp"

#include <sys/socket.h>

#include <cstdlib>
#include <cstring>

namespace spectre::net {

ssize_t IoBackend::writev(int fd, const struct iovec* iov, int iovcnt) {
    // Shared default: one non-blocking vectored send. Deliberately a plain
    // syscall on both backends — egress credit accounting (DESIGN.md §9)
    // consumes the byte count synchronously, and sendmsg is thread-safe, so
    // pool workers may flush without touching reactor state. Batching comes
    // from the iovec, not from a submission queue.
    struct msghdr msg {};
    msg.msg_iov = const_cast<struct iovec*>(iov);
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    return ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
}

std::unique_ptr<IoBackend> make_io_backend(IoBackendKind kind) {
    if (const char* env = std::getenv("SPECTRE_IO_BACKEND")) {
        if (std::strcmp(env, "uring") == 0) kind = IoBackendKind::Uring;
        else if (std::strcmp(env, "epoll") == 0) kind = IoBackendKind::Epoll;
    }
    if (kind == IoBackendKind::Uring) {
        if (auto backend = make_uring_backend()) return backend;
    }
    return make_epoll_backend();
}

}  // namespace spectre::net
