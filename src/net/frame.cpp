#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

#include "util/assert.hpp"

namespace spectre::net {

using detail::get;
using detail::get_double;
using detail::put;
using detail::put_double;

void encode(const WireQuote& q, std::vector<std::uint8_t>& out) {
    SPECTRE_REQUIRE(q.symbol.size() <= kMaxSymbolLength, "symbol name too long");
    put(out, static_cast<std::uint64_t>(q.ts));
    put_double(out, q.open);
    put_double(out, q.close);
    put_double(out, q.volume);
    put(out, static_cast<std::uint32_t>(q.symbol.size()));
    out.insert(out.end(), q.symbol.begin(), q.symbol.end());
}

std::optional<WireQuote> decode(const std::vector<std::uint8_t>& buffer,
                                std::size_t& offset) {
    if (buffer.size() - offset < kWireQuoteHeaderBytes) return std::nullopt;
    std::size_t off = offset;
    WireQuote q;
    q.ts = static_cast<std::int64_t>(get<std::uint64_t>(buffer, off));
    q.open = get<double>(buffer, off);
    q.close = get<double>(buffer, off);
    q.volume = get<double>(buffer, off);
    const auto len = get<std::uint32_t>(buffer, off);
    if (len > kMaxSymbolLength) throw std::runtime_error("corrupt frame: symbol too long");
    if (buffer.size() - off < len) return std::nullopt;
    q.symbol.assign(buffer.begin() + static_cast<std::ptrdiff_t>(off),
                    buffer.begin() + static_cast<std::ptrdiff_t>(off + len));
    offset = off + len;
    return q;
}

WireQuote to_wire(const event::Event& e, const data::StockVocab& vocab) {
    WireQuote q;
    q.ts = e.ts;
    q.open = e.attr(vocab.open_slot);
    q.close = e.attr(vocab.close_slot);
    q.volume = e.attr(vocab.volume_slot);
    q.symbol = vocab.schema->subject_name(e.subject);
    return q;
}

event::Event from_wire(const WireQuote& q, const data::StockVocab& vocab) {
    return data::make_quote(vocab, q.ts, vocab.schema->intern_subject(q.symbol), q.open,
                            q.close, q.volume);
}

}  // namespace spectre::net
