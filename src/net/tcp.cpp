#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spectre::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

TcpSource::TcpSource(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
        fail("bind");
    if (::listen(listen_fd_, 1) < 0) fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
        fail("getsockname");
    port_ = ntohs(addr.sin_port);
}

TcpSource::~TcpSource() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

int TcpSource::accept_client() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) fail("accept");
    return fd;
}

std::size_t TcpSource::receive_into(event::EventStore& store,
                                    const data::StockVocab& vocab) {
    TcpStream stream(*this, vocab);
    std::size_t received = 0;
    while (auto e = stream.next()) {
        store.append(*e);
        ++received;
    }
    return received;
}

TcpStream::TcpStream(TcpSource& source, const data::StockVocab& vocab)
    : fd_(source.accept_client()), vocab_(&vocab) {}

TcpStream::~TcpStream() {
    if (fd_ >= 0) ::close(fd_);
}

std::optional<event::Event> TcpStream::next() {
    if (fd_ < 0) return std::nullopt;  // already at end-of-stream
    std::uint8_t chunk[4096];
    for (;;) {
        if (auto q = decode(buffer_, offset_)) return from_wire(*q, *vocab_);
        // Compact consumed bytes occasionally so the buffer stays small.
        if (offset_ > 1 << 16) {
            buffer_.erase(buffer_.begin(),
                          buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
            offset_ = 0;
        }
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) fail("read");
        if (n == 0) {  // client closed; any trailing partial frame is dropped
            ::close(fd_);
            fd_ = -1;
            return std::nullopt;
        }
        buffer_.insert(buffer_.end(), chunk, chunk + n);
    }
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("bad host address: " + host);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) fail("connect");
}

TcpClient::~TcpClient() { close(); }

void TcpClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void TcpClient::send(const WireQuote& q) {
    std::vector<std::uint8_t> out;
    encode(q, out);
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::write(fd_, out.data() + sent, out.size() - sent);
        if (n <= 0) fail("write");
        sent += static_cast<std::size_t>(n);
    }
}

void TcpClient::send_all(const std::vector<event::Event>& events,
                         const data::StockVocab& vocab) {
    for (const auto& e : events) send(to_wire(e, vocab));
}

}  // namespace spectre::net
