#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spectre::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

bool send_all_bytes(int fd, const std::uint8_t* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
        // server process with SIGPIPE.
        const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
        if (w > 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR) continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Non-blocking fd with a full socket buffer: wait for writability
            // (or the peer hanging up) and retry.
            pollfd p{fd, POLLOUT, 0};
            if (::poll(&p, 1, -1) < 0 && errno != EINTR) fail("poll");
            continue;
        }
        if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
        fail("send");
    }
    return true;
}

ssize_t read_some(int fd, std::uint8_t* data, std::size_t n) {
    for (;;) {
        const ssize_t r = ::read(fd, data, n);
        if (r >= 0) return r;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
        fail("read");
    }
}

int listen_loopback(std::uint16_t port, int backlog, std::uint16_t& bound_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    try {
        const int one = 1;
        if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
            fail("setsockopt(SO_REUSEADDR)");

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) fail("bind");
        if (::listen(fd, backlog) < 0) fail("listen");

        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
            fail("getsockname");
        bound_port = ntohs(addr.sin_port);
        return fd;
    } catch (...) {
        ::close(fd);
        throw;
    }
}

TcpSource::TcpSource(std::uint16_t port) {
    listen_fd_ = listen_loopback(port, /*backlog=*/1, port_);
}

TcpSource::~TcpSource() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

int TcpSource::accept_client() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) return fd;
        if (errno != EINTR) fail("accept");
    }
}

std::size_t TcpSource::receive_into(event::EventStore& store,
                                    const data::StockVocab& vocab) {
    TcpStream stream(*this, vocab);
    std::size_t received = 0;
    while (auto e = stream.next()) {
        store.append(*e);
        ++received;
    }
    return received;
}

TcpStream::TcpStream(TcpSource& source, const data::StockVocab& vocab)
    : fd_(source.accept_client()), vocab_(&vocab) {}

TcpStream::~TcpStream() {
    if (fd_ >= 0) ::close(fd_);
}

std::optional<event::Event> TcpStream::next() {
    if (fd_ < 0) return std::nullopt;  // already at end-of-stream
    std::uint8_t chunk[4096];
    for (;;) {
        if (auto q = decode(buffer_, offset_)) return from_wire(*q, *vocab_);
        // Compact consumed bytes occasionally so the buffer stays small.
        if (offset_ > 1 << 16) {
            buffer_.erase(buffer_.begin(),
                          buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
            offset_ = 0;
        }
        const ssize_t n = read_some(fd_, chunk, sizeof(chunk));
        if (n == 0) {
            const bool truncated = offset_ < buffer_.size();
            ::close(fd_);
            fd_ = -1;
            // A clean close lands exactly on a frame boundary. Anything else
            // means the client died mid-frame — surface it instead of
            // silently dropping the partial event.
            if (truncated)
                throw std::runtime_error(
                    "tcp stream: connection closed mid-frame (truncated event)");
            return std::nullopt;
        }
        buffer_.insert(buffer_.end(), chunk, chunk + static_cast<std::size_t>(n));
    }
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port, int rcvbuf) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket");
    if (rcvbuf > 0 &&
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)) < 0)
        fail("setsockopt(SO_RCVBUF)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("bad host address: " + host);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        // An EINTR'd connect continues asynchronously (POSIX): wait for
        // writability, then read the final verdict from SO_ERROR. Re-calling
        // connect() would spuriously report EALREADY.
        if (errno != EINTR) fail("connect");
        pollfd p{fd_, POLLOUT, 0};
        while (::poll(&p, 1, -1) < 0)
            if (errno != EINTR) fail("poll");
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0) fail("getsockopt");
        if (err != 0) {
            errno = err;
            fail("connect");
        }
    }
}

TcpClient::~TcpClient() { close(); }

void TcpClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void TcpClient::send(const WireQuote& q) {
    std::vector<std::uint8_t> out;
    encode(q, out);
    if (!send_all_bytes(fd_, out.data(), out.size()))
        throw std::runtime_error("send: connection closed by peer");
}

void TcpClient::send_raw(const std::uint8_t* data, std::size_t n) {
    if (!send_all_bytes(fd_, data, n))
        throw std::runtime_error("send: connection closed by peer");
}

void TcpClient::send_all(const std::vector<event::Event>& events,
                         const data::StockVocab& vocab) {
    for (const auto& e : events) send(to_wire(e, vocab));
}

}  // namespace spectre::net
