// EgressRing: block-chained egress buffer flushed with vectored writes
// (DESIGN.md §14).
//
// RESULT egress used to be one contiguous std::vector per session: every
// frame was encoded into a temporary vector, copied into the big buffer, and
// flushed with plain ::send — with a head-offset compaction memmove on top.
// The ring removes both copies and the memmove:
//
//   * append() hands encode_frame the ring's tail block directly, so frame
//     bytes are written exactly once, in wire order, into storage that is
//     never relocated while unsent;
//   * flush() gathers up to kMaxIov block tails into an iovec and issues one
//     vectored send, so many small RESULT frames coalesce into one syscall;
//   * fully-sent blocks recycle onto a bounded free list instead of being
//     compacted — consuming is pointer arithmetic, not memmove.
//
// Byte order on the wire is exactly append order, whatever the coalescing
// schedule: a flush boundary never lands inside the stream in a way the peer
// can observe (TCP is a byte stream; the iovec only changes how many bytes
// one syscall carries). That is why the §10/§13 byte-identical RESULT parity
// gates hold over every flush schedule.
//
// Thread-safety: none here — the owner serializes (ServerSession holds its
// egress mutex, matching the pre-§14 buffer). The send function is injected
// so tests can fault-inject partial writes, EINTR, EAGAIN, and mid-iovec
// connection death without a socket.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/session.hpp"

namespace spectre::net {

class EgressRing {
public:
    static constexpr int kMaxIov = 64;

    explicit EgressRing(std::size_t block_bytes = 16 * 1024) : block_bytes_(block_bytes) {}

    bool empty() const noexcept { return bytes_ == 0; }
    // Unsent bytes buffered — the §9 egress credit quantity.
    std::size_t bytes() const noexcept { return bytes_; }

    // Encodes `f` directly into the tail block (no staging copy).
    void append(const SessionFrame& f);

    // Drops all buffered bytes (dead connection); keeps recycled storage.
    void clear();

    enum class FlushStatus {
        Drained,  // everything buffered has been written
        Blocked,  // kernel buffer full (EAGAIN); bytes remain
        Error,    // transport error; remaining bytes dropped by the caller
    };
    struct FlushResult {
        FlushStatus status = FlushStatus::Drained;
        std::size_t sent = 0;  // bytes written by this flush call
        int error = 0;         // errno when status == Error
    };

    // One vectored non-blocking send per loop iteration until drained,
    // blocked, or dead. Handles partial writes (mid-block and mid-iovec) and
    // EINTR internally. `sendv` has writev semantics: bytes written or -1
    // with errno set.
    using SendvFn = std::function<ssize_t(const struct iovec*, int)>;
    FlushResult flush(const SendvFn& sendv);

private:
    struct Block {
        std::vector<std::uint8_t> data;
        std::size_t head = 0;  // bytes of `data` already sent
    };

    std::vector<std::uint8_t>& tail_for_append();
    void consume(std::size_t n);
    int gather(struct iovec* iov, int cap) const;

    std::size_t block_bytes_;
    std::size_t bytes_ = 0;
    std::deque<Block> blocks_;
    std::vector<std::vector<std::uint8_t>> free_;  // bounded recycle list
};

}  // namespace spectre::net
