// Minimal TCP transport for quote streams (POSIX sockets), mirroring the
// paper's deployment: a client streams events from a file / generator to the
// engine over a TCP connection (§4.1).
//
//   TcpSource — listens on a port, accepts one client, and drains its framed
//               events into an EventStore.
//   TcpClient — connects and sends events.
//
// Blocking one-connection design: ingestion is materialize-then-process in
// this repository (DESIGN.md §5), so the source simply reads to end-of-stream
// before the engines start.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/stream.hpp"
#include "net/frame.hpp"

namespace spectre::net {

class TcpSource {
public:
    // Binds and listens on 127.0.0.1:`port` (port 0 = ephemeral).
    explicit TcpSource(std::uint16_t port);
    ~TcpSource();

    TcpSource(const TcpSource&) = delete;
    TcpSource& operator=(const TcpSource&) = delete;

    std::uint16_t port() const noexcept { return port_; }

    // Accepts one client and appends every received event to `store` until
    // the client closes. Returns the number of events received.
    std::size_t receive_into(event::EventStore& store, const data::StockVocab& vocab);

private:
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
};

class TcpClient {
public:
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    void send(const WireQuote& q);
    void send_all(const std::vector<event::Event>& events, const data::StockVocab& vocab);
    void close();

private:
    int fd_ = -1;
};

}  // namespace spectre::net
