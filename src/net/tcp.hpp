// Minimal TCP transport for quote streams (POSIX sockets), mirroring the
// paper's deployment: a client streams events from a file / generator to the
// engine over a TCP connection (§4.1).
//
//   TcpSource — listens on a port and accepts one client.
//   TcpStream — pull-based EventStream over the accepted connection: yields
//               each event as its frame arrives, so the engines detect while
//               the client is still sending (ingest-while-detect, DESIGN.md
//               §6). Feed it to SpectreRuntime::run(EventStream&) or
//               SequentialEngine::run_stream().
//   TcpClient — connects and sends events.
//
// Blocking one-connection design: the receive path decodes frames
// incrementally from the socket buffer; receive_into remains as the batch
// convenience that drains the connection to end-of-stream before returning.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "event/stream.hpp"
#include "net/frame.hpp"

namespace spectre::net {

// Writes all `n` bytes to `fd`, retrying on EINTR and short writes, waiting
// for writability on EAGAIN (the fd may be non-blocking), and suppressing
// SIGPIPE. Returns false once the peer is gone (EPIPE/ECONNRESET) — callers
// that stream results to a client treat that as "stop sending", not an error.
// Throws on any other failure.
bool send_all_bytes(int fd, const std::uint8_t* data, std::size_t n);

// Reads up to `n` bytes, retrying on EINTR. Returns 0 at end-of-stream and
// -1 when the fd is non-blocking and no data is available (EAGAIN); throws on
// other errors.
ssize_t read_some(int fd, std::uint8_t* data, std::size_t n);

// Creates a listening socket on 127.0.0.1:`port` (0 = ephemeral) with a
// checked SO_REUSEADDR; writes the bound port to `bound_port` and returns the
// fd (caller owns). Closes the fd and throws on any failure.
int listen_loopback(std::uint16_t port, int backlog, std::uint16_t& bound_port);

class TcpSource {
public:
    // Binds and listens on 127.0.0.1:`port` (port 0 = ephemeral).
    explicit TcpSource(std::uint16_t port);
    ~TcpSource();

    TcpSource(const TcpSource&) = delete;
    TcpSource& operator=(const TcpSource&) = delete;

    std::uint16_t port() const noexcept { return port_; }

    // Blocks until a client connects; returns the connected fd (caller owns).
    int accept_client();

    // Batch convenience: accepts one client and appends every received event
    // to `store` until the client closes. Returns the number of events
    // received. Does not close() the store — the caller decides whether this
    // was the whole input.
    std::size_t receive_into(event::EventStore& store, const data::StockVocab& vocab);

private:
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
};

// Live ingestion: one accepted connection exposed as a pull EventStream.
// next() blocks until a full frame is buffered and returns the decoded
// event; returns nullopt when the client closes the connection at a frame
// boundary. A disconnect mid-frame (truncated final frame) is a stream
// error — next() throws std::runtime_error instead of silently dropping the
// partial frame.
class TcpStream final : public event::EventStream {
public:
    // Blocks in accept() until the client connects.
    TcpStream(TcpSource& source, const data::StockVocab& vocab);
    ~TcpStream();

    TcpStream(const TcpStream&) = delete;
    TcpStream& operator=(const TcpStream&) = delete;

    std::optional<event::Event> next() override;

private:
    int fd_ = -1;
    const data::StockVocab* vocab_;
    std::vector<std::uint8_t> buffer_;
    std::size_t offset_ = 0;
};

class TcpClient {
public:
    // `rcvbuf` > 0 sets SO_RCVBUF before connect() — it must precede the
    // handshake to bound the advertised TCP window (backpressure tests);
    // 0 keeps the kernel default (auto-tuned).
    TcpClient(const std::string& host, std::uint16_t port, int rcvbuf = 0);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    void send(const WireQuote& q);
    void send_all(const std::vector<event::Event>& events, const data::StockVocab& vocab);
    // Unframed bytes — for protocol tests (partial/corrupt frame injection).
    void send_raw(const std::uint8_t* data, std::size_t n);
    // The connected socket, for callers that also read (e.g. the load
    // generator draining RESULT frames); -1 after close().
    int fd() const noexcept { return fd_; }
    void close();

private:
    int fd_ = -1;
};

}  // namespace spectre::net
