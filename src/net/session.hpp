// Session control protocol for the multi-session CEP server (DESIGN.md §8).
//
// net/frame encodes bare quote events — enough for the single hard-wired
// pipeline of §4.1's deployment sketch. A middleware server hosting many
// independent clients needs a control layer on top: each message on a session
// connection is a *typed frame* — one tag byte followed by a type-specific
// body reusing the little-endian primitives of net/frame:
//
//   HELLO  (client → server)  query text (query::parse_query grammar) plus
//                             the session's engine parameters (k operator
//                             instances; 0 selects the sequential reference
//                             engine).
//   DATA   (client → server)  one quote event, encoded exactly as the
//                             pre-session wire format (net::encode).
//   RESULT (server → client)  one complex event as it retires — window id,
//                             constituent seqs, computed payload. Sent in
//                             window order while the client is still sending
//                             DATA (streaming egress).
//   BYE    (both directions)  client: end-of-stream for its DATA; server:
//                             all results delivered, carries the final count.
//   ERROR  (server → client)  the session failed (bad query, corrupt frame,
//                             protocol violation); the server closes only
//                             this session afterwards.
//   STATS  (both directions)  client: requests a metrics snapshot (empty
//                             body payload); server: replies with a JSON
//                             object — server-wide registry series plus this
//                             session's live counters and latency histograms
//                             (DESIGN.md §12). May be interleaved with DATA;
//                             the reply rides the ordinary egress stream.
//
// encode_frame/decode_frame are pure functions like net::encode/decode, so
// the protocol is unit-testable without sockets; FrameReader is the
// incremental decode buffer both the server reactor and the client driver
// feed raw bytes into.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "event/event.hpp"
#include "net/frame.hpp"

namespace spectre::net {

// Frame tag bytes on the wire. Values are part of the protocol; never renumber
// and never reuse — protocol evolution appends new tags (see DESIGN.md §8,
// "wire versioning rule"). Hello2 is the versioned successor of Hello: v1
// clients keep speaking tag 1 unchanged, v2-aware peers use tag 7.
enum class FrameType : std::uint8_t {
    Hello = 1,
    Data = 2,
    Result = 3,
    Bye = 4,
    Error = 5,
    Stats = 6,
    Hello2 = 7,
};

struct HelloFrame {
    std::string query;            // query::parse_query text
    std::uint32_t instances = 0;  // k operator instances; 0 = sequential engine

    // Partition-parallel sharding (DESIGN.md §10): with shards > 1 the
    // session runs the partitioned query as that many shard tasks on the
    // server's engine pool — a per-session deployment knob, no rebuild. The
    // query must declare a partition key: either PARTITION BY in the query
    // text or `partition_by` here ("SUBJECT" or an attribute name, resolved
    // against the session schema; overrides the text declaration when set).
    // shards == 0 means unsharded unless the query text itself partitions.
    std::uint32_t shards = 0;
    std::string partition_by;

    bool operator==(const HelloFrame&) const = default;
};

// HELLO v2 (DESIGN.md §15): an extensible key-value handshake replacing the
// closed positional HelloFrame. The body is an ordered list of string pairs;
// unknown keys are ignored by both sides, so either end can add keys without
// a protocol bump. Defined keys (client → server):
//
//   role         "standalone" (default) | "publish" | "subscribe"
//   stream       published stream name (publish/subscribe roles)
//   query        query::parse_query text (standalone/subscribe)
//   instances    k operator instances; "0"/absent = sequential engine
//   shards       shard count (standalone role only, DESIGN.md §10)
//   partition_by partition key override (standalone role only)
//
// The server replies to an accepted v2 HELLO with its own Hello2 frame — the
// capability echo: proto=2, role (as resolved), stream, max_instances,
// max_shards. A v1 HelloFrame gets no echo (v1 clients don't read one); the
// server maps it to role=standalone internally (compat shim).
struct Hello2Frame {
    std::vector<std::pair<std::string, std::string>> kv;

    // First value for `key`, or "" when absent (absent and empty-valued keys
    // are deliberately indistinguishable: defaults apply to both).
    std::string_view get(std::string_view key) const noexcept {
        for (const auto& [k, v] : kv)
            if (k == key) return v;
        return {};
    }
    bool has(std::string_view key) const noexcept {
        for (const auto& [k, v] : kv)
            if (k == key) return true;
        return false;
    }
    void set(std::string key, std::string value) {
        kv.emplace_back(std::move(key), std::move(value));
    }

    bool operator==(const Hello2Frame&) const = default;
};

// One complex event streamed back to the owning client. Mirrors
// event::ComplexEvent field-for-field so the RESULT stream can be compared
// byte-identically against an engine's output.
struct ResultFrame {
    std::uint64_t window_id = 0;
    std::vector<std::uint64_t> constituents;
    std::vector<std::pair<std::string, double>> payload;

    bool operator==(const ResultFrame&) const = default;
};

struct ByeFrame {
    std::uint64_t results = 0;  // server → client: RESULT frames sent

    bool operator==(const ByeFrame&) const = default;
};

struct ErrorFrame {
    std::string message;

    bool operator==(const ErrorFrame&) const = default;
};

// Metrics snapshot exchange (DESIGN.md §12). As a request (client → server)
// `json` is empty; as a response it carries one flat JSON object of series
// name → value (histograms as {count, sum, p50, p99} sub-objects).
struct StatsFrame {
    std::string json;

    bool operator==(const StatsFrame&) const = default;
};

// DATA frames reuse WireQuote as their body.
using SessionFrame = std::variant<HelloFrame, WireQuote, ResultFrame, ByeFrame,
                                  ErrorFrame, StatsFrame, Hello2Frame>;

// Sanity bounds; decode throws std::runtime_error beyond them (corrupt frame).
inline constexpr std::size_t kMaxQueryLength = 1 << 16;
inline constexpr std::size_t kMaxErrorLength = 1 << 16;
inline constexpr std::size_t kMaxPartitionKeyLength = 256;
inline constexpr std::size_t kMaxHelloPairs = 64;
inline constexpr std::size_t kMaxHelloKeyLength = 64;
inline constexpr std::size_t kMaxResultConstituents = 1 << 20;
inline constexpr std::size_t kMaxResultPayload = 1 << 10;
inline constexpr std::size_t kMaxPayloadNameLength = 256;
inline constexpr std::size_t kMaxStatsLength = 1 << 20;

// Appends the typed encoding of `f` to `out`.
void encode_frame(const SessionFrame& f, std::vector<std::uint8_t>& out);

// Attempts to decode one typed frame starting at `offset`. On success returns
// the frame and advances `offset`; returns nullopt on an incomplete buffer.
// Throws std::runtime_error on a corrupt frame (unknown tag, length beyond
// the sanity bounds above).
std::optional<SessionFrame> decode_frame(const std::vector<std::uint8_t>& buffer,
                                         std::size_t& offset);

// Conversions between the egress frame and the engine representation.
ResultFrame to_result_frame(const event::ComplexEvent& ce);
event::ComplexEvent from_result_frame(const ResultFrame& r);

// Incremental frame decoder: feed() raw bytes as they arrive, poll() decoded
// frames until nullopt (read more). Consumed bytes are compacted away
// periodically so the buffer stays bounded by one frame plus one read chunk.
//
// Scatter mode (DESIGN.md §14): the reader is also the *staging* half of the
// zero-copy ingest path. While empty(), the caller decodes DATA frames in
// place from its backend-owned read view with scatter_data() below; only
// control frames and the partial frame at a view's tail are fed here. The
// invariant that keeps the two paths equivalent: bytes enter the reader in
// wire order and the caller never scatters while empty() is false, so frame
// boundaries are identical whichever path decodes them.
class FrameReader {
public:
    void feed(const std::uint8_t* data, std::size_t n);

    // Next complete frame, or nullopt if more bytes are needed. Throws
    // std::runtime_error on a corrupt frame (the session is unrecoverable —
    // framing is lost).
    std::optional<SessionFrame> poll();

    // True when undecoded bytes are pending — an end-of-stream here means the
    // peer died mid-frame (truncated frame, a stream error).
    bool mid_frame() const noexcept { return offset_ < buffer_.size(); }

    // True when no undecoded bytes are staged: the caller may scatter-decode
    // directly from its own buffer without reordering the stream.
    bool empty() const noexcept { return offset_ == buffer_.size(); }

    // Bytes missing for the staged partial frame's next decode step (a lower
    // bound; 0 when nothing is staged or the frame looks complete). Lets the
    // §14 ingest loop feed exactly what finishes the split frame and return
    // to the scatter path, instead of staging whole chunks of the view.
    std::size_t tail_need() const;

private:
    std::vector<std::uint8_t> buffer_;
    std::size_t offset_ = 0;
};

// In-place view of one DATA frame's payload (scatter decode): numeric fields
// are decoded into the struct, the symbol stays a pointer into the caller's
// buffer — valid only until the buffer is recycled, i.e. consume immediately.
struct DataFrameView {
    std::int64_t ts = 0;
    double open = 0, close = 0, volume = 0;
    const char* symbol = nullptr;
    std::uint32_t symbol_len = 0;

    std::string_view symbol_view() const noexcept { return {symbol, symbol_len}; }
};

enum class ScatterStatus {
    Data,      // `dv` filled; `pos` advanced past the frame
    Control,   // not a DATA frame: stage the rest of the view for poll()
    NeedMore,  // DATA frame truncated by the view: stage the tail, read more
};

// Examines the frame starting at data[pos] (requires pos < size). On Data the
// view is filled and pos advances past the frame; Control/NeedMore leave pos
// untouched. Throws std::runtime_error on a corrupt DATA frame (symbol length
// beyond kMaxSymbolLength), exactly like decode() on the staged path.
ScatterStatus scatter_data(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                           DataFrameView& dv);

}  // namespace spectre::net
