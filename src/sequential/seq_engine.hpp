// Sequential reference engine.
//
// Processes windows to completion in start order; events consumed in window
// wᵢ are invisible to every later window. This is the paper's notion of
// "sequential processing" (§2.3: "wait with processing w2 until w1 is
// completely processed and hence, all consumptions in w1 are known") and
// therefore the ground truth SPECTRE must reproduce exactly — the
// integration tests compare complex-event streams wholesale.
//
// Windows are enumerated through the same arrival-driven WindowAssigner the
// SPECTRE splitter uses (DESIGN.md §6), so batch replay (run) and live
// ingestion (run_stream, which appends arriving events into the store and
// processes each window as soon as it has fully arrived) produce the same
// byte-identical output by construction.
//
// The engine also records the statistics the paper derives from a sequential
// pass: the ground-truth consumption-group completion probability
// (#completed / #created, Fig. 10(d)/(e)) and per-event δ transition counts
// (used to validate the Markov model against reality).
#pragma once

#include <memory>
#include <vector>

#include "detect/detector.hpp"

namespace spectre::sequential {

struct SeqStats {
    std::uint64_t windows = 0;
    std::uint64_t events_processed = 0;   // window-events fed to detectors
    std::uint64_t events_suppressed = 0;  // skipped because already consumed
    std::uint64_t groups_created = 0;     // partial matches that opened a CG
    std::uint64_t groups_completed = 0;
    std::uint64_t groups_abandoned = 0;
    std::uint64_t complex_events = 0;

    // Ground truth completion probability of consumption groups (§4.2.1:
    // "the number of created consumption groups divided by the number of
    // produced complex events provides the ground truth value").
    double completion_probability() const {
        return groups_created ? static_cast<double>(groups_completed) /
                                    static_cast<double>(groups_created)
                              : 0.0;
    }
};

struct SeqResult {
    std::vector<event::ComplexEvent> complex_events;  // in window order
    SeqStats stats;
};

// Resumable sequential pass (DESIGN.md §9): the cooperative counterpart of
// run_stream for callers that cannot block on a stream — a worker-pool engine
// task appends arrivals to the store itself and calls drain() with a bounded
// window quantum, parking the session between calls. Output through `sink` is
// byte-identical to SequentialEngine::run over the final store contents, for
// every interleaving of appends and drains (windows are processed in start
// order exactly when the frontier — or end-of-stream — determines them).
class SeqStepper {
public:
    // `store` is the session's ingestion frontier; the caller appends to it
    // between drain() calls (reads stay below the frontier). `sink` receives
    // complex events in window order.
    SeqStepper(const detect::CompiledQuery* cq, const event::EventStore* store,
               event::ResultSink sink);
    ~SeqStepper();

    SeqStepper(const SeqStepper&) = delete;
    SeqStepper& operator=(const SeqStepper&) = delete;

    // Processes fully-arrived windows at the store's current frontier, at
    // most `max_windows` of them (the scheduling quantum). Returns true while
    // another fully-arrived window is still pending — i.e. calling again
    // would make progress without new input.
    bool drain(std::size_t max_windows);

    // Quiescent on a complete input: store closed, every window processed.
    bool finished() const;

private:
    friend class SequentialEngine;  // batch/stream entry points reuse Impl
    struct Impl;
    std::unique_ptr<Impl> impl_;
    event::ResultSink sink_holder_;
};

class SequentialEngine {
public:
    // `mode` selects the detector's predicate evaluator (DESIGN.md §5.1):
    // Compiled bytecode by default; Tree keeps the reference tree-walking
    // evaluator alive for differential tests and the hot-path bench baseline.
    explicit SequentialEngine(const detect::CompiledQuery* cq,
                              detect::EvalMode mode = detect::EvalMode::Compiled);

    // Runs the full pass over `store`, treating its contents as the whole
    // input. Windows are assigned from the query's window spec; consumption
    // state starts empty. With a `sink`, complex events are emitted
    // incrementally as each window completes (in window order) and
    // SeqResult.complex_events stays empty — the collect-all vector is the
    // default sink (DESIGN.md §8).
    SeqResult run(const event::EventStore& store) const;
    SeqResult run(const event::EventStore& store, const event::ResultSink& sink) const;

    // Ingest-while-detect: drains `live` into `store` (which must be open and
    // is closed at end-of-stream), processing each window as soon as its
    // events have arrived. Output is byte-identical to run() over the final
    // store contents; the `sink` overload streams it incrementally.
    SeqResult run_stream(event::EventStream& live, event::EventStore& store) const;
    SeqResult run_stream(event::EventStream& live, event::EventStore& store,
                         const event::ResultSink& sink) const;

private:
    SeqResult run_impl(const event::EventStore& store, const event::ResultSink* sink) const;
    SeqResult run_stream_impl(event::EventStream& live, event::EventStore& store,
                              const event::ResultSink* sink) const;
    const detect::CompiledQuery* cq_;
    detect::EvalMode mode_;
};

}  // namespace spectre::sequential
