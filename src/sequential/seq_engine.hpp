// Sequential reference engine.
//
// Processes windows to completion in start order; events consumed in window
// wᵢ are invisible to every later window. This is the paper's notion of
// "sequential processing" (§2.3: "wait with processing w2 until w1 is
// completely processed and hence, all consumptions in w1 are known") and
// therefore the ground truth SPECTRE must reproduce exactly — the
// integration tests compare complex-event streams wholesale.
//
// Windows are enumerated through the same arrival-driven WindowAssigner the
// SPECTRE splitter uses (DESIGN.md §6), so batch replay (run) and live
// ingestion (run_stream, which appends arriving events into the store and
// processes each window as soon as it has fully arrived) produce the same
// byte-identical output by construction.
//
// The engine also records the statistics the paper derives from a sequential
// pass: the ground-truth consumption-group completion probability
// (#completed / #created, Fig. 10(d)/(e)) and per-event δ transition counts
// (used to validate the Markov model against reality).
#pragma once

#include <vector>

#include "detect/detector.hpp"

namespace spectre::sequential {

struct SeqStats {
    std::uint64_t windows = 0;
    std::uint64_t events_processed = 0;   // window-events fed to detectors
    std::uint64_t events_suppressed = 0;  // skipped because already consumed
    std::uint64_t groups_created = 0;     // partial matches that opened a CG
    std::uint64_t groups_completed = 0;
    std::uint64_t groups_abandoned = 0;
    std::uint64_t complex_events = 0;

    // Ground truth completion probability of consumption groups (§4.2.1:
    // "the number of created consumption groups divided by the number of
    // produced complex events provides the ground truth value").
    double completion_probability() const {
        return groups_created ? static_cast<double>(groups_completed) /
                                    static_cast<double>(groups_created)
                              : 0.0;
    }
};

struct SeqResult {
    std::vector<event::ComplexEvent> complex_events;  // in window order
    SeqStats stats;
};

class SequentialEngine {
public:
    explicit SequentialEngine(const detect::CompiledQuery* cq);

    // Runs the full pass over `store`, treating its contents as the whole
    // input. Windows are assigned from the query's window spec; consumption
    // state starts empty. With a `sink`, complex events are emitted
    // incrementally as each window completes (in window order) and
    // SeqResult.complex_events stays empty — the collect-all vector is the
    // default sink (DESIGN.md §8).
    SeqResult run(const event::EventStore& store) const;
    SeqResult run(const event::EventStore& store, const event::ResultSink& sink) const;

    // Ingest-while-detect: drains `live` into `store` (which must be open and
    // is closed at end-of-stream), processing each window as soon as its
    // events have arrived. Output is byte-identical to run() over the final
    // store contents; the `sink` overload streams it incrementally.
    SeqResult run_stream(event::EventStream& live, event::EventStore& store) const;
    SeqResult run_stream(event::EventStream& live, event::EventStore& store,
                         const event::ResultSink& sink) const;

private:
    struct Pass;
    SeqResult run_impl(const event::EventStore& store, const event::ResultSink* sink) const;
    SeqResult run_stream_impl(event::EventStream& live, event::EventStore& store,
                              const event::ResultSink* sink) const;
    const detect::CompiledQuery* cq_;
};

}  // namespace spectre::sequential
