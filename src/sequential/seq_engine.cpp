#include "sequential/seq_engine.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace spectre::sequential {

SequentialEngine::SequentialEngine(const detect::CompiledQuery* cq, detect::EvalMode mode)
    : cq_(cq), mode_(mode) {
    SPECTRE_REQUIRE(cq != nullptr, "SequentialEngine needs a compiled query");
}

// Incremental sequential pass: windows are discovered from the arrival
// frontier and each is processed once the frontier covers it (or the stream
// closed — the end-of-stream clamp for trailing extent bounds). Backs both
// the blocking entry points below and the resumable SeqStepper.
struct SeqStepper::Impl {
    const detect::CompiledQuery* cq;
    const event::EventStore& store;
    const event::ResultSink* sink;  // nullptr = collect into result
    query::WindowAssigner assigner;
    std::vector<query::WindowInfo> windows;
    std::size_t next = 0;
    std::unordered_set<event::Seq> consumed;  // global, across windows
    detect::Detector detector;
    detect::Feedback fb;
    SeqResult result;

    Impl(const detect::CompiledQuery* cq_in, const event::EventStore& store_in,
         const event::ResultSink* sink_in,
         detect::EvalMode mode = detect::EvalMode::Compiled)
        : cq(cq_in), store(store_in), sink(sink_in), assigner(cq_in->query().window),
          detector(cq_in, mode) {}

    // Processes at most `max_windows` fully-arrived windows at `frontier`;
    // returns true while another fully-arrived window is still pending.
    bool drain(event::Seq frontier, bool closed, std::size_t max_windows) {
        assigner.poll(store, frontier, closed, windows);
        std::size_t processed = 0;
        while (next < windows.size()) {
            const auto& w = windows[next];
            // Sequential semantics process a window to completion before the
            // next one starts, so it must have fully arrived (its extent
            // bound may reach past a closed stream's end).
            if (!closed && w.last >= frontier) return false;
            if (processed == max_windows) return true;  // quantum exhausted
            const event::Seq end = std::min<event::Seq>(w.last, frontier - 1);
            detector.begin_window(w);
            for (event::Seq pos = w.first; pos <= end; ++pos) {
                if (consumed.count(pos)) {
                    ++result.stats.events_suppressed;
                    continue;
                }
                fb.clear();
                detector.on_event(store.at(pos), fb);
                ++result.stats.events_processed;

                for (const auto& c : fb.created)
                    if (c.consumable) ++result.stats.groups_created;
                for (const auto& a : fb.abandoned) {
                    (void)a;
                    if (cq->consumes_anything()) ++result.stats.groups_abandoned;
                }
                for (auto& done : fb.completed) {
                    if (cq->consumes_anything()) ++result.stats.groups_completed;
                    for (const auto seq : done.consumed) consumed.insert(seq);
                    if (sink)
                        (*sink)(std::move(done.complex_event));
                    else
                        result.complex_events.push_back(std::move(done.complex_event));
                    ++result.stats.complex_events;
                }
            }
            fb.clear();
            detector.end_window(fb);
            for (const auto& a : fb.abandoned) {
                (void)a;
                if (cq->consumes_anything()) ++result.stats.groups_abandoned;
            }
            ++next;
            ++processed;
        }
        return false;
    }

    SeqResult finish() {
        result.stats.windows = windows.size();
        return std::move(result);
    }
};

SeqStepper::SeqStepper(const detect::CompiledQuery* cq, const event::EventStore* store,
                       event::ResultSink sink) {
    // Validate before Impl's initializers dereference either pointer.
    SPECTRE_REQUIRE(cq != nullptr && store != nullptr, "SeqStepper needs store and query");
    SPECTRE_REQUIRE(static_cast<bool>(sink), "SeqStepper needs a result sink");
    sink_holder_ = std::move(sink);
    impl_ = std::make_unique<Impl>(cq, *store, &sink_holder_);
}

SeqStepper::~SeqStepper() = default;

bool SeqStepper::drain(std::size_t max_windows) {
    // End-of-input latch before the frontier (DESIGN.md §6 ordering): a true
    // closed() implies the following size() read is the stream's final length.
    const bool closed = impl_->store.closed();
    return impl_->drain(impl_->store.size(), closed, max_windows);
}

bool SeqStepper::finished() const {
    return impl_->store.closed() && impl_->assigner.exhausted() &&
           impl_->next == impl_->windows.size();
}

SeqResult SequentialEngine::run_impl(const event::EventStore& store,
                                     const event::ResultSink* sink) const {
    SeqStepper::Impl pass(cq_, store, sink, mode_);
    pass.drain(store.size(), /*closed=*/true, SIZE_MAX);
    return pass.finish();
}

SeqResult SequentialEngine::run(const event::EventStore& store) const {
    return run_impl(store, nullptr);
}

SeqResult SequentialEngine::run(const event::EventStore& store,
                                const event::ResultSink& sink) const {
    return run_impl(store, &sink);
}

SeqResult SequentialEngine::run_stream_impl(event::EventStream& live,
                                            event::EventStore& store,
                                            const event::ResultSink* sink) const {
    SPECTRE_REQUIRE(!store.closed(), "run_stream needs an open store");
    SeqStepper::Impl pass(cq_, store, sink, mode_);
    while (auto e = live.next()) {
        store.append(*e);
        pass.drain(store.size(), /*closed=*/false, SIZE_MAX);
    }
    store.close();
    pass.drain(store.size(), /*closed=*/true, SIZE_MAX);
    return pass.finish();
}

SeqResult SequentialEngine::run_stream(event::EventStream& live,
                                       event::EventStore& store) const {
    return run_stream_impl(live, store, nullptr);
}

SeqResult SequentialEngine::run_stream(event::EventStream& live, event::EventStore& store,
                                       const event::ResultSink& sink) const {
    return run_stream_impl(live, store, &sink);
}

}  // namespace spectre::sequential
