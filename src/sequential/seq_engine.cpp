#include "sequential/seq_engine.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace spectre::sequential {

SequentialEngine::SequentialEngine(const detect::CompiledQuery* cq) : cq_(cq) {
    SPECTRE_REQUIRE(cq != nullptr, "SequentialEngine needs a compiled query");
}

SeqResult SequentialEngine::run(const event::EventStore& store) const {
    SeqResult result;
    const auto windows = query::assign_windows(store, cq_->query().window);
    result.stats.windows = windows.size();

    std::unordered_set<event::Seq> consumed;  // global, across windows
    detect::Detector detector(cq_);
    detect::Feedback fb;

    for (const auto& w : windows) {
        detector.begin_window(w);
        for (event::Seq pos = w.first; pos <= w.last; ++pos) {
            if (consumed.count(pos)) {
                ++result.stats.events_suppressed;
                continue;
            }
            fb.clear();
            detector.on_event(store.at(pos), fb);
            ++result.stats.events_processed;

            for (const auto& c : fb.created)
                if (c.consumable) ++result.stats.groups_created;
            for (const auto& a : fb.abandoned) {
                (void)a;
                if (cq_->consumes_anything()) ++result.stats.groups_abandoned;
            }
            for (auto& done : fb.completed) {
                if (cq_->consumes_anything()) ++result.stats.groups_completed;
                for (const auto seq : done.consumed) consumed.insert(seq);
                result.complex_events.push_back(std::move(done.complex_event));
                ++result.stats.complex_events;
            }
        }
        fb.clear();
        detector.end_window(fb);
        for (const auto& a : fb.abandoned) {
            (void)a;
            if (cq_->consumes_anything()) ++result.stats.groups_abandoned;
        }
    }
    return result;
}

}  // namespace spectre::sequential
