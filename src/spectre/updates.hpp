// Update messages from operator instances to the splitter.
//
// Fig. 8: "the function calls of the operator instances on the dependency
// tree are buffered — they are actually executed on the dependency tree in a
// batch at each new scheduling cycle of the splitter." These are those
// buffered calls, carried through an MPSC queue. Queue order preserves each
// instance's program order, so a group's Created always precedes its
// Completed/Abandoned.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "spectre/consumption_group.hpp"
#include "util/mpsc_queue.hpp"

namespace spectre::core {

struct Update {
    enum class Kind {
        CgCreated,       // attach a Group vertex under the owner version
        CgCompleted,     // prune abandon subtrees of this group's vertices
        CgAbandoned,     // prune completion subtrees
        WindowFinished,  // version processed its whole window
        Rollback,        // version reprocesses: rebuild its dependent subtree
        Stats,           // δ-transition samples from an independent window
    };

    Kind kind = Kind::Stats;
    std::uint64_t version_id = 0;  // originating window version
    CgPtr cg;                      // for the Cg* kinds
    std::vector<std::pair<int, int>> transitions;  // for Stats
};

using UpdateQueue = util::MpscQueue<Update>;

}  // namespace spectre::core
