#include "spectre/window_version.hpp"

#include "util/assert.hpp"

namespace spectre::core {

WindowVersion::WindowVersion(std::uint64_t version_id, query::WindowInfo window,
                             const detect::CompiledQuery* cq, std::vector<CgPtr> suppressed)
    : version_id_(version_id), window_(window), suppressed_(std::move(suppressed)),
      state_(std::make_unique<Processing>(cq)) {
    SPECTRE_REQUIRE(cq != nullptr, "WindowVersion needs a compiled query");
    state_->detector.begin_window(window_);
    state_->used.assign(window_.length(), false);
    state_->caches.resize(suppressed_.size());
}

std::vector<event::ComplexEvent> WindowVersion::take_output() {
    SPECTRE_CHECK(finished(), "take_output before the version finished");
    return std::move(state_->output);
}

void WindowVersion::clone_processing_from(const WindowVersion& src) {
    SPECTRE_REQUIRE(src.window() == window_, "cloning across different windows");
    *state_ = *src.state_;
    // The suppression set differs from the source's; rebuild the cache slots
    // and force full re-validation on the next consistency check.
    state_->caches.assign(suppressed_.size(), Processing::CgCache{});
    state_->suppressed_sorted.clear();
    state_->supp_dirty = true;  // the copied run index reflects src's groups
    progress_.store(src.progress(), std::memory_order_relaxed);
    finished_.store(src.finished(), std::memory_order_release);
}

void WindowVersion::reset_processing() {
    for (auto& [match_id, cg] : state_->own_groups) {
        (void)match_id;
        cg->resolve(CgOutcome::Abandoned);
    }
    state_->own_groups.clear();
    state_->completed_history.clear();
    state_->output.clear();
    std::fill(state_->used.begin(), state_->used.end(), false);
    state_->detector.begin_window(window_);
    state_->next_offset = 0;
    state_->steps_since_check = 0;
    // Keep the suppression caches' membership (still valid) but force the
    // next consistency check to re-verify everything.
    for (auto& cache : state_->caches) cache.checked_version = UINT64_MAX;
    state_->supp_dirty = true;
    finished_.store(false, std::memory_order_release);
    progress_.store(0, std::memory_order_relaxed);
}

bool WindowVersion::validate_suppression() const {
    for (const auto& cg : suppressed_) {
        std::uint64_t version = 0;
        for (const auto seq : cg->snapshot(version)) {
            if (seq < window_.first || seq > window_.last) continue;
            if (state_->used[seq - window_.first]) return false;
        }
    }
    return true;
}

}  // namespace spectre::core
