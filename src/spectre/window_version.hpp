// WindowVersion: one speculative version of one window (§3.1).
//
// A version is defined by its window plus the set of consumption groups it
// assumes to complete (whose events it suppresses — the groups reached via
// completion edges on its root path). Processing state (detector, position,
// buffered complex events, the used-event set for consistency checks) lives
// here; it is mutated only by the operator instance the version is currently
// scheduled on. The splitter touches only the atomic flags (dropped /
// finished / stats_enabled) and reads `progress` for the prediction model.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detect/detector.hpp"
#include "spectre/consumption_group.hpp"

namespace spectre::core {

class WindowVersion {
public:
    WindowVersion(std::uint64_t version_id, query::WindowInfo window,
                  const detect::CompiledQuery* cq, std::vector<CgPtr> suppressed);

    std::uint64_t version_id() const noexcept { return version_id_; }
    const query::WindowInfo& window() const noexcept { return window_; }
    const std::vector<CgPtr>& suppressed() const noexcept { return suppressed_; }

    // --- splitter side -------------------------------------------------------
    void mark_dropped() noexcept { dropped_.store(true, std::memory_order_release); }
    bool dropped() const noexcept { return dropped_.load(std::memory_order_acquire); }
    bool finished() const noexcept { return finished_.load(std::memory_order_acquire); }
    // Enables δ-transition statistics gathering; the splitter turns this on
    // when the version becomes the valid version of an independent window
    // (§3.2.1: only independent windows feed the model).
    void enable_stats() noexcept { stats_enabled_.store(true, std::memory_order_release); }
    bool stats_enabled() const noexcept {
        return stats_enabled_.load(std::memory_order_acquire);
    }
    // Events processed or skipped so far (offset of the next event).
    std::uint64_t progress() const noexcept {
        return progress_.load(std::memory_order_relaxed);
    }
    std::uint64_t events_left() const noexcept {
        const auto p = progress();
        return p >= window_.length() ? 0 : window_.length() - p;
    }

    // Takes the buffered output after the version finished and became valid.
    // Caller must be the splitter, after observing finished() through the
    // update queue (which provides the happens-before edge).
    std::vector<event::ComplexEvent> take_output();

    // --- owning operator-instance side --------------------------------------
    struct Processing;
    Processing& processing() noexcept { return *state_; }

    // Batch-scoped exclusive ownership. A version can be rescheduled to a
    // different instance between batches (§2.2: "the processing of a window
    // can be interrupted ... and resumed ... by a different operator
    // instance"); the acquire/release pair serializes the batches and
    // publishes the processing state to the next owner.
    bool try_acquire(int instance_index) noexcept {
        int expected = -1;
        return busy_.compare_exchange_strong(expected, instance_index,
                                             std::memory_order_acquire);
    }
    void release_ownership() noexcept { busy_.store(-1, std::memory_order_release); }

    void mark_finished() noexcept { finished_.store(true, std::memory_order_release); }
    void set_progress(std::uint64_t p) noexcept {
        progress_.store(p, std::memory_order_relaxed);
    }

    // Clone support: copies `src`'s entire processing state (detector,
    // position, buffered output, used set). Used when a new consumption
    // group spawns the "modified copy" of a dependent subtree (§3.1): the
    // copy keeps the original's progress — restarting from scratch would
    // forfeit exactly the parallelism speculation exists to create — and the
    // caller validates the result against the new suppression set, falling
    // back to a fresh start only when the copied state already used a
    // suppressed event. Caller must hold both versions' batch locks.
    void clone_processing_from(const WindowVersion& src);

    // Rollback (§3.3): wipes all processing state so the version reprocesses
    // from the window start. Caller must hold the batch lock. Pending own
    // groups are marked abandoned; the splitter rebuilds the dependent
    // subtree (see DependencyTree::rebuild_after_rollback) because group
    // resolutions issued by the invalid pass may already have pruned it.
    void reset_processing();

    // Final validation against the (frozen) suppressed groups: true iff no
    // suppressed event was processed. Used by the splitter before retiring a
    // finished root — the safety net for versions that finished before a
    // suppressed group gained an event (a case the periodic in-flight check
    // cannot see). Caller must hold the batch lock.
    bool validate_suppression() const;

private:
    const std::uint64_t version_id_;
    const query::WindowInfo window_;
    const std::vector<CgPtr> suppressed_;

    std::atomic<bool> dropped_{false};
    std::atomic<bool> finished_{false};
    std::atomic<bool> stats_enabled_{false};
    std::atomic<std::uint64_t> progress_{0};
    std::atomic<int> busy_{-1};  // instance index holding the batch lock

    std::unique_ptr<Processing> state_;
};

// Mutable processing state; only the owning operator instance touches it.
struct WindowVersion::Processing {
    explicit Processing(const detect::CompiledQuery* cq) : detector(cq) {}

    detect::Detector detector;
    std::uint64_t next_offset = 0;  // offset of next event within the window
    std::vector<event::ComplexEvent> output;  // buffered speculative output
    std::vector<bool> used;  // per-offset: event was fed to the detector

    // Suppression cache per suppressed group: membership snapshot + the
    // version it corresponds to + the version covered by the last
    // consistency check (CG.lastCheckedVersion in Fig. 8).
    struct CgCache {
        std::unordered_set<event::Seq> events;
        std::uint64_t snapshot_version = UINT64_MAX;
        std::uint64_t checked_version = 0;
    };
    std::vector<CgCache> caches;  // parallel to suppressed()

    // Batched-run suppression index: the union of all cached memberships that
    // fall inside the window, as sorted offsets. The operator instance feeds
    // the detector in contiguous runs between these offsets instead of
    // probing a hash set per event; rebuilt (supp_dirty) whenever any cache
    // snapshot refreshes.
    std::vector<std::uint64_t> suppressed_sorted;
    bool supp_dirty = true;

    // Consumption groups created by this version's detector, by match id.
    std::unordered_map<detect::MatchId, CgPtr> own_groups;
    // Groups this version completed, in completion order. Used by the clone
    // path: cloning is refused while any of them still has a tree vertex
    // (its CgCompleted update is in flight), because the copied subtree
    // could not inherit the suppression yet.
    std::vector<CgPtr> completed_history;

    std::uint64_t steps_since_check = 0;
};

using WvPtr = std::shared_ptr<WindowVersion>;

}  // namespace spectre::core
