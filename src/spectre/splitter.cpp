#include "spectre/splitter.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace {
bool trace_enabled() {
    static const bool on = std::getenv("SPECTRE_TRACE") != nullptr;
    return on;
}
// Splitter-side batch-lock holder id (clone + final validation paths).
constexpr int kSplitterOwner = 1 << 30;

// Validates `cq` before any member initializer dereferences it (the window
// assigner is constructed before the constructor body's checks run).
const spectre::query::WindowSpec& window_spec_of(const spectre::detect::CompiledQuery* cq) {
    SPECTRE_REQUIRE(cq != nullptr, "Splitter needs store and query");
    return cq->query().window;
}
}  // namespace

namespace spectre::core {

Splitter::Splitter(const event::EventStore* store, const detect::CompiledQuery* cq,
                   SplitterConfig config, std::unique_ptr<model::CompletionModel> model)
    : store_(store), cq_(cq), config_(std::move(config)), model_(std::move(model)),
      assigner_(window_spec_of(cq)),
      tree_([this](const query::WindowInfo& w, std::vector<CgPtr> suppressed) {
          return std::make_shared<WindowVersion>(next_version_id_++, w, cq_,
                                                 std::move(suppressed));
      }) {
    SPECTRE_REQUIRE(store != nullptr && cq != nullptr, "Splitter needs store and query");
    SPECTRE_REQUIRE(model_ != nullptr, "Splitter needs a completion model");
    SPECTRE_REQUIRE(config_.instances >= 1, "need at least one operator instance");

    instances_.reserve(static_cast<std::size_t>(config_.instances));
    for (int i = 0; i < config_.instances; ++i)
        instances_.push_back(std::make_unique<OperatorInstance>(i, store_, cq_, &updates_,
                                                                &input_complete_,
                                                                config_.instance));
    tree_.set_clone_factory(
        [this](const query::WindowInfo& w, std::vector<CgPtr> suppressed,
               const WindowVersion& src, std::unordered_map<std::uint64_t, CgPtr>& cg_map,
               bool allow_pending) {
            return make_clone(w, std::move(suppressed), src, cg_map, allow_pending);
        });
    tree_.set_collapse_threshold(config_.collapse_threshold);
}

WvPtr Splitter::make_clone(const query::WindowInfo& w, std::vector<CgPtr> suppressed,
                           const WindowVersion& src,
                           std::unordered_map<std::uint64_t, CgPtr>& cg_map,
                           bool allow_pending) {
    // The source may be mid-batch on an operator instance; cloning its state
    // concurrently would race. Fall back to a fresh copy in that (rare) case.
    auto& mutable_src = const_cast<WindowVersion&>(src);
    if (!mutable_src.try_acquire(kSplitterOwner)) return nullptr;

    // Under memory pressure the tree collapses pending branches: only
    // versions without in-flight matches may keep their state.
    if (!allow_pending && !mutable_src.processing().own_groups.empty()) {
        mutable_src.release_ownership();
        return nullptr;
    }

    // Pending groups created inside the current cycle may not have tree
    // vertices yet; a clone of them could never propagate its consumptions.
    for (const auto& [match_id, cg] : mutable_src.processing().own_groups) {
        (void)match_id;
        if (!tree_.group_attached(cg->id())) {
            mutable_src.release_ownership();
            return nullptr;
        }
    }
    // Symmetrically, a *completed* group whose splice is still in flight
    // (vertex still attached) has not yet reached the subtree's suppression
    // sets; a copy made now would lose that consumption.
    for (const auto& cg : mutable_src.processing().completed_history) {
        if (tree_.group_attached(cg->id())) {
            mutable_src.release_ownership();
            return nullptr;
        }
    }

    auto clone = std::make_shared<WindowVersion>(next_version_id_++, w, cq_,
                                                 std::move(suppressed));
    clone->clone_processing_from(src);

    // The clone diverges from the source from here on: its in-flight matches
    // need their own consumption groups (same membership so far).
    auto& st = clone->processing();
    std::unordered_map<detect::MatchId, CgPtr> cloned_groups;
    std::vector<std::uint64_t> added_keys;
    for (const auto& [match_id, cg] : st.own_groups) {
        std::uint64_t version = 0;
        const auto events = cg->snapshot(version);
        auto copy = std::make_shared<ConsumptionGroup>(next_clone_cg_id_++, w.id,
                                                       clone->version_id(), cg->delta());
        for (const auto seq : events) copy->add_event(seq);
        cloned_groups.emplace(match_id, copy);
        cg_map.emplace(cg->id(), copy);
        added_keys.push_back(cg->id());
    }
    st.own_groups = std::move(cloned_groups);
    mutable_src.release_ownership();

    // The copied state is only valid if it never used an event the new
    // suppression set forbids (the "modified copy ... suppresses all events
    // listed in CG" condition); otherwise restart fresh.
    if (!clone->validate_suppression()) {
        for (const auto key : added_keys) cg_map.erase(key);
        return nullptr;
    }
    // A cloned finished version has no in-flight updates — its group state
    // was cloned synchronously — so it is immediately eligible to retire.
    if (clone->finished()) finished_versions_.insert(clone->version_id());
    return clone;
}

std::size_t Splitter::effective_lookahead() const {
    if (config_.lookahead_windows > 0) return config_.lookahead_windows;
    // Natural overlap degree: how many consecutive windows share events.
    std::size_t overlap = 1;
    const auto& spec = cq_->query().window;
    if (spec.kind == query::WindowKind::SlidingCount && spec.slide < spec.size)
        overlap = static_cast<std::size_t>((spec.size + spec.slide - 1) / spec.slide);
    return std::max<std::size_t>({overlap, static_cast<std::size_t>(config_.instances) * 2,
                                  2});
}

void Splitter::apply_updates() {
    auto batch = updates_.drain();
    metrics_.updates_applied += batch.size();

    // Reorder the batch to maximize state-preserving clones without changing
    // semantics: (1) splice resolutions of already-attached groups first, so
    // their consumptions reach the tree before any copy is made; (2) attach
    // creations deepest-owner-first, so an ancestor's copy finds descendant
    // group vertices in place; (3) everything else in arrival order. Only
    // updates before the first Rollback are hoisted — a creation issued
    // after a rollback must not attach before the rebuild wipes the subtree.
    std::size_t hoist_limit = batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].kind == Update::Kind::Rollback) {
            hoist_limit = i;
            break;
        }
    }
    std::vector<std::size_t> order;
    std::vector<char> taken(batch.size(), 0);
    order.reserve(batch.size());
    for (std::size_t i = 0; i < hoist_limit; ++i) {
        const auto k = batch[i].kind;
        if ((k == Update::Kind::CgCompleted || k == Update::Kind::CgAbandoned) &&
            batch[i].cg && tree_.group_attached(batch[i].cg->id())) {
            order.push_back(i);
            taken[i] = 1;
        }
    }
    std::vector<std::size_t> creations;
    for (std::size_t i = 0; i < hoist_limit; ++i) {
        if (batch[i].kind == Update::Kind::CgCreated) {
            creations.push_back(i);
            taken[i] = 1;
        }
    }
    std::stable_sort(creations.begin(), creations.end(),
                     [&](std::size_t a, std::size_t b) {
                         return batch[a].cg->window_id() > batch[b].cg->window_id();
                     });
    order.insert(order.end(), creations.begin(), creations.end());
    for (std::size_t i = 0; i < batch.size(); ++i)
        if (!taken[i]) order.push_back(i);

    for (const auto idx : order) {
        auto& u = batch[idx];
        switch (u.kind) {
            case Update::Kind::CgCreated: {
                const bool ok = tree_.on_group_created(u.cg);
                if (ok) ++metrics_.groups_created;
                if (trace_enabled())
                    std::fprintf(stderr, "[trace] cg_created id=%llu owner=%llu win=%llu ok=%d\n",
                                 (unsigned long long)u.cg->id(),
                                 (unsigned long long)u.cg->owner_version_id(),
                                 (unsigned long long)u.cg->window_id(), ok ? 1 : 0);
                break;
            }
            case Update::Kind::CgCompleted:
                ++metrics_.groups_completed;
                if (trace_enabled()) {
                    std::uint64_t ver = 0;
                    std::string evs;
                    for (auto s : u.cg->snapshot(ver)) evs += std::to_string(s) + ",";
                    std::fprintf(stderr, "[trace] cg_completed id=%llu owner=%llu events=%s\n",
                                 (unsigned long long)u.cg->id(),
                                 (unsigned long long)u.cg->owner_version_id(), evs.c_str());
                }
                tree_.on_group_resolved(u.cg, /*completed=*/true);
                break;
            case Update::Kind::CgAbandoned:
                ++metrics_.groups_abandoned;
                tree_.on_group_resolved(u.cg, /*completed=*/false);
                break;
            case Update::Kind::WindowFinished:
                // Retirement is gated on this update, not on the version's
                // atomic flag: the queue is FIFO per instance, so once this
                // arrives, every group update of the version's final pass has
                // been applied. Acting on the flag alone could retire a root
                // whose last consumption-group updates are still in flight.
                finished_versions_.insert(u.version_id);
                break;
            case Update::Kind::Rollback:
                ++metrics_.rollbacks;
                tree_.rebuild_after_rollback(u.version_id);
                break;
            case Update::Kind::Stats:
                metrics_.stats_samples += u.transitions.size();
                for (const auto& [from, to] : u.transitions) model_->observe(from, to);
                break;
        }
    }
}

void Splitter::retire_finished_roots() {
    while (WindowVersion* root = tree_.front_root()) {
        if (!root->finished() || !finished_versions_.count(root->version_id())) break;
        // Final consistency check before the root's output becomes visible:
        // a version that finished *before* one of its suppressed groups
        // gained an event never saw that addition in its periodic checks. By
        // now the root path is fully resolved, so membership is frozen and
        // the verdict is final.
        if (!root->try_acquire(kSplitterOwner)) break;  // owner mid-batch; retry next cycle
        if (!root->validate_suppression()) {
            ++metrics_.late_validations;
            finished_versions_.erase(root->version_id());
            root->reset_processing();
            root->release_ownership();
            tree_.rebuild_after_rollback(root->version_id());
            break;  // reprocess; retirement resumes once re-finished
        }
        finished_versions_.erase(root->version_id());
        if (trace_enabled()) {
            std::string cgs;
            for (const auto& cg : root->suppressed()) {
                std::uint64_t ver = 0;
                cgs += std::to_string(cg->id()) + "{";
                for (auto s : cg->snapshot(ver)) cgs += std::to_string(s) + ",";
                cgs += "} ";
            }
            std::string out;
            for (const auto& ce : root->processing().output) {
                out += "[";
                for (auto s : ce.constituents) out += std::to_string(s) + ",";
                out += "]";
            }
            std::fprintf(stderr, "[trace] retire win=%llu ver=%llu suppressed=%s out=%s\n",
                         (unsigned long long)root->window().id,
                         (unsigned long long)root->version_id(), cgs.c_str(), out.c_str());
        }
        root->release_ownership();
        // Only *validated* retirements feed the consumed tail — speculative
        // completions on dropped branches never really consumed anything.
        for (const auto& cg : tree_.front_root_completed_groups()) {
            std::uint64_t version = 0;
            for (const auto seq : cg->snapshot(version)) consumed_tail_.insert(seq);
        }
        WvPtr retired = tree_.retire_front_root();
        auto out = retired->take_output();
        metrics_.complex_events += out.size();
        // Egress point: only validated retirements reach here, so emission
        // order == window order == the sequential engine's output order
        // (DESIGN.md §8 ordering guarantee).
        for (auto& ce : out) {
            if (sink_)
                sink_(std::move(ce));
            else
                output_.push_back(std::move(ce));
        }
        ++retired_;
        ++metrics_.windows_retired;
    }
}

void Splitter::discover_windows() {
    // A closed store implies a complete input; latch the flag so the operator
    // instances (which read it through a pointer) see it with one acquire.
    // Latch even when the assigner is exhausted — trailing windows finish at
    // end-of-stream only once the instances observe completeness.
    if (!input_complete_.load(std::memory_order_relaxed) && store_->closed())
        input_complete_.store(true, std::memory_order_release);
    const bool complete = input_complete_.load(std::memory_order_relaxed);
    const event::Seq frontier = store_->size();
    if (!assigner_.exhausted()) {
        const std::size_t before = windows_.size();
        assigner_.poll(*store_, frontier, complete, windows_);
        // The dependency definition requires window ends monotone in starts
        // (DESIGN.md §5); all our window kinds satisfy it, assert anyway.
        for (std::size_t i = std::max<std::size_t>(before, 1); i < windows_.size(); ++i)
            SPECTRE_CHECK(windows_[i].last >= windows_[i - 1].last &&
                              windows_[i].first >= windows_[i - 1].first,
                          "window ends must be monotone in starts");
    }
    last_polled_frontier_ = frontier;
    last_polled_complete_ = complete;
}

bool Splitter::needs_cycle() const {
    if (done_) return false;
    // Buffered instance feedback: groups to attach/resolve, finish marks,
    // rollbacks, statistics.
    if (!updates_.empty()) return true;
    // A finished root whose WindowFinished update was already drained is
    // eligible to retire (and retirement may cascade: child becomes root).
    if (const WindowVersion* root = tree_.front_root())
        if (root->finished() && finished_versions_.count(root->version_id()))
            return true;
    // The input state or the frontier moved since the last discovery poll:
    // the end-of-stream latch must be taken / new windows may be determined.
    const bool complete =
        input_complete_.load(std::memory_order_relaxed) || store_->closed();
    if (complete != last_polled_complete_ || store_->size() != last_polled_frontier_)
        return true;
    // Discovered windows are waiting and there is capacity to open them.
    if (next_window_ < windows_.size() && (next_window_ - retired_) < effective_lookahead() &&
        tree_.live_versions() < config_.max_tree_versions)
        return true;
    return false;
}

void Splitter::open_windows() {
    const std::size_t lookahead = effective_lookahead();
    while (next_window_ < windows_.size() &&
           (next_window_ - retired_) < lookahead &&
           tree_.live_versions() < config_.max_tree_versions) {
        const auto& w = windows_[next_window_];
        // Events consumed in already-retired windows cannot appear in any
        // window starting before w; drop them from the tail.
        while (!consumed_tail_.empty() && *consumed_tail_.begin() < w.first)
            consumed_tail_.erase(consumed_tail_.begin());
        // If the window starts a new independent tree it still has to
        // suppress consumptions from retired windows reaching into its range;
        // hand them over as a resolved "ghost" group.
        std::vector<CgPtr> root_suppressed;
        if (!consumed_tail_.empty()) {
            auto ghost = std::make_shared<ConsumptionGroup>(/*id=*/0, /*window_id=*/0,
                                                            /*owner_version_id=*/0,
                                                            /*initial_delta=*/0);
            for (const auto seq : consumed_tail_) ghost->add_event(seq);
            ghost->resolve(CgOutcome::Completed);
            root_suppressed.push_back(std::move(ghost));
        }
        tree_.open_window(w, std::move(root_suppressed));
        ++next_window_;
        ++metrics_.windows_opened;
    }
}

void Splitter::schedule() {
    const auto k = static_cast<std::size_t>(config_.instances);
    const auto topk = tree_.top_k(k, *model_);

    std::unordered_set<std::uint64_t> wanted;
    for (const auto& wv : topk) wanted.insert(wv->version_id());

    // First pass (Fig. 7 lines 7-13): instances keeping a top-k version are
    // not free; everything else is.
    std::unordered_set<std::uint64_t> already_scheduled;
    std::vector<OperatorInstance*> free_instances;
    for (auto& inst : instances_) {
        const WvPtr cur = inst->assignment();
        if (cur && !cur->dropped() && !cur->finished() &&
            wanted.count(cur->version_id()) &&
            !already_scheduled.count(cur->version_id())) {
            already_scheduled.insert(cur->version_id());
        } else {
            free_instances.push_back(inst.get());
        }
    }

    // Second pass (lines 14-17): hand each remaining top-k version to a free
    // instance.
    std::size_t fi = 0;
    for (const auto& wv : topk) {
        if (already_scheduled.count(wv->version_id())) continue;
        SPECTRE_CHECK(fi < free_instances.size(), "not enough free operator instances");
        free_instances[fi++]->assign(wv);
    }
    // Idle any leftover instances so they stop burning work on versions that
    // fell out of the top-k.
    for (; fi < free_instances.size(); ++fi) free_instances[fi]->assign(nullptr);
}

bool Splitter::run_cycle() {
    if (done_) return false;
    ++metrics_.cycles;

    const std::uint64_t work_before = metrics_.updates_applied + metrics_.windows_opened +
                                      metrics_.windows_retired + windows_.size();
    apply_updates();
    retire_finished_roots();
    discover_windows();
    open_windows();
    model_->refresh();
    schedule();
    last_cycle_progressed_ = metrics_.updates_applied + metrics_.windows_opened +
                                 metrics_.windows_retired + windows_.size() !=
                             work_before;

    metrics_.max_tree_versions =
        std::max(metrics_.max_tree_versions, tree_.stats().max_versions);
    metrics_.versions_dropped = tree_.stats().versions_dropped;
    metrics_.copies_cloned = tree_.stats().copies_cloned;
    metrics_.copies_fresh = tree_.stats().copies_fresh;
    metrics_.speculation_wasted_events = tree_.stats().wasted_events;

    // Done only at quiescence on a complete input: no window still to be
    // discovered by arrivals, none waiting to open, none live in the tree.
    if (input_complete_.load(std::memory_order_relaxed) && assigner_.exhausted() &&
        next_window_ == windows_.size() && tree_.empty()) {
        done_ = true;
        for (auto& inst : instances_) inst->assign(nullptr);
        return false;
    }
    return true;
}

}  // namespace spectre::core
