#include "spectre/runtime.hpp"

#include <atomic>
#include <chrono>
#include <thread>

namespace spectre::core {

SpectreRuntime::SpectreRuntime(const event::EventStore* store,
                               const detect::CompiledQuery* cq, RuntimeConfig config,
                               std::unique_ptr<model::CompletionModel> model)
    : store_(store), config_(config),
      splitter_(store, cq, config.splitter, std::move(model)) {}

RunResult SpectreRuntime::run() {
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    workers.reserve(splitter_.instances().size());

    const auto t0 = std::chrono::steady_clock::now();

    for (auto& inst : splitter_.instances()) {
        workers.emplace_back([&stop, inst = inst.get(), batch = config_.batch_events] {
            while (!stop.load(std::memory_order_acquire)) {
                if (inst->run_batch(batch) == 0) {
                    // Idle: no assignment or version busy elsewhere — yield
                    // instead of spinning hot on small machines.
                    std::this_thread::yield();
                }
            }
        });
    }

    while (splitter_.run_cycle()) {
        // Splitter runs its maintenance/scheduling loop continuously, as in
        // the paper's deployment (it owns a dedicated core).
    }
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();

    const auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    result.output = splitter_.take_output();
    result.metrics = splitter_.metrics();
    for (auto& inst : splitter_.instances()) result.instance_stats.push_back(inst->stats());
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.throughput_eps =
        result.wall_seconds > 0 ? static_cast<double>(store_->size()) / result.wall_seconds
                                : 0.0;
    return result;
}

}  // namespace spectre::core
