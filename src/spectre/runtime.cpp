#include "spectre/runtime.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "util/assert.hpp"

namespace spectre::core {

SpectreRuntime::SpectreRuntime(const event::EventStore* store,
                               const detect::CompiledQuery* cq, RuntimeConfig config,
                               std::unique_ptr<model::CompletionModel> model)
    : store_(store), config_(config),
      splitter_(store, cq, config.splitter, std::move(model)) {}

SpectreRuntime::SpectreRuntime(event::EventStore* store, const detect::CompiledQuery* cq,
                               RuntimeConfig config,
                               std::unique_ptr<model::CompletionModel> model)
    : SpectreRuntime(static_cast<const event::EventStore*>(store), cq, config,
                     std::move(model)) {
    mutable_store_ = store;
}

RunResult SpectreRuntime::run_threads() {
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    workers.reserve(splitter_.instances().size());

    const auto t0 = std::chrono::steady_clock::now();

    for (auto& inst : splitter_.instances()) {
        workers.emplace_back([&stop, inst = inst.get(), batch = config_.batch_events] {
            while (!stop.load(std::memory_order_acquire)) {
                if (inst->run_batch(batch) == 0) {
                    // Idle: no assignment, version busy elsewhere, or stalled
                    // at the ingestion frontier — yield instead of spinning
                    // hot on small machines.
                    std::this_thread::yield();
                }
            }
        });
    }

    while (splitter_.run_cycle()) {
        // Splitter runs its maintenance/scheduling loop continuously, as in
        // the paper's deployment (it owns a dedicated core).
    }
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();

    const auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    result.output = splitter_.take_output();
    result.metrics = splitter_.metrics();
    for (auto& inst : splitter_.instances()) result.instance_stats.push_back(inst->stats());
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.throughput_eps =
        result.wall_seconds > 0 ? static_cast<double>(store_->size()) / result.wall_seconds
                                : 0.0;
    return result;
}

SpectreRuntime::StepProgress SpectreRuntime::step() {
    StepProgress p;
    if (splitter_.done()) {
        p.done = true;
        return p;
    }
    // Cycle first, then the instance batches: the cycle drains the updates
    // the previous step's batches buffered (including WindowFinished) and
    // retires what they finished, so a zero-event step leaves the runtime
    // quiescent for the current frontier.
    splitter_.run_cycle();
    for (auto& inst : splitter_.instances())
        p.events_processed += inst->run_batch(config_.batch_events);
    p.done = splitter_.done();
    return p;
}

RunResult SpectreRuntime::run() {
    splitter_.mark_input_complete();
    return run_threads();
}

RunResult SpectreRuntime::run(event::EventStream& live) {
    SPECTRE_REQUIRE(mutable_store_ != nullptr,
                    "streaming run needs the mutable-store constructor");
    SPECTRE_REQUIRE(!splitter_.input_complete() && !mutable_store_->closed(),
                    "streaming run needs an open store");
    // Feeder thread: the paper's ingestion path — events are appended to the
    // shared store as they arrive; detection is already running against the
    // advancing frontier. A source failure (e.g. a reset TCP connection) must
    // still close the store — otherwise the detection loop would wait for a
    // frontier that never completes — and then surface to the caller.
    std::exception_ptr feed_error;
    std::thread feeder([this, &live, &feed_error] {
        try {
            while (auto e = live.next()) mutable_store_->append(*e);
        } catch (...) {
            feed_error = std::current_exception();
        }
        mutable_store_->close();
    });
    RunResult result = run_threads();
    feeder.join();
    if (feed_error) std::rethrow_exception(feed_error);
    return result;
}

}  // namespace spectre::core
