#include "spectre/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/assert.hpp"

namespace spectre::core {

SpectreRuntime::SpectreRuntime(const event::EventStore* store,
                               const detect::CompiledQuery* cq, RuntimeConfig config,
                               std::unique_ptr<model::CompletionModel> model)
    : store_(store), config_(config),
      splitter_(store, cq, config.splitter, std::move(model)),
      sched_(static_cast<std::size_t>(config.splitter.instances)) {}

SpectreRuntime::SpectreRuntime(event::EventStore* store, const detect::CompiledQuery* cq,
                               RuntimeConfig config,
                               std::unique_ptr<model::CompletionModel> model)
    : SpectreRuntime(static_cast<const event::EventStore*>(store), cq, config,
                     std::move(model)) {
    mutable_store_ = store;
}

RunResult SpectreRuntime::run_threads() {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> instance_idle_sleeps{0};
    std::uint64_t splitter_idle_sleeps = 0;
    std::vector<std::thread> workers;
    workers.reserve(splitter_.instances().size());
    const auto backoff = std::chrono::microseconds(config_.idle_backoff_us);

    const auto t0 = std::chrono::steady_clock::now();

    for (auto& inst : splitter_.instances()) {
        workers.emplace_back([&, inst = inst.get(), batch = config_.batch_events] {
            int idle_streak = 0;
            while (!stop.load(std::memory_order_acquire)) {
                if (inst->run_batch(batch).advanced == 0) {
                    // Idle: no assignment, version busy elsewhere, or stalled
                    // at the ingestion frontier. While the input is still
                    // arriving, a persistent spinner would steal the CPU the
                    // feeder's decode needs (the §6 contention fix) — sleep;
                    // otherwise just yield as before.
                    if (config_.idle_backoff_us > 0 && ++idle_streak >= 2 &&
                        !splitter_.input_complete()) {
                        instance_idle_sleeps.fetch_add(1, std::memory_order_relaxed);
                        std::this_thread::sleep_for(backoff);
                    } else {
                        std::this_thread::yield();
                    }
                } else {
                    idle_streak = 0;
                }
            }
        });
    }

    while (splitter_.run_cycle()) {
        // Splitter runs its maintenance/scheduling loop continuously, as in
        // the paper's deployment (it owns a dedicated core there). On shared
        // cores a no-progress cycle during live ingestion backs off instead
        // of spinning against the feeder (§6).
        if (config_.idle_backoff_us > 0 && !splitter_.last_cycle_progressed() &&
            !splitter_.input_complete()) {
            ++splitter_idle_sleeps;
            std::this_thread::sleep_for(backoff);
        }
    }
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();

    const auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    result.output = splitter_.take_output();
    result.metrics = splitter_.metrics();
    for (auto& inst : splitter_.instances()) result.instance_stats.push_back(inst->stats());
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.throughput_eps =
        result.wall_seconds > 0 ? static_cast<double>(store_->size()) / result.wall_seconds
                                : 0.0;
    result.splitter_idle_sleeps = splitter_idle_sleeps;
    result.instance_idle_sleeps = instance_idle_sleeps.load(std::memory_order_relaxed);
    result.sched = sched_stats();
    return result;
}

SpectreRuntime::StepProgress SpectreRuntime::step() {
    StepProgress p;
    if (splitter_.done()) {
        p.done = true;
        p.quiescent = true;
        return p;
    }
    ++sched_stats_.steps;
    sched_.check_invariants();
    const std::size_t budget =
        config_.quantum_budget > 0 ? config_.quantum_budget : config_.batch_events;
    bool cycled = false;
    // Dependency-graph scheduling loop (DESIGN.md §11): cycle only when the
    // splitter's dirty predicate fires, then drain the ready queue. Exits on
    // budget exhaustion, completion, or a fixed point (quiescence).
    for (;;) {
        if (splitter_.needs_cycle()) {
            const std::uint64_t cycle_t0 = obs_ ? obs::now_ns() : 0;
            splitter_.run_cycle();
            if (cycle_t0 != 0)
                obs_->observe(obs::Series{obs::sid::kSplitterCycleNs},
                              obs::now_ns() - cycle_t0);
            ++sched_stats_.cycles;
            cycled = true;
            if (splitter_.done()) {
                p.done = true;
                p.quiescent = true;
                sched_.retire_all();  // lazy retirement: graph frees its edges
                break;
            }
            // Assignments may have moved anywhere (top-k reshuffle, rollback
            // rebuilds): instances with a live version re-enter the queue.
            auto& insts = splitter_.instances();
            sched_.requeue_after_cycle([&](int i) {
                const WvPtr wv = insts[static_cast<std::size_t>(i)]->assignment();
                return wv && !wv->dropped() && !wv->finished();
            });
        }
        sched_.wake_frontier(store_->size());
        const int idx = sched_.pop_ready();
        if (idx < 0) {
            if (splitter_.needs_cycle()) continue;  // batches buffered updates
            p.quiescent = true;  // no ready instance, no cycle work: fixed point
            break;
        }
        auto& inst = *splitter_.instances()[static_cast<std::size_t>(idx)];
        const std::size_t want =
            std::min(config_.batch_events, budget - p.events_processed);
        const auto r = inst.run_batch(want);
        ++sched_stats_.batches;
        sched_stats_.batch_events += r.advanced;
        p.events_processed += r.advanced;
        switch (r.outcome) {
            case BatchResult::Outcome::Progress:
            case BatchResult::Outcome::RolledBack:
                // Mid-window (or restarting from the window start): events
                // below the frontier remain — immediately ready again.
                sched_.mark_ready(idx);
                break;
            case BatchResult::Outcome::Stalled:
                sched_.mark_stalled(idx, r.wait_seq);
                break;
            case BatchResult::Outcome::Finished:
                ++sched_stats_.instances_retired;
                sched_.mark_waiting_assignment(idx);
                break;
            case BatchResult::Outcome::Dropped:
                ++sched_stats_.instances_cancelled;
                sched_.mark_waiting_assignment(idx);
                break;
            case BatchResult::Outcome::NoAssignment:
            case BatchResult::Outcome::Busy:
                sched_.mark_waiting_assignment(idx);
                break;
        }
        if (p.events_processed >= budget) break;  // quantum spent — yield
    }
    if (!cycled) ++sched_stats_.cycles_skipped;
    return p;
}

SchedStats SpectreRuntime::sched_stats() const {
    SchedStats s = sched_stats_;
    s.ready_depth_max = sched_.ready_max();
    s.ready_depth_p50 = sched_.ready_p50();
    s.speculation_wasted_events = splitter_.metrics().speculation_wasted_events;
    return s;
}

RunResult SpectreRuntime::run() {
    splitter_.mark_input_complete();
    return run_threads();
}

RunResult SpectreRuntime::run(event::EventStream& live) {
    SPECTRE_REQUIRE(mutable_store_ != nullptr,
                    "streaming run needs the mutable-store constructor");
    SPECTRE_REQUIRE(!splitter_.input_complete() && !mutable_store_->closed(),
                    "streaming run needs an open store");
    // Feeder thread: the paper's ingestion path — events are appended to the
    // shared store as they arrive; detection is already running against the
    // advancing frontier. A source failure (e.g. a reset TCP connection) must
    // still close the store — otherwise the detection loop would wait for a
    // frontier that never completes — and then surface to the caller.
    std::exception_ptr feed_error;
    double feed_seconds = 0.0;
    std::thread feeder([this, &live, &feed_error, &feed_seconds] {
        const auto f0 = std::chrono::steady_clock::now();
        try {
            while (auto e = live.next()) mutable_store_->append(*e);
        } catch (...) {
            feed_error = std::current_exception();
        }
        mutable_store_->close();
        feed_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - f0).count();
    });
    RunResult result = run_threads();
    feeder.join();
    if (feed_error) std::rethrow_exception(feed_error);
    result.feed_seconds = feed_seconds;
    return result;
}

}  // namespace spectre::core
