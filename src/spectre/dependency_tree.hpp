// DependencyTree: window versions, consumption-group vertices and the
// completion/abandon edges between them (§3.1, Fig. 3/4), plus the top-k
// selection walk (§3.2.2, Fig. 6).
//
// Owned and mutated exclusively by the splitter. Structure:
//   * a forest of trees ordered by window id; each tree's root is the single
//     version of an independent window;
//   * a Version vertex has at most one child (a Group vertex for a pending
//     group created by that version, or the version of the next dependent
//     window);
//   * a Group vertex has a completion child (subtree assuming the group
//     completes — every version in it suppresses the group's events) and an
//     abandon child (subtree assuming it is abandoned).
//
// Copy semantics (§3.1's "modified copy", made precise in DESIGN.md §4):
// a new group's completion edge receives a copy of the owner's subtree whose
// versions *keep their processing state* (a clone) whenever that state is
// valid under the extra suppression — validated at copy time, guarded by the
// consistency checks afterwards — and restart fresh otherwise. Group
// vertices owned by the version that created the new group are preserved
// sharing the underlying group; pending groups of cloned descendants are
// preserved with cloned group objects; groups of fresh-restarted descendants
// are void (the restart re-detects them). Above a configurable version-count
// threshold, copies stop multiplying pending descendant branches entirely —
// the paper's doubling is exponential in the number of concurrently pending
// groups, and this is the memory/wasted-work trade the splitter makes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/completion_model.hpp"
#include "spectre/window_version.hpp"

namespace spectre::core {

struct TreeNode {
    enum class Kind { Version, Group };
    Kind kind = Kind::Version;

    // Version vertex:
    WvPtr wv;
    std::unique_ptr<TreeNode> child;
    // Groups this version completed whose vertices were already spliced out.
    // Windows opened later still need to suppress their events; the attach
    // path folds these into every new leaf under this vertex.
    std::vector<CgPtr> completed_groups;

    // Group vertex:
    CgPtr cg;
    std::unique_ptr<TreeNode> completion;
    std::unique_ptr<TreeNode> abandon;

    TreeNode* parent = nullptr;  // null for roots
};

struct TreeStats {
    std::uint64_t versions_created = 0;
    std::uint64_t versions_dropped = 0;
    std::uint64_t groups_attached = 0;
    std::uint64_t copies_cloned = 0;  // subtree copies that kept their progress
    std::uint64_t copies_fresh = 0;   // subtree copies restarted from scratch
    std::size_t max_versions = 0;  // peak live version count (Fig. 10(f))
    // Window positions processed by versions that were later dropped — the
    // speculation the scheduler wasted (lazily cancelled, never emitted).
    std::uint64_t wasted_events = 0;
};

class DependencyTree {
public:
    // `factory` creates a WindowVersion for (window, suppressed groups); the
    // splitter supplies it so version ids and detector wiring stay there.
    using VersionFactory =
        std::function<WvPtr(const query::WindowInfo&, std::vector<CgPtr>)>;

    // Optional state-cloning factory for subtree copies (see §3.1 copy
    // semantics): produces a version whose processing state continues from
    // `src`, with `src`'s pending groups cloned into fresh group objects
    // (recorded in `cg_map`, original group id → clone). Returns nullptr when
    // cloning is impossible right now (source mid-batch, copied state already
    // violates the new suppression set, or a pending group is not yet
    // attached) — the tree then falls back to a fresh version.
    // `allow_pending` = false restricts cloning to versions without pending
    // own groups (used under memory pressure, see set_collapse_threshold).
    using CloneFactory = std::function<WvPtr(
        const query::WindowInfo&, std::vector<CgPtr>, const WindowVersion& src,
        std::unordered_map<std::uint64_t, CgPtr>& cg_map, bool allow_pending)>;

    explicit DependencyTree(VersionFactory factory);

    void set_clone_factory(CloneFactory clone_factory) {
        clone_factory_ = std::move(clone_factory);
    }

    // Pressure valve for the exponential version doubling (§3.1: "each new
    // consumption group ... doubles the window versions in the subtree"):
    // once the tree holds more live versions than this, subtree copies stop
    // preserving descendant *pending* group branching — those copies restart
    // fresh and re-detect, trading some wasted work for bounded memory.
    void set_collapse_threshold(std::size_t versions) { collapse_threshold_ = versions; }

    // True iff a Group vertex for this group id is currently in the tree.
    bool group_attached(std::uint64_t cg_id) const {
        return group_index_.count(cg_id) > 0;
    }

    // --- structural updates (Fig. 4) ----------------------------------------
    // Opens `w`: if it overlaps the live chain, attaches new versions at every
    // leaf; otherwise starts a new independent tree whose root suppresses
    // `root_suppressed` (consumptions from already-retired windows whose
    // ranges still reach into `w` — the splitter's consumed tail).
    void open_window(const query::WindowInfo& w, std::vector<CgPtr> root_suppressed = {});

    // Attaches a Group vertex for `cg` under its owner version; the former
    // subtree becomes the abandon child and a fresh suppressed copy the
    // completion child. No-op (returns false) if the owner is no longer live.
    bool on_group_created(const CgPtr& cg);

    // Resolves a group: keeps the matching edge of every vertex referencing
    // it, drops the other side (marking all versions in it dropped).
    void on_group_resolved(const CgPtr& cg, bool completed);

    // Rollback recovery: the version reprocesses from scratch, so everything
    // that was derived from its invalid pass — group vertices it created and
    // version copies pruned/kept by its group resolutions — is stale. Drops
    // its dependent subtree and re-attaches one fresh version per window that
    // was in it. No-op if the version is no longer live.
    void rebuild_after_rollback(std::uint64_t version_id);

    // --- root retirement -----------------------------------------------------
    // The oldest live version: root of the first tree (never null while live
    // versions exist). Its survival probability is 1 by construction.
    WindowVersion* front_root() const;
    // Groups the front root completed (validated consumptions); the splitter
    // folds their events into the consumed tail at retirement.
    const std::vector<CgPtr>& front_root_completed_groups() const;
    // Pops the front root after it finished; its child becomes the new root
    // (or the tree is removed). Precondition: front root finished and has no
    // pending Group child.
    WvPtr retire_front_root();

    bool empty() const noexcept { return roots_.empty(); }
    std::size_t live_versions() const noexcept { return index_.size(); }
    std::size_t live_windows() const;

    // --- top-k selection (Fig. 6) --------------------------------------------
    // The k live, unfinished versions with the highest survival probability;
    // deterministic (ties resolve by creation order). `events_left_hint`
    // supplies n for the model query (Fig. 5 line 2).
    std::vector<WvPtr> top_k(std::size_t k, const model::CompletionModel& model) const;

    // Survival probability of a version currently in the tree (test hook).
    double survival_probability(std::uint64_t version_id,
                                const model::CompletionModel& model) const;

    const TreeStats& stats() const noexcept { return stats_; }

    // Validates structural invariants (tests / debug): parent pointers, index
    // consistency, one window per level along every path.
    void check_invariants() const;

private:
    TreeNode* find_version(std::uint64_t version_id) const;
    void register_subtree(TreeNode* node);
    void drop_subtree(std::unique_ptr<TreeNode> node);
    struct CopyContext {
        std::uint64_t owner_version_id = 0;  // version that created the new group
        bool collapse = false;  // over threshold: do not multiply pending branches
        // Original group id -> cloned group, for pending groups of cloned
        // descendant versions.
        std::unordered_map<std::uint64_t, CgPtr> cg_map;
        // Versions whose copy fell back to fresh: their (void) group vertices
        // are skipped via the abandon structure.
        std::unordered_set<std::uint64_t> fresh_owners;
    };
    // `force_fresh` propagates down a branch once an ancestor copy restarted
    // fresh: deeper originals' skips may depend on that ancestor's (now void)
    // consumptions, so their state cannot be trusted either.
    std::unique_ptr<TreeNode> copy_subtree(const TreeNode* original,
                                           std::vector<CgPtr> suppressed, CopyContext& ctx,
                                           bool force_fresh);
    void attach_at_leaves(TreeNode* node, const query::WindowInfo& w,
                          std::vector<CgPtr> suppressed);
    double group_probability(const ConsumptionGroup& cg,
                             const model::CompletionModel& model) const;

    VersionFactory factory_;
    CloneFactory clone_factory_;
    std::size_t collapse_threshold_ = 4096;
    std::vector<std::unique_ptr<TreeNode>> roots_;  // ordered by window id
    std::unordered_map<std::uint64_t, TreeNode*> index_;  // version id -> vertex
    std::unordered_map<std::uint64_t, std::vector<TreeNode*>> group_index_;  // cg id -> vertices
    query::WindowInfo latest_opened_{};  // most recently opened window
    TreeStats stats_;
};

}  // namespace spectre::core
