#include "spectre/consumption_group.hpp"

#include <algorithm>

namespace spectre::core {

ConsumptionGroup::ConsumptionGroup(std::uint64_t id, std::uint64_t window_id,
                                   std::uint64_t owner_version_id, int initial_delta)
    : id_(id), window_id_(window_id), owner_version_id_(owner_version_id),
      delta_(initial_delta) {}

void ConsumptionGroup::add_event(event::Seq seq) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(seq);
    }
    // Release so a reader that sees the new version also sees the new event.
    version_.fetch_add(1, std::memory_order_release);
}

void ConsumptionGroup::resolve(CgOutcome outcome) noexcept {
    outcome_.store(outcome, std::memory_order_release);
}

std::vector<event::Seq> ConsumptionGroup::snapshot(std::uint64_t& version_out) const {
    // Version first (acquire), then the membership: the snapshot can only be
    // *newer* than the recorded version, never older — which errs toward
    // suppressing too much, caught as a plain re-check, never an anomaly.
    version_out = version_.load(std::memory_order_acquire);
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

bool ConsumptionGroup::contains(event::Seq seq) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return std::find(events_.begin(), events_.end(), seq) != events_.end();
}

std::size_t ConsumptionGroup::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

}  // namespace spectre::core
