// Splitter: the coordination thread of SPECTRE (Fig. 2, §3.2).
//
// One maintenance + scheduling cycle (run_cycle, the unit Fig. 10(c)
// measures) performs:
//   (a) maintenance — drain the operator instances' buffered updates and
//       apply them to the dependency tree (attach groups, prune resolved
//       ones, fold statistics into the prediction model), retire finished
//       roots (emitting their buffered complex events in window order),
//       discover windows newly determined by the ingestion frontier, and
//       open them;
//   (b) scheduling — select the top-k window versions by survival
//       probability (Fig. 6) and map them onto the k operator instances
//       without disturbing versions that stay scheduled (Fig. 7).
//
// Ingestion is arrival-driven (DESIGN.md §6): the splitter enumerates windows
// from the events seen so far — a window opens once its start event has
// arrived, exactly as in the paper — and operator instances process only up
// to the store's frontier. On a live stream this self-throttles speculation
// naturally; the lookahead cap remains as the batch-replay guard (DESIGN.md
// §7), and a version-count guard bounds speculative blow-up at 50% completion
// probability.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <unordered_set>

#include "query/window.hpp"
#include "spectre/dependency_tree.hpp"
#include "spectre/operator_instance.hpp"

namespace spectre::core {

struct SplitterConfig {
    int instances = 4;  // k
    // Max live (opened, unretired) windows; 0 = auto: max(natural overlap
    // degree, 2k).
    std::size_t lookahead_windows = 0;
    // Stop opening windows while the tree holds more versions than this.
    std::size_t max_tree_versions = 50'000;
    // Above this many live versions, subtree copies stop multiplying pending
    // branches (DependencyTree::set_collapse_threshold).
    std::size_t collapse_threshold = 4096;
    InstanceConfig instance{};
};

struct SplitterMetrics {
    std::uint64_t cycles = 0;
    std::uint64_t windows_opened = 0;
    std::uint64_t windows_retired = 0;
    std::uint64_t groups_created = 0;
    std::uint64_t groups_completed = 0;
    std::uint64_t groups_abandoned = 0;
    std::uint64_t stats_samples = 0;
    std::uint64_t complex_events = 0;
    std::uint64_t rollbacks = 0;            // instance-detected inconsistencies
    std::uint64_t late_validations = 0;     // caught at root retirement
    std::size_t max_tree_versions = 0;     // Fig. 10(f)
    std::uint64_t versions_dropped = 0;
    std::uint64_t copies_cloned = 0;   // subtree copies that kept progress
    std::uint64_t copies_fresh = 0;    // subtree copies restarted
    std::uint64_t updates_applied = 0; // instance updates drained and applied
    // Window positions processed on versions later dropped (dead speculation
    // cancelled lazily by the scheduler; mirrors TreeStats::wasted_events).
    std::uint64_t speculation_wasted_events = 0;

    // Folds another lane's metrics into this one: counts sum, peaks
    // (max_tree_versions) take the max. The one aggregation rule for
    // multi-lane runs (sharded engines, DESIGN.md §10/§12) — assigning
    // lane metrics over each other would overwrite peaks.
    SplitterMetrics& merge(const SplitterMetrics& o) {
        cycles += o.cycles;
        windows_opened += o.windows_opened;
        windows_retired += o.windows_retired;
        groups_created += o.groups_created;
        groups_completed += o.groups_completed;
        groups_abandoned += o.groups_abandoned;
        stats_samples += o.stats_samples;
        complex_events += o.complex_events;
        rollbacks += o.rollbacks;
        late_validations += o.late_validations;
        max_tree_versions = std::max(max_tree_versions, o.max_tree_versions);
        versions_dropped += o.versions_dropped;
        copies_cloned += o.copies_cloned;
        copies_fresh += o.copies_fresh;
        updates_applied += o.updates_applied;
        speculation_wasted_events += o.speculation_wasted_events;
        return *this;
    }
};

class Splitter {
public:
    // `model` is the completion-probability predictor (Markov or fixed);
    // ownership is shared with nobody — the splitter drives observe/refresh.
    Splitter(const event::EventStore* store, const detect::CompiledQuery* cq,
             SplitterConfig config, std::unique_ptr<model::CompletionModel> model);

    // One maintenance + scheduling cycle. Returns true while work remains (or
    // may still arrive — on a live store the splitter keeps cycling until the
    // input is complete and every window retired).
    bool run_cycle();

    bool done() const noexcept { return done_; }

    // Dirty predicate for the cooperative scheduler (DESIGN.md §11): true iff
    // a maintenance/scheduling cycle could make progress right now — buffered
    // instance updates to apply, a finished root eligible to retire, an
    // end-of-stream latch to take, arrivals the window discovery has not
    // polled yet, or discovered windows with open capacity. When it returns
    // false, a cycle would be a no-op walk: the step scheduler skips it and
    // runs ready instances instead. The threaded runtime keeps cycling
    // unconditionally (the splitter owns a core in the paper's deployment).
    bool needs_cycle() const;

    // True if the last run_cycle applied updates, discovered, opened or
    // retired windows. A no-progress cycle at an unchanged frontier means the
    // splitter is waiting on arrivals or on instance batches — the streaming
    // driver backs off instead of spinning a core the feeder needs
    // (DESIGN.md §6).
    bool last_cycle_progressed() const noexcept { return last_cycle_progressed_; }

    // Declares the store's current contents to be the whole input. Batch
    // runtimes call this before their first cycle (the store was materialized
    // up front); on a live stream it is implied by EventStore::close().
    void mark_input_complete() noexcept {
        input_complete_.store(true, std::memory_order_release);
    }
    bool input_complete() const noexcept {
        return input_complete_.load(std::memory_order_acquire);
    }

    // The k operator instances (stable addresses; workers index into this).
    std::vector<std::unique_ptr<OperatorInstance>>& instances() noexcept {
        return instances_;
    }
    UpdateQueue& updates() noexcept { return updates_; }

    // Streaming egress (DESIGN.md §8): complex events are handed to `sink` as
    // their windows retire, in window order — the same order the collect-all
    // vector records. Install before the first run_cycle(); with a sink set,
    // output()/take_output() stay empty (the vector is the default sink).
    void set_result_sink(event::ResultSink sink) { sink_ = std::move(sink); }

    // Complex events emitted so far, in window order (identical to the
    // sequential engine's output). Only populated without a result sink.
    const std::vector<event::ComplexEvent>& output() const noexcept { return output_; }
    std::vector<event::ComplexEvent> take_output() { return std::move(output_); }

    const SplitterMetrics& metrics() const noexcept { return metrics_; }
    const DependencyTree& tree() const noexcept { return tree_; }
    const model::CompletionModel& model() const noexcept { return *model_; }
    std::size_t total_windows() const noexcept { return windows_.size(); }

private:
    void apply_updates();
    void retire_finished_roots();
    void discover_windows();
    void open_windows();
    void schedule();
    std::size_t effective_lookahead() const;
    // State-preserving copy of `src` for the dependency tree's subtree
    // copies; nullptr when cloning is not possible right now.
    WvPtr make_clone(const query::WindowInfo& w, std::vector<CgPtr> suppressed,
                     const WindowVersion& src,
                     std::unordered_map<std::uint64_t, CgPtr>& cg_map, bool allow_pending);

    const event::EventStore* store_;
    const detect::CompiledQuery* cq_;
    const SplitterConfig config_;
    std::unique_ptr<model::CompletionModel> model_;

    // True once no further events will arrive (store closed, or a batch
    // runtime declared the materialized store complete). Operator instances
    // read this through a pointer to clamp trailing windows at end-of-stream.
    std::atomic<bool> input_complete_{false};
    query::WindowAssigner assigner_;
    std::vector<query::WindowInfo> windows_;  // grows as arrivals determine them
    std::size_t next_window_ = 0;  // next window to open
    std::size_t retired_ = 0;
    // (frontier, completeness) the last discovery poll saw; needs_cycle()
    // compares against the store so steady-state steps skip the cycle.
    event::Seq last_polled_frontier_ = UINT64_MAX;
    bool last_polled_complete_ = false;
    // Consumed events from completed groups that may fall into windows not
    // yet opened (trimmed as the open frontier advances).
    std::set<event::Seq> consumed_tail_;
    // Versions whose WindowFinished update has been drained; only these may
    // retire (guarantees their final group updates were applied first).
    std::unordered_set<std::uint64_t> finished_versions_;

    DependencyTree tree_;
    UpdateQueue updates_;
    std::vector<std::unique_ptr<OperatorInstance>> instances_;
    std::vector<event::ComplexEvent> output_;
    event::ResultSink sink_;  // empty = collect into output_
    std::uint64_t next_version_id_ = 1;
    // Clone-side consumption-group ids live far above the instance-striped
    // ranges (operator instances stripe below 2^20 per instance).
    std::uint64_t next_clone_cg_id_ = 1ull << 40;
    bool done_ = false;
    bool last_cycle_progressed_ = true;
    SplitterMetrics metrics_;
};

}  // namespace spectre::core
