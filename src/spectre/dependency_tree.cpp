#include "spectre/dependency_tree.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/assert.hpp"

namespace spectre::core {

namespace {

std::vector<CgPtr> with_group(std::vector<CgPtr> base, const CgPtr& cg) {
    base.push_back(cg);
    return base;
}

}  // namespace

DependencyTree::DependencyTree(VersionFactory factory) : factory_(std::move(factory)) {
    SPECTRE_REQUIRE(factory_ != nullptr, "DependencyTree needs a version factory");
}

TreeNode* DependencyTree::find_version(std::uint64_t version_id) const {
    const auto it = index_.find(version_id);
    return it == index_.end() ? nullptr : it->second;
}

void DependencyTree::register_subtree(TreeNode* node) {
    if (node == nullptr) return;
    if (node->kind == TreeNode::Kind::Version) {
        index_[node->wv->version_id()] = node;
        if (node->child) {
            node->child->parent = node;
            register_subtree(node->child.get());
        }
    } else {
        group_index_[node->cg->id()].push_back(node);
        if (node->completion) {
            node->completion->parent = node;
            register_subtree(node->completion.get());
        }
        if (node->abandon) {
            node->abandon->parent = node;
            register_subtree(node->abandon.get());
        }
    }
    stats_.max_versions = std::max(stats_.max_versions, index_.size());
}

void DependencyTree::drop_subtree(std::unique_ptr<TreeNode> node) {
    if (!node) return;
    if (node->kind == TreeNode::Kind::Version) {
        node->wv->mark_dropped();
        index_.erase(node->wv->version_id());
        ++stats_.versions_dropped;
        stats_.wasted_events += node->wv->progress();
        drop_subtree(std::move(node->child));
    } else {
        auto& vec = group_index_[node->cg->id()];
        vec.erase(std::remove(vec.begin(), vec.end(), node.get()), vec.end());
        if (vec.empty()) group_index_.erase(node->cg->id());
        drop_subtree(std::move(node->completion));
        drop_subtree(std::move(node->abandon));
    }
}

void DependencyTree::attach_at_leaves(TreeNode* node, const query::WindowInfo& w,
                                      std::vector<CgPtr> suppressed) {
    if (node->kind == TreeNode::Kind::Version) {
        // A version's own suppressed set is authoritative for its subtree —
        // plus the groups it completed whose vertices are already gone.
        std::vector<CgPtr> base = node->wv->suppressed();
        base.insert(base.end(), node->completed_groups.begin(),
                    node->completed_groups.end());
        if (node->child) {
            attach_at_leaves(node->child.get(), w, std::move(base));
        } else {
            auto leaf = std::make_unique<TreeNode>();
            leaf->kind = TreeNode::Kind::Version;
            leaf->wv = factory_(w, std::move(base));
            leaf->parent = node;
            ++stats_.versions_created;
            node->child = std::move(leaf);
            register_subtree(node->child.get());
        }
        return;
    }
    // Group vertex: completion side additionally suppresses this group
    // (Fig. 4 lines 5-8: two versions are attached under a group leaf).
    const auto handle_edge = [&](std::unique_ptr<TreeNode>& edge, std::vector<CgPtr> supp) {
        if (edge) {
            attach_at_leaves(edge.get(), w, std::move(supp));
        } else {
            auto leaf = std::make_unique<TreeNode>();
            leaf->kind = TreeNode::Kind::Version;
            leaf->wv = factory_(w, std::move(supp));
            leaf->parent = node;
            ++stats_.versions_created;
            edge = std::move(leaf);
            register_subtree(edge.get());
        }
    };
    handle_edge(node->completion, with_group(suppressed, node->cg));
    handle_edge(node->abandon, std::move(suppressed));
}

void DependencyTree::open_window(const query::WindowInfo& w,
                                 std::vector<CgPtr> root_suppressed) {
    if (!roots_.empty()) {
        // Window ends are monotone in their starts (asserted by the splitter),
        // so overlapping the most recently opened window is the only way to
        // depend on any live window.
        SPECTRE_REQUIRE(w.first >= latest_opened_.first,
                        "windows must be opened in start order");
        if (w.first <= latest_opened_.last) {
            latest_opened_ = w;
            attach_at_leaves(roots_.back().get(), w, {});
            stats_.max_versions = std::max(stats_.max_versions, index_.size());
            return;
        }
    }
    // Independent window: new tree (§3.1: "an individual dependency tree for
    // each independent window").
    latest_opened_ = w;
    auto root = std::make_unique<TreeNode>();
    root->kind = TreeNode::Kind::Version;
    root->wv = factory_(w, std::move(root_suppressed));
    ++stats_.versions_created;
    root->wv->enable_stats();  // independent window: feeds the Markov model
    index_[root->wv->version_id()] = root.get();
    roots_.push_back(std::move(root));
    stats_.max_versions = std::max(stats_.max_versions, index_.size());
}

std::unique_ptr<TreeNode> DependencyTree::copy_subtree(const TreeNode* original,
                                                       std::vector<CgPtr> suppressed,
                                                       CopyContext& ctx, bool force_fresh) {
    if (original == nullptr) return nullptr;
    if (original->kind == TreeNode::Kind::Version) {
        auto node = std::make_unique<TreeNode>();
        node->kind = TreeNode::Kind::Version;
        // Prefer a state-preserving clone (the paper's "modified copy"); a
        // fresh restart is the fallback when the copied state would already
        // violate the new suppression set (or cloning is unavailable).
        if (!force_fresh && clone_factory_)
            node->wv = clone_factory_(original->wv->window(), suppressed, *original->wv,
                                      ctx.cg_map, /*allow_pending=*/!ctx.collapse);
        std::vector<CgPtr> deeper = suppressed;
        if (node->wv) {
            ++stats_.copies_cloned;
            // The clone keeps the original's completed matches; deeper copies
            // must keep suppressing those consumptions (the groups are frozen
            // and safely shared).
            node->completed_groups = original->completed_groups;
            deeper.insert(deeper.end(), original->completed_groups.begin(),
                          original->completed_groups.end());
        } else {
            node->wv = factory_(original->wv->window(), std::move(suppressed));
            ctx.fresh_owners.insert(original->wv->version_id());
            ++stats_.copies_fresh;
            // Deeper originals may have skipped events this version's (now
            // void) matches consumed; none of their state is trustworthy.
            force_fresh = true;
        }
        ++stats_.versions_created;
        node->child =
            copy_subtree(original->child.get(), std::move(deeper), ctx, force_fresh);
        return node;
    }

    if (original->cg->owner_version_id() == ctx.owner_version_id) {
        // Owned by the version that created the new group (outside the copy
        // region): preserved, sharing the underlying group — resolving it
        // prunes the original and the copied vertex together.
        auto node = std::make_unique<TreeNode>();
        node->kind = TreeNode::Kind::Group;
        node->cg = original->cg;
        node->completion = copy_subtree(original->completion.get(),
                                        with_group(suppressed, original->cg), ctx,
                                        force_fresh);
        node->abandon =
            copy_subtree(original->abandon.get(), std::move(suppressed), ctx, force_fresh);
        return node;
    }

    // Descendant-owned group. If the owner's copy kept its state, the pending
    // match lives on in the clone: preserve the vertex with the cloned group.
    const auto cloned = ctx.cg_map.find(original->cg->id());
    if (!force_fresh && cloned != ctx.cg_map.end() &&
        !ctx.fresh_owners.count(original->cg->owner_version_id())) {
        auto node = std::make_unique<TreeNode>();
        node->kind = TreeNode::Kind::Group;
        node->cg = cloned->second;
        node->completion = copy_subtree(original->completion.get(),
                                        with_group(suppressed, cloned->second), ctx,
                                        force_fresh);
        node->abandon =
            copy_subtree(original->abandon.get(), std::move(suppressed), ctx, force_fresh);
        return node;
    }
    // Owner restarted fresh (or the group is unknown): the copied world has
    // no such match yet — continue along the no-consumption structure.
    return copy_subtree(original->abandon.get(), std::move(suppressed), ctx, force_fresh);
}

bool DependencyTree::on_group_created(const CgPtr& cg) {
    SPECTRE_REQUIRE(cg != nullptr, "null consumption group");
    TreeNode* owner = find_version(cg->owner_version_id());
    if (owner == nullptr || owner->wv->dropped()) return false;  // stale update

    auto group = std::make_unique<TreeNode>();
    group->kind = TreeNode::Kind::Group;
    group->cg = cg;
    group->parent = owner;

    std::unique_ptr<TreeNode> old_subtree = std::move(owner->child);
    // Base suppression for the copies: everything the owner's path
    // assumes/knows consumed — including groups the owner already completed
    // (their vertices are gone but their consumptions bind) — plus the new
    // group itself.
    std::vector<CgPtr> base = owner->wv->suppressed();
    base.insert(base.end(), owner->completed_groups.begin(), owner->completed_groups.end());
    CopyContext ctx;
    ctx.owner_version_id = owner->wv->version_id();
    ctx.collapse = index_.size() > collapse_threshold_;
    group->completion =
        copy_subtree(old_subtree.get(), with_group(base, cg), ctx, /*force_fresh=*/false);
    group->abandon = std::move(old_subtree);

    owner->child = std::move(group);
    TreeNode* g = owner->child.get();
    // Register only the new vertices: the group itself and the fresh
    // completion copy. The abandon side was in the tree already.
    group_index_[cg->id()].push_back(g);
    if (g->completion) {
        g->completion->parent = g;
        register_subtree(g->completion.get());
    }
    if (g->abandon) g->abandon->parent = g;
    stats_.max_versions = std::max(stats_.max_versions, index_.size());
    ++stats_.groups_attached;
    return true;
}

void DependencyTree::on_group_resolved(const CgPtr& cg, bool completed) {
    // Remember completions on the owner vertex: once the group's vertices are
    // spliced out, this is the only trace windows opened later can inherit
    // the suppression from.
    if (completed) {
        if (TreeNode* owner = find_version(cg->owner_version_id()))
            owner->completed_groups.push_back(cg);
    }
    const auto it = group_index_.find(cg->id());
    if (it == group_index_.end()) return;  // never attached (owner was dropped)
    // Splicing mutates the index entry; work on a copy.
    std::vector<TreeNode*> vertices = it->second;
    for (TreeNode* g : vertices) {
        // The vertex may already have been dropped by an earlier splice in
        // this very loop (nested copies); re-check membership.
        const auto cur = group_index_.find(cg->id());
        if (cur == group_index_.end() ||
            std::find(cur->second.begin(), cur->second.end(), g) == cur->second.end())
            continue;

        std::unique_ptr<TreeNode> keep =
            completed ? std::move(g->completion) : std::move(g->abandon);
        std::unique_ptr<TreeNode> drop =
            completed ? std::move(g->abandon) : std::move(g->completion);
        drop_subtree(std::move(drop));

        TreeNode* parent = g->parent;
        SPECTRE_CHECK(parent != nullptr, "group vertex cannot be a root");
        auto& vec = group_index_[cg->id()];
        vec.erase(std::remove(vec.begin(), vec.end(), g), vec.end());
        if (vec.empty()) group_index_.erase(cg->id());

        // Splice: replace g with the kept subtree in g's parent slot.
        std::unique_ptr<TreeNode>* slot = nullptr;
        if (parent->kind == TreeNode::Kind::Version) {
            slot = &parent->child;
        } else {
            slot = parent->completion.get() == g ? &parent->completion : &parent->abandon;
        }
        SPECTRE_CHECK(slot->get() == g, "group vertex not found in its parent slot");
        if (keep) keep->parent = parent;
        *slot = std::move(keep);  // destroys g
    }
}

namespace {

void collect_windows(const TreeNode* node, std::vector<query::WindowInfo>& out) {
    if (node == nullptr) return;
    if (node->kind == TreeNode::Kind::Version) {
        if (out.empty() || out.back().id != node->wv->window().id)
            out.push_back(node->wv->window());
        collect_windows(node->child.get(), out);
    } else {
        // Both edges hold the same window chain; one traversal suffices, but
        // the chain can be deeper on either side after partial attachment —
        // walk both and dedupe by id.
        std::vector<query::WindowInfo> a, b;
        collect_windows(node->completion.get(), a);
        collect_windows(node->abandon.get(), b);
        for (const auto& w : (a.size() >= b.size() ? a : b))
            if (out.empty() || out.back().id != w.id) out.push_back(w);
    }
}

}  // namespace

void DependencyTree::rebuild_after_rollback(std::uint64_t version_id) {
    TreeNode* node = find_version(version_id);
    if (node == nullptr || node->wv->dropped()) return;
    // The invalid pass's completions are void along with everything else.
    node->completed_groups.clear();
    if (!node->child) return;  // nothing depended on it

    std::vector<query::WindowInfo> windows;
    collect_windows(node->child.get(), windows);
    drop_subtree(std::move(node->child));
    // Fresh single-version chain: the reprocessing owner has not detected
    // anything yet, so there is exactly one version per dependent window.
    for (const auto& w : windows) attach_at_leaves(node, w, {});
    stats_.max_versions = std::max(stats_.max_versions, index_.size());
}

WindowVersion* DependencyTree::front_root() const {
    if (roots_.empty()) return nullptr;
    SPECTRE_CHECK(roots_.front()->kind == TreeNode::Kind::Version,
                  "tree root must be a version vertex");
    return roots_.front()->wv.get();
}

const std::vector<CgPtr>& DependencyTree::front_root_completed_groups() const {
    SPECTRE_REQUIRE(!roots_.empty(), "no front root");
    return roots_.front()->completed_groups;
}

WvPtr DependencyTree::retire_front_root() {
    SPECTRE_REQUIRE(!roots_.empty(), "no root to retire");
    TreeNode* root = roots_.front().get();
    SPECTRE_REQUIRE(root->wv->finished(), "retiring an unfinished root");
    SPECTRE_CHECK(!root->child || root->child->kind == TreeNode::Kind::Version,
                  "finished root still has a pending group child");

    WvPtr retired = root->wv;
    index_.erase(retired->version_id());
    std::unique_ptr<TreeNode> child = std::move(root->child);
    if (child) {
        child->parent = nullptr;
        // The promoted version is now the valid version of an independent
        // window: it survives for sure and may feed the statistics (§3.2.1).
        child->wv->enable_stats();
        roots_.front() = std::move(child);
    } else {
        roots_.erase(roots_.begin());
    }
    return retired;
}

std::size_t DependencyTree::live_windows() const {
    std::unordered_set<std::uint64_t> ids;
    for (const auto& [vid, node] : index_) {
        (void)vid;
        ids.insert(node->wv->window().id);
    }
    return ids.size();
}

double DependencyTree::group_probability(const ConsumptionGroup& cg,
                                         const model::CompletionModel& model) const {
    switch (cg.outcome()) {
        case CgOutcome::Completed: return 1.0;
        case CgOutcome::Abandoned: return 0.0;
        case CgOutcome::Pending: break;
    }
    std::uint64_t events_left = 0;
    if (const TreeNode* owner = find_version(cg.owner_version_id()))
        events_left = owner->wv->events_left();
    return model.completion_probability(cg.delta(), events_left);
}

std::vector<WvPtr> DependencyTree::top_k(std::size_t k,
                                         const model::CompletionModel& model) const {
    struct Candidate {
        double prob;
        std::uint64_t order;  // deterministic tie-break: push order
        const TreeNode* node;
    };
    const auto cmp = [](const Candidate& a, const Candidate& b) {
        if (a.prob != b.prob) return a.prob < b.prob;  // max-heap on probability
        return a.order > b.order;
    };
    std::priority_queue<Candidate, std::vector<Candidate>, decltype(cmp)> queue(cmp);
    std::uint64_t order = 0;
    for (const auto& root : roots_) queue.push({1.0, order++, root.get()});

    std::vector<WvPtr> result;
    while (!queue.empty() && result.size() < k) {
        const Candidate c = queue.top();
        queue.pop();
        if (c.node->kind == TreeNode::Kind::Version) {
            // Finished versions need no instance; keep walking their subtree
            // at the same probability.
            if (!c.node->wv->finished() && !c.node->wv->dropped())
                result.push_back(c.node->wv);
            if (c.node->child) queue.push({c.prob, order++, c.node->child.get()});
        } else {
            const double p = group_probability(*c.node->cg, model);
            if (c.node->completion)
                queue.push({c.prob * p, order++, c.node->completion.get()});
            if (c.node->abandon)
                queue.push({c.prob * (1.0 - p), order++, c.node->abandon.get()});
        }
    }
    return result;
}

double DependencyTree::survival_probability(std::uint64_t version_id,
                                            const model::CompletionModel& model) const {
    const TreeNode* node = find_version(version_id);
    SPECTRE_REQUIRE(node != nullptr, "unknown version id");
    double prob = 1.0;
    const TreeNode* child = node;
    for (const TreeNode* p = node->parent; p != nullptr; child = p, p = p->parent) {
        if (p->kind != TreeNode::Kind::Group) continue;
        const double gp = group_probability(*p->cg, model);
        prob *= p->completion.get() == child ? gp : (1.0 - gp);
    }
    return prob;
}

namespace {

void check_node(const TreeNode* node, const TreeNode* parent,
                const std::unordered_map<std::uint64_t, TreeNode*>& index,
                std::uint64_t min_window_id) {
    SPECTRE_CHECK(node->parent == parent, "parent pointer mismatch");
    if (node->kind == TreeNode::Kind::Version) {
        SPECTRE_CHECK(node->wv != nullptr, "version vertex without version");
        SPECTRE_CHECK(node->wv->window().id >= min_window_id,
                      "window ids must increase along root paths");
        const auto it = index.find(node->wv->version_id());
        SPECTRE_CHECK(it != index.end() && it->second == node, "index entry missing");
        if (node->child)
            check_node(node->child.get(), node, index, node->wv->window().id + 1);
    } else {
        SPECTRE_CHECK(node->cg != nullptr, "group vertex without group");
        if (node->completion) check_node(node->completion.get(), node, index, min_window_id);
        if (node->abandon) check_node(node->abandon.get(), node, index, min_window_id);
    }
}

}  // namespace

void DependencyTree::check_invariants() const {
    for (const auto& root : roots_) {
        SPECTRE_CHECK(root->kind == TreeNode::Kind::Version, "roots must be versions");
        check_node(root.get(), nullptr, index_, 0);
    }
}

}  // namespace spectre::core
