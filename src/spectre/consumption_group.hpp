// ConsumptionGroup: the shared record of one partial match's would-be
// consumptions (§3.1).
//
// Created by the operator instance that detects the partial match; referenced
// by the dependency tree (one or more Group vertices) and by every window
// version that speculatively suppresses its events. The owning instance adds
// events as the match grows; other instances read the membership through
// versioned snapshots. The monotonically increasing `version` counter is what
// the consistency check of Fig. 8 (lines 31–45) compares against
// `lastCheckedVersion` to detect late additions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "event/event.hpp"

namespace spectre::core {

enum class CgOutcome : std::uint8_t { Pending, Completed, Abandoned };

class ConsumptionGroup {
public:
    ConsumptionGroup(std::uint64_t id, std::uint64_t window_id, std::uint64_t owner_version_id,
                     int initial_delta);

    std::uint64_t id() const noexcept { return id_; }
    std::uint64_t window_id() const noexcept { return window_id_; }
    // The window version whose detector owns this group. Group vertices in
    // copied subtrees share the underlying group of their original, and this
    // field is how the tree copy distinguishes self-owned groups (preserved,
    // shared) from descendant-owned ones (not part of a fresh copy).
    std::uint64_t owner_version_id() const noexcept { return owner_version_id_; }

    // --- owner-instance side -------------------------------------------------
    void add_event(event::Seq seq);
    void set_delta(int delta) noexcept { delta_.store(delta, std::memory_order_relaxed); }
    void resolve(CgOutcome outcome) noexcept;

    // --- reader side ---------------------------------------------------------
    std::uint64_t version() const noexcept { return version_.load(std::memory_order_acquire); }
    int delta() const noexcept { return delta_.load(std::memory_order_relaxed); }
    CgOutcome outcome() const noexcept { return outcome_.load(std::memory_order_acquire); }

    // Copies the current membership; `version_out` receives the version the
    // snapshot corresponds to.
    std::vector<event::Seq> snapshot(std::uint64_t& version_out) const;

    bool contains(event::Seq seq) const;
    std::size_t size() const;

private:
    const std::uint64_t id_;
    const std::uint64_t window_id_;
    const std::uint64_t owner_version_id_;
    std::atomic<int> delta_;
    std::atomic<std::uint64_t> version_{0};
    std::atomic<CgOutcome> outcome_{CgOutcome::Pending};
    mutable std::mutex mutex_;
    std::vector<event::Seq> events_;  // guarded by mutex_
};

using CgPtr = std::shared_ptr<ConsumptionGroup>;

}  // namespace spectre::core
