#include "spectre/sim_runtime.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::core {

SimRuntime::SimRuntime(const event::EventStore* store, const detect::CompiledQuery* cq,
                       SimConfig config, std::unique_ptr<model::CompletionModel> model)
    : store_(store), config_(config),
      splitter_(store, cq, config.splitter, std::move(model)) {
    SPECTRE_REQUIRE(config.ns_per_event > 0 && config.splitter_cycle_ns > 0 &&
                        config.idle_poll_ns > 0,
                    "simulation costs must be positive");
}

double SimRuntime::contention_factor(int threads, int physical_cores, double ht_efficiency) {
    if (threads <= physical_cores) return 1.0;
    const double extra = std::min(threads - physical_cores, physical_cores);
    const double slots = physical_cores + ht_efficiency * extra;
    return static_cast<double>(threads) / slots;
}

SimResult SimRuntime::run() {
    // The simulator replays a materialized store under virtual time; declare
    // it complete so trailing windows clamp at its end (DESIGN.md §6).
    splitter_.mark_input_complete();
    const int k = static_cast<int>(splitter_.instances().size());

    // Virtual clocks: actor 0 is the splitter, actors 1..k the instances.
    std::vector<double> next_time(static_cast<std::size_t>(k) + 1, 0.0);
    // Busy = did productive work last quantum; idle actors (no assignment)
    // burn no core and must not stretch the busy ones' costs.
    std::vector<bool> busy(static_cast<std::size_t>(k) + 1, true);
    double makespan = 0.0;

    const auto factor_now = [&] {
        if (!config_.model_contention) return 1.0;
        int n = 0;
        for (const bool b : busy) n += b ? 1 : 0;
        return contention_factor(n, config_.physical_cores, config_.ht_efficiency);
    };

    // Seed: one splitter cycle opens the first windows and schedules.
    bool live = splitter_.run_cycle();
    next_time[0] = config_.splitter_cycle_ns * factor_now();
    makespan = next_time[0];

    while (live) {
        // Earliest actor acts next; ties resolve to the lowest index, which
        // keeps the whole simulation deterministic.
        std::size_t actor = 0;
        for (std::size_t i = 1; i < next_time.size(); ++i)
            if (next_time[i] < next_time[actor]) actor = i;
        const double now = next_time[actor];

        double cost = 0.0;
        if (actor == 0) {
            live = splitter_.run_cycle();
            cost = config_.splitter_cycle_ns;
        } else {
            auto& inst = *splitter_.instances()[actor - 1];
            const std::size_t advanced = inst.run_batch(config_.batch_events).advanced;
            cost = advanced > 0 ? static_cast<double>(advanced) * config_.ns_per_event
                                : config_.idle_poll_ns;
            busy[actor] = advanced > 0;
        }
        next_time[actor] = now + cost * factor_now();
        makespan = std::max(makespan, next_time[actor]);
    }

    SimResult result;
    result.output = splitter_.take_output();
    result.metrics = splitter_.metrics();
    for (auto& inst : splitter_.instances()) result.instance_stats.push_back(inst->stats());
    result.virtual_seconds = makespan * 1e-9;
    result.throughput_eps =
        makespan > 0 ? static_cast<double>(store_->size()) / result.virtual_seconds : 0.0;
    return result;
}

}  // namespace spectre::core
