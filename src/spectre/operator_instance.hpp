// OperatorInstance: one of the k parallel workers (§3.3, Fig. 8).
//
// Each instance processes the window version the splitter scheduled to it:
// it feeds non-suppressed events to the version's detector, maintains the
// version's consumption groups, buffers produced complex events, and runs the
// periodic consistency check, rolling the version back to the window start
// when a suppressed group gained an event this version already processed.
//
// Instances read the store only up to its ingestion frontier (DESIGN.md §6):
// a batch stalls when the next window position has not arrived yet, and a
// trailing window whose extent reaches past a completed input finishes at
// end-of-stream.
//
// The class is runtime-agnostic: the threaded runtime calls run_batch() from
// a dedicated thread, the simulated runtime calls it inline under a virtual
// clock. All cross-thread communication goes through the assignment slot
// (mutex), the store's frontier, and the splitter's update queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "event/stream.hpp"
#include "spectre/updates.hpp"
#include "spectre/window_version.hpp"

namespace spectre::core {

struct InstanceConfig {
    // Fig. 8 line 32: consistency check every `consistency_check_freq` steps.
    std::uint64_t consistency_check_freq = 64;
};

struct InstanceStats {
    std::uint64_t events_processed = 0;   // fed to a detector
    std::uint64_t events_suppressed = 0;  // skipped as consumed
    std::uint64_t rollbacks = 0;
    std::uint64_t versions_finished = 0;
    std::uint64_t batches = 0;
};

// What one run_batch() accomplished and — when it stopped early — why. The
// cooperative scheduler (sched_graph.hpp) files the instance under the
// matching dependency: Stalled waits on the frontier sentinel at `wait_seq`;
// everything else that yields no runnable work waits on the splitter.
struct BatchResult {
    enum class Outcome : std::uint8_t {
        Progress,      // budget exhausted mid-window; more work immediately
        NoAssignment,  // slot empty — needs a scheduling cycle
        Busy,          // version batch-locked by another owner; retry later
        Stalled,       // next window position not yet arrived (see wait_seq)
        Finished,      // version finished (this batch or before)
        Dropped,       // assignment was dropped — dead speculation
        RolledBack,    // inconsistency detected; version restarts next batch
    };
    std::size_t advanced = 0;  // window positions advanced (fed + suppressed)
    Outcome outcome = Outcome::Progress;
    event::Seq wait_seq = 0;  // Stalled only: first sequence not yet arrived
};

class OperatorInstance {
public:
    // `input_complete` is the splitter's end-of-input latch: once it reads
    // true, the store's frontier is the stream's final length.
    OperatorInstance(int index, const event::EventStore* store,
                     const detect::CompiledQuery* cq, UpdateQueue* updates,
                     const std::atomic<bool>* input_complete, InstanceConfig config);

    int index() const noexcept { return index_; }

    // --- splitter side -------------------------------------------------------
    void assign(WvPtr wv);
    WvPtr assignment() const;

    // --- worker side ---------------------------------------------------------
    // Processes up to `max_events` events of the current assignment. Events
    // are fed to the compiled detector in contiguous runs between suppressed
    // positions (the per-event membership probe of the old loop is replaced
    // by one sorted-suppression cursor per run); progress is published once
    // per run. Returns how far the batch advanced and why it stopped.
    BatchResult run_batch(std::size_t max_events);

    const InstanceStats& stats() const noexcept { return stats_; }

private:
    // Rebuilds the sorted union of suppressed offsets for the version's
    // window (the run boundaries of the batched inner loop).
    void rebuild_suppressed_sorted(WindowVersion& wv);
    void refresh_caches(WindowVersion& wv);
    // Consumes `fb`: completed complex events are moved out (the caller
    // clears the buffer before its next use anyway).
    void handle_feedback(WindowVersion& wv, detect::Feedback& fb);
    bool consistency_check(WindowVersion& wv);
    void rollback(WindowVersion& wv);
    void finish_window(WindowVersion& wv);
    void flush_stats(WindowVersion& wv);

    const int index_;
    const event::EventStore* store_;
    const detect::CompiledQuery* cq_;
    UpdateQueue* updates_;
    const std::atomic<bool>* input_complete_;
    const InstanceConfig config_;

    mutable std::mutex slot_mutex_;
    WvPtr slot_;  // guarded by slot_mutex_

    std::uint64_t next_cg_id_;  // instance-striped unique ids
    detect::Feedback fb_;       // reused per event
    std::vector<std::pair<int, int>> pending_transitions_;  // stats buffer
    InstanceStats stats_;
};

}  // namespace spectre::core
