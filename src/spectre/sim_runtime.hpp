// SimRuntime: deterministic virtual-time execution of SPECTRE on k simulated
// cores (DESIGN.md §4, substitution 1).
//
// The paper evaluates throughput scaling on a 2×10-core (40 HT) machine;
// this repository's benches run anywhere — including single-core CI — by
// executing the *unmodified* splitter / dependency-tree / operator-instance
// code under a discrete-event scheduler: every actor (the splitter plus k
// instances) owns a virtual clock, processing an event costs `ns_per_event`,
// a maintenance+scheduling cycle costs `splitter_cycle_ns`, and throughput is
// source events divided by the virtual makespan. All algorithmic effects the
// paper's curves hinge on — futile speculation at p≈0.5, depth-first
// speculation at p≈0/1, drops, rollbacks, consistency checks — happen for
// real; only wall-clock parallelism is virtual.
//
// An optional contention model mirrors the paper's k=32 > 20-cores regime:
// with more runnable actors than physical cores, every cost is stretched by
// threads/slots where slots = cores + ht_efficiency·min(threads-cores, cores).
#pragma once

#include <memory>

#include "spectre/splitter.hpp"

namespace spectre::core {

struct SimConfig {
    SplitterConfig splitter{};
    std::size_t batch_events = 64;  // instance quantum

    double ns_per_event = 1000.0;      // per window-event processing cost
    double splitter_cycle_ns = 2000.0; // per maintenance+scheduling cycle
    double idle_poll_ns = 1000.0;      // re-poll delay for an idle instance

    // Hardware model (paper machine: 2×10 cores, hyper-threaded).
    int physical_cores = 20;
    double ht_efficiency = 0.25;
    bool model_contention = true;
};

struct SimResult {
    std::vector<event::ComplexEvent> output;
    SplitterMetrics metrics;
    std::vector<InstanceStats> instance_stats;
    double virtual_seconds = 0.0;
    double throughput_eps = 0.0;  // source events per virtual second
};

class SimRuntime {
public:
    SimRuntime(const event::EventStore* store, const detect::CompiledQuery* cq,
               SimConfig config, std::unique_ptr<model::CompletionModel> model);

    SimResult run();

    // Contention stretch factor for `threads` runnable actors (exposed for
    // tests and EXPERIMENTS.md).
    static double contention_factor(int threads, int physical_cores, double ht_efficiency);

private:
    const event::EventStore* store_;
    SimConfig config_;
    Splitter splitter_;
};

}  // namespace spectre::core
