// Intrusive dependency graph + ready-instance scheduler for the cooperative
// SPECTRE runtime (DESIGN.md §11).
//
// step() used to be a blind round-robin: one full splitter cycle plus one
// bounded batch on *every* operator instance, every call — stalled, idle and
// busy instances alike, each paying the maintenance/scheduling walk. The
// scheduler here replaces that with an explicit dependency graph: one node
// per operator instance plus two resource sentinels (the ingestion frontier
// and the splitter). An instance that stalls at the frontier depends on the
// frontier sentinel (keyed by the sequence it is waiting for); an instance
// whose version finished, dropped or was never assigned depends on the
// splitter sentinel (only a maintenance/scheduling cycle can give it work).
// Only dependency-free instances sit in the ready queue, and step() runs
// ready instances exclusively — the splitter cycle itself runs only when its
// dirty predicate (Splitter::needs_cycle) says the tree actually changed.
//
// The node layout follows the intrusive CRTP idiom (cf. celerity's
// intrusive_graph_node): edges live inside the nodes, both directions are
// kept symmetric, a direct cycle is asserted against at insertion, and a
// node unlinks itself from both sides on destruction. Retirement is lazy:
// nodes are never erased mid-run — a finished instance merely loses its
// edges and leaves the ready queue; retire_all() frees everything when the
// runtime completes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "event/stream.hpp"
#include "util/assert.hpp"

namespace spectre::core {

// Why an instance (or sentinel) is not ready.
enum class SchedDepKind : std::uint8_t {
    Frontier,    // waiting for the ingestion frontier to pass wait_seq
    Assignment,  // waiting for the splitter to (re)assign a window version
};

// CRTP intrusive graph node: edges are stored in the endpoints themselves,
// kept symmetric (every dependency has a mirror dependent).
template <typename T>
class IntrusiveSchedNode {
public:
    struct Dependency {
        T* node;
        SchedDepKind kind;
    };
    using Dependent = Dependency;

    IntrusiveSchedNode() {
        static_assert(std::is_base_of<IntrusiveSchedNode<T>, T>::value,
                      "T must derive from IntrusiveSchedNode<T> (CRTP)");
    }
    IntrusiveSchedNode(const IntrusiveSchedNode&) = delete;
    IntrusiveSchedNode& operator=(const IntrusiveSchedNode&) = delete;

    void add_dependency(T* node, SchedDepKind kind) {
        SPECTRE_CHECK(node != nullptr && node != static_cast<T*>(this),
                      "dependency must target another node");
        // Direct-cycle guard: A -> B while B -> A would deadlock the queue.
        SPECTRE_CHECK(!has_dependent(node), "direct dependency cycle");
        for (auto& d : dependencies_) {
            if (d.node == node) {
                d.kind = kind;  // refresh the reason, keep the edge unique
                for (auto& r : node->dependents_)
                    if (r.node == static_cast<T*>(this)) r.kind = kind;
                return;
            }
        }
        dependencies_.push_back(Dependency{node, kind});
        node->dependents_.push_back(Dependent{static_cast<T*>(this), kind});
    }

    void remove_dependency(T* node) {
        dependencies_.erase(
            std::remove_if(dependencies_.begin(), dependencies_.end(),
                           [&](const Dependency& d) { return d.node == node; }),
            dependencies_.end());
        auto& deps = node->dependents_;
        deps.erase(std::remove_if(deps.begin(), deps.end(),
                                  [&](const Dependent& d) {
                                      return d.node == static_cast<T*>(this);
                                  }),
                   deps.end());
    }

    void clear_dependencies() {
        while (!dependencies_.empty()) remove_dependency(dependencies_.back().node);
    }

    bool has_dependency(const T* node) const {
        for (const auto& d : dependencies_)
            if (d.node == node) return true;
        return false;
    }
    bool has_dependent(const T* node) const {
        for (const auto& d : dependents_)
            if (d.node == node) return true;
        return false;
    }

    const std::vector<Dependency>& dependencies() const noexcept {
        return dependencies_;
    }
    const std::vector<Dependent>& dependents() const noexcept { return dependents_; }

protected:
    // Protected non-virtual dtor: destruction goes through the derived type;
    // unlink both directions so no edge ever dangles.
    ~IntrusiveSchedNode() {
        clear_dependencies();
        while (!dependents_.empty()) {
            T* dep = dependents_.back().node;
            dep->remove_dependency(static_cast<T*>(this));
        }
    }

private:
    std::vector<Dependency> dependencies_;
    std::vector<Dependent> dependents_;
};

// One vertex of the instance-scheduling graph: an operator instance, the
// frontier sentinel, or the splitter sentinel.
class SchedNode : public IntrusiveSchedNode<SchedNode> {
public:
    enum class Role : std::uint8_t { Instance, Frontier, Splitter };

    Role role = Role::Instance;
    int index = -1;               // operator-instance index; -1 for sentinels
    event::Seq wait_seq = 0;      // Frontier dependency: first missing seq
    bool in_ready = false;        // currently queued
    bool running = false;         // popped, batch in flight this step
};

// Ready-queue discipline over the graph. Single-threaded by design: step()
// runs inline on one pool worker at a time, so no locking is needed — the
// graph is the runtime's private scheduling state.
class InstanceScheduler {
public:
    explicit InstanceScheduler(std::size_t instances) : nodes_(instances) {
        frontier_.role = SchedNode::Role::Frontier;
        splitter_.role = SchedNode::Role::Splitter;
        ready_.reserve(instances);
        // Ready-depth histogram: depth can never exceed the instance count.
        ready_hist_.assign(instances + 1, 0);
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            nodes_[i].index = static_cast<int>(i);
            // Until the first cycle assigns versions, everyone waits on the
            // splitter.
            nodes_[i].add_dependency(&splitter_, SchedDepKind::Assignment);
        }
    }

    std::size_t size() const noexcept { return nodes_.size(); }
    std::size_t ready_depth() const noexcept { return ready_.size() - ready_head_; }

    // A dependency-free instance enters the queue (idempotent).
    void mark_ready(int i) {
        SchedNode& n = node(i);
        n.running = false;
        n.clear_dependencies();
        push(n);
    }

    // Instance i stalled: the event at `wait_seq` has not arrived yet.
    void mark_stalled(int i, event::Seq wait_seq) {
        SchedNode& n = node(i);
        n.running = false;
        unpush(n);
        n.clear_dependencies();
        n.wait_seq = wait_seq;
        n.add_dependency(&frontier_, SchedDepKind::Frontier);
    }

    // Instance i has nothing runnable (version finished / dropped / no
    // assignment): only a splitter cycle can hand it new work.
    void mark_waiting_assignment(int i) {
        SchedNode& n = node(i);
        n.running = false;
        unpush(n);
        n.clear_dependencies();
        n.add_dependency(&splitter_, SchedDepKind::Assignment);
    }

    // The ingestion frontier advanced to `frontier`: release every instance
    // whose awaited sequence has arrived.
    void wake_frontier(event::Seq frontier) {
        auto deps = frontier_.dependents();  // copy: releases mutate the list
        for (const auto& d : deps) {
            if (d.node->wait_seq < frontier) {
                d.node->remove_dependency(&frontier_);
                push(*d.node);
            }
        }
    }

    // A splitter cycle ran: assignments may have changed anywhere (top-k
    // reshuffle, rollback rebuilds, drops), so every instance with a live
    // assignment re-enters the queue and the rest wait on the splitter.
    // `has_work(i)` reports whether instance i holds a live assignment.
    template <typename HasWork>
    void requeue_after_cycle(HasWork&& has_work) {
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (has_work(static_cast<int>(i)))
                mark_ready(static_cast<int>(i));
            else
                mark_waiting_assignment(static_cast<int>(i));
        }
    }

    // Pops the next ready instance (FIFO) and samples the queue depth for
    // the p50/max statistics. Returns -1 when nothing is ready.
    int pop_ready() {
        const std::size_t depth = ready_depth();
        if (depth == 0) return -1;
        ready_max_ = std::max<std::uint64_t>(ready_max_, depth);
        ++ready_hist_[std::min(depth, ready_hist_.size() - 1)];
        ++ready_samples_;
        SchedNode* n = ready_[ready_head_++];
        if (ready_head_ == ready_.size()) {
            ready_.clear();
            ready_head_ = 0;
        }
        n->in_ready = false;
        n->running = true;
        return n->index;
    }

    // Lazy retirement: the runtime completed — drop every edge and empty the
    // queue so the graph holds no live state.
    void retire_all() {
        for (auto& n : nodes_) {
            n.clear_dependencies();
            n.in_ready = false;
            n.running = false;
        }
        ready_.clear();
        ready_head_ = 0;
    }

    std::uint64_t ready_max() const noexcept { return ready_max_; }
    // Median observed ready-queue depth at pop time (0 with no samples).
    double ready_p50() const {
        if (ready_samples_ == 0) return 0.0;
        std::uint64_t seen = 0;
        for (std::size_t d = 0; d < ready_hist_.size(); ++d) {
            seen += ready_hist_[d];
            if (seen * 2 >= ready_samples_) return static_cast<double>(d);
        }
        return static_cast<double>(ready_hist_.size() - 1);
    }

    // Structural invariants (also exercised directly by the unit tests):
    //   * a queued instance has no dependencies (no ready instance waits);
    //   * a non-queued, non-running instance holds exactly one dependency on
    //     a sentinel (there is always a reason it is not ready);
    //   * sentinels never wait and never enqueue;
    //   * every edge is symmetric and the graph is acyclic.
    void check_invariants() const {
        std::size_t queued = 0;
        for (const auto& n : nodes_) {
            if (n.in_ready) {
                ++queued;
                SPECTRE_CHECK(n.dependencies().empty(),
                              "ready instance must not wait on anything");
            } else if (!n.running) {
                SPECTRE_CHECK(n.dependencies().size() <= 1,
                              "instance waits on at most one resource");
            }
            for (const auto& d : n.dependencies()) {
                SPECTRE_CHECK(d.node == &frontier_ || d.node == &splitter_,
                              "instances depend only on resource sentinels");
                SPECTRE_CHECK(d.node->has_dependent(&n), "asymmetric edge");
            }
        }
        SPECTRE_CHECK(frontier_.dependencies().empty() && splitter_.dependencies().empty(),
                      "sentinels never wait");
        SPECTRE_CHECK(!frontier_.in_ready && !splitter_.in_ready,
                      "sentinels never enqueue");
        // Edges only run instance -> sentinel, so any dependency chain has
        // length one — check it anyway so the invariant survives refactors.
        for (const auto& n : nodes_)
            for (const auto& d : n.dependencies())
                SPECTRE_CHECK(d.node->dependencies().empty(), "dependency chain > 1");
        std::size_t in_queue = 0;
        for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
            SPECTRE_CHECK(ready_[i]->in_ready, "queue entry not flagged ready");
            ++in_queue;
        }
        SPECTRE_CHECK(in_queue == queued, "ready flags out of sync with the queue");
    }

private:
    SchedNode& node(int i) {
        SPECTRE_CHECK(i >= 0 && static_cast<std::size_t>(i) < nodes_.size(),
                      "instance index out of range");
        return nodes_[static_cast<std::size_t>(i)];
    }

    void push(SchedNode& n) {
        if (n.in_ready) return;
        n.in_ready = true;
        ready_.push_back(&n);
    }

    // A queued node gained a dependency (e.g. a cycle re-classified it before
    // it was popped): take it out of the queue eagerly so the ready queue
    // never holds a waiting instance. O(queue depth), bounded by k.
    void unpush(SchedNode& n) {
        if (!n.in_ready) return;
        n.in_ready = false;
        const auto it = std::find(ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_),
                                  ready_.end(), &n);
        SPECTRE_CHECK(it != ready_.end(), "ready flag set but node not queued");
        ready_.erase(it);
    }

    std::vector<SchedNode> nodes_;
    SchedNode frontier_;
    SchedNode splitter_;
    std::vector<SchedNode*> ready_;  // FIFO with a consumed-prefix cursor
    std::size_t ready_head_ = 0;
    std::vector<std::uint64_t> ready_hist_;
    std::uint64_t ready_samples_ = 0;
    std::uint64_t ready_max_ = 0;
};

}  // namespace spectre::core
