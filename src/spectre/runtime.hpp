// SpectreRuntime: the real-thread deployment of SPECTRE (§2.2: one thread
// pinned to the splitter, k threads pinned to operator instances, all over
// shared memory).
//
// Three entry points:
//   * run() — batch replay over an already-materialized store;
//   * run(EventStream&) — ingest-while-detect (§4.1's deployment shape): a
//     feeder thread drains the stream into the store while the splitter and
//     operator instances are already detecting over the growing frontier;
//     terminates at end-of-stream + quiescence;
//   * step() — cooperative single-thread driving (DESIGN.md §9): no threads
//     are spawned; each call runs one splitter maintenance/scheduling cycle
//     plus one bounded batch on every operator instance, inline. A worker
//     pool multiplexing many sessions calls step() in quanta, appending
//     arrivals to the store itself between calls, and parks the session when
//     a step reports no progress on an open store.
//
// The blocking entry points return the emitted complex events; all three are
// byte-identical, including order, to the sequential engine's output (the
// framework's correctness goal, §2.3) — the interleaving of step() calls and
// appends never changes the output.
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "spectre/sched_graph.hpp"
#include "spectre/splitter.hpp"

namespace spectre::core {

struct RuntimeConfig {
    SplitterConfig splitter{};
    // Events an instance processes per batch before re-checking its
    // assignment and the stop flag.
    std::size_t batch_events = 256;
    // Per-step work bound for the cooperative scheduler (DESIGN.md §11):
    // step() returns once it has advanced this many window positions, so a
    // pool quantum (quantum_steps × this) stays short enough that
    // co-scheduled sessions are never starved by one speculative session.
    // 0 falls back to batch_events.
    std::size_t quantum_budget = 1024;
    // Streaming-mode contention fix (DESIGN.md §6): while the input is still
    // arriving, an idle spinner (a splitter cycle that made no progress, an
    // instance batch that processed no events) sleeps this long instead of
    // burning the core the feeder thread needs for decode. 0 restores the
    // pure spin. Batch replay (input complete up front) never backs off.
    std::size_t idle_backoff_us = 50;
};

// Observability of the ready-instance scheduler (DESIGN.md §11): what the
// dependency-graph step loop actually did. Populated by step()-driven runs;
// threaded runs fill only the speculation-waste field (their instances spin
// freely, there is no ready queue to measure).
struct SchedStats {
    std::uint64_t steps = 0;           // step() calls
    std::uint64_t cycles = 0;          // splitter cycles the dirty gate ran
    std::uint64_t cycles_skipped = 0;  // steps that skipped the cycle entirely
    std::uint64_t batches = 0;         // instance batches scheduled
    std::uint64_t batch_events = 0;    // window positions those batches advanced
    std::uint64_t ready_depth_max = 0; // peak ready-queue depth at pop time
    double ready_depth_p50 = 0.0;      // median ready-queue depth at pop time
    std::uint64_t instances_retired = 0;    // batches that finished their version
    std::uint64_t instances_cancelled = 0;  // batches that found dead speculation
    std::uint64_t speculation_wasted_events = 0;  // work on later-dropped versions

    // Folds another scheduler's stats into this one (multi-lane aggregation,
    // DESIGN.md §10/§12): counts sum, ready_depth_max takes the max, and the
    // p50 becomes a step-weighted mean of the two medians (an approximation —
    // exact pooling would need the underlying samples).
    SchedStats& merge(const SchedStats& o) {
        const std::uint64_t total = steps + o.steps;
        if (total > 0)
            ready_depth_p50 = (ready_depth_p50 * static_cast<double>(steps) +
                               o.ready_depth_p50 * static_cast<double>(o.steps)) /
                              static_cast<double>(total);
        steps = total;
        cycles += o.cycles;
        cycles_skipped += o.cycles_skipped;
        batches += o.batches;
        batch_events += o.batch_events;
        if (o.ready_depth_max > ready_depth_max) ready_depth_max = o.ready_depth_max;
        instances_retired += o.instances_retired;
        instances_cancelled += o.instances_cancelled;
        speculation_wasted_events += o.speculation_wasted_events;
        return *this;
    }
};

struct RunResult {
    std::vector<event::ComplexEvent> output;  // empty when a result sink is set
    SplitterMetrics metrics;
    std::vector<InstanceStats> instance_stats;
    double wall_seconds = 0.0;
    double throughput_eps = 0.0;  // source events per (real) second
    // Feeder-stall observability (DESIGN.md §6): how long the feeder thread
    // needed to drain the source (0 in batch mode — there is no feeder), and
    // how often the detection threads backed off while starved for arrivals.
    // feed_seconds ≈ wall_seconds with many idle sleeps = the detection side
    // was waiting on ingest; feed_seconds ≫ the materialize-mode decode time
    // with few sleeps = the feeder was starved of CPU by detection spin.
    double feed_seconds = 0.0;
    std::uint64_t splitter_idle_sleeps = 0;
    std::uint64_t instance_idle_sleeps = 0;
    SchedStats sched;  // ready-instance scheduler observability
};

class SpectreRuntime {
public:
    // Batch-only runtime over a materialized (read-only) store.
    SpectreRuntime(const event::EventStore* store, const detect::CompiledQuery* cq,
                   RuntimeConfig config, std::unique_ptr<model::CompletionModel> model);

    // Streaming-capable runtime: `store` is the ingestion sink the feeder
    // thread appends into during run(EventStream&). Batch run() works too.
    SpectreRuntime(event::EventStore* store, const detect::CompiledQuery* cq,
                   RuntimeConfig config, std::unique_ptr<model::CompletionModel> model);

    // Streaming result egress (DESIGN.md §8): emit each complex event the
    // moment its window retires instead of collecting into RunResult.output.
    // The sink runs on the splitter thread, in window order — byte-identical
    // to the collect-all vector. Install before run().
    void set_result_sink(event::ResultSink sink) {
        splitter_.set_result_sink(std::move(sink));
    }

    // Batch replay: treats the store's current contents as the whole input.
    RunResult run();

    // Ingest-while-detect: consumes `live` into the store concurrently with
    // detection; returns after end-of-stream once all windows retired.
    RunResult run(event::EventStream& live);

    // --- cooperative stepping (worker pool, DESIGN.md §9/§11) ---------------

    // What one step() accomplished; the pool's park decision hinges on
    // `quiescent`: a quiescent step has driven the dependency graph to a
    // fixed point for the current frontier — no instance is ready, no
    // splitter cycle could make progress — so nothing changes until the
    // store grows or closes. (quiescent may hold even when events were
    // processed: the step did work and then ran dry before its budget.)
    struct StepProgress {
        std::size_t events_processed = 0;  // instance work done this step
        bool done = false;       // input complete + all windows retired
        bool quiescent = false;  // fixed point at the current frontier
    };

    // Dependency-graph scheduling loop (DESIGN.md §11), inline on the calling
    // thread: runs the splitter cycle only when its dirty predicate says the
    // tree changed, then drains the ready queue in bounded batches until the
    // quantum budget (config.quantum_budget) is spent or the graph reaches a
    // fixed point. Input completeness is derived from EventStore::close() (or
    // mark via splitter). Callers must not mix step() with the blocking
    // run()/run(EventStream&) entry points.
    StepProgress step();

    // Scheduler observability (current totals; valid during and after a
    // step()-driven run — threaded runs only fill the speculation waste).
    SchedStats sched_stats() const;

    // Live splitter metrics (same caveats as sched_stats: read from the
    // stepping thread, or after the run).
    const SplitterMetrics& splitter_metrics() const noexcept {
        return splitter_.metrics();
    }

    // Metrics plane (DESIGN.md §12): when bound, step() records each splitter
    // cycle's duration into the shard's splitter_cycle_ns histogram. The
    // shard must outlive the runtime; nullptr (the default) costs one branch.
    void bind_obs(obs::Shard* shard) noexcept { obs_ = shard; }

private:
    RunResult run_threads();

    const event::EventStore* store_;
    event::EventStore* mutable_store_ = nullptr;  // set by the streaming ctor
    RuntimeConfig config_;
    Splitter splitter_;
    InstanceScheduler sched_;
    SchedStats sched_stats_;
    obs::Shard* obs_ = nullptr;
};

}  // namespace spectre::core
