// SpectreRuntime: the real-thread deployment of SPECTRE (§2.2: one thread
// pinned to the splitter, k threads pinned to operator instances, all over
// shared memory).
//
// run() blocks until the whole store is processed and returns the emitted
// complex events — byte-identical, including order, to the sequential
// engine's output (the framework's correctness goal, §2.3).
#pragma once

#include <memory>

#include "spectre/splitter.hpp"

namespace spectre::core {

struct RuntimeConfig {
    SplitterConfig splitter{};
    // Events an instance processes per batch before re-checking its
    // assignment and the stop flag.
    std::size_t batch_events = 256;
};

struct RunResult {
    std::vector<event::ComplexEvent> output;
    SplitterMetrics metrics;
    std::vector<InstanceStats> instance_stats;
    double wall_seconds = 0.0;
    double throughput_eps = 0.0;  // source events per (real) second
};

class SpectreRuntime {
public:
    SpectreRuntime(const event::EventStore* store, const detect::CompiledQuery* cq,
                   RuntimeConfig config, std::unique_ptr<model::CompletionModel> model);

    RunResult run();

private:
    const event::EventStore* store_;
    RuntimeConfig config_;
    Splitter splitter_;
};

}  // namespace spectre::core
