#include "spectre/operator_instance.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::core {

namespace {
// Consumption-group ids are striped by instance index so concurrent
// instances never collide without synchronization.
constexpr std::uint64_t kIdStride = 1u << 20;
}  // namespace

OperatorInstance::OperatorInstance(int index, const event::EventStore* store,
                                   const detect::CompiledQuery* cq, UpdateQueue* updates,
                                   const std::atomic<bool>* input_complete,
                                   InstanceConfig config)
    : index_(index), store_(store), cq_(cq), updates_(updates),
      input_complete_(input_complete), config_(config),
      next_cg_id_(static_cast<std::uint64_t>(index) * kIdStride + 1) {
    SPECTRE_REQUIRE(store != nullptr && cq != nullptr && updates != nullptr &&
                        input_complete != nullptr,
                    "OperatorInstance needs store, query, update queue and input flag");
    SPECTRE_REQUIRE(config.consistency_check_freq >= 1,
                    "consistency_check_freq must be >= 1");
}

void OperatorInstance::assign(WvPtr wv) {
    const std::lock_guard<std::mutex> lock(slot_mutex_);
    slot_ = std::move(wv);
}

WvPtr OperatorInstance::assignment() const {
    const std::lock_guard<std::mutex> lock(slot_mutex_);
    return slot_;
}

void OperatorInstance::refresh_caches(WindowVersion& wv) {
    auto& st = wv.processing();
    for (std::size_t i = 0; i < wv.suppressed().size(); ++i) {
        const auto& cg = wv.suppressed()[i];
        auto& cache = st.caches[i];
        if (cache.snapshot_version == cg->version()) continue;
        std::uint64_t version = 0;
        const auto events = cg->snapshot(version);
        cache.events.clear();
        cache.events.insert(events.begin(), events.end());
        cache.snapshot_version = version;
        st.supp_dirty = true;
    }
}

void OperatorInstance::rebuild_suppressed_sorted(WindowVersion& wv) {
    auto& st = wv.processing();
    st.suppressed_sorted.clear();
    const auto first = wv.window().first;
    const auto last = wv.window().last;
    for (const auto& cache : st.caches) {
        for (const auto seq : cache.events)
            if (seq >= first && seq <= last)
                st.suppressed_sorted.push_back(seq - first);
    }
    std::sort(st.suppressed_sorted.begin(), st.suppressed_sorted.end());
    st.suppressed_sorted.erase(
        std::unique(st.suppressed_sorted.begin(), st.suppressed_sorted.end()),
        st.suppressed_sorted.end());
    st.supp_dirty = false;
}

void OperatorInstance::handle_feedback(WindowVersion& wv, detect::Feedback& fb) {
    auto& st = wv.processing();

    for (const auto& c : fb.created) {
        if (!c.consumable) continue;  // no consumption: no group, no dependency
        auto cg = std::make_shared<ConsumptionGroup>(next_cg_id_++, wv.window().id,
                                                     wv.version_id(), c.delta);
        st.own_groups.emplace(c.id, cg);
        Update u;
        u.kind = Update::Kind::CgCreated;
        u.version_id = wv.version_id();
        u.cg = cg;
        updates_->push(std::move(u));
    }

    for (const auto& b : fb.bound) {
        if (!b.consumable) continue;
        const auto it = st.own_groups.find(b.id);
        if (it == st.own_groups.end()) continue;  // match opened no group
        it->second->add_event(b.seq);
        it->second->set_delta(b.delta_after);
    }

    for (auto& done : fb.completed) {
        st.output.push_back(std::move(done.complex_event));
        const auto it = st.own_groups.find(done.id);
        if (it != st.own_groups.end()) {
            it->second->resolve(CgOutcome::Completed);
            st.completed_history.push_back(it->second);
            Update u;
            u.kind = Update::Kind::CgCompleted;
            u.version_id = wv.version_id();
            u.cg = it->second;
            updates_->push(std::move(u));
            st.own_groups.erase(it);
        }
    }

    for (const auto& a : fb.abandoned) {
        const auto it = st.own_groups.find(a.id);
        if (it == st.own_groups.end()) continue;
        it->second->resolve(CgOutcome::Abandoned);
        Update u;
        u.kind = Update::Kind::CgAbandoned;
        u.version_id = wv.version_id();
        u.cg = it->second;
        updates_->push(std::move(u));
        st.own_groups.erase(it);
    }

    if (wv.stats_enabled()) {
        for (const auto& t : fb.transitions)
            pending_transitions_.emplace_back(t.from, t.to);
    }
}

bool OperatorInstance::consistency_check(WindowVersion& wv) {
    // Fig. 8 lines 31-45: for every suppressed group that changed since the
    // last check, test whether this version processed an event that should
    // have been suppressed.
    auto& st = wv.processing();
    bool inconsistent = false;
    for (std::size_t i = 0; i < wv.suppressed().size(); ++i) {
        const auto& cg = wv.suppressed()[i];
        auto& cache = st.caches[i];
        const std::uint64_t current = cg->version();
        if (current == cache.checked_version) continue;
        std::uint64_t version = 0;
        const auto events = cg->snapshot(version);
        cache.events.clear();
        cache.events.insert(events.begin(), events.end());
        cache.snapshot_version = version;
        st.supp_dirty = true;  // membership moved: the run index is stale
        for (const auto seq : events) {
            if (seq < wv.window().first || seq > wv.window().last) continue;
            if (st.used[seq - wv.window().first]) {
                inconsistent = true;
                break;
            }
        }
        cache.checked_version = version;
    }
    return inconsistent;
}

void OperatorInstance::rollback(WindowVersion& wv) {
    // All groups the invalid pass produced — pending *and* resolved — are
    // void, and resolutions may already have pruned dependent versions. The
    // Rollback update makes the splitter rebuild the whole dependent subtree
    // fresh; reprocessing then re-detects everything.
    wv.reset_processing();
    pending_transitions_.clear();  // partially gathered stats are tainted
    Update u;
    u.kind = Update::Kind::Rollback;
    u.version_id = wv.version_id();
    updates_->push(std::move(u));
    ++stats_.rollbacks;
}

void OperatorInstance::flush_stats(WindowVersion& wv) {
    if (pending_transitions_.empty()) return;
    Update u;
    u.kind = Update::Kind::Stats;
    u.version_id = wv.version_id();
    u.transitions = std::move(pending_transitions_);
    pending_transitions_.clear();
    updates_->push(std::move(u));
}

void OperatorInstance::finish_window(WindowVersion& wv) {
    fb_.clear();
    wv.processing().detector.end_window(fb_);
    handle_feedback(wv, fb_);
    wv.mark_finished();
    flush_stats(wv);
    Update u;
    u.kind = Update::Kind::WindowFinished;
    u.version_id = wv.version_id();
    updates_->push(std::move(u));
    ++stats_.versions_finished;
}

BatchResult OperatorInstance::run_batch(std::size_t max_events) {
    BatchResult r;
    WvPtr wv = assignment();
    if (!wv) {
        r.outcome = BatchResult::Outcome::NoAssignment;
        return r;
    }
    if (wv->dropped()) {
        r.outcome = BatchResult::Outcome::Dropped;
        return r;
    }
    if (wv->finished()) {
        r.outcome = BatchResult::Outcome::Finished;
        return r;
    }
    // Another instance may still be inside a batch on this version right
    // after a reassignment; back off and retry next batch.
    if (!wv->try_acquire(index_)) {
        r.outcome = BatchResult::Outcome::Busy;
        return r;
    }
    struct Release {
        WindowVersion* wv;
        ~Release() { wv->release_ownership(); }
    } release{wv.get()};
    ++stats_.batches;

    refresh_caches(*wv);
    auto& st = wv->processing();

    // Read the completion latch *before* the frontier: if it reads true, the
    // frontier read below is the stream's final length (DESIGN.md §6).
    const bool complete = input_complete_->load(std::memory_order_acquire);
    const event::Seq frontier = store_->size();
    const std::uint64_t win_len = wv->window().length();
    const event::Seq first = wv->window().first;

    // The batch advances in contiguous runs: each run ends at the window
    // extent, the ingestion frontier, the event budget, the consistency-check
    // cadence, or the next suppressed position — whichever is closest. Inside
    // a run the compiled detector programs execute back to back with no
    // membership probes, and progress is published once at the run boundary.
    while (r.advanced < max_events) {
        if (wv->dropped()) {
            r.outcome = BatchResult::Outcome::Dropped;
            break;
        }
        if (st.next_offset >= win_len) {
            finish_window(*wv);
            r.outcome = BatchResult::Outcome::Finished;
            break;
        }
        const event::Seq seq = first + st.next_offset;
        if (seq >= frontier) {
            // The next window position has not arrived yet. On a complete
            // input it never will — the window's extent bound reaches past
            // end-of-stream, so it finishes here (the batch engines' clamp);
            // on a live input, stall until the frontier advances.
            if (complete) {
                finish_window(*wv);
                r.outcome = BatchResult::Outcome::Finished;
            } else {
                r.outcome = BatchResult::Outcome::Stalled;
                r.wait_seq = seq;
            }
            break;
        }
        if (st.supp_dirty) rebuild_suppressed_sorted(*wv);

        std::uint64_t run = std::min<std::uint64_t>(win_len - st.next_offset,
                                                    frontier - seq);
        run = std::min<std::uint64_t>(run, max_events - r.advanced);
        run = std::min<std::uint64_t>(
            run, config_.consistency_check_freq - st.steps_since_check);
        const auto supp_it =
            std::lower_bound(st.suppressed_sorted.begin(), st.suppressed_sorted.end(),
                             st.next_offset);
        bool hit_suppressed = false;
        if (supp_it != st.suppressed_sorted.end() && *supp_it < st.next_offset + run) {
            run = *supp_it - st.next_offset;
            hit_suppressed = true;
        }

        for (std::uint64_t i = 0; i < run; ++i) {
            fb_.clear();
            st.detector.on_event(store_->at(seq + i), fb_);
            handle_feedback(*wv, fb_);
            st.used[st.next_offset + i] = true;
        }
        stats_.events_processed += run;
        st.next_offset += run;
        st.steps_since_check += run;
        r.advanced += run;
        if (hit_suppressed && r.advanced < max_events &&
            st.steps_since_check < config_.consistency_check_freq) {
            // The boundary position itself is suppressed: skip it.
            ++stats_.events_suppressed;
            ++st.next_offset;
            ++st.steps_since_check;
            ++r.advanced;
        }
        wv->set_progress(st.next_offset);

        if (st.steps_since_check >= config_.consistency_check_freq) {
            st.steps_since_check = 0;
            if (consistency_check(*wv)) {
                rollback(*wv);
                r.outcome = BatchResult::Outcome::RolledBack;
                break;  // restart the version in the next batch
            }
        }
    }

    flush_stats(*wv);
    return r;
}

}  // namespace spectre::core
