#include "detect/compile_cache.hpp"

#include <bit>
#include <cstdio>

#include "util/assert.hpp"

namespace spectre::detect {

namespace {

// The dump is a nested S-expression-ish text form. Field order is fixed and
// every field is emitted (including defaults) so the signature is total: any
// AST difference — however small — changes the text.

void dump_expr(std::string& out, const query::Expr& e) {
    using Kind = query::ExprNode::Kind;
    if (!e) {
        out += "nil";
        return;
    }
    out += '(';
    switch (e->kind) {
        case Kind::Const: {
            // Exact bit pattern: 1.0 vs 1.0+ulp must differ, -0.0 vs 0.0 too.
            out += "const:";
            char buf[17];
            std::snprintf(buf, sizeof buf, "%016llx",
                          static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(e->value)));
            out += buf;
            break;
        }
        case Kind::Attr:
            out += "attr:";
            out += std::to_string(e->slot);
            break;
        case Kind::BoundAttr:
            out += "bound:";
            out += std::to_string(e->element);
            out += ':';
            out += std::to_string(e->slot);
            break;
        case Kind::SubjectIn:
            out += "subj_in:";
            for (const auto s : e->subjects) {
                out += std::to_string(s);
                out += ',';
            }
            break;
        case Kind::TypeIs:
            out += "type_is:";
            out += std::to_string(e->type);
            break;
        case Kind::Binary:
            out += "bin:";
            out += std::to_string(static_cast<int>(e->bop));
            out += ' ';
            dump_expr(out, e->lhs);
            out += ' ';
            dump_expr(out, e->rhs);
            break;
        case Kind::Unary:
            out += "un:";
            out += std::to_string(static_cast<int>(e->uop));
            out += ' ';
            dump_expr(out, e->lhs);
            break;
    }
    out += ')';
}

void dump_string(std::string& out, const std::string& s) {
    // Length prefix keeps concatenated names unambiguous ("ab"+"c" != "a"+"bc").
    out += std::to_string(s.size());
    out += ':';
    out += s;
}

void dump_window(std::string& out, const query::WindowSpec& w) {
    out += "window(";
    out += std::to_string(static_cast<int>(w.kind));
    out += ',';
    out += std::to_string(w.size);
    out += ',';
    out += std::to_string(w.slide);
    out += ',';
    out += std::to_string(w.duration);
    out += ',';
    out += std::to_string(w.time_slide);
    out += ',';
    out += std::to_string(static_cast<int>(w.extent));
    out += ',';
    dump_expr(out, w.open_pred);
    out += ')';
}

void dump_pattern(std::string& out, const query::Pattern& p) {
    out += "pattern[";
    for (const auto& el : p.elements) {
        out += "elem(";
        dump_string(out, el.name);
        out += ',';
        out += std::to_string(static_cast<int>(el.kind));
        out += ',';
        out += el.sticky ? '1' : '0';
        out += ',';
        dump_expr(out, el.pred);
        out += ',';
        dump_expr(out, el.guard);
        out += ",members[";
        for (const auto& m : el.members) {
            out += '(';
            dump_string(out, m.name);
            out += ',';
            dump_expr(out, m.pred);
            out += ')';
        }
        out += "])";
    }
    out += ']';
}

}  // namespace

std::string structural_signature(const query::Query& q) {
    std::string out;
    out.reserve(256);
    out += "query{";
    dump_window(out, q.window);
    dump_pattern(out, q.pattern);
    out += "sel:";
    out += std::to_string(static_cast<int>(q.selection));
    out += ";cons:";
    out += std::to_string(static_cast<int>(q.consumption.kind));
    out += '[';
    for (const auto& name : q.consumption.elements) dump_string(out, name);
    out += "];payload[";
    for (const auto& pd : q.payload) {
        out += '(';
        dump_string(out, pd.name);
        out += ',';
        dump_expr(out, pd.expr);
        out += ')';
    }
    out += "];part:";
    out += std::to_string(static_cast<int>(q.partition.kind));
    out += ':';
    out += std::to_string(q.partition.slot);
    out += ";max:";
    out += std::to_string(q.max_matches_per_window);
    out += '}';
    return out;
}

CompileCache::CompileCache(unsigned hash_bits)
    : hash_mask_(hash_bits >= 64 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << hash_bits) - 1)) {
    SPECTRE_REQUIRE(hash_bits >= 1 && hash_bits <= 64,
                    "CompileCache hash_bits must be in [1, 64]");
}

std::uint64_t CompileCache::bucket_hash(const std::string& signature) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
    for (const unsigned char c : signature) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h & hash_mask_;
}

std::shared_ptr<const CompiledQuery> CompileCache::get(query::Query q) {
    std::string sig = structural_signature(q);
    const std::uint64_t h = bucket_hash(sig);

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto [it, end] = entries_.equal_range(h);
        for (; it != end; ++it) {
            // Exact-hit confirmation: truncated-hash collisions fall through
            // to the next bucket entry (or to a miss) here.
            if (it->second.schema == q.schema && it->second.signature == sig) {
                ++stats_.hits;
                return it->second.artifact;
            }
        }
        ++stats_.misses;
    }

    // Compile outside the lock — compilation can be slow and is pure.
    auto artifact =
        std::make_shared<const CompiledQuery>(CompiledQuery::compile(std::move(q)));
    const auto& compiled_q = artifact->query();

    const std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() >= kMaxEntries) {
        // Prefer evicting entries whose schema the cache alone keeps alive —
        // their stream is gone, no future subscriber can hit them. The cache
        // contributes two schema references per entry (Entry::schema and the
        // copy inside the artifact's Query); an artifact an engine still
        // holds pins its schema live, and so does any other external
        // reference (the stream's vocab).
        std::unordered_map<const event::Schema*, std::pair<long, bool>> refs;
        for (const auto& [key, e] : entries_) {
            auto& [internal, live] = refs[e.schema.get()];
            internal += 2;
            if (e.artifact.use_count() > 1) live = true;
        }
        for (auto it = entries_.begin(); it != entries_.end();) {
            const auto& [internal, live] = refs[it->second.schema.get()];
            if (!live && it->second.schema.use_count() == internal)
                it = entries_.erase(it);
            else
                ++it;
        }
    }
    if (entries_.size() < kMaxEntries) {
        entries_.emplace(h, Entry{compiled_q.schema, std::move(sig), artifact});
    }
    // else: hand back an uncached artifact; correctness is unaffected.
    return artifact;
}

CompileCache::Stats CompileCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t CompileCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

}  // namespace spectre::detect
