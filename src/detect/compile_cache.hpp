// CompileCache: structural sharing of compiled query artifacts (DESIGN.md §15).
//
// Many subscriber sessions on one published stream frequently submit the same
// predicate program (dashboards fan the same alert out per user; a load
// generator opens N identical monitors). Compilation is pure — CompiledQuery
// is a deterministic function of (Query AST, Schema) — so identical queries
// can share one immutable artifact across every engine that runs them.
//
// Sharing is keyed on a *structural signature*: a canonical, exhaustive dump
// of the whole Query AST (window spec, pattern elements with predicates,
// guards and Set members, selection/consumption policies, payload
// definitions, partitioning, match limits — double constants rendered as
// exact bit patterns). Two queries with equal signatures compiled against the
// same Schema object produce identical artifacts by construction, so a cache
// hit is exact, never heuristic.
//
// Lookups hash the signature (FNV-1a, truncated to `hash_bits` — the
// truncation knob exists so tests can force bucket collisions) and confirm a
// hit by full signature comparison plus Schema pointer identity. Schema
// identity (not structural equality) is deliberate: interned attribute slots
// and type ids inside the compiled programs are only meaningful against the
// schema that interned them, so a "same-looking" schema from another stream
// must not share artifacts. Replacing a stream's schema therefore invalidates
// its cached entries naturally — the new shared_ptr never matches.
//
// Thread safety: all methods take an internal mutex. Entries are
// shared_ptr<const CompiledQuery>; eviction only drops the cache's reference,
// engines holding the artifact keep it alive.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "detect/compiled_query.hpp"
#include "query/query.hpp"

namespace spectre::detect {

// Canonical text dump of the Query AST; equal dumps + same schema object ⇒
// compile() yields an identical artifact. Exposed for the differential tests.
std::string structural_signature(const query::Query& q);

class CompileCache {
public:
    // `hash_bits` truncates the 64-bit signature hash used for bucketing
    // (1..64). Collisions are still resolved by full signature compare —
    // small values only exercise that path, they never produce false hits.
    explicit CompileCache(unsigned hash_bits = 64);

    CompileCache(const CompileCache&) = delete;
    CompileCache& operator=(const CompileCache&) = delete;

    // Returns the shared compiled artifact for `q`, compiling on miss. The
    // query's own `schema` field keys the entry (see file comment).
    std::shared_ptr<const CompiledQuery> get(query::Query q);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    Stats stats() const;
    std::size_t size() const;

    // Entries beyond this are handled by eviction (stale-schema entries
    // first) or compiled uncached; the cache never grows unboundedly.
    static constexpr std::size_t kMaxEntries = 256;

private:
    struct Entry {
        std::shared_ptr<const event::Schema> schema;
        std::string signature;
        std::shared_ptr<const CompiledQuery> artifact;
    };

    std::uint64_t bucket_hash(const std::string& signature) const noexcept;

    const std::uint64_t hash_mask_;
    mutable std::mutex mutex_;
    std::unordered_multimap<std::uint64_t, Entry> entries_;
    Stats stats_;
};

}  // namespace spectre::detect
